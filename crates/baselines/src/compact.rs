//! Compact Blocks (BIP152), low-bandwidth mode.
//!
//! The sender announces the block with 6-byte short IDs
//! (`SipHash-2-4(header-derived key, txid)`, low 48 bits). The receiver
//! matches them against her mempool and requests unmatched indexes with a
//! differentially encoded `getblocktxn`; the sender answers with the bodies.
//! Ambiguous short IDs (two mempool candidates) are re-requested, as the
//! BIP mandates.

use crate::BaselineReport;
use graphene_blockchain::{Block, Mempool};
use graphene_hashes::{sha256, short_id_6, SipKey};
use graphene_wire::messages::{
    BlockTxnMsg, CmpctBlockMsg, GetBlockTxnMsg, GetDataMsg, InvMsg, Message,
};
use std::collections::HashMap;

/// Derive the per-block SipHash key as BIP152 does (hash of header ‖ nonce).
fn short_id_key(block: &Block, nonce: u64) -> SipKey {
    let mut data = Vec::with_capacity(88);
    data.extend_from_slice(&block.header().to_bytes());
    data.extend_from_slice(&nonce.to_le_bytes());
    let h = sha256(&data);
    SipKey::new(
        u64::from_le_bytes(h.0[0..8].try_into().expect("8 bytes")),
        u64::from_le_bytes(h.0[8..16].try_into().expect("8 bytes")),
    )
}

/// Relay `block` via Compact Blocks to a receiver holding `mempool`.
///
/// The first transaction (coinbase in a real chain) is prefilled, matching
/// deployment behaviour and the paper's cost model.
pub fn compact_blocks_relay(block: &Block, mempool: &Mempool) -> BaselineReport {
    let mut report = BaselineReport { success: false, rounds: 0, ..Default::default() };
    let nonce = block.id().low_u64(); // deterministic per block
    let key = short_id_key(block, nonce);

    report.total += Message::Inv(InvMsg { block_id: block.id() }).wire_size();
    report.total +=
        Message::GetData(GetDataMsg { block_id: block.id(), mempool_count: 0 }).wire_size();
    report.rounds = 1;

    // Sender: cmpctblock with short IDs for all but the prefilled coinbase.
    let prefilled: Vec<(u64, _)> =
        block.txns().first().map(|tx| vec![(0u64, tx.clone())]).unwrap_or_default();
    let short_ids: Vec<u64> =
        block.txns().iter().skip(1).map(|tx| short_id_6(key, tx.id())).collect();
    let msg = CmpctBlockMsg { header: *block.header(), nonce, short_ids, prefilled };
    let prefilled_bytes: usize = msg.prefilled.iter().map(|(_, tx)| tx.size()).sum();
    report.total += Message::CmpctBlock(msg.clone()).wire_size();
    report.txn_bytes += prefilled_bytes;

    // Receiver: map mempool to short IDs under the block key.
    let mut by_short: HashMap<u64, Option<graphene_blockchain::TxId>> = HashMap::new();
    for tx in mempool.iter() {
        by_short
            .entry(short_id_6(key, tx.id()))
            .and_modify(|slot| *slot = None) // ambiguous: force re-request
            .or_insert(Some(*tx.id()));
    }

    let mut reconstruction: Vec<Option<graphene_blockchain::TxId>> =
        Vec::with_capacity(block.len());
    if let Some((_, tx)) = msg.prefilled.first() {
        reconstruction.push(Some(*tx.id()));
    }
    let mut missing_indexes: Vec<u64> = Vec::new();
    for (i, short) in msg.short_ids.iter().enumerate() {
        match by_short.get(short) {
            Some(Some(id)) => reconstruction.push(Some(*id)),
            _ => {
                reconstruction.push(None);
                missing_indexes.push((i + 1) as u64); // +1 for the coinbase
            }
        }
    }

    // Repair round.
    if !missing_indexes.is_empty() {
        report.rounds += 1;
        let req = GetBlockTxnMsg { block_id: block.id(), indexes: missing_indexes.clone() };
        report.total += Message::GetBlockTxn(req).wire_size();
        let txns: Vec<_> =
            missing_indexes.iter().map(|&i| block.txns()[i as usize].clone()).collect();
        let body_bytes: usize = txns.iter().map(|t| t.size()).sum();
        report.total +=
            Message::BlockTxn(BlockTxnMsg { block_id: block.id(), txns: txns.clone() }).wire_size();
        report.txn_bytes += body_bytes;
        for (&i, tx) in missing_indexes.iter().zip(&txns) {
            reconstruction[i as usize] = Some(*tx.id());
        }
    }

    // Validate: ids in order must match the Merkle commitment.
    let ids: Vec<_> = reconstruction.into_iter().flatten().collect();
    report.success = ids.len() == block.len() && block.validate_reconstruction(&ids).is_ok();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_blockchain::{Scenario, ScenarioParams};
    use rand::{rngs::StdRng, SeedableRng};

    fn scenario(n: usize, extra: f64, held: f64, seed: u64) -> Scenario {
        let params = ScenarioParams {
            block_size: n,
            extra_mempool_multiple: extra,
            block_fraction_in_mempool: held,
            ..Default::default()
        };
        Scenario::generate(&params, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn full_mempool_one_round() {
        let s = scenario(500, 1.0, 1.0, 1);
        let r = compact_blocks_relay(&s.block, &s.receiver_mempool);
        assert!(r.success);
        assert_eq!(r.rounds, 1);
        // ≈ 6 bytes per transaction plus fixed overhead and the coinbase.
        let floor = 6 * 499;
        assert!(r.total_excluding_txns() >= floor);
        assert!(
            r.total_excluding_txns() < floor + 300,
            "{} vs floor {floor}",
            r.total_excluding_txns()
        );
    }

    #[test]
    fn missing_txns_trigger_repair_round() {
        let s = scenario(400, 1.0, 0.7, 2);
        let r = compact_blocks_relay(&s.block, &s.receiver_mempool);
        assert!(r.success);
        assert_eq!(r.rounds, 2);
        assert!(r.txn_bytes > 0);
        // ~120 missing transactions of ~250 B each.
        assert!(r.txn_bytes > 100 * 200, "txn bytes {}", r.txn_bytes);
    }

    #[test]
    fn empty_mempool_ships_everything() {
        let s = scenario(100, 0.0, 1.0, 3);
        let empty = Mempool::new();
        let r = compact_blocks_relay(&s.block, &empty);
        assert!(r.success);
        let total_body: usize = s.block.txns().iter().map(|t| t.size()).sum();
        assert_eq!(r.txn_bytes, total_body);
    }

    #[test]
    fn deterministic_accounting() {
        let s = scenario(200, 2.0, 0.9, 4);
        let a = compact_blocks_relay(&s.block, &s.receiver_mempool);
        let b = compact_blocks_relay(&s.block, &s.receiver_mempool);
        assert_eq!(a, b);
    }

    #[test]
    fn single_txn_block() {
        let s = scenario(1, 5.0, 1.0, 5);
        let r = compact_blocks_relay(&s.block, &s.receiver_mempool);
        assert!(r.success);
        assert_eq!(r.rounds, 1, "coinbase is prefilled; nothing to request");
    }
}
