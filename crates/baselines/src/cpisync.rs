//! CPISync — set reconciliation by Characteristic Polynomial Interpolation
//! (Minsky, Trachtenberg, Zippel 2003), the paper's §2.1 example of an
//! approach that is *smaller* than IBLTs but needs far more computation.
//!
//! Each party evaluates the characteristic polynomial
//! `χ_S(z) = Π_{s∈S}(z − s)` of its set at `m̄ + CHECK` agreed sample
//! points. The ratio `χ_A(z)/χ_B(z)` is a rational function whose numerator
//! and denominator vanish exactly on `A∖B` and `B∖A`; with at least
//! `|AΔB|` evaluations it can be interpolated (one Gaussian solve) and its
//! roots extracted (Rabin root-finding). Transfer cost: `8·(m̄ + CHECK)`
//! bytes — within a small constant of the information-theoretic bound —
//! versus the IBLT's `~24–48` bytes per difference, at `O(m̄³)` computation
//! instead of `O(m̄)`.
//!
//! The `CHECK` extra evaluations verify the interpolation; an undersized
//! `m̄` is detected (with overwhelming probability) rather than silently
//! miscorrected, so callers can double `m̄` and retry — the standard
//! probabilistic CPISync loop.
#![allow(clippy::needless_range_loop)] // index loops mirror the linear-algebra notation

use crate::gf::{Fe, P};
use crate::poly::Poly;

/// Verification evaluations appended beyond `m̄`.
pub const CHECK: usize = 2;

/// Errors from reconciliation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpiError {
    /// The difference bound `m̄` was too small (detected by the check
    /// points or a singular system). Retry with a larger bound.
    BoundTooSmall,
    /// A sample point collided with a set element (probability ≈ m̄·|S|/p).
    PointCollision,
}

impl core::fmt::Display for CpiError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CpiError::BoundTooSmall => write!(f, "difference exceeded the m̄ bound"),
            CpiError::PointCollision => write!(f, "sample point collided with an element"),
        }
    }
}

impl std::error::Error for CpiError {}

/// The transferred sketch: evaluations of `χ_A` plus the set size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpiSketch {
    /// Evaluations at [`sample_point`]`(0..m̄+CHECK)`.
    pub evals: Vec<Fe>,
    /// `|A|`.
    pub set_size: usize,
    /// The difference bound the sketch was built for.
    pub mbar: usize,
}

impl CpiSketch {
    /// Wire size in bytes: the evaluations, plus size/bound varints
    /// (modeled as 2×4 bytes).
    pub fn serialized_size(&self) -> usize {
        8 * self.evals.len() + 8
    }
}

/// The i-th agreed sample point: descending from p−1, far from embedded
/// IDs with overwhelming probability.
fn sample_point(i: usize) -> Fe {
    Fe(P - 1 - i as u64)
}

/// Build the sketch of `values` for difference bound `mbar`.
pub fn sketch(values: impl Iterator<Item = u64> + Clone, mbar: usize) -> CpiSketch {
    let mut evals = Vec::with_capacity(mbar + CHECK);
    let mut set_size = 0usize;
    for i in 0..mbar + CHECK {
        let z = sample_point(i);
        let mut acc = Fe::ONE;
        set_size = 0;
        for v in values.clone() {
            acc = acc.mul(z.sub(Fe::embed(v)));
            set_size += 1;
        }
        evals.push(acc);
    }
    CpiSketch { evals, set_size, mbar }
}

/// The recovered symmetric difference (as embedded field values).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CpiDiff {
    /// Elements of the remote set absent locally.
    pub only_remote: Vec<u64>,
    /// Local elements absent remotely.
    pub only_local: Vec<u64>,
}

/// Reconcile a received sketch against the local set.
pub fn reconcile(remote: &CpiSketch, local: &[u64]) -> Result<CpiDiff, CpiError> {
    let mbar = remote.mbar;
    let total = mbar + CHECK;
    assert_eq!(remote.evals.len(), total, "sketch length mismatch");

    // Local evaluations and the ratios f_i = χ_A(z_i) / χ_B(z_i).
    let mut ratios = Vec::with_capacity(total);
    for (i, &ae) in remote.evals.iter().enumerate() {
        let z = sample_point(i);
        let mut be = Fe::ONE;
        for &v in local {
            be = be.mul(z.sub(Fe::embed(v)));
        }
        if be == Fe::ZERO || ae == Fe::ZERO {
            return Err(CpiError::PointCollision);
        }
        ratios.push(ae.mul(be.inv()));
    }

    // Degrees: deg P − deg Q = |A| − |B| = Δ, deg P + deg Q ≤ m̄. When
    // m̄ + Δ is odd the split cannot use all of m̄; shrink by one (the true
    // difference has the same parity as Δ, so nothing is lost).
    let delta = remote.set_size as i64 - local.len() as i64;
    let mbar_eff = if (mbar as i64 + delta) % 2 != 0 { mbar.saturating_sub(1) } else { mbar };
    if delta.unsigned_abs() as usize > mbar_eff {
        return Err(CpiError::BoundTooSmall);
    }
    let dp = ((mbar_eff as i64 + delta) / 2) as usize;
    let dq = mbar_eff - dp;
    debug_assert_eq!(dp as i64 - dq as i64, delta);

    // Linear system over the first m̄ points for the non-leading
    // coefficients of monic P (deg dp) and monic Q (deg dq):
    //   Σ_j P_j z^j − f·Σ_j Q_j z^j = f·z^dq − z^dp.
    let unknowns = dp + dq;
    let mut m: Vec<Vec<Fe>> = Vec::with_capacity(unknowns);
    let mut rhs: Vec<Fe> = Vec::with_capacity(unknowns);
    for i in 0..unknowns.min(mbar) {
        let z = sample_point(i);
        let f = ratios[i];
        let mut row = Vec::with_capacity(unknowns);
        let mut zp = Fe::ONE;
        for _ in 0..dp {
            row.push(zp);
            zp = zp.mul(z);
        }
        let mut zq = Fe::ONE;
        for _ in 0..dq {
            row.push(f.neg().mul(zq));
            zq = zq.mul(z);
        }
        // zp is now z^dp, zq is z^dq.
        rhs.push(f.mul(zq).sub(zp));
        m.push(row);
    }

    let coeffs = solve(m, rhs).ok_or(CpiError::BoundTooSmall)?;
    let mut p_coeffs: Vec<Fe> = coeffs[..dp].to_vec();
    p_coeffs.push(Fe::ONE);
    let mut q_coeffs: Vec<Fe> = coeffs[dp..].to_vec();
    q_coeffs.push(Fe::ONE);
    let p_poly = Poly(p_coeffs);
    let q_poly = Poly(q_coeffs);

    // Remove any common factor introduced by over-sizing m̄.
    let g = p_poly.gcd(&q_poly);
    let (p_poly, q_poly) = if g.degree().unwrap_or(0) > 0 {
        (p_poly.divmod(&g).0, q_poly.divmod(&g).0)
    } else {
        (p_poly, q_poly)
    };

    // Verify at the CHECK points and any sample points the (possibly
    // parity-shrunk) system did not consume.
    for i in mbar_eff..total {
        let z = sample_point(i);
        let qz = q_poly.eval(z);
        if qz == Fe::ZERO {
            return Err(CpiError::BoundTooSmall);
        }
        if p_poly.eval(z).mul(qz.inv()) != ratios[i] {
            return Err(CpiError::BoundTooSmall);
        }
    }

    // Extract roots.
    let p_roots = p_poly.roots(0xc715);
    let q_roots = q_poly.roots(0xc716);
    if Some(p_roots.len()) != p_poly.degree() || Some(q_roots.len()) != q_poly.degree() {
        // Repeated or extension-field roots: not a valid difference.
        return Err(CpiError::BoundTooSmall);
    }
    Ok(CpiDiff {
        only_remote: p_roots.into_iter().map(|f| f.0).collect(),
        only_local: q_roots.into_iter().map(|f| f.0).collect(),
    })
}

/// Gaussian elimination over GF(p) with free variables set to zero.
///
/// When the true difference is smaller than `m̄` the system is consistent
/// but rank-deficient (P and Q share arbitrary extra factors); any solution
/// works because the subsequent GCD reduction cancels the shared factor.
/// Returns `None` only for an *inconsistent* system.
fn solve(mut m: Vec<Vec<Fe>>, mut rhs: Vec<Fe>) -> Option<Vec<Fe>> {
    let rows = rhs.len();
    let cols = m.first().map_or(0, Vec::len);
    let mut pivot_of_col: Vec<Option<usize>> = vec![None; cols];
    let mut row = 0usize;
    for col in 0..cols {
        if row >= rows {
            break;
        }
        let Some(pr) = (row..rows).find(|&r| m[r][col] != Fe::ZERO) else {
            continue; // free column
        };
        m.swap(row, pr);
        rhs.swap(row, pr);
        let inv = m[row][col].inv();
        for c in col..cols {
            m[row][c] = m[row][c].mul(inv);
        }
        rhs[row] = rhs[row].mul(inv);
        for r in 0..rows {
            if r == row || m[r][col] == Fe::ZERO {
                continue;
            }
            let factor = m[r][col];
            for c in col..cols {
                let v = m[row][c].mul(factor);
                m[r][c] = m[r][c].sub(v);
            }
            let v = rhs[row].mul(factor);
            rhs[r] = rhs[r].sub(v);
        }
        pivot_of_col[col] = Some(row);
        row += 1;
    }
    // Inconsistency check: a zero row with non-zero RHS.
    for r in row..rows {
        if rhs[r] != Fe::ZERO && m[r].iter().all(|&c| c == Fe::ZERO) {
            return None;
        }
    }
    // Read off: pivot columns take the (fully reduced) RHS; free columns 0.
    let mut out = vec![Fe::ZERO; cols];
    for (col, pivot) in pivot_of_col.iter().enumerate() {
        if let Some(r) = pivot {
            out[col] = rhs[*r];
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(range: std::ops::Range<u64>) -> Vec<u64> {
        range.map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 3).collect()
    }

    fn run(a: &[u64], b: &[u64], mbar: usize) -> Result<CpiDiff, CpiError> {
        let sk = sketch(a.iter().copied(), mbar);
        reconcile(&sk, b)
    }

    fn embedded(mut v: Vec<u64>) -> Vec<u64> {
        // Compare against the field embedding (ids ≥ p fold).
        for x in v.iter_mut() {
            *x = Fe::embed(*x).0;
        }
        v.sort_unstable();
        v
    }

    #[test]
    fn identical_sets_empty_diff() {
        let a = ids(0..50);
        let d = run(&a, &a, 4).expect("reconciles");
        assert!(d.only_remote.is_empty() && d.only_local.is_empty());
    }

    #[test]
    fn small_asymmetric_difference() {
        let shared = ids(0..60);
        let mut a = shared.clone();
        a.extend(ids(1000..1003)); // 3 only-remote
        let mut b = shared;
        b.extend(ids(2000..2002)); // 2 only-local
        let d = run(&a, &b, 8).expect("reconciles");
        assert_eq!(d.only_remote.len(), 3);
        assert_eq!(d.only_local.len(), 2);
        assert_eq!(embedded(d.only_remote), embedded(ids(1000..1003)));
        assert_eq!(embedded(d.only_local), embedded(ids(2000..2002)));
    }

    #[test]
    fn exact_bound_works() {
        let a = ids(0..30);
        let b = ids(5..30); // diff = 5, all on the remote side
        let d = run(&a, &b, 5).expect("tight bound suffices");
        assert_eq!(d.only_remote.len(), 5);
        assert!(d.only_local.is_empty());
    }

    #[test]
    fn undersized_bound_detected() {
        let a = ids(0..100);
        let b = ids(20..100); // diff = 20
        match run(&a, &b, 6) {
            Err(CpiError::BoundTooSmall) => {}
            other => panic!("undersized bound not caught: {other:?}"),
        }
    }

    #[test]
    fn retry_loop_converges() {
        let a = ids(0..200);
        let b = ids(37..200);
        let mut mbar = 4;
        loop {
            match run(&a, &b, mbar) {
                Ok(d) => {
                    assert_eq!(d.only_remote.len(), 37);
                    break;
                }
                Err(CpiError::BoundTooSmall) => mbar *= 2,
                Err(e) => panic!("{e}"),
            }
            assert!(mbar <= 256, "retry loop diverged");
        }
    }

    #[test]
    fn empty_local_set() {
        let a = ids(0..10);
        let d = run(&a, &[], 12).expect("reconciles");
        assert_eq!(d.only_remote.len(), 10);
    }

    #[test]
    fn sketch_size_near_information_bound() {
        let sk = sketch(ids(0..1000).into_iter(), 40);
        // 8 bytes per difference slot + check/header overhead.
        assert_eq!(sk.serialized_size(), 8 * 42 + 8);
    }

    #[test]
    fn larger_difference_both_sides() {
        let shared = ids(0..150);
        let mut a = shared.clone();
        a.extend(ids(5000..5025));
        let mut b = shared;
        b.extend(ids(9000..9030));
        let d = run(&a, &b, 60).expect("reconciles");
        assert_eq!(d.only_remote.len(), 25);
        assert_eq!(d.only_local.len(), 30);
        assert_eq!(embedded(d.only_remote), embedded(ids(5000..5025)));
        assert_eq!(embedded(d.only_local), embedded(ids(9000..9030)));
    }
}
