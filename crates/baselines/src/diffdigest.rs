//! IBLT-only reconciliation in the style of Eppstein et al.'s Difference
//! Digest (SIGCOMM 2011), the paper's §5.3.2 comparison point.
//!
//! The sender announces `n`; the receiver answers with a *strata estimator*
//! — `⌈log2 m⌉` small IBLTs (80 cells each) where each element is assigned
//! to stratum `i` with probability `2^-(i+1)` by trailing zeros of its
//! hash — from which the sender estimates the symmetric difference `d`,
//! then ships one IBLT with `2·d̂` cells ("twice the number of cells as the
//! estimate, to account for an under-estimate"). The receiver subtracts and
//! peels as usual.

use crate::BaselineReport;
use graphene_blockchain::{Block, Mempool};
use graphene_hashes::{short_id_8, siphash24, SipKey};
use graphene_iblt::{Iblt, PeelScratch, CELL_BYTES, HEADER_BYTES};
use graphene_wire::messages::{GetDataMsg, InvMsg, Message};
use graphene_wire::varint::varint_len;

const STRATA_CELLS: usize = 80;
const STRATA_K: u32 = 4;

/// Number of strata for a universe of `m` elements.
fn strata_levels(m: usize) -> usize {
    (usize::BITS - m.max(2).leading_zeros()) as usize
}

/// Which stratum an element falls into: the number of trailing zeros of an
/// independent hash of it.
fn stratum_of(salt: u64, value: u64, levels: usize) -> usize {
    let h = siphash24(SipKey::new(salt, 0x5354_5241), &value.to_le_bytes());
    (h.trailing_zeros() as usize).min(levels - 1)
}

/// Build the strata estimator over a set of short IDs.
fn build_strata(values: impl Iterator<Item = u64>, levels: usize, salt: u64) -> Vec<Iblt> {
    let mut strata: Vec<Iblt> =
        (0..levels).map(|i| Iblt::new(STRATA_CELLS, STRATA_K, salt ^ (i as u64) << 8)).collect();
    for v in values {
        let s = stratum_of(salt, v, levels);
        strata[s].insert(v);
    }
    strata
}

/// Estimate the symmetric difference between two sets from their strata.
///
/// Decodes from the deepest stratum downward; once a stratum fails, scales
/// the count recovered so far by the sampling rate (the standard strata
/// estimator procedure).
fn estimate_difference(mine: &[Iblt], theirs: &[Iblt]) -> usize {
    let mut count = 0usize;
    // One difference buffer and one peel scratch for all strata.
    let mut diff = Iblt::new(STRATA_CELLS, STRATA_K, 0);
    let mut scratch = PeelScratch::new();
    for i in (0..mine.len()).rev() {
        if mine[i].subtract_into(&theirs[i], &mut diff).is_err() {
            return count << (i + 1);
        }
        match diff.peel_in_place(&mut scratch) {
            Ok(r) if r.complete => count += r.len(),
            _ => {
                // Stratum i failed: everything below is unsampled; scale.
                return (count.max(1)) << (i + 1);
            }
        }
    }
    count.max(1)
}

/// Relay `block` with the IBLT-only protocol.
pub fn diff_digest_relay(block: &Block, mempool: &Mempool) -> BaselineReport {
    let mut report = BaselineReport { success: false, rounds: 2, ..Default::default() };
    let salt = block.id().low_u64() ^ 0xd1f;
    let m = mempool.len();
    let levels = strata_levels(m.max(block.len()));

    // inv (with n) / strata exchange.
    report.total += Message::Inv(InvMsg { block_id: block.id() }).wire_size();
    report.total += Message::GetData(GetDataMsg { block_id: block.id(), mempool_count: m as u64 })
        .wire_size()
        + varint_len(block.len() as u64);

    let receiver_strata = build_strata(mempool.iter().map(|tx| short_id_8(tx.id())), levels, salt);
    // The whole estimator crosses the wire.
    report.total += levels * (HEADER_BYTES + STRATA_CELLS * CELL_BYTES);

    let sender_strata =
        build_strata(block.txns().iter().map(|tx| short_id_8(tx.id())), levels, salt);
    let estimate = estimate_difference(&sender_strata, &receiver_strata);

    // Sender ships an IBLT with 2·d̂ cells.
    let cells = (2 * estimate).max(8);
    let mut iblt = Iblt::new(cells, 4, salt ^ 0xface);
    for tx in block.txns() {
        iblt.insert(short_id_8(tx.id()));
    }
    report.total += iblt.serialized_size();

    // Receiver subtracts her whole mempool and peels.
    let mut mine = Iblt::new(iblt.cell_count(), iblt.hash_count(), iblt.salt());
    for tx in mempool.iter() {
        mine.insert(short_id_8(tx.id()));
    }
    // Consume the local table as the difference buffer.
    if mine.subtract_from(&iblt).is_err() {
        return report;
    }
    let mut diff = mine;
    let decoded = match diff.peel() {
        Ok(r) => r,
        Err(_) => return report,
    };
    if !decoded.complete {
        return report;
    }

    // Fetch the block transactions the mempool lacks.
    let missing = decoded.only_left.len();
    if missing > 0 {
        report.rounds += 1;
        report.total += 5 + 32 + varint_len(missing as u64) + 8 * missing;
        let bodies: usize = block
            .txns()
            .iter()
            .filter(|tx| decoded.only_left.contains(&short_id_8(tx.id())))
            .map(|tx| varint_len(tx.size() as u64) + tx.size())
            .sum();
        report.total += 5 + 32 + bodies;
        report.txn_bytes += bodies;
    }
    report.success = true;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_blockchain::{Scenario, ScenarioParams};
    use rand::{rngs::StdRng, SeedableRng};

    fn scenario(n: usize, extra: f64, held: f64, seed: u64) -> Scenario {
        let params = ScenarioParams {
            block_size: n,
            extra_mempool_multiple: extra,
            block_fraction_in_mempool: held,
            ..Default::default()
        };
        Scenario::generate(&params, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn strata_levels_sane() {
        assert_eq!(strata_levels(2), 2);
        assert_eq!(strata_levels(1024), 11);
    }

    #[test]
    fn estimator_tracks_true_difference() {
        // Two sets with a known difference of 200.
        let salt = 42;
        let levels = strata_levels(2000);
        let a = build_strata(0..2000u64, levels, salt);
        let b = build_strata(100..2100u64, levels, salt);
        let est = estimate_difference(&a, &b);
        assert!((50..=800).contains(&est), "estimate {est} wildly off from true 200");
    }

    #[test]
    fn reconciles_superset_mempool() {
        let s = scenario(300, 2.0, 1.0, 1);
        let r = diff_digest_relay(&s.block, &s.receiver_mempool);
        assert!(r.success);
        assert_eq!(r.txn_bytes, 0, "receiver already had everything");
    }

    #[test]
    fn costlier_than_graphene() {
        // §5.3.2: "several times more expensive than Graphene."
        let s = scenario(2000, 1.0, 1.0, 2);
        let dd = diff_digest_relay(&s.block, &s.receiver_mempool);
        assert!(dd.success);
        let g = graphene::relay_block(
            &s.block,
            None,
            &s.receiver_mempool,
            &graphene::GrapheneConfig::default(),
        );
        assert!(g.outcome.is_success());
        assert!(
            dd.total_excluding_txns() > 2 * g.bytes.total_excluding_txns(),
            "diff digest {} vs graphene {}",
            dd.total_excluding_txns(),
            g.bytes.total_excluding_txns()
        );
    }

    #[test]
    fn recovers_missing_transactions() {
        let s = scenario(200, 1.0, 0.8, 3);
        let r = diff_digest_relay(&s.block, &s.receiver_mempool);
        assert!(r.success);
        assert!(r.txn_bytes > 0);
        assert_eq!(r.rounds, 3);
    }
}
