//! The uncompressed baseline: ship the whole block (Fig. 13's left facet).

use crate::BaselineReport;
use graphene_blockchain::Block;
use graphene_wire::messages::{FullBlockMsg, GetDataMsg, InvMsg, Message};

/// Relay `block` in full.
pub fn full_block_relay(block: &Block) -> BaselineReport {
    let mut report = BaselineReport { success: true, rounds: 1, ..Default::default() };
    report.total += Message::Inv(InvMsg { block_id: block.id() }).wire_size();
    report.total +=
        Message::GetData(GetDataMsg { block_id: block.id(), mempool_count: 0 }).wire_size();
    let msg = FullBlockMsg { header: *block.header(), txns: block.txns().to_vec() };
    report.txn_bytes = block.txns().iter().map(|t| t.size()).sum();
    report.total += Message::FullBlock(msg).wire_size();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_blockchain::{Scenario, ScenarioParams, TxProfile};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn size_tracks_payloads() {
        let params = ScenarioParams {
            block_size: 100,
            profile: TxProfile::Fixed(200),
            ..Default::default()
        };
        let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(1));
        let r = full_block_relay(&s.block);
        assert!(r.success);
        assert_eq!(r.txn_bytes, 100 * 200);
        // Everything except headers/framing is transaction bodies.
        assert!(r.total_excluding_txns() < 600, "{}", r.total_excluding_txns());
    }
}
