//! Arithmetic in GF(p) with p = 2^61 − 1 (a Mersenne prime).
//!
//! Substrate for the CPISync baseline: characteristic polynomials live over
//! a prime field large enough to embed 8-byte short transaction IDs with
//! negligible collision probability.

/// The field modulus: the Mersenne prime 2^61 − 1.
pub const P: u64 = (1u64 << 61) - 1;

/// A field element (always reduced mod [`P`]).
///
/// Method names intentionally mirror the `std::ops` traits without
/// implementing them: all arithmetic here is modular, and keeping the calls
/// explicit (`a.mul(b)`) avoids accidental use of native operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[allow(clippy::should_implement_trait)]
pub struct Fe(pub u64);

#[allow(clippy::should_implement_trait)]
impl Fe {
    /// The additive identity.
    pub const ZERO: Fe = Fe(0);
    /// The multiplicative identity.
    pub const ONE: Fe = Fe(1);

    /// Embed an arbitrary u64 (e.g. a short txid) into the field.
    #[inline]
    pub fn embed(v: u64) -> Fe {
        // Mersenne reduction: v = hi·2^61 + lo ≡ hi + lo (mod p).
        let r = (v >> 61) + (v & P);
        Fe(if r >= P { r - P } else { r })
    }

    /// Addition mod p.
    #[inline]
    pub fn add(self, rhs: Fe) -> Fe {
        let s = self.0 + rhs.0;
        Fe(if s >= P { s - P } else { s })
    }

    /// Subtraction mod p.
    #[inline]
    pub fn sub(self, rhs: Fe) -> Fe {
        Fe(if self.0 >= rhs.0 { self.0 - rhs.0 } else { self.0 + P - rhs.0 })
    }

    /// Negation mod p.
    #[inline]
    pub fn neg(self) -> Fe {
        if self.0 == 0 {
            Fe(0)
        } else {
            Fe(P - self.0)
        }
    }

    /// Multiplication mod p (128-bit intermediate, Mersenne fold).
    #[inline]
    pub fn mul(self, rhs: Fe) -> Fe {
        let wide = self.0 as u128 * rhs.0 as u128;
        let lo = (wide & P as u128) as u64;
        let hi = (wide >> 61) as u64;
        Fe::embed(lo).add(Fe::embed(hi))
    }

    /// Exponentiation by squaring.
    pub fn pow(self, mut e: u64) -> Fe {
        let mut base = self;
        let mut acc = Fe::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(base);
            }
            base = base.mul(base);
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse (Fermat). Panics on zero.
    pub fn inv(self) -> Fe {
        assert!(self.0 != 0, "division by zero in GF(p)");
        self.pow(P - 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embed_reduces() {
        assert_eq!(Fe::embed(P), Fe(0));
        assert_eq!(Fe::embed(P + 5), Fe(5));
        assert!(Fe::embed(u64::MAX).0 < P);
    }

    #[test]
    fn field_axioms_spot_check() {
        let a = Fe::embed(0x1234_5678_9abc_def0);
        let b = Fe::embed(0x0fed_cba9_8765_4321);
        assert_eq!(a.add(b), b.add(a));
        assert_eq!(a.mul(b), b.mul(a));
        assert_eq!(a.add(a.neg()), Fe::ZERO);
        assert_eq!(a.sub(b).add(b), a);
        // Distributivity.
        let c = Fe::embed(77);
        assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
    }

    #[test]
    fn inverse_works() {
        for v in [1u64, 2, 12345, P - 1] {
            let a = Fe(v);
            assert_eq!(a.mul(a.inv()), Fe::ONE, "v = {v}");
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let a = Fe::embed(987654321);
        let mut acc = Fe::ONE;
        for e in 0..20u64 {
            assert_eq!(a.pow(e), acc, "e = {e}");
            acc = acc.mul(a);
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn zero_has_no_inverse() {
        Fe::ZERO.inv();
    }
}
