//! Baseline block-relay protocols the paper evaluates Graphene against.
//!
//! * [`compact`] — Compact Blocks (BIP152): 6-byte SipHash short IDs,
//!   index-based repair round. Deployed in Bitcoin Core/ABC/Unlimited.
//! * [`xthin`] — Xtreme Thinblocks (BUIP010): receiver sends a Bloom filter
//!   of her mempool; sender answers with 8-byte IDs plus whatever misses the
//!   filter. `XThin*` (Fig. 12) is the same with the receiver-filter bytes
//!   excluded from the comparison.
//! * [`fullblock`] — the uncompressed baseline.
//! * [`diffdigest`] — an IBLT-only reconciliation in the style of Eppstein
//!   et al.'s Difference Digest (strata estimator + doubled IBLT), the
//!   alternative §5.3.2 reports as several times costlier than Graphene.
//! * [`cpisync`] — Characteristic Polynomial Interpolation (Minsky et al.),
//!   §2.1's smaller-but-slower exact reconciliation, built on from-scratch
//!   GF(2^61−1) arithmetic ([`gf`]) and polynomial algebra ([`poly`]).
//!
//! Every simulator consumes the same inputs (a [`graphene_blockchain::Block`]
//! and the receiver's [`graphene_blockchain::Mempool`]) and produces a
//! [`BaselineReport`] with exact wire bytes, so the figures compare like for
//! like.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compact;
pub mod cpisync;
pub mod diffdigest;
pub mod fullblock;
pub mod gf;
pub mod poly;
pub mod xthin;

pub use compact::compact_blocks_relay;
pub use cpisync::{reconcile as cpisync_reconcile, sketch as cpisync_sketch, CpiError, CpiSketch};
pub use diffdigest::diff_digest_relay;
pub use fullblock::full_block_relay;
pub use xthin::{xthin_relay, XthinAccounting};

/// Byte/round accounting common to every baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BaselineReport {
    /// Whether the receiver reconstructed the block exactly.
    pub success: bool,
    /// Round trips consumed (1 round trip = request + response).
    pub rounds: u32,
    /// Total bytes, including transaction bodies.
    pub total: usize,
    /// Bytes of transaction bodies shipped (missing/prefilled).
    pub txn_bytes: usize,
    /// Bytes of the receiver-side filter, where the protocol has one
    /// (XThin); separated so Fig. 12's XThin* accounting can exclude it.
    pub receiver_filter_bytes: usize,
}

impl BaselineReport {
    /// Total minus transaction bodies — the encoding-size metric the
    /// paper's simulation figures plot.
    pub fn total_excluding_txns(&self) -> usize {
        self.total - self.txn_bytes
    }

    /// The Fig. 12 XThin* metric: exclude the receiver's mempool filter too.
    pub fn total_xthin_star(&self) -> usize {
        self.total_excluding_txns() - self.receiver_filter_bytes
    }
}
