//! Dense univariate polynomials over GF(2^61 − 1).
//!
//! Just enough algebra for CPISync: evaluation, multiplication, division
//! with remainder, GCD, and modular exponentiation of `x^e mod f` (the core
//! of Rabin's root-finding).

use crate::gf::{Fe, P};

/// A polynomial as coefficients, lowest degree first. The zero polynomial
/// is the empty vector; otherwise the leading coefficient is non-zero.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Poly(pub Vec<Fe>);

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly(Vec::new())
    }

    /// The constant one.
    pub fn one() -> Poly {
        Poly(vec![Fe::ONE])
    }

    /// The monic linear factor `x − root`.
    pub fn linear(root: Fe) -> Poly {
        Poly(vec![root.neg(), Fe::ONE])
    }

    /// True for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.0.is_empty()
    }

    /// Degree (zero polynomial returns `None`).
    pub fn degree(&self) -> Option<usize> {
        if self.0.is_empty() {
            None
        } else {
            Some(self.0.len() - 1)
        }
    }

    fn trim(mut v: Vec<Fe>) -> Poly {
        while v.last() == Some(&Fe::ZERO) {
            v.pop();
        }
        Poly(v)
    }

    /// Horner evaluation.
    pub fn eval(&self, x: Fe) -> Fe {
        let mut acc = Fe::ZERO;
        for &c in self.0.iter().rev() {
            acc = acc.mul(x).add(c);
        }
        acc
    }

    /// Sum.
    pub fn add(&self, rhs: &Poly) -> Poly {
        let n = self.0.len().max(rhs.0.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let a = self.0.get(i).copied().unwrap_or(Fe::ZERO);
            let b = rhs.0.get(i).copied().unwrap_or(Fe::ZERO);
            out.push(a.add(b));
        }
        Poly::trim(out)
    }

    /// Product (schoolbook; degrees here are ≤ a few hundred).
    pub fn mul(&self, rhs: &Poly) -> Poly {
        if self.is_zero() || rhs.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![Fe::ZERO; self.0.len() + rhs.0.len() - 1];
        for (i, &a) in self.0.iter().enumerate() {
            if a == Fe::ZERO {
                continue;
            }
            for (j, &b) in rhs.0.iter().enumerate() {
                out[i + j] = out[i + j].add(a.mul(b));
            }
        }
        Poly::trim(out)
    }

    /// Scale by a constant.
    pub fn scale(&self, c: Fe) -> Poly {
        Poly::trim(self.0.iter().map(|&a| a.mul(c)).collect())
    }

    /// Division with remainder: `self = q·div + r`, deg r < deg div.
    /// Panics if `div` is zero.
    pub fn divmod(&self, div: &Poly) -> (Poly, Poly) {
        assert!(!div.is_zero(), "polynomial division by zero");
        let dd = div.degree().expect("non-zero");
        if self.degree().is_none_or(|d| d < dd) {
            return (Poly::zero(), self.clone());
        }
        let lead_inv = div.0[dd].inv();
        let mut rem = self.0.clone();
        let mut quot = vec![Fe::ZERO; rem.len() - dd];
        for i in (dd..rem.len()).rev() {
            let coef = rem[i].mul(lead_inv);
            if coef == Fe::ZERO {
                continue;
            }
            quot[i - dd] = coef;
            for (j, &dc) in div.0.iter().enumerate() {
                rem[i - dd + j] = rem[i - dd + j].sub(coef.mul(dc));
            }
        }
        (Poly::trim(quot), Poly::trim(rem))
    }

    /// Monic GCD.
    pub fn gcd(&self, rhs: &Poly) -> Poly {
        let mut a = self.clone();
        let mut b = rhs.clone();
        while !b.is_zero() {
            let (_, r) = a.divmod(&b);
            a = b;
            b = r;
        }
        if a.is_zero() {
            return a;
        }
        let lead = *a.0.last().expect("non-zero");
        a.scale(lead.inv())
    }

    /// `(base^e) mod f` by square-and-multiply in the quotient ring.
    pub fn powmod(base: &Poly, mut e: u64, f: &Poly) -> Poly {
        let (_, mut b) = base.divmod(f);
        let mut acc = Poly::one();
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(&b).divmod(f).1;
            }
            b = b.mul(&b).divmod(f).1;
            e >>= 1;
        }
        acc
    }

    /// Build `Π (x − r)` for the given roots.
    pub fn from_roots(roots: &[Fe]) -> Poly {
        let mut acc = Poly::one();
        for &r in roots {
            acc = acc.mul(&Poly::linear(r));
        }
        acc
    }

    /// Find all roots of a square-free polynomial whose roots all lie in
    /// GF(p), via Rabin's randomized splitting:
    /// `gcd(f(x), (x+δ)^((p−1)/2) − 1)` separates roots by quadratic
    /// residuosity of `r+δ`.
    pub fn roots(&self, rng_seed: u64) -> Vec<Fe> {
        let mut out = Vec::new();
        let mut stack = vec![self.clone()];
        let mut seed = rng_seed | 1;
        let mut next = move || {
            // xorshift64*; cheap, deterministic splitting offsets.
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            Fe::embed(seed)
        };
        while let Some(f) = stack.pop() {
            match f.degree() {
                None | Some(0) => continue,
                Some(1) => {
                    // Monicize: root = -c0 / c1.
                    out.push(f.0[0].neg().mul(f.0[1].inv()));
                    continue;
                }
                _ => {}
            }
            // Random shift: g = gcd(f, (x+δ)^((p−1)/2) − 1).
            let delta = next();
            let shifted = Poly(vec![delta, Fe::ONE]); // x + δ
            let mut h = Poly::powmod(&shifted, (P - 1) / 2, &f);
            // h - 1
            if h.0.is_empty() {
                h.0.push(Fe::ZERO);
            }
            h.0[0] = h.0[0].sub(Fe::ONE);
            let h = Poly::trim(h.0);
            let g = f.gcd(&h);
            match g.degree() {
                None | Some(0) => {
                    // Unlucky split (or δ hit a root); retry with new δ.
                    stack.push(f);
                }
                Some(d) if d == f.degree().expect("deg ≥ 2") => {
                    stack.push(f);
                }
                _ => {
                    let (q, _r) = f.divmod(&g);
                    stack.push(g);
                    stack.push(q);
                }
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(v: u64) -> Fe {
        Fe::embed(v)
    }

    #[test]
    fn eval_and_roots_of_linear() {
        let f = Poly::linear(fe(42)); // x - 42
        assert_eq!(f.eval(fe(42)), Fe::ZERO);
        assert_ne!(f.eval(fe(43)), Fe::ZERO);
    }

    #[test]
    fn divmod_identity() {
        let a = Poly::from_roots(&[fe(1), fe(2), fe(3), fe(4)]);
        let b = Poly::from_roots(&[fe(2), fe(4)]);
        let (q, r) = a.divmod(&b);
        assert!(r.is_zero());
        assert_eq!(q.mul(&b), a);
    }

    #[test]
    fn gcd_finds_common_roots() {
        let a = Poly::from_roots(&[fe(10), fe(20), fe(30)]);
        let b = Poly::from_roots(&[fe(20), fe(30), fe(40)]);
        let g = a.gcd(&b);
        assert_eq!(g, Poly::from_roots(&[fe(20), fe(30)]));
    }

    #[test]
    fn roots_recovers_all() {
        let roots: Vec<Fe> =
            [7u64, 1_000_003, 0xdead_beef, 0x1234_5678_9abc, 999].iter().map(|&v| fe(v)).collect();
        let f = Poly::from_roots(&roots);
        let mut expect = roots.clone();
        expect.sort();
        assert_eq!(f.roots(0xabc), expect);
    }

    #[test]
    fn roots_of_many() {
        let roots: Vec<Fe> = (0..80u64).map(|i| fe(i * 7919 + 13)).collect();
        let f = Poly::from_roots(&roots);
        let mut expect = roots.clone();
        expect.sort();
        assert_eq!(f.roots(0x5eed), expect);
    }

    #[test]
    fn powmod_small_case() {
        // x^2 mod (x - 3) = 9.
        let f = Poly::linear(fe(3));
        let x = Poly(vec![Fe::ZERO, Fe::ONE]);
        let r = Poly::powmod(&x, 2, &f);
        assert_eq!(r, Poly(vec![fe(9)]));
    }
}
