//! Xtreme Thinblocks (BUIP010), as deployed in Bitcoin Unlimited.
//!
//! The receiver's `getdata` carries a Bloom filter of her mempool txids; the
//! sender replies with the block's 8-byte short IDs plus, in full, every
//! transaction that misses the filter. A filter false positive makes the
//! sender skip a transaction the receiver actually lacks — detected at
//! reconstruction and repaired with one extra round.
//!
//! The paper's deployment comparison (Fig. 12) uses **XThin***: identical
//! except the receiver-filter bytes are excluded to make the one-way cost
//! comparable; [`BaselineReport::total_xthin_star`] implements that view.

use crate::BaselineReport;
use graphene_blockchain::{Block, Mempool, TxId};
use graphene_bloom::{BloomFilter, Membership};
use graphene_hashes::short_id_8;
use graphene_wire::messages::{
    BlockTxnMsg, GetBlockTxnMsg, InvMsg, Message, XthinBlockMsg, XthinGetDataMsg,
};
use std::collections::HashMap;

/// Accounting knobs for the XThin simulation.
#[derive(Clone, Copy, Debug)]
pub struct XthinAccounting {
    /// False-positive rate of the receiver's mempool filter (BU targets a
    /// low rate; 0.001 is representative).
    pub mempool_filter_fpr: f64,
}

impl Default for XthinAccounting {
    fn default() -> Self {
        XthinAccounting { mempool_filter_fpr: 0.001 }
    }
}

/// Relay `block` via XThin to a receiver holding `mempool`.
pub fn xthin_relay(block: &Block, mempool: &Mempool, acct: &XthinAccounting) -> BaselineReport {
    let mut report = BaselineReport { success: false, rounds: 1, ..Default::default() };

    report.total += Message::Inv(InvMsg { block_id: block.id() }).wire_size();

    // Receiver: getdata carrying the mempool filter. XThin's bandwidth
    // grows with the mempool (the paper's key criticism).
    let mut filter = BloomFilter::new(
        mempool.len().max(1),
        acct.mempool_filter_fpr,
        block.id().low_u64() ^ 0x7874,
    );
    let pool_ids: Vec<TxId> = mempool.iter().map(|tx| *tx.id()).collect();
    filter.insert_batch(&pool_ids);
    let getdata = XthinGetDataMsg { block_id: block.id(), mempool_filter: filter };
    report.receiver_filter_bytes = getdata.mempool_filter.serialized_size();
    report.total += Message::XthinGetData(getdata.clone()).wire_size();

    // Sender: 8-byte IDs for everything; full bodies for filter misses
    // (one batch membership sweep over the block).
    let block_ids: Vec<TxId> = block.txns().iter().map(|tx| *tx.id()).collect();
    let hits = getdata.mempool_filter.contains_batch(&block_ids);
    let missing: Vec<_> = block
        .txns()
        .iter()
        .enumerate()
        .filter(|(j, _)| !hits.get(*j))
        .map(|(_, tx)| tx.clone())
        .collect();
    let short_ids: Vec<u64> = block.txns().iter().map(|tx| short_id_8(tx.id())).collect();
    let msg = XthinBlockMsg { header: *block.header(), short_ids, missing };
    report.txn_bytes += msg.missing.iter().map(|t| t.size()).sum::<usize>();
    report.total += Message::XthinBlock(msg.clone()).wire_size();

    // Receiver: resolve short IDs, checking the local mempool first (as
    // deployed clients do) and falling back to delivered bodies. This
    // precedence is what the §6.1 manufactured-collision attack exploits:
    // a mempool transaction whose short ID collides with a block
    // transaction shadows it.
    let mut by_short: HashMap<u64, TxId> = HashMap::new();
    for tx in msg.missing.iter() {
        by_short.insert(short_id_8(tx.id()), *tx.id());
    }
    for tx in mempool.iter() {
        by_short.insert(short_id_8(tx.id()), *tx.id());
    }
    let mut ids: Vec<TxId> = Vec::with_capacity(block.len());
    let mut unresolved: Vec<u64> = Vec::new();
    for (i, short) in msg.short_ids.iter().enumerate() {
        match by_short.get(short) {
            Some(id) => ids.push(*id),
            None => {
                unresolved.push(i as u64);
                ids.push(TxId::ZERO); // placeholder
            }
        }
    }

    // Repair round: filter false positives left gaps.
    if !unresolved.is_empty() {
        report.rounds += 1;
        report.total += Message::GetBlockTxn(GetBlockTxnMsg {
            block_id: block.id(),
            indexes: unresolved.clone(),
        })
        .wire_size();
        let txns: Vec<_> = unresolved.iter().map(|&i| block.txns()[i as usize].clone()).collect();
        report.txn_bytes += txns.iter().map(|t| t.size()).sum::<usize>();
        report.total +=
            Message::BlockTxn(BlockTxnMsg { block_id: block.id(), txns: txns.clone() }).wire_size();
        for (&i, tx) in unresolved.iter().zip(&txns) {
            ids[i as usize] = *tx.id();
        }
    }

    report.success = block.validate_reconstruction(&ids).is_ok();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_blockchain::{Scenario, ScenarioParams};
    use rand::{rngs::StdRng, SeedableRng};

    fn scenario(n: usize, extra: f64, held: f64, seed: u64) -> Scenario {
        let params = ScenarioParams {
            block_size: n,
            extra_mempool_multiple: extra,
            block_fraction_in_mempool: held,
            ..Default::default()
        };
        Scenario::generate(&params, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn full_mempool_single_round() {
        let s = scenario(300, 1.0, 1.0, 1);
        let r = xthin_relay(&s.block, &s.receiver_mempool, &XthinAccounting::default());
        assert!(r.success);
        assert_eq!(r.rounds, 1);
        // 8 bytes per txn dominates the XThin* view.
        assert!(r.total_xthin_star() >= 8 * 300);
        assert!(r.total_xthin_star() < 8 * 300 + 300);
    }

    #[test]
    fn filter_grows_with_mempool() {
        let small = scenario(200, 0.5, 1.0, 2);
        let big = scenario(200, 5.0, 1.0, 3);
        let rs = xthin_relay(&small.block, &small.receiver_mempool, &XthinAccounting::default());
        let rb = xthin_relay(&big.block, &big.receiver_mempool, &XthinAccounting::default());
        assert!(
            rb.receiver_filter_bytes > rs.receiver_filter_bytes * 2,
            "{} vs {}",
            rb.receiver_filter_bytes,
            rs.receiver_filter_bytes
        );
    }

    #[test]
    fn missing_txns_delivered_inline() {
        let s = scenario(250, 1.0, 0.6, 4);
        let r = xthin_relay(&s.block, &s.receiver_mempool, &XthinAccounting::default());
        assert!(r.success);
        // 40% of 250 ≈ 100 txns ship in the first response.
        assert!(r.txn_bytes > 80 * 200, "txn bytes {}", r.txn_bytes);
    }

    #[test]
    fn xthin_star_excludes_filter() {
        let s = scenario(100, 2.0, 1.0, 5);
        let r = xthin_relay(&s.block, &s.receiver_mempool, &XthinAccounting::default());
        assert_eq!(r.total_xthin_star(), r.total_excluding_txns() - r.receiver_filter_bytes);
    }

    #[test]
    fn empty_mempool() {
        let s = scenario(60, 0.0, 1.0, 6);
        let r = xthin_relay(&s.block, &Mempool::new(), &XthinAccounting::default());
        assert!(r.success);
        let body: usize = s.block.txns().iter().map(|t| t.size()).sum();
        assert_eq!(r.txn_bytes, body);
    }
}
