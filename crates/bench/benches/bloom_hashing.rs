//! §6.3 ablation: k-piece index derivation versus classic double hashing.
//!
//! The paper reports the k-piece trick nearly halving receiver processing
//! (17.8 ms → 9.5 ms for an Ethereum mempool pass). The dominant cost in a
//! Graphene receiver is passing the entire mempool through Bloom filter S —
//! this bench measures exactly that pass under both strategies.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use graphene_bloom::{BloomFilter, HashStrategy, Membership};
use graphene_hashes::{sha256, Digest};
use std::hint::black_box;

fn ids(n: usize) -> Vec<Digest> {
    (0..n as u64).map(|i| sha256(&i.to_le_bytes())).collect()
}

fn bench_mempool_pass(c: &mut Criterion) {
    let mempool = ids(10_000);
    let block = &mempool[..2000];
    let mut g = c.benchmark_group("mempool_pass_through_S");
    g.throughput(Throughput::Elements(mempool.len() as u64));
    for (label, strategy) in
        [("double_hashing", HashStrategy::DoubleHashing), ("k_piece", HashStrategy::KPiece)]
    {
        let mut filter = BloomFilter::with_strategy(block.len(), 0.02, 7, strategy);
        for id in block {
            filter.insert(id);
        }
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for id in &mempool {
                    if filter.contains(black_box(id)) {
                        hits += 1;
                    }
                }
                hits
            })
        });
    }
    g.finish();
}

fn bench_insert(c: &mut Criterion) {
    let block = ids(2000);
    let mut g = c.benchmark_group("bloom_insert_block");
    g.throughput(Throughput::Elements(block.len() as u64));
    for (label, strategy) in
        [("double_hashing", HashStrategy::DoubleHashing), ("k_piece", HashStrategy::KPiece)]
    {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut f = BloomFilter::with_strategy(block.len(), 0.02, 7, strategy);
                for id in &block {
                    f.insert(black_box(id));
                }
                f
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mempool_pass, bench_insert);
criterion_main!(benches);
