//! Substrate throughput: SHA-256, SipHash-2-4, Merkle roots.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use graphene_hashes::{merkle_root, sha256, sha256d, siphash24, Digest, SipKey};
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [32usize, 256, 4096] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| b.iter(|| sha256(black_box(&data))));
    }
    g.bench_function("sha256d_32B", |b| {
        let data = [7u8; 32];
        b.iter(|| sha256d(black_box(&data)))
    });
    g.finish();
}

fn bench_siphash(c: &mut Criterion) {
    let mut g = c.benchmark_group("siphash24");
    let key = SipKey::new(1, 2);
    for size in [8usize, 32, 256] {
        let data = vec![0x5au8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| {
            b.iter(|| siphash24(black_box(key), black_box(&data)))
        });
    }
    g.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut g = c.benchmark_group("merkle_root");
    for n in [200usize, 2000] {
        let ids: Vec<Digest> = (0..n as u64).map(|i| sha256(&i.to_le_bytes())).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("{n}_txns"), |b| b.iter(|| merkle_root(black_box(&ids))));
    }
    g.finish();
}

criterion_group!(benches, bench_sha256, bench_siphash, bench_merkle);
criterion_main!(benches);
