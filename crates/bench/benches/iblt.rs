//! IBLT operations: insert, subtract, peel, ping-pong.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use graphene_iblt::{ping_pong_decode, Iblt};
use graphene_iblt_params::params_for;
use std::hint::black_box;

fn filled(j: usize, salt: u64) -> Iblt {
    let p = params_for(j, 240);
    let mut t = Iblt::new(p.c, p.k, salt);
    for v in 0..j as u64 {
        t.insert(v.wrapping_mul(0x9e37_79b9) ^ salt);
    }
    t
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("iblt_insert");
    for j in [50usize, 500, 5000] {
        let p = params_for(j, 240);
        g.throughput(Throughput::Elements(j as u64));
        g.bench_function(format!("j{j}"), |b| {
            b.iter(|| {
                let mut t = Iblt::new(p.c, p.k, 1);
                for v in 0..j as u64 {
                    t.insert(black_box(v));
                }
                t
            })
        });
    }
    g.finish();
}

fn bench_peel(c: &mut Criterion) {
    let mut g = c.benchmark_group("iblt_peel");
    for j in [50usize, 500, 5000] {
        g.throughput(Throughput::Elements(j as u64));
        g.bench_function(format!("j{j}"), |b| {
            b.iter_batched(
                || filled(j, 2),
                |mut t| t.peel().unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_subtract_decode(c: &mut Criterion) {
    // The Graphene receiver hot path: build I′, subtract, peel a small
    // difference out of two large-ish IBLTs.
    let mut g = c.benchmark_group("iblt_subtract_peel_diff50");
    let p = params_for(50, 240);
    let mut a = Iblt::new(p.c, p.k, 3);
    let mut b = Iblt::new(p.c, p.k, 3);
    for v in 0..2000u64 {
        a.insert(v);
        if v >= 50 {
            b.insert(v);
        }
    }
    g.bench_function("n2000", |bch| {
        bch.iter(|| {
            let mut d = black_box(&a).subtract(black_box(&b)).unwrap();
            d.peel().unwrap()
        })
    });
    g.finish();
}

fn bench_pingpong(c: &mut Criterion) {
    let mut g = c.benchmark_group("iblt_pingpong");
    for j in [20usize, 100] {
        g.bench_function(format!("j{j}"), |bch| {
            bch.iter_batched(
                || {
                    let pa = params_for(j, 240);
                    let pb = params_for(j / 2 + 1, 240);
                    let mut a = Iblt::new(pa.c, pa.k, 10);
                    let mut b = Iblt::new(pb.c, pb.k, 20);
                    for v in 0..j as u64 {
                        a.insert(v);
                        b.insert(v);
                    }
                    (a, b)
                },
                |(mut a, mut b)| ping_pong_decode(&mut a, &mut b),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_insert, bench_peel, bench_subtract_decode, bench_pingpong);
criterion_main!(benches);
