//! Algorithm 1 performance: the paper reports the hypergraph formulation
//! being an order of magnitude faster than searching with real IBLTs. This
//! bench measures one decode trial under both representations, plus a full
//! (reduced-trial) search.

use criterion::{criterion_group, criterion_main, Criterion};
use graphene_iblt::Iblt;
use graphene_iblt_params::hypergraph::{decode_trial_with, Scratch};
use graphene_iblt_params::{search_c, FailureRate, SearchConfig};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::hint::black_box;

fn bench_trial_representations(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode_trial");
    for j in [100usize, 1000] {
        let k = 4u32;
        let cells = (j * 3 / 2).div_ceil(4) * 4;
        g.bench_function(format!("hypergraph_j{j}"), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut scratch = Scratch::default();
            b.iter(|| decode_trial_with(black_box(j), k, cells, &mut rng, &mut scratch))
        });
        g.bench_function(format!("real_iblt_j{j}"), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut t = Iblt::new(cells, k, rng.random());
                for v in 0..j as u64 {
                    t.insert(v);
                }
                t.peel().unwrap().complete
            })
        });
    }
    g.finish();
}

fn bench_search(c: &mut Criterion) {
    let cfg = SearchConfig { max_trials: 2000, ..SearchConfig::default() };
    c.bench_function("search_c_j50_rate24", |b| {
        b.iter(|| search_c(black_box(50), 4, FailureRate(1.0 / 24.0), &cfg))
    });
}

criterion_group!(benches, bench_trial_representations, bench_search);
criterion_main!(benches);
