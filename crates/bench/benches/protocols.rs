//! Whole-protocol benchmarks: encode/decode cost for Graphene vs the
//! baselines at the paper's canonical block sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use graphene::config::GrapheneConfig;
use graphene::protocol1;
use graphene::session::relay_block;
use graphene_baselines::xthin::XthinAccounting;
use graphene_baselines::{compact_blocks_relay, full_block_relay, xthin_relay};
use graphene_bench::bench_scenario;
use std::hint::black_box;

fn bench_sender_encode(c: &mut Criterion) {
    let cfg = GrapheneConfig::default();
    let mut g = c.benchmark_group("graphene_sender_encode");
    for n in [200usize, 2000] {
        let s = bench_scenario(n, 1);
        let m = s.receiver_mempool.len() as u64;
        g.bench_function(format!("n{n}"), |b| {
            b.iter(|| protocol1::sender_encode(black_box(&s.block), m, None, &cfg))
        });
    }
    g.finish();
}

#[allow(clippy::result_large_err)]
fn bench_receiver_decode(c: &mut Criterion) {
    let cfg = GrapheneConfig::default();
    let mut g = c.benchmark_group("graphene_receiver_decode");
    for n in [200usize, 2000] {
        let s = bench_scenario(n, 2);
        let (msg, _) =
            protocol1::sender_encode(&s.block, s.receiver_mempool.len() as u64, None, &cfg);
        g.bench_function(format!("n{n}"), |b| {
            b.iter(|| protocol1::receiver_decode(black_box(&msg), &s.receiver_mempool, &cfg))
        });
    }
    g.finish();
}

fn bench_full_relay_comparison(c: &mut Criterion) {
    let cfg = GrapheneConfig::default();
    let s = bench_scenario(2000, 3);
    let mut g = c.benchmark_group("relay_n2000");
    g.bench_function("graphene", |b| {
        b.iter(|| relay_block(black_box(&s.block), None, &s.receiver_mempool, &cfg))
    });
    g.bench_function("compact_blocks", |b| {
        b.iter(|| compact_blocks_relay(black_box(&s.block), &s.receiver_mempool))
    });
    g.bench_function("xthin", |b| {
        b.iter(|| {
            xthin_relay(black_box(&s.block), &s.receiver_mempool, &XthinAccounting::default())
        })
    });
    g.bench_function("full_block", |b| b.iter(|| full_block_relay(black_box(&s.block))));
    g.finish();
}

criterion_group!(benches, bench_sender_encode, bench_receiver_decode, bench_full_relay_comparison);
criterion_main!(benches);
