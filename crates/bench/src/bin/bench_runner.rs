//! Deterministic benchmark runner for the regression gate.
//!
//! Unlike the Criterion benches (adaptive sampling, human-oriented), this
//! binary runs every benchmark for a *fixed* iteration count so the
//! workload is identical from run to run, then emits a small JSON document
//! (`BENCH_*.json`). CI runs it in `--quick` mode on one thread and diffs
//! against the committed baseline with a tolerance band; see
//! `EXPERIMENTS.md` ("Benchmark regression gate") for the policy.
//!
//! ```text
//! bench_runner [--quick] [--out PATH] [--compare BASELINE] [--tolerance X]
//! ```
//!
//! Exit status is nonzero iff `--compare` was given and at least one bench
//! regressed beyond the tolerance band.

use graphene::config::GrapheneConfig;
use graphene::protocol1;
use graphene::session::{relay_block, relay_block_cached};
use graphene::EncodeCache;
use graphene_bench::bench_scenario;
use graphene_bench::reference::{ref_peel_cells, ref_subtract_peel, RefBloom, RefGcs};
use graphene_bench::runner::{regressions, result, time_fn, to_json, BenchResult};
use graphene_bloom::{
    bitvec::BitVec, BloomFilter, GcsBuilder, HashStrategy, Membership, ProbeScratch,
};
use graphene_hashes::{sha256, siphash24, siphash24_x4_u64, Digest, SipKey, SIP_LANES};
use graphene_iblt::{CellStream, DecodeProgress, Iblt, PeelScratch, RatelessDecoder};
use graphene_iblt_params::hypergraph::Scratch;
use graphene_iblt_params::{params_for, search_c_with, FailureRate, SearchConfig};
use graphene_netsim::{Network, PeerId, RelayProtocol, SimTime};
use std::hint::black_box;

fn ids(n: usize, tag: u64) -> Vec<Digest> {
    (0..n as u64).map(|i| sha256(&[i.to_le_bytes(), tag.to_le_bytes()].concat())).collect()
}

/// Per-mode iteration counts: (warmup, timed).
struct Iters {
    quick: bool,
}

impl Iters {
    fn of(&self, full: u64) -> (u64, u64) {
        let timed = if self.quick { (full / 10).max(1) } else { full };
        ((timed / 10).max(1), timed)
    }
}

fn strategy_suffix(strategy: HashStrategy) -> &'static str {
    match strategy {
        HashStrategy::DoubleHashing => "double",
        HashStrategy::KPiece => "kpiece",
    }
}

fn bench_bloom_insert(it: &Iters, strategy: HashStrategy) -> BenchResult {
    let set = ids(2000, 1);
    let (warmup, iters) = it.of(200);
    let ns = time_fn(warmup, iters, || {
        let mut f = BloomFilter::with_strategy(set.len(), 0.02, 9, strategy);
        for id in &set {
            f.insert(id);
        }
        black_box(f.inserted());
    });
    let ref_ns = time_fn(warmup, iters, || {
        let mut f = RefBloom::with_strategy(set.len(), 0.02, 9, strategy);
        for id in &set {
            f.insert(id);
        }
        black_box(f.hash_count());
    });
    result(&format!("bloom_insert_{}_n2000", strategy_suffix(strategy)), iters, ns, Some(ref_ns))
}

fn bench_bloom_contains(it: &Iters, strategy: HashStrategy) -> BenchResult {
    let set = ids(2000, 2);
    let probes = ids(2000, 3);
    let mut f = BloomFilter::with_strategy(set.len(), 0.02, 9, strategy);
    let mut r = RefBloom::with_strategy(set.len(), 0.02, 9, strategy);
    for id in &set {
        f.insert(id);
        r.insert(id);
    }
    let (warmup, iters) = it.of(200);
    let ns = time_fn(warmup, iters, || {
        let mut hits = 0usize;
        for id in set.iter().chain(&probes) {
            hits += f.contains(id) as usize;
        }
        black_box(hits);
    });
    let ref_ns = time_fn(warmup, iters, || {
        let mut hits = 0usize;
        for id in set.iter().chain(&probes) {
            hits += r.contains(id) as usize;
        }
        black_box(hits);
    });
    result(
        &format!("bloom_contains_{}_n4000probes", strategy_suffix(strategy)),
        iters,
        ns,
        Some(ref_ns),
    )
}

fn bench_bloom_contains_batch(it: &Iters) -> BenchResult {
    // The batched membership sweep every receiver filter pass now runs:
    // 2000 probes against an n=2000 filter through `contains_batch_with`
    // (interleaved hashing, reused scratch and mask, divide-free index
    // chains) versus the scalar probe loop those callers used before. The
    // probe mix is the receiver's: half the mempool is in the block, so
    // half the probes pay the full k-probe member path.
    let set = ids(2000, 21);
    let mut probes = ids(1000, 22);
    probes.extend_from_slice(&set[..1000]);
    let mut f = BloomFilter::with_strategy(set.len(), 0.02, 9, HashStrategy::DoubleHashing);
    f.insert_batch(&set);
    let (warmup, iters) = it.of(400);
    let mut scratch = ProbeScratch::default();
    let mut hits = BitVec::new(probes.len());
    let ns = time_fn(warmup, iters, || {
        f.contains_batch_with(&probes, &mut hits, &mut scratch);
        black_box(hits.get(1063));
    });
    let ref_ns = time_fn(warmup, iters, || {
        let mut n = 0usize;
        for id in &probes {
            n += f.contains(id) as usize;
        }
        black_box(n);
    });
    result("bloom_contains_batch_double_n2000", iters, ns, Some(ref_ns))
}

fn bench_siphash_x4(it: &Iters) -> BenchResult {
    // The interleaved SipHash kernel: 4096 single-word messages hashed
    // four lanes at a time versus the scalar dependency chain.
    let vals: Vec<u64> = (0..4096u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).collect();
    let keys = [SipKey::new(3, 0x5350_4c49_5431); SIP_LANES];
    let (warmup, iters) = it.of(2000);
    let ns = time_fn(warmup, iters, || {
        let mut acc = 0u64;
        for chunk in vals.chunks_exact(SIP_LANES) {
            let mut lanes = [0u64; SIP_LANES];
            lanes.copy_from_slice(chunk);
            let h = siphash24_x4_u64(&keys, &lanes);
            acc ^= h.iter().fold(0, |x, v| x ^ v);
        }
        black_box(acc);
    });
    let ref_ns = time_fn(warmup, iters, || {
        let mut acc = 0u64;
        for v in &vals {
            acc ^= siphash24(keys[0], &v.to_le_bytes());
        }
        black_box(acc);
    });
    result("siphash_x4_4096vals", iters, ns, Some(ref_ns))
}

fn bench_iblt_peel(it: &Iters) -> BenchResult {
    // The receiver decode hot path: a 50-item difference between two
    // 2000-item tables sized by the paper's parameter search.
    let p = params_for(50, 240);
    let mut sender = Iblt::new(p.c, p.k, 3);
    let mut local = Iblt::new(p.c, p.k, 3);
    for v in 0..2000u64 {
        sender.insert(v);
        if v >= 50 {
            local.insert(v);
        }
    }
    let (warmup, iters) = it.of(500);
    let mut diff = Iblt::new(p.c, p.k, 3);
    let mut scratch = PeelScratch::new();
    let ns = time_fn(warmup, iters, || {
        sender.subtract_into(&local, &mut diff).unwrap();
        black_box(diff.peel_in_place(&mut scratch).unwrap().len());
    });
    // Reference: allocate the difference (`subtract`), copy it again for the
    // peel (the old `peel_clone` pattern), per-value index Vecs + HashSet.
    let ref_ns = time_fn(warmup, iters, || {
        black_box(ref_subtract_peel(&sender, &local).unwrap().len());
    });
    result("iblt_subtract_peel_j50", iters, ns, Some(ref_ns))
}

fn bench_iblt_peel_partitioned(it: &Iters) -> BenchResult {
    // The partitioned peel against the element-at-a-time reference on the
    // same j=50 difference as `iblt_subtract_peel_j50`. Both sides pay one
    // `subtract_into` per iteration; the reference additionally copies the
    // cell array, exactly as the old owned-cells peel did.
    let p = params_for(50, 240);
    let mut sender = Iblt::new(p.c, p.k, 5);
    let mut local = Iblt::new(p.c, p.k, 5);
    for v in 0..2000u64 {
        sender.insert(v);
        if v >= 50 {
            local.insert(v);
        }
    }
    let (warmup, iters) = it.of(500);
    let mut diff = Iblt::new(p.c, p.k, 5);
    let mut scratch = PeelScratch::new();
    let ns = time_fn(warmup, iters, || {
        sender.subtract_into(&local, &mut diff).unwrap();
        black_box(diff.peel_partitioned(&mut scratch).unwrap().len());
    });
    let ref_ns = time_fn(warmup, iters, || {
        sender.subtract_into(&local, &mut diff).unwrap();
        let cells = diff.cells().to_vec();
        black_box(ref_peel_cells(cells, diff.hash_count(), diff.salt()).unwrap().len());
    });
    result("iblt_peel_partitioned_j50", iters, ns, Some(ref_ns))
}

/// Strata-estimator assignment, mirroring `graphene-baselines`' Difference
/// Digest: stratum = trailing zeros of an independent hash.
fn stratum_of(salt: u64, value: u64, levels: usize) -> usize {
    let h = siphash24(SipKey::new(salt, 0x5354_5241), &value.to_le_bytes());
    (h.trailing_zeros() as usize).min(levels - 1)
}

fn build_strata(values: impl Iterator<Item = u64>, levels: usize, salt: u64) -> Vec<Iblt> {
    let mut strata: Vec<Iblt> =
        (0..levels).map(|i| Iblt::new(80, 4, salt ^ ((i as u64) << 8))).collect();
    for v in values {
        let s = stratum_of(salt, v, levels);
        strata[s].insert(v);
    }
    strata
}

fn bench_strata_estimate(it: &Iters) -> BenchResult {
    // The Difference Digest estimator decode loop: 12 strata of 80 cells,
    // one subtract + peel each. The old code allocated a fresh difference
    // table and peel scratch per stratum (`subtract` + allocating peel);
    // the new one reuses a single table and `PeelScratch` across all levels.
    let levels = 12usize;
    let salt = 77u64;
    let mine = build_strata((0..2000u64).map(|v| v.wrapping_mul(0x9e37_79b9)), levels, salt);
    let theirs = build_strata((100..2100u64).map(|v| v.wrapping_mul(0x9e37_79b9)), levels, salt);
    let (warmup, iters) = it.of(500);
    let mut diff = Iblt::new(80, 4, salt);
    let mut scratch = PeelScratch::new();
    let ns = time_fn(warmup, iters, || {
        let mut count = 0usize;
        for i in (0..levels).rev() {
            mine[i].subtract_into(&theirs[i], &mut diff).unwrap();
            match diff.peel_in_place(&mut scratch) {
                Ok(r) if r.complete => count += r.len(),
                _ => {
                    count = count.max(1) << (i + 1);
                    break;
                }
            }
        }
        black_box(count);
    });
    let ref_ns = time_fn(warmup, iters, || {
        let mut count = 0usize;
        for i in (0..levels).rev() {
            match ref_subtract_peel(&mine[i], &theirs[i]) {
                Ok(r) if r.complete => count += r.len(),
                _ => {
                    count = count.max(1) << (i + 1);
                    break;
                }
            }
        }
        black_box(count);
    });
    result("iblt_strata_estimate_12x80", iters, ns, Some(ref_ns))
}

fn bench_gcs_contains(it: &Iters) -> BenchResult {
    let set = ids(1000, 4);
    let probes = ids(200, 5);
    let mut b = GcsBuilder::new(set.len(), 0.01, 6);
    for id in &set {
        b.insert(id);
    }
    let g = b.build();
    let r = RefGcs::build(&set, set.len(), 0.01, 6);
    let (warmup, iters) = it.of(500);
    let ns = time_fn(warmup, iters, || {
        let mut hits = 0usize;
        for id in &probes {
            hits += g.contains(id) as usize;
        }
        black_box(hits);
    });
    // The reference decodes the whole stream per query — run far fewer
    // iterations, ns/iter is what matters.
    let (ref_warmup, ref_iters) = it.of(20);
    let ref_ns = time_fn(ref_warmup, ref_iters, || {
        let mut hits = 0usize;
        for id in &probes {
            hits += r.contains(id) as usize;
        }
        black_box(hits);
    });
    result("gcs_contains_200probes_n1000", iters, ns, Some(ref_ns))
}

fn bench_param_search(it: &Iters) -> BenchResult {
    let cfg = SearchConfig { max_trials: 2000, ..SearchConfig::default() };
    let (warmup, iters) = it.of(10);
    let mut scratch = Scratch::default();
    let ns = time_fn(warmup, iters, || {
        black_box(search_c_with(50, 4, FailureRate(1.0 / 24.0), &cfg, &mut scratch));
    });
    result("param_search_j50_rate24", iters, ns, None)
}

fn bench_protocol1(it: &Iters) -> BenchResult {
    let cfg = GrapheneConfig::default();
    let s = bench_scenario(500, 11);
    let m = s.receiver_mempool.len() as u64;
    let (warmup, iters) = it.of(100);
    let ns = time_fn(warmup, iters, || {
        let (msg, _) = protocol1::sender_encode(&s.block, m, None, &cfg);
        black_box(protocol1::receiver_decode(&msg, &s.receiver_mempool, &cfg).is_ok());
    });
    result("protocol1_roundtrip_n500", iters, ns, None)
}

fn bench_protocol1_receiver(it: &Iters) -> BenchResult {
    // The receiver-side pass in isolation: one pre-encoded Protocol 1
    // message decoded against a ~2000-txn mempool. The batched Bloom
    // sweep over the whole pool dominates, so this is the end-to-end view
    // of `bloom_contains_batch_double_n2000`.
    let cfg = GrapheneConfig::default();
    let s = bench_scenario(1000, 19);
    let m = s.receiver_mempool.len() as u64;
    let (msg, _) = protocol1::sender_encode(&s.block, m, None, &cfg);
    let (warmup, iters) = it.of(200);
    let ns = time_fn(warmup, iters, || {
        black_box(protocol1::receiver_decode(&msg, &s.receiver_mempool, &cfg).is_ok());
    });
    result("protocol1_receiver_pass_m2000", iters, ns, None)
}

fn bench_relay_block(it: &Iters) -> BenchResult {
    // Full session: Protocol 1, Protocol 2 fallback, ordering recovery.
    let cfg = GrapheneConfig::default();
    let s = bench_scenario(500, 12);
    let (warmup, iters) = it.of(100);
    let ns = time_fn(warmup, iters, || {
        black_box(relay_block(&s.block, None, &s.receiver_mempool, &cfg).outcome.is_success());
    });
    result("relay_block_n500", iters, ns, None)
}

fn bench_relay_fanout(it: &Iters) -> BenchResult {
    // Encode-once fan-out: one 150-txn block relayed to 64 receivers in
    // four mempool-size classes. The measured path serves canonical
    // frames from a per-iteration relay cache; the reference performs the
    // same canonical encode fresh for every receiver.
    let cfg = GrapheneConfig::default();
    let s = bench_scenario(150, 14);
    let mut pools = Vec::new();
    for class in 0..4usize {
        let mut pool = s.receiver_mempool.clone();
        for (j, id) in ids(90 * class, 15).iter().enumerate() {
            pool.insert(graphene_blockchain::Transaction::new(
                [&id.0[..], &(j as u64).to_le_bytes()].concat(),
            ));
        }
        pools.push(pool);
    }
    let (warmup, iters) = it.of(10);
    let ns = time_fn(warmup, iters, || {
        let cache = EncodeCache::new(1 << 20);
        let mut ok = 0usize;
        for i in 0..64 {
            let r = relay_block_cached(&s.block, None, &pools[i % 4], &cfg, Some(&cache));
            ok += r.outcome.is_success() as usize;
        }
        assert_eq!(ok, 64);
        black_box(cache.stats().hits);
    });
    let ref_ns = time_fn(warmup, iters, || {
        let mut ok = 0usize;
        for i in 0..64 {
            let r = relay_block_cached(&s.block, None, &pools[i % 4], &cfg, None);
            ok += r.outcome.is_success() as usize;
        }
        black_box(ok);
    });
    result("relay_fanout_64rx_n150", iters, ns, Some(ref_ns))
}

fn bench_rateless_encode(it: &Iters) -> BenchResult {
    // The stateless server path: rebuild the coded-cell stream over a
    // 2000-item set and emit one 512-cell window. Every `GetMoreCells`
    // pays this (plus a skip), so the heap-driven generator is hot.
    let items: Vec<u64> = (0..2000u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1).collect();
    let (warmup, iters) = it.of(200);
    let ns = time_fn(warmup, iters, || {
        let mut s = CellStream::new(7, items.iter().copied());
        black_box(s.cells(512).len());
    });
    result("rateless_encode_512cells_n2000", iters, ns, None)
}

fn bench_rateless_decode(it: &Iters) -> BenchResult {
    // Receiver-side incremental peel of a 50-item difference against 2000
    // candidates — the same difference shape as `iblt_peel_d50`, decoded
    // from a pre-generated cell prefix so only the decoder is timed.
    let salt = 9u64;
    let remote: Vec<u64> =
        (0..2000u64).map(|i| i.wrapping_mul(0xa076_1d64_78bd_642f) | 1).collect();
    let local: Vec<u64> = remote[50..].to_vec();
    // Dry-run to find the exact decodable prefix length.
    let mut probe = RatelessDecoder::new(salt, local.iter().copied());
    let mut stream = CellStream::new(salt, remote.iter().copied());
    let mut need = 150usize; // ~3×d first window
    loop {
        let start = stream.emitted();
        let cells = stream.cells(need);
        match probe.push_cells(start, &cells).expect("honest stream") {
            DecodeProgress::Decoded(_) => break,
            DecodeProgress::NeedMore(n) => need = n,
        }
    }
    let total = stream.emitted() as usize;
    let cells = CellStream::new(salt, remote.iter().copied()).cells(total);
    let (warmup, iters) = it.of(200);
    let ns = time_fn(warmup, iters, || {
        let mut d = RatelessDecoder::new(salt, local.iter().copied());
        let r = d.push_cells(0, &cells).expect("honest stream");
        black_box(matches!(r, DecodeProgress::Decoded(_)));
    });
    result("rateless_decode_d50_n2000", iters, ns, None)
}

fn bench_netsim_relay(it: &Iters) -> BenchResult {
    // Block relay across an 8-peer random topology: every iteration rebuilds
    // the network (same seed — bit-identical event stream) and floods one
    // 150-txn block to all peers.
    let s = bench_scenario(150, 13);
    let (warmup, iters) = it.of(20);
    let ns = time_fn(warmup, iters, || {
        let mut net = Network::new(8, RelayProtocol::Graphene(GrapheneConfig::default()), 99);
        net.connect_random(3);
        for i in 0..8 {
            net.peer_mut(PeerId(i)).mempool = s.receiver_mempool.clone();
        }
        let r = net.propagate(PeerId(0), s.block.clone(), SimTime::from_millis(60_000));
        assert_eq!(r.peers_reached, 8, "relay incomplete: {r:?}");
        black_box(r.total_bytes);
    });
    result("netsim_relay_8peers_n150", iters, ns, None)
}

fn bench_netsim_adaptive(it: &Iters) -> BenchResult {
    // The adaptive failure detector under fire: an 8-peer topology where
    // one relay tarpits every response for 1.4 s. Each iteration pays the
    // full detector stack — RTT tracking, RTO timers, hedged fetches and
    // circuit-breaker bookkeeping — on top of the relay itself.
    use graphene_netsim::{AdversaryConfig, Behavior};
    let s = bench_scenario(150, 13);
    let (warmup, iters) = it.of(20);
    let ns = time_fn(warmup, iters, || {
        let mut net = Network::new(8, RelayProtocol::Graphene(GrapheneConfig::default()), 99);
        net.connect_random(3);
        for i in 0..8 {
            net.peer_mut(PeerId(i)).mempool = s.receiver_mempool.clone();
        }
        net.peer_mut(PeerId(1)).behavior = Behavior::Adversarial(AdversaryConfig {
            tarpit: 1.0,
            tarpit_hold: SimTime::from_millis(1_400),
            seed: 7,
            ..Default::default()
        });
        net.enable_adaptive();
        let r = net.propagate(PeerId(0), s.block.clone(), SimTime::from_millis(120_000));
        assert_eq!(r.peers_reached, 8, "relay incomplete: {r:?}");
        black_box(r.total_bytes);
    });
    result("netsim_adaptive_tarpit_8peers_n150", iters, ns, None)
}

fn bench_event_queue(it: &Iters) -> BenchResult {
    // The timing wheel against the retained heap reference at 100k
    // pending events. The schedule mixes every routing tier — sub-slot,
    // near wheel, overflow wheel, far list — like a propagation run does;
    // each iteration pushes all 100k then drains to empty.
    use graphene_netsim::event::{Event, EventQueue, ReferenceQueue};
    const N: u64 = 100_000;
    let mix = |i: u64| -> u64 {
        // splitmix-style spread over ~130 s of simulated time (µs).
        let mut x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 31;
        x % 130_000_000
    };
    let (warmup, iters) = it.of(20);
    let ns = time_fn(warmup, iters, || {
        let mut q = EventQueue::new();
        for i in 0..N {
            q.schedule(SimTime(mix(i)), Event::Drain { peer: PeerId((i % 1000) as usize) });
        }
        let mut last = SimTime::ZERO;
        while let Some((at, _)) = q.pop() {
            last = at;
        }
        black_box(last);
    });
    let ref_ns = time_fn(warmup, iters, || {
        let mut q = ReferenceQueue::new();
        for i in 0..N {
            q.schedule(SimTime(mix(i)), Event::Drain { peer: PeerId((i % 1000) as usize) });
        }
        let mut last = SimTime::ZERO;
        while let Some((at, _)) = q.pop() {
            last = at;
        }
        black_box(last);
    });
    result("event_queue_push_pop_100k", iters, ns, Some(ref_ns))
}

fn bench_netsim_propagation(it: &Iters) -> BenchResult {
    // The internet-scale configuration at bench size: 1000 peers on a
    // Barabási–Albert overlay with geographic latency classes and
    // adaptive gossip fan-out, relaying one 30-txn Graphene block.
    use graphene_netsim::{barabasi_albert, FanoutPolicy};
    let s = bench_scenario(30, 17);
    let edges = barabasi_albert(1000, 4, 23);
    let (warmup, iters) = it.of(5);
    let ns = time_fn(warmup, iters, || {
        let mut net = Network::new(1000, RelayProtocol::Graphene(GrapheneConfig::default()), 99);
        for i in 0..1000 {
            net.peer_mut(PeerId(i)).mempool = s.receiver_mempool.clone();
        }
        net.enable_geographic_links(7);
        net.set_fanout(FanoutPolicy::Adaptive { initial: 4 });
        net.connect_edges(&edges);
        let r = net.propagate(PeerId(0), s.block.clone(), SimTime::from_millis(600_000));
        assert_eq!(r.peers_reached, 1000, "relay incomplete: {r:?}");
        black_box(r.total_bytes);
    });
    result("netsim_propagation_1k_peers", iters, ns, None)
}

fn main() {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut compare: Option<String> = None;
    let mut tolerance = 3.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = Some(args.next().expect("--out needs a path")),
            "--compare" => compare = Some(args.next().expect("--compare needs a path")),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .expect("--tolerance needs a number")
                    .parse()
                    .expect("tolerance must be a float")
            }
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: bench_runner [--quick] [--out PATH] [--compare BASELINE] \
                     [--tolerance X]"
                );
                std::process::exit(2);
            }
        }
    }

    let it = Iters { quick };
    let benches = [
        bench_bloom_insert(&it, HashStrategy::DoubleHashing),
        bench_bloom_insert(&it, HashStrategy::KPiece),
        bench_bloom_contains(&it, HashStrategy::DoubleHashing),
        bench_bloom_contains(&it, HashStrategy::KPiece),
        bench_bloom_contains_batch(&it),
        bench_siphash_x4(&it),
        bench_iblt_peel(&it),
        bench_iblt_peel_partitioned(&it),
        bench_strata_estimate(&it),
        bench_gcs_contains(&it),
        bench_param_search(&it),
        bench_protocol1(&it),
        bench_protocol1_receiver(&it),
        bench_relay_block(&it),
        bench_relay_fanout(&it),
        bench_rateless_encode(&it),
        bench_rateless_decode(&it),
        bench_netsim_relay(&it),
        bench_netsim_adaptive(&it),
        bench_event_queue(&it),
        bench_netsim_propagation(&it),
    ];
    for b in &benches {
        let speedup = match b.speedup_vs_reference {
            Some(v) => format!("  ({v:.2}x vs reference)"),
            None => String::new(),
        };
        eprintln!(
            "{:32} {:>12.1} ns/iter {:>14.1} ops/s{}",
            b.name, b.ns_per_iter, b.ops_per_sec, speedup
        );
    }

    let json = to_json(if quick { "quick" } else { "full" }, 1, &benches);
    print!("{json}");
    if let Some(path) = &out {
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }

    if let Some(path) = &compare {
        let baseline =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let bad = regressions(&benches, &baseline, tolerance);
        if !bad.is_empty() {
            eprintln!("PERFORMANCE REGRESSIONS (tolerance ×{tolerance}):");
            for line in &bad {
                eprintln!("  {line}");
            }
            std::process::exit(1);
        }
        eprintln!("no regressions vs {path} (tolerance ×{tolerance})");
    }
}
