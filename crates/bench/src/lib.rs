//! Shared benchmark infrastructure: Criterion helpers, the deterministic
//! regression-gate runner, and pre-optimization reference implementations.

#![forbid(unsafe_code)]

pub mod reference;
pub mod runner;

use graphene_blockchain::{Scenario, ScenarioParams, TxProfile};
use rand::{rngs::StdRng, SeedableRng};

/// A standard benchmark scenario: block of `n`, mempool superset with `n`
/// extras, 120-byte transactions.
pub fn bench_scenario(n: usize, seed: u64) -> Scenario {
    let params = ScenarioParams {
        block_size: n,
        extra_mempool_multiple: 1.0,
        block_fraction_in_mempool: 1.0,
        profile: TxProfile::Fixed(120),
        ..Default::default()
    };
    Scenario::generate(&params, &mut StdRng::seed_from_u64(seed))
}
