//! Pre-optimization reference implementations of the hot paths.
//!
//! These reproduce, line for line, the algorithms the production crates used
//! *before* the zero-allocation pass: per-insert index `Vec`s and a second
//! modulo in the Bloom filter, per-value scratch `Vec` + fresh `HashSet` and
//! clone-based subtraction in the IBLT peel, and a full Golomb-stream decode
//! on every GCS query. They exist for two reasons:
//!
//! 1. **Equivalence** — `tests/equivalence.rs` asserts the optimized paths
//!    return bit-identical bits/bytes/decodings against these references.
//! 2. **Measurement** — the `bench_runner` binary times optimized vs
//!    reference to report `speedup_vs_reference` in `BENCH_*.json`.
//!
//! Nothing here is reachable from production code.

use graphene_bloom::{bitvec::BitVec, bloom_bits, optimal_hash_count, HashStrategy};
use graphene_hashes::{siphash24, Digest, SipKey};
use graphene_iblt::{DecodeError, DecodeResult, Iblt};
use std::collections::HashSet;

// ---------------------------------------------------------------------------
// Bloom filter (old shape: collect k indexes into a Vec, reduce mod m twice)
// ---------------------------------------------------------------------------

/// The pre-optimization Bloom filter: identical geometry and index
/// derivation to `graphene_bloom::BloomFilter`, but computing every probe
/// through an intermediate `Vec<usize>` exactly as the old `indexes()`
/// method did.
pub struct RefBloom {
    bits: BitVec,
    k: u32,
    salt: u64,
    strategy: HashStrategy,
}

impl RefBloom {
    /// Mirror of `BloomFilter::with_strategy` (same sizing formulas, same
    /// k-piece fallback rule).
    pub fn with_strategy(n: usize, fpr: f64, salt: u64, strategy: HashStrategy) -> Self {
        let nbits = bloom_bits(n, fpr);
        let k = optimal_hash_count(nbits, n);
        let strategy = match strategy {
            HashStrategy::KPiece if k <= 8 => HashStrategy::KPiece,
            _ => HashStrategy::DoubleHashing,
        };
        RefBloom { bits: BitVec::new(nbits), k, salt, strategy }
    }

    /// The old per-call index computation: allocate, collect, reduce twice.
    fn indexes(&self, id: &Digest) -> Vec<usize> {
        let m = self.bits.len() as u64;
        match self.strategy {
            HashStrategy::DoubleHashing => {
                let h1 = siphash24(SipKey::new(self.salt, 0x5350_4c49_5431), &id.0);
                let h2 = siphash24(SipKey::new(self.salt, 0x5350_4c49_5432), &id.0) | 1;
                (0..self.k)
                    .map(|i| {
                        (h1.wrapping_add((i as u64).wrapping_mul(h2)) % m) as usize
                            % self.bits.len()
                    })
                    .collect()
            }
            HashStrategy::KPiece => {
                // The old code computed the (unused) double-hash pair here
                // too; it cannot affect the produced indexes, so the
                // reference skips straight to the pieces.
                (0..self.k)
                    .map(|i| {
                        let off = (i as usize) * 4;
                        let piece =
                            u32::from_le_bytes(id.0[off..off + 4].try_into().expect("4 bytes"));
                        let mixed = (piece as u64 ^ self.salt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                        (mixed % m) as usize % self.bits.len()
                    })
                    .collect()
            }
        }
    }

    /// Insert through the allocating index path.
    pub fn insert(&mut self, id: &Digest) {
        if self.bits.is_empty() {
            return;
        }
        for idx in self.indexes(id) {
            self.bits.set(idx);
        }
    }

    /// Query through the allocating index path.
    pub fn contains(&self, id: &Digest) -> bool {
        if self.bits.is_empty() {
            return true;
        }
        self.indexes(id).into_iter().all(|idx| self.bits.get(idx))
    }

    /// The element-at-a-time "batch" insert: a plain loop over the scalar
    /// path. The optimized `BloomFilter::insert_batch` must leave the bit
    /// array byte-identical to this.
    pub fn insert_batch(&mut self, ids: &[Digest]) {
        for id in ids {
            self.insert(id);
        }
    }

    /// The element-at-a-time "batch" query: one scalar probe per id, in
    /// order. The optimized `contains_batch` mask must agree bit for bit.
    pub fn contains_batch(&self, ids: &[Digest]) -> Vec<bool> {
        ids.iter().map(|id| self.contains(id)).collect()
    }

    /// The packed bit array, for byte-level comparison with the optimized
    /// filter's `bit_vec().to_bytes()`.
    pub fn bit_bytes(&self) -> Vec<u8> {
        self.bits.to_bytes()
    }

    /// Number of hash functions chosen by the sizing formulas.
    pub fn hash_count(&self) -> u32 {
        self.k
    }
}

// ---------------------------------------------------------------------------
// IBLT peel (old shape: fresh HashSet per peel, per-value index Vec,
// clone-based subtraction)
// ---------------------------------------------------------------------------

/// Cell index derivation, identical to the crate-private
/// `graphene_iblt::table::cell_index` (documented in `Iblt::to_bytes` /
/// DESIGN notes): partition `i` spans cells `[i·c/k, (i+1)·c/k)`.
fn ref_cell_index(salt: u64, part: usize, i: u32, value: u64) -> usize {
    let h = siphash24(SipKey::new(salt, 0x4942_4c54_0000 + i as u64), &value.to_le_bytes());
    i as usize * part + (h % part as u64) as usize
}

/// Mirror of `graphene_iblt::cell::check_hash`.
fn ref_check_hash(salt: u64, value: u64) -> u32 {
    siphash24(SipKey::new(salt, 0x4942_4c54_4348), &value.to_le_bytes()) as u32
}

/// The pre-optimization peel over an owned cell array: a freshly allocated
/// `HashSet` of decoded values and a new `Vec` of the value's `k` cell
/// indexes per removal — the exact worklist order of the optimized
/// `peel_in_place`, so results (including element order) must match bit
/// for bit.
pub fn ref_peel_cells(
    mut cells: Vec<graphene_iblt::Cell>,
    k: u32,
    salt: u64,
) -> Result<DecodeResult, DecodeError> {
    ref_peel_cells_in(&mut cells, k, salt)
}

/// [`ref_peel_cells`], but also returning the partially peeled cell array,
/// so equivalence tests can compare the optimized peel's *remainder* (the
/// 2-core left behind by an incomplete decode) cell for cell.
pub fn ref_peel_cells_with_remainder(
    mut cells: Vec<graphene_iblt::Cell>,
    k: u32,
    salt: u64,
) -> (Result<DecodeResult, DecodeError>, Vec<graphene_iblt::Cell>) {
    let result = ref_peel_cells_in(&mut cells, k, salt);
    (result, cells)
}

fn ref_peel_cells_in(
    cells: &mut [graphene_iblt::Cell],
    k: u32,
    salt: u64,
) -> Result<DecodeResult, DecodeError> {
    let part = cells.len() / k as usize;
    let mut result = DecodeResult::default();
    let mut seen: HashSet<u64> = HashSet::new();
    let mut queue: Vec<usize> = (0..cells.len()).filter(|&i| cells[i].is_pure(salt)).collect();
    while let Some(idx) = queue.pop() {
        let cell = cells[idx];
        if !cell.is_pure(salt) {
            continue;
        }
        let value = cell.key_sum;
        let sign = cell.count;
        if !seen.insert(value) {
            return Err(DecodeError::Malformed { value });
        }
        if sign == 1 {
            result.only_left.push(value);
        } else {
            result.only_right.push(value);
        }
        let check = ref_check_hash(salt, value);
        let indexes: Vec<usize> = (0..k).map(|i| ref_cell_index(salt, part, i, value)).collect();
        for i in indexes {
            cells[i].apply(value, check, -sign);
            if cells[i].is_pure(salt) {
                queue.push(i);
            }
        }
    }
    result.complete = cells.iter().all(|c| c.is_empty_cell());
    Ok(result)
}

/// Old `peel_clone`: copy the full cell array, then peel the copy with the
/// allocating algorithm.
pub fn ref_peel(table: &Iblt) -> Result<DecodeResult, DecodeError> {
    ref_peel_cells(table.cells().to_vec(), table.hash_count(), table.salt())
}

/// The old receiver decode step: allocate the difference table cell-wise
/// (what `subtract` did), then peel it in place with the allocating
/// algorithm. This is what every netsim/protocol decode attempt paid before
/// `subtract_from`/`subtract_into` + `peel_in_place`.
pub fn ref_subtract_peel(sender: &Iblt, local: &Iblt) -> Result<DecodeResult, DecodeError> {
    if sender.cell_count() != local.cell_count()
        || sender.hash_count() != local.hash_count()
        || sender.salt() != local.salt()
    {
        return Err(DecodeError::GeometryMismatch {
            left: (sender.cell_count(), sender.hash_count(), sender.salt()),
            right: (local.cell_count(), local.hash_count(), local.salt()),
        });
    }
    let cells: Vec<graphene_iblt::Cell> =
        sender.cells().iter().zip(local.cells()).map(|(a, b)| a.subtract(b)).collect();
    ref_peel_cells(cells, sender.hash_count(), sender.salt())
}

// ---------------------------------------------------------------------------
// GCS (old shape: decode the whole Golomb-Rice stream on every query)
// ---------------------------------------------------------------------------

/// Pre-optimization Golomb-coded set: same construction as
/// `graphene_bloom::Gcs`, but `contains` re-decodes the entire stream per
/// query (the behavior before the decoded-values cache).
pub struct RefGcs {
    data: Vec<u8>,
    count: usize,
    n: usize,
    fpr: f64,
    salt: u64,
}

fn gcs_range(n: usize, fpr: f64) -> u64 {
    ((n as f64 / fpr.clamp(1e-12, 1.0)).ceil() as u64).max(1)
}

fn gcs_rice_parameter(fpr: f64) -> u32 {
    (1.0 / fpr.clamp(1e-12, 0.999)).log2().round().max(0.0) as u32
}

fn gcs_hash_to_range(salt: u64, id: &Digest, range: u64) -> u64 {
    let h = siphash24(SipKey::new(salt, 0x4743_5348), &id.0);
    ((h as u128 * range as u128) >> 64) as u64
}

impl RefGcs {
    /// Build from a set of txids (mirror of `GcsBuilder::insert` + `build`).
    pub fn build(ids: &[Digest], n: usize, fpr: f64, salt: u64) -> Self {
        let n = n.max(1);
        let range = gcs_range(n, fpr);
        let mut hashed: Vec<u64> =
            ids.iter().map(|id| gcs_hash_to_range(salt, id, range)).collect();
        hashed.sort_unstable();
        hashed.dedup();
        let p = gcs_rice_parameter(fpr);
        let mut bytes = Vec::new();
        let mut used = 0u32;
        let push_bit = |bytes: &mut Vec<u8>, used: &mut u32, bit: bool| {
            if *used == 0 {
                bytes.push(0);
            }
            if bit {
                let last = bytes.last_mut().expect("pushed above");
                *last |= 1 << (7 - *used);
            }
            *used = (*used + 1) % 8;
        };
        let mut prev = 0u64;
        for &v in &hashed {
            let delta = v - prev;
            for _ in 0..(delta >> p) {
                push_bit(&mut bytes, &mut used, true);
            }
            push_bit(&mut bytes, &mut used, false);
            for i in (0..p).rev() {
                push_bit(&mut bytes, &mut used, (delta >> i) & 1 == 1);
            }
            prev = v;
        }
        RefGcs { data: bytes, count: hashed.len(), n, fpr, salt }
    }

    /// Decode the full sorted value list (linear scan of the bit stream).
    fn decode(&self) -> Vec<u64> {
        let p = gcs_rice_parameter(self.fpr);
        let mut pos = 0usize;
        let read_bit = |pos: &mut usize| -> Option<bool> {
            let byte = *self.data.get(*pos / 8)?;
            let bit = (byte >> (7 - (*pos % 8))) & 1 == 1;
            *pos += 1;
            Some(bit)
        };
        let mut out = Vec::with_capacity(self.count);
        let mut prev = 0u64;
        for _ in 0..self.count {
            let mut q = 0u64;
            loop {
                match read_bit(&mut pos) {
                    Some(true) => q += 1,
                    Some(false) => break,
                    None => return out,
                }
                if q > 1 << 40 {
                    return out;
                }
            }
            let mut rem = 0u64;
            for _ in 0..p {
                match read_bit(&mut pos) {
                    Some(b) => rem = (rem << 1) | b as u64,
                    None => return out,
                }
            }
            prev += (q << p) | rem;
            out.push(prev);
        }
        out
    }

    /// The old query path: decode everything, then binary search.
    pub fn contains(&self, id: &Digest) -> bool {
        let target = gcs_hash_to_range(self.salt, id, gcs_range(self.n, self.fpr));
        self.decode().binary_search(&target).is_ok()
    }

    /// Element-at-a-time "batch" query: one full-stream decode + search per
    /// id, in order. `Gcs::contains_batch` must return the same answers.
    pub fn contains_batch(&self, ids: &[Digest]) -> Vec<bool> {
        ids.iter().map(|id| self.contains(id)).collect()
    }

    /// The Golomb–Rice byte stream, for comparison with `Gcs::data()`.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Number of encoded (distinct) members.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_bloom::{GcsBuilder, Membership};
    use graphene_hashes::sha256;

    fn ids(n: usize, tag: u64) -> Vec<Digest> {
        (0..n as u64).map(|i| sha256(&[i.to_le_bytes(), tag.to_le_bytes()].concat())).collect()
    }

    #[test]
    fn ref_gcs_matches_production_bytes() {
        let set = ids(300, 7);
        let r = RefGcs::build(&set, set.len(), 0.01, 5);
        let mut b = GcsBuilder::new(set.len(), 0.01, 5);
        for id in &set {
            b.insert(id);
        }
        let g = b.build();
        assert_eq!(r.data(), g.data());
        assert_eq!(r.len(), g.len());
        for id in &set {
            assert!(r.contains(id) && g.contains(id));
        }
    }

    #[test]
    fn ref_peel_decodes_a_simple_difference() {
        let mut a = Iblt::new(30, 3, 9);
        let mut b = Iblt::new(30, 3, 9);
        for v in [1u64, 2, 3, 4, 5] {
            a.insert(v);
        }
        for v in [4u64, 5, 6] {
            b.insert(v);
        }
        let mut r = ref_subtract_peel(&a, &b).unwrap();
        assert!(r.complete);
        r.only_left.sort();
        r.only_right.sort();
        assert_eq!(r.only_left, vec![1, 2, 3]);
        assert_eq!(r.only_right, vec![6]);
    }
}
