//! Deterministic fixed-iteration benchmark harness.
//!
//! Criterion is great for interactive exploration but its adaptive sampling
//! makes CI runs slow and its output awkward to diff. This module is the
//! regression-gate half: every bench runs a *fixed* number of iterations
//! (so the measured workload is identical run to run), results are written
//! as a small JSON document (`BENCH_*.json`), and a committed baseline can
//! be compared against with a tolerance band.
//!
//! The JSON is handwritten on purpose — the schema is five fields and the
//! workspace has no serde.

use std::fmt::Write as _;
use std::time::Instant;

/// One measured benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Stable identifier, used to match baseline entries.
    pub name: String,
    /// Timed iterations (after warmup).
    pub iters: u64,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations per second (1e9 / ns_per_iter).
    pub ops_per_sec: f64,
    /// Speedup over the pre-optimization reference implementation, when one
    /// was timed alongside (reference ns / optimized ns).
    pub speedup_vs_reference: Option<f64>,
}

/// Time `f` for `iters` iterations after `warmup` untimed ones; returns
/// mean ns per iteration. The closure must keep its result observable
/// (return it, or push into a sink) so the optimizer cannot delete the work
/// — use `std::hint::black_box` at the call site.
pub fn time_fn<F: FnMut()>(warmup: u64, iters: u64, mut f: F) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters.max(1) as f64
}

/// Build a [`BenchResult`] from a measured optimized path and an optional
/// reference timing.
pub fn result(name: &str, iters: u64, ns: f64, reference_ns: Option<f64>) -> BenchResult {
    BenchResult {
        name: name.to_string(),
        iters,
        ns_per_iter: ns,
        ops_per_sec: if ns > 0.0 { 1e9 / ns } else { 0.0 },
        speedup_vs_reference: reference_ns.map(|r| r / ns.max(1e-9)),
    }
}

/// Serialize results to the `BENCH_*.json` document.
pub fn to_json(mode: &str, threads: usize, benches: &[BenchResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": 1,");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"threads\": {threads},");
    let _ = writeln!(s, "  \"benches\": [");
    for (i, b) in benches.iter().enumerate() {
        let speedup = match b.speedup_vs_reference {
            Some(v) => format!("{v:.2}"),
            None => "null".to_string(),
        };
        let comma = if i + 1 == benches.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{ \"name\": \"{}\", \"iters\": {}, \"ns_per_iter\": {:.1}, \
             \"ops_per_sec\": {:.1}, \"speedup_vs_reference\": {} }}{comma}",
            b.name, b.iters, b.ns_per_iter, b.ops_per_sec, speedup
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Parse `(name, ns_per_iter)` pairs back out of a `BENCH_*.json` document.
///
/// A ~30-line field scanner, not a JSON parser: it only understands the
/// exact document shape [`to_json`] emits, which is all the regression gate
/// needs. Unknown text is skipped; missing fields skip the entry.
pub fn parse_baseline(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for chunk in json.split('{').skip(1) {
        let Some(name) = field_str(chunk, "\"name\":") else { continue };
        let Some(ns) = field_num(chunk, "\"ns_per_iter\":") else { continue };
        out.push((name, ns));
    }
    out
}

fn field_str(chunk: &str, key: &str) -> Option<String> {
    let rest = &chunk[chunk.find(key)? + key.len()..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    Some(rest[..rest.find('"')?].to_string())
}

fn field_num(chunk: &str, key: &str) -> Option<f64> {
    let rest = chunk[chunk.find(key)? + key.len()..].trim_start();
    let end = rest.find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))?;
    rest[..end].parse().ok()
}

/// Compare current results against a baseline document. Returns the list of
/// regressions: benches whose `ns_per_iter` exceeds `baseline × tolerance`.
/// Benches absent from the baseline are reported as informational additions,
/// not failures; improvements never fail.
pub fn regressions(current: &[BenchResult], baseline_json: &str, tolerance: f64) -> Vec<String> {
    let baseline = parse_baseline(baseline_json);
    let mut bad = Vec::new();
    for b in current {
        match baseline.iter().find(|(n, _)| *n == b.name) {
            Some((_, base_ns)) => {
                if b.ns_per_iter > base_ns * tolerance {
                    bad.push(format!(
                        "{}: {:.0} ns/iter vs baseline {:.0} ns/iter (limit {:.0}, ×{:.1})",
                        b.name,
                        b.ns_per_iter,
                        base_ns,
                        base_ns * tolerance,
                        b.ns_per_iter / base_ns
                    ));
                }
            }
            None => eprintln!("note: bench `{}` has no baseline entry (new bench?)", b.name),
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<BenchResult> {
        vec![result("alpha", 100, 250.0, Some(500.0)), result("beta", 10, 1e6, None)]
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let json = to_json("quick", 1, &sample());
        let parsed = parse_baseline(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "alpha");
        assert!((parsed[0].1 - 250.0).abs() < 0.5);
        assert_eq!(parsed[1].0, "beta");
        assert!((parsed[1].1 - 1e6).abs() < 1.0);
    }

    #[test]
    fn speedup_is_reference_over_optimized() {
        let r = result("x", 1, 100.0, Some(400.0));
        assert!((r.speedup_vs_reference.unwrap() - 4.0).abs() < 1e-9);
        assert!((r.ops_per_sec - 1e7).abs() < 1.0);
    }

    #[test]
    fn regression_gate_fires_only_on_slowdowns() {
        let baseline = to_json("full", 1, &sample());
        // Unchanged: pass.
        assert!(regressions(&sample(), &baseline, 1.5).is_empty());
        // 2× slower than baseline with a 1.5× band: fail.
        let slow = vec![result("alpha", 100, 500.0, None)];
        let bad = regressions(&slow, &baseline, 1.5);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].starts_with("alpha:"));
        // 2× faster: pass (improvements are never regressions).
        let fast = vec![result("alpha", 100, 125.0, None)];
        assert!(regressions(&fast, &baseline, 1.5).is_empty());
        // Unknown bench: informational only.
        let novel = vec![result("gamma", 1, 1.0, None)];
        assert!(regressions(&novel, &baseline, 1.5).is_empty());
    }

    #[test]
    fn timer_reports_sane_magnitudes() {
        let mut x = 0u64;
        let ns = time_fn(10, 100, || {
            x = std::hint::black_box(x.wrapping_add(1));
        });
        assert!((0.0..1e7).contains(&ns), "{ns}");
        assert_eq!(x, 110);
    }
}
