//! Batch-kernel equivalence: every batched API — `insert_batch` /
//! `contains_batch` on the Bloom filter, `insert_batch` / `contains_batch`
//! on the GCS, and the partitioned IBLT peel — must be *bit-identical* to
//! the element-at-a-time reference loops kept in
//! [`graphene_bench::reference`]. Identical bits and bytes, identical
//! answers, identical output *order*, identical peel remainders; batching
//! is a speed lever, never a behavior change.
//!
//! Edge cases the generators and unit tests pin explicitly: empty batches,
//! single-element batches, and batches with duplicate keys.

use graphene_bench::reference::{ref_peel_cells, ref_peel_cells_with_remainder, RefBloom, RefGcs};
use graphene_bloom::{
    bitvec::BitVec, BloomFilter, GcsBuilder, HashStrategy, Membership, ProbeScratch,
};
use graphene_hashes::{sha256, Digest};
use graphene_iblt::{Iblt, PeelScratch};
use proptest::prelude::*;

fn digests(n: usize, tag: u64) -> Vec<Digest> {
    (0..n as u64).map(|i| sha256(&[i.to_le_bytes(), tag.to_le_bytes()].concat())).collect()
}

/// A batch of ids with duplicates sprinkled in: `n` distinct digests plus
/// `dups` repeats of already-present ids, order-shuffled deterministically
/// by interleaving.
fn batch_with_dups(n: usize, dups: usize, tag: u64) -> Vec<Digest> {
    let base = digests(n, tag);
    let mut out = Vec::with_capacity(n + dups);
    for (i, id) in base.iter().enumerate() {
        out.push(*id);
        if i < dups && !base.is_empty() {
            out.push(base[(i * 7) % base.len()]);
        }
    }
    for i in out.len()..n + dups {
        if let Some(&id) = base.get(i % n.max(1)) {
            out.push(id);
        }
    }
    out
}

proptest! {
    /// `insert_batch` sets exactly the bits the scalar loop sets (both
    /// strategies, duplicates included), and `contains_batch` /
    /// `contains_batch_with` answer every probe exactly as scalar
    /// `contains` — against both the production scalar path and the
    /// pre-optimization reference.
    #[test]
    fn bloom_batch_matches_scalar(
        n in 0usize..250,
        dups in 0usize..20,
        fpr in 0.001f64..0.5,
        salt: u64,
        kpiece: bool,
    ) {
        let strategy = if kpiece { HashStrategy::KPiece } else { HashStrategy::DoubleHashing };
        let set = batch_with_dups(n, dups.min(n), salt);
        let probes = {
            let mut p = digests(100, salt ^ 0xabcd);
            p.extend(set.iter().take(20)); // members among the probes
            p
        };

        let mut batched = BloomFilter::with_strategy(n.max(1), fpr, salt, strategy);
        batched.insert_batch(&set);
        let mut scalar = BloomFilter::with_strategy(n.max(1), fpr, salt, strategy);
        let mut reference = RefBloom::with_strategy(n.max(1), fpr, salt, strategy);
        for id in &set {
            scalar.insert(id);
        }
        reference.insert_batch(&set);
        prop_assert_eq!(batched.bit_vec().to_bytes(), scalar.bit_vec().to_bytes());
        prop_assert_eq!(batched.bit_vec().to_bytes(), reference.bit_bytes());

        let hits = batched.contains_batch(&probes);
        prop_assert_eq!(hits.len(), probes.len());
        let ref_hits = reference.contains_batch(&probes);
        for (j, id) in probes.iter().enumerate() {
            prop_assert_eq!(hits.get(j), scalar.contains(id));
            prop_assert_eq!(hits.get(j), ref_hits[j]);
        }

        // The scratch-reusing entry point agrees too, with dirty scratch
        // and a dirty output mask carried over from a previous batch.
        let mut scratch = ProbeScratch::default();
        let mut out = BitVec::new(probes.len());
        batched.contains_batch_with(&probes, &mut out, &mut scratch);
        prop_assert_eq!(&out, &hits);
        batched.contains_batch_with(&set, &mut BitVec::new(set.len()), &mut scratch);
        let mut again = BitVec::new(probes.len());
        batched.contains_batch_with(&probes, &mut again, &mut scratch);
        prop_assert_eq!(&again, &out);
    }

    /// A GCS built through `insert_batch` serializes byte-identically to
    /// one built one insert at a time, and `contains_batch` answers every
    /// query exactly as scalar `contains` on both the production set and
    /// the decode-per-query reference.
    #[test]
    fn gcs_batch_matches_scalar(
        n in 0usize..250,
        dups in 0usize..20,
        fpr in 0.001f64..0.3,
        salt: u64,
    ) {
        let set = batch_with_dups(n, dups.min(n), salt);
        let probes = {
            let mut p = digests(100, salt ^ 0x6c5);
            p.extend(set.iter().take(20));
            p
        };

        let mut b_batch = GcsBuilder::new(n.max(1), fpr, salt);
        b_batch.insert_batch(&set);
        let g_batch = b_batch.build();
        let mut b_scalar = GcsBuilder::new(n.max(1), fpr, salt);
        for id in &set {
            b_scalar.insert(id);
        }
        let g_scalar = b_scalar.build();
        let reference = RefGcs::build(&set, n.max(1), fpr, salt);
        prop_assert_eq!(g_batch.data(), g_scalar.data());
        prop_assert_eq!(g_batch.data(), reference.data());
        prop_assert_eq!(g_batch.len(), g_scalar.len());

        let hits = g_batch.contains_batch(&probes);
        let ref_hits = reference.contains_batch(&probes);
        prop_assert_eq!(hits.len(), probes.len());
        for (j, id) in probes.iter().enumerate() {
            prop_assert_eq!(hits.get(j), g_scalar.contains(id));
            prop_assert_eq!(hits.get(j), ref_hits[j]);
        }
    }

    /// The partitioned peel recovers exactly what the element-at-a-time
    /// reference recovers — same values, same element order, same
    /// completeness verdict — and leaves the identical cell-array
    /// remainder when the decode is partial (undersized tables included,
    /// so the 2-core path is exercised, not just clean completions).
    #[test]
    fn iblt_partitioned_peel_matches_reference(
        only_a in 0usize..30,
        only_b in 0usize..30,
        shared in 0usize..60,
        k in 2u32..6,
        space in 1usize..5, // cells per difference element (1 ⇒ often partial)
        salt: u64,
    ) {
        let cells = ((only_a + only_b).max(1) * space).max(k as usize);
        let mut a = Iblt::new(cells, k, salt);
        let mut b = Iblt::new(cells, k, salt);
        let base = 1_000_000u64;
        for i in 0..shared as u64 {
            a.insert(base + i);
            b.insert(base + i);
        }
        for i in 0..only_a as u64 {
            a.insert(2 * base + i);
        }
        for i in 0..only_b as u64 {
            b.insert(3 * base + i);
        }
        let diff = a.subtract(&b).unwrap();

        let (reference, remainder) =
            ref_peel_cells_with_remainder(diff.cells().to_vec(), diff.hash_count(), diff.salt());
        let mut scratch = PeelScratch::new();
        let mut peeled = diff.clone();
        let optimized = peeled.peel_partitioned(&mut scratch);
        prop_assert_eq!(&reference, &optimized);
        prop_assert_eq!(remainder.as_slice(), peeled.cells());

        // Reusing the same scratch (stale generation stamps, leftover
        // queue capacity) must not perturb a second, different peel.
        let mut again = diff.clone();
        let reused = again.peel_partitioned(&mut scratch);
        prop_assert_eq!(&reference, &reused);
        prop_assert_eq!(again.cells(), peeled.cells());
    }
}

/// Duplicate *difference* values: a value inserted twice on one side is not
/// a pure cell at count 2, so both peels must agree on skipping it (and on
/// the resulting incompleteness), cell for cell.
#[test]
fn iblt_duplicate_insert_matches_reference() {
    for k in [2u32, 3, 4] {
        let mut a = Iblt::new(24, k, 0xd0b);
        let mut b = Iblt::new(24, k, 0xd0b);
        a.insert(42);
        a.insert(42); // duplicate key
        a.insert(7);
        b.insert(9);
        let diff = a.subtract(&b).unwrap();
        let (reference, remainder) = ref_peel_cells_with_remainder(diff.cells().to_vec(), k, 0xd0b);
        let mut peeled = diff.clone();
        let optimized = peeled.peel_partitioned(&mut PeelScratch::new());
        assert_eq!(reference, optimized);
        assert_eq!(remainder.as_slice(), peeled.cells());
    }
}

/// Empty and single-element batches, pinned explicitly (the proptest
/// generators reach them, but these must never regress to "shrunk away").
#[test]
fn empty_and_single_batches() {
    let one = digests(1, 3);
    for strategy in [HashStrategy::DoubleHashing, HashStrategy::KPiece] {
        let mut f = BloomFilter::with_strategy(8, 0.02, 5, strategy);
        f.insert_batch(&[]);
        let mut g = BloomFilter::with_strategy(8, 0.02, 5, strategy);
        assert_eq!(f.bit_vec().to_bytes(), g.bit_vec().to_bytes());
        assert_eq!(f.contains_batch(&[]).len(), 0);
        f.insert_batch(&one);
        g.insert(&one[0]);
        assert_eq!(f.bit_vec().to_bytes(), g.bit_vec().to_bytes());
        let hits = f.contains_batch(&one);
        assert_eq!(hits.len(), 1);
        assert!(hits.get(0));
    }

    let mut b = GcsBuilder::new(1, 0.02, 5);
    b.insert_batch(&[]);
    let empty = b.build();
    assert_eq!(empty.len(), 0);
    assert_eq!(empty.contains_batch(&[]).len(), 0);
    let mut b = GcsBuilder::new(1, 0.02, 5);
    b.insert_batch(&one);
    let single = b.build();
    let mut b = GcsBuilder::new(1, 0.02, 5);
    b.insert(&one[0]);
    assert_eq!(single.data(), b.build().data());
    assert!(single.contains_batch(&one).get(0));

    let mut empty_iblt = Iblt::new(12, 3, 1);
    let r = empty_iblt.peel_partitioned(&mut PeelScratch::new()).unwrap();
    assert!(r.complete && r.is_empty());
    assert_eq!(ref_peel_cells(vec![Default::default(); 12], 3, 1).unwrap(), r);
}

/// A filter big enough to cross the sorted-probe threshold (`≥ 512 KiB` of
/// bits) must still answer identically to the scalar loop — this pins the
/// word-sorted gather path the proptest sizes cannot reach.
#[test]
fn bloom_batch_sorted_path_matches_scalar() {
    let n = 600_000;
    let f_salt = 0xb16;
    let mut f = BloomFilter::with_strategy(n, 0.001, f_salt, HashStrategy::DoubleHashing);
    let members = digests(500, 11);
    f.insert_batch(&members);
    let mut probes = digests(1500, 13);
    probes.extend(members.iter().copied());
    let hits = f.contains_batch(&probes);
    for (j, id) in probes.iter().enumerate() {
        assert_eq!(hits.get(j), f.contains(id), "probe {j} diverged on the sorted path");
    }
    assert!(members.iter().all(|id| f.contains(id)));
}
