//! Blocks, headers and transaction ordering.

use crate::tx::{Transaction, TxId};
use graphene_hashes::{merkle_root, sha256d, Digest};

/// An 80-byte Bitcoin-style block header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Protocol version.
    pub version: i32,
    /// ID of the previous block.
    pub prev_block: Digest,
    /// Merkle root over the block's transaction IDs, in block order.
    pub merkle_root: Digest,
    /// Unix timestamp.
    pub time: u32,
    /// Compact difficulty target.
    pub bits: u32,
    /// Proof-of-work nonce.
    pub nonce: u32,
}

/// How the transactions inside a block are ordered (paper §6.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum OrderingScheme {
    /// Canonical Transaction Ordering: sorted by txid. Deployed by Bitcoin
    /// Cash in fall 2018; eliminates the `n·log2(n)`-bit ordering cost.
    #[default]
    Ctor,
    /// Arbitrary (miner-chosen) order: relaying requires shipping an
    /// explicit permutation of `n·log2(n)` bits on top of Graphene.
    MinerChosen,
}

impl OrderingScheme {
    /// Extra bytes Graphene must transmit to convey the order of `n`
    /// transactions under this scheme: `⌈n·log2(n)⌉` bits for miner-chosen
    /// order, zero for CTOR.
    pub fn encoding_bytes(self, n: usize) -> usize {
        match self {
            OrderingScheme::Ctor => 0,
            OrderingScheme::MinerChosen => {
                if n <= 1 {
                    0
                } else {
                    ((n as f64) * (n as f64).log2() / 8.0).ceil() as usize
                }
            }
        }
    }
}

/// Errors from block construction/validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockError {
    /// The transactions do not hash to the header's Merkle root.
    MerkleMismatch {
        /// Root committed in the header.
        expected: Digest,
        /// Root computed over the supplied transactions.
        computed: Digest,
    },
    /// CTOR block whose transactions are not in canonical order.
    NotCanonicalOrder,
}

impl core::fmt::Display for BlockError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BlockError::MerkleMismatch { expected, computed } => {
                write!(f, "merkle mismatch: header {expected} vs computed {computed}")
            }
            BlockError::NotCanonicalOrder => write!(f, "transactions violate CTOR"),
        }
    }
}

impl std::error::Error for BlockError {}

/// A block: header plus ordered transactions.
#[derive(Clone, Debug)]
pub struct Block {
    header: Header,
    txns: Vec<Transaction>,
    ordering: OrderingScheme,
}

impl Block {
    /// Assemble a block from transactions, ordering them per `ordering` and
    /// committing the Merkle root into the header.
    pub fn assemble(
        prev_block: Digest,
        time: u32,
        mut txns: Vec<Transaction>,
        ordering: OrderingScheme,
    ) -> Block {
        if ordering == OrderingScheme::Ctor {
            txns.sort_by(|a, b| a.id().cmp(b.id()));
        }
        let ids: Vec<TxId> = txns.iter().map(|t| *t.id()).collect();
        let header = Header {
            version: 2,
            prev_block,
            merkle_root: merkle_root(&ids),
            time,
            bits: 0x1d00_ffff,
            nonce: 0,
        };
        Block { header, txns, ordering }
    }

    /// Rebuild a block from a known header and reconstructed transactions
    /// (e.g., after a relay protocol decoded it). Fails if the transactions
    /// do not hash to the header's Merkle root.
    pub fn from_parts(
        header: Header,
        txns: Vec<Transaction>,
        ordering: OrderingScheme,
    ) -> Result<Block, BlockError> {
        let ids: Vec<TxId> = txns.iter().map(|t| *t.id()).collect();
        let computed = merkle_root(&ids);
        if computed != header.merkle_root {
            return Err(BlockError::MerkleMismatch { expected: header.merkle_root, computed });
        }
        Ok(Block { header, txns, ordering })
    }

    /// The header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// The block ID (double-SHA256 of the serialized header).
    pub fn id(&self) -> Digest {
        sha256d(&self.header.to_bytes())
    }

    /// Transactions in block order.
    pub fn txns(&self) -> &[Transaction] {
        &self.txns
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// True for the (degenerate) empty block.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Transaction IDs in block order.
    pub fn ids(&self) -> Vec<TxId> {
        self.txns.iter().map(|t| *t.id()).collect()
    }

    /// The ordering scheme the block was assembled with.
    pub fn ordering(&self) -> OrderingScheme {
        self.ordering
    }

    /// Total serialized size: header plus transaction payloads (plus a
    /// 3-byte varint-ish count, matching the wire encoding).
    pub fn serialized_size(&self) -> usize {
        80 + 3 + self.txns.iter().map(Transaction::size).sum::<usize>()
    }

    /// Validate a *candidate* reconstruction: do `txns` (in the given order)
    /// hash to this block's Merkle root? This is the receiver's final check
    /// in Protocol 1 step 4 / Protocol 2 step 5.
    pub fn validate_reconstruction(&self, ids: &[TxId]) -> Result<(), BlockError> {
        let computed = merkle_root(ids);
        if computed != self.header.merkle_root {
            return Err(BlockError::MerkleMismatch { expected: self.header.merkle_root, computed });
        }
        Ok(())
    }

    /// Check CTOR compliance.
    pub fn check_canonical(&self) -> Result<(), BlockError> {
        if self.ordering == OrderingScheme::Ctor
            && self.txns.windows(2).any(|w| w[0].id() > w[1].id())
        {
            return Err(BlockError::NotCanonicalOrder);
        }
        Ok(())
    }
}

impl Header {
    /// Serialize to the 80-byte Bitcoin wire layout.
    pub fn to_bytes(&self) -> [u8; 80] {
        let mut out = [0u8; 80];
        out[0..4].copy_from_slice(&self.version.to_le_bytes());
        out[4..36].copy_from_slice(self.prev_block.as_ref());
        out[36..68].copy_from_slice(self.merkle_root.as_ref());
        out[68..72].copy_from_slice(&self.time.to_le_bytes());
        out[72..76].copy_from_slice(&self.bits.to_le_bytes());
        out[76..80].copy_from_slice(&self.nonce.to_le_bytes());
        out
    }

    /// Parse the 80-byte wire layout.
    pub fn from_bytes(bytes: &[u8; 80]) -> Header {
        Header {
            version: i32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")),
            prev_block: Digest(bytes[4..36].try_into().expect("32 bytes")),
            merkle_root: Digest(bytes[36..68].try_into().expect("32 bytes")),
            time: u32::from_le_bytes(bytes[68..72].try_into().expect("4 bytes")),
            bits: u32::from_le_bytes(bytes[72..76].try_into().expect("4 bytes")),
            nonce: u32::from_le_bytes(bytes[76..80].try_into().expect("4 bytes")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txns(n: usize) -> Vec<Transaction> {
        (0..n as u64).map(|i| Transaction::new(i.to_le_bytes().to_vec())).collect()
    }

    #[test]
    fn assemble_ctor_sorts() {
        let b = Block::assemble(Digest::ZERO, 1000, txns(20), OrderingScheme::Ctor);
        assert!(b.check_canonical().is_ok());
        let ids = b.ids();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn miner_order_preserved() {
        let t = txns(5);
        let order: Vec<TxId> = t.iter().map(|x| *x.id()).collect();
        let b = Block::assemble(Digest::ZERO, 1000, t, OrderingScheme::MinerChosen);
        assert_eq!(b.ids(), order);
    }

    #[test]
    fn reconstruction_validates_exact_order_only() {
        let b = Block::assemble(Digest::ZERO, 1, txns(8), OrderingScheme::Ctor);
        let ids = b.ids();
        assert!(b.validate_reconstruction(&ids).is_ok());
        let mut wrong = ids.clone();
        wrong.swap(0, 1);
        assert!(matches!(
            b.validate_reconstruction(&wrong),
            Err(BlockError::MerkleMismatch { .. })
        ));
        // Superset (an undetected Bloom false positive) must fail too.
        let mut superset = ids.clone();
        superset.push(*Transaction::new(&b"extra"[..]).id());
        assert!(b.validate_reconstruction(&superset).is_err());
    }

    #[test]
    fn header_roundtrip() {
        let b = Block::assemble(sha256d(b"prev"), 12345, txns(3), OrderingScheme::Ctor);
        let bytes = b.header().to_bytes();
        assert_eq!(Header::from_bytes(&bytes), *b.header());
    }

    #[test]
    fn block_ids_differ_with_contents() {
        let a = Block::assemble(Digest::ZERO, 1, txns(3), OrderingScheme::Ctor);
        let b = Block::assemble(Digest::ZERO, 1, txns(4), OrderingScheme::Ctor);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn ordering_cost_formula() {
        assert_eq!(OrderingScheme::Ctor.encoding_bytes(10_000), 0);
        assert_eq!(OrderingScheme::MinerChosen.encoding_bytes(0), 0);
        assert_eq!(OrderingScheme::MinerChosen.encoding_bytes(1), 0);
        // n log2 n bits for n = 2000: 2000·10.97 / 8 ≈ 2742 bytes.
        let bytes = OrderingScheme::MinerChosen.encoding_bytes(2000);
        assert!((2700..2800).contains(&bytes), "got {bytes}");
    }

    #[test]
    fn serialized_size_counts_payloads() {
        let b = Block::assemble(Digest::ZERO, 1, txns(10), OrderingScheme::Ctor);
        assert_eq!(b.serialized_size(), 80 + 3 + 10 * 8);
    }
}
