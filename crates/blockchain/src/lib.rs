//! Blockchain substrate: transactions, blocks, mempools and synthetic
//! workloads.
//!
//! The paper evaluates Graphene inside real blockchain clients (Bitcoin
//! Cash, Ethereum). This crate rebuilds the pieces of that environment the
//! protocol actually touches:
//!
//! * [`tx`] — transactions with double-SHA256 IDs and realistic sizes;
//! * [`block`] — headers (80-byte Bitcoin layout), blocks, Merkle-root
//!   validation, and CTOR (canonical transaction ordering, §6.2);
//! * [`mempool`] — a transaction pool with per-peer `inv` bookkeeping (the
//!   "log" §2.2 describes for proactively sending missing transactions);
//! * [`workload`] — deterministic generators for every scenario in the
//!   evaluation: receiver-has-everything (Fig. 14), receiver-missing-a-
//!   fraction (Figs. 16–17), mempool synchronization with `m = n` (Fig. 18),
//!   and BCH/ETH-like block-size distributions (Figs. 12–13).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod mempool;
pub mod tx;
pub mod workload;

pub use block::{Block, BlockError, Header, OrderingScheme};
pub use mempool::{Mempool, PeerView};
pub use tx::{Transaction, TxId};
pub use workload::{IdScenario, Scenario, ScenarioParams, TxProfile};
