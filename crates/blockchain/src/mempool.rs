//! The mempool: unconfirmed transactions plus per-peer announcement state.

use crate::tx::{Transaction, TxId};
use std::collections::{HashMap, HashSet};

/// A pool of unconfirmed transactions.
///
/// Lookup by ID is the hot operation — Graphene receivers pass their whole
/// mempool through Bloom filter `S` — so the pool is a hash map with a
/// cached, lazily sorted ID list for deterministic iteration.
#[derive(Clone, Debug, Default)]
pub struct Mempool {
    txns: HashMap<TxId, Transaction>,
}

impl Mempool {
    /// An empty pool.
    pub fn new() -> Self {
        Mempool::default()
    }

    /// Number of pooled transactions (the paper's `m`).
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// True if no transactions are pooled.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Insert a transaction; returns false if it was already present.
    pub fn insert(&mut self, tx: Transaction) -> bool {
        self.txns.insert(*tx.id(), tx).is_none()
    }

    /// Remove by ID (e.g., when a block confirms it).
    pub fn remove(&mut self, id: &TxId) -> Option<Transaction> {
        self.txns.remove(id)
    }

    /// Membership test.
    pub fn contains(&self, id: &TxId) -> bool {
        self.txns.contains_key(id)
    }

    /// Fetch a transaction.
    pub fn get(&self, id: &TxId) -> Option<&Transaction> {
        self.txns.get(id)
    }

    /// Iterate over pooled transactions (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Transaction> {
        self.txns.values()
    }

    /// All IDs, sorted (deterministic order for tests and CTOR assembly).
    pub fn sorted_ids(&self) -> Vec<TxId> {
        let mut ids: Vec<TxId> = self.txns.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Remove every transaction confirmed by `block_ids`.
    pub fn confirm(&mut self, block_ids: &[TxId]) {
        for id in block_ids {
            self.txns.remove(id);
        }
    }
}

impl FromIterator<Transaction> for Mempool {
    fn from_iter<I: IntoIterator<Item = Transaction>>(iter: I) -> Self {
        let mut pool = Mempool::new();
        for tx in iter {
            pool.insert(tx);
        }
        pool
    }
}

/// Per-peer announcement bookkeeping (paper §2.2): which transactions have
/// been `inv`-exchanged with a given neighbor.
///
/// Block relays consult this to proactively append transactions the peer has
/// never seen (Protocol 1 step 3's optimization note). Real clients use
/// "lossy data structures" for this; we keep an exact set and expose a
/// `forget_fraction` knob so experiments can model the loss.
#[derive(Clone, Debug, Default)]
pub struct PeerView {
    announced: HashSet<TxId>,
}

impl PeerView {
    /// Empty view.
    pub fn new() -> Self {
        PeerView::default()
    }

    /// Record that `id` was announced to/by this peer.
    pub fn record(&mut self, id: TxId) {
        self.announced.insert(id);
    }

    /// Has `id` been exchanged with this peer?
    pub fn knows(&self, id: &TxId) -> bool {
        self.announced.contains(id)
    }

    /// Number of tracked announcements.
    pub fn len(&self) -> usize {
        self.announced.len()
    }

    /// True if nothing has been announced.
    pub fn is_empty(&self) -> bool {
        self.announced.is_empty()
    }

    /// Drop roughly `fraction` of the tracked announcements (deterministic:
    /// drops by hash order), modeling the lossy tracking of real clients.
    pub fn forget_fraction(&mut self, fraction: f64) {
        if fraction <= 0.0 {
            return;
        }
        let mut ids: Vec<TxId> = self.announced.iter().copied().collect();
        ids.sort();
        let drop = ((ids.len() as f64) * fraction.min(1.0)).round() as usize;
        for id in ids.into_iter().take(drop) {
            self.announced.remove(&id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(i: u64) -> Transaction {
        Transaction::new(i.to_le_bytes().to_vec())
    }

    #[test]
    fn insert_contains_remove() {
        let mut pool = Mempool::new();
        let t = tx(1);
        let id = *t.id();
        assert!(pool.insert(t.clone()));
        assert!(!pool.insert(t)); // duplicate
        assert!(pool.contains(&id));
        assert_eq!(pool.len(), 1);
        assert!(pool.remove(&id).is_some());
        assert!(pool.is_empty());
    }

    #[test]
    fn confirm_removes_block_txns() {
        let mut pool: Mempool = (0..10).map(tx).collect();
        let confirmed: Vec<TxId> = (0..5).map(|i| *tx(i).id()).collect();
        pool.confirm(&confirmed);
        assert_eq!(pool.len(), 5);
        assert!(!pool.contains(tx(0).id()));
        assert!(pool.contains(tx(7).id()));
    }

    #[test]
    fn sorted_ids_deterministic() {
        let pool: Mempool = (0..50).map(tx).collect();
        let a = pool.sorted_ids();
        let b = pool.sorted_ids();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn peer_view_tracks_and_forgets() {
        let mut view = PeerView::new();
        for i in 0..100 {
            view.record(*tx(i).id());
        }
        assert_eq!(view.len(), 100);
        assert!(view.knows(tx(5).id()));
        view.forget_fraction(0.3);
        assert_eq!(view.len(), 70);
        view.forget_fraction(0.0);
        assert_eq!(view.len(), 70);
        view.forget_fraction(1.0);
        assert!(view.is_empty());
    }
}
