//! The mempool: unconfirmed transactions plus per-peer announcement state.

use crate::tx::{Transaction, TxId};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A pool of unconfirmed transactions.
///
/// Lookup by ID is the hot operation — Graphene receivers pass their whole
/// mempool through Bloom filter `S` — so the pool is a hash map with a
/// cached, lazily sorted ID list for deterministic iteration.
///
/// The map lives behind an [`Arc`] with copy-on-write semantics: cloning a
/// pool is a reference-count bump, and the map is only deep-copied when a
/// clone is first mutated. The propagation sweep hands the same base
/// mempool to every one of its (up to 100 000) peers, so per-trial setup
/// is O(peers) pointer copies instead of O(peers · m) map clones — the
/// ROADMAP item 1 bottleneck. Behavior is indistinguishable from a plain
/// owned map: no read path observes the sharing.
#[derive(Clone, Debug, Default)]
pub struct Mempool {
    txns: Arc<HashMap<TxId, Transaction>>,
}

impl Mempool {
    /// An empty pool.
    pub fn new() -> Self {
        Mempool::default()
    }

    /// Number of pooled transactions (the paper's `m`).
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// True if no transactions are pooled.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Insert a transaction; returns false if it was already present.
    pub fn insert(&mut self, tx: Transaction) -> bool {
        Arc::make_mut(&mut self.txns).insert(*tx.id(), tx).is_none()
    }

    /// Remove by ID (e.g., when a block confirms it).
    pub fn remove(&mut self, id: &TxId) -> Option<Transaction> {
        if !self.txns.contains_key(id) {
            // Don't unshare a copy-on-write clone for a no-op removal.
            return None;
        }
        Arc::make_mut(&mut self.txns).remove(id)
    }

    /// Membership test.
    pub fn contains(&self, id: &TxId) -> bool {
        self.txns.contains_key(id)
    }

    /// Fetch a transaction.
    pub fn get(&self, id: &TxId) -> Option<&Transaction> {
        self.txns.get(id)
    }

    /// Iterate over pooled transactions (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Transaction> {
        self.txns.values()
    }

    /// All IDs, sorted (deterministic order for tests and CTOR assembly).
    pub fn sorted_ids(&self) -> Vec<TxId> {
        let mut ids: Vec<TxId> = self.txns.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Remove every transaction confirmed by `block_ids`.
    ///
    /// When the map is shared (a copy-on-write clone that was never
    /// mutated), this rebuilds the retained map directly instead of deep-
    /// copying first and then removing — strictly less work than the
    /// clone-then-remove that `Arc::make_mut` would do, and the dominant
    /// case in the propagation sweep, where every peer confirms the relayed
    /// block out of the shared base mempool.
    pub fn confirm(&mut self, block_ids: &[TxId]) {
        if block_ids.is_empty() {
            return;
        }
        match Arc::get_mut(&mut self.txns) {
            Some(map) => {
                for id in block_ids {
                    map.remove(id);
                }
            }
            None => {
                let confirmed: HashSet<&TxId> = block_ids.iter().collect();
                let retained: HashMap<TxId, Transaction> = self
                    .txns
                    .iter()
                    .filter(|(id, _)| !confirmed.contains(id))
                    .map(|(id, tx)| (*id, tx.clone()))
                    .collect();
                self.txns = Arc::new(retained);
            }
        }
    }

    /// True if `self` and `other` share one underlying map (copy-on-write
    /// clones that have not diverged). Diagnostic for tests and memory
    /// accounting; protocol code must never branch on it.
    pub fn shares_storage_with(&self, other: &Mempool) -> bool {
        Arc::ptr_eq(&self.txns, &other.txns)
    }
}

impl FromIterator<Transaction> for Mempool {
    fn from_iter<I: IntoIterator<Item = Transaction>>(iter: I) -> Self {
        let mut pool = Mempool::new();
        for tx in iter {
            pool.insert(tx);
        }
        pool
    }
}

/// Per-peer announcement bookkeeping (paper §2.2): which transactions have
/// been `inv`-exchanged with a given neighbor.
///
/// Block relays consult this to proactively append transactions the peer has
/// never seen (Protocol 1 step 3's optimization note). Real clients use
/// "lossy data structures" for this; we keep an exact set and expose a
/// `forget_fraction` knob so experiments can model the loss.
#[derive(Clone, Debug, Default)]
pub struct PeerView {
    announced: HashSet<TxId>,
}

impl PeerView {
    /// Empty view.
    pub fn new() -> Self {
        PeerView::default()
    }

    /// Record that `id` was announced to/by this peer.
    pub fn record(&mut self, id: TxId) {
        self.announced.insert(id);
    }

    /// Has `id` been exchanged with this peer?
    pub fn knows(&self, id: &TxId) -> bool {
        self.announced.contains(id)
    }

    /// Number of tracked announcements.
    pub fn len(&self) -> usize {
        self.announced.len()
    }

    /// True if nothing has been announced.
    pub fn is_empty(&self) -> bool {
        self.announced.is_empty()
    }

    /// Drop roughly `fraction` of the tracked announcements (deterministic:
    /// drops by hash order), modeling the lossy tracking of real clients.
    pub fn forget_fraction(&mut self, fraction: f64) {
        if fraction <= 0.0 {
            return;
        }
        let mut ids: Vec<TxId> = self.announced.iter().copied().collect();
        ids.sort();
        let drop = ((ids.len() as f64) * fraction.min(1.0)).round() as usize;
        for id in ids.into_iter().take(drop) {
            self.announced.remove(&id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(i: u64) -> Transaction {
        Transaction::new(i.to_le_bytes().to_vec())
    }

    #[test]
    fn insert_contains_remove() {
        let mut pool = Mempool::new();
        let t = tx(1);
        let id = *t.id();
        assert!(pool.insert(t.clone()));
        assert!(!pool.insert(t)); // duplicate
        assert!(pool.contains(&id));
        assert_eq!(pool.len(), 1);
        assert!(pool.remove(&id).is_some());
        assert!(pool.is_empty());
    }

    #[test]
    fn confirm_removes_block_txns() {
        let mut pool: Mempool = (0..10).map(tx).collect();
        let confirmed: Vec<TxId> = (0..5).map(|i| *tx(i).id()).collect();
        pool.confirm(&confirmed);
        assert_eq!(pool.len(), 5);
        assert!(!pool.contains(tx(0).id()));
        assert!(pool.contains(tx(7).id()));
    }

    /// Clones share storage until first mutation; mutation unshares the
    /// mutated clone only, and reads never perturb the sharing.
    #[test]
    fn clone_is_copy_on_write() {
        let base: Mempool = (0..100).map(tx).collect();
        let mut a = base.clone();
        let b = base.clone();
        assert!(a.shares_storage_with(&base));
        assert!(b.shares_storage_with(&base));

        // Reads keep the sharing.
        assert!(a.contains(tx(5).id()));
        assert_eq!(a.iter().count(), 100);
        assert!(a.shares_storage_with(&base));
        // A no-op removal keeps it too.
        assert!(a.remove(tx(1000).id()).is_none());
        assert!(a.shares_storage_with(&base));

        // A real mutation unshares only the mutated clone.
        assert!(a.insert(tx(1000)));
        assert!(!a.shares_storage_with(&base));
        assert!(b.shares_storage_with(&base));
        assert_eq!(a.len(), 101);
        assert_eq!(base.len(), 100);
    }

    /// `confirm` on a shared clone rebuilds without touching its siblings,
    /// and gives exactly the same pool as confirm-on-owned.
    #[test]
    fn confirm_on_shared_clone_matches_owned() {
        let base: Mempool = (0..50).map(tx).collect();
        let confirmed: Vec<TxId> = (0..20).map(|i| *tx(i).id()).collect();

        let mut shared = base.clone(); // still sharing at confirm time
        shared.confirm(&confirmed);
        let mut owned: Mempool = (0..50).map(tx).collect(); // uniquely owned
        owned.confirm(&confirmed);

        assert_eq!(base.len(), 50, "sibling must be untouched");
        assert_eq!(shared.len(), owned.len());
        assert_eq!(shared.sorted_ids(), owned.sorted_ids());
        assert!(!shared.shares_storage_with(&base));
        // Empty confirm never unshares.
        let mut c = base.clone();
        c.confirm(&[]);
        assert!(c.shares_storage_with(&base));
    }

    #[test]
    fn sorted_ids_deterministic() {
        let pool: Mempool = (0..50).map(tx).collect();
        let a = pool.sorted_ids();
        let b = pool.sorted_ids();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn peer_view_tracks_and_forgets() {
        let mut view = PeerView::new();
        for i in 0..100 {
            view.record(*tx(i).id());
        }
        assert_eq!(view.len(), 100);
        assert!(view.knows(tx(5).id()));
        view.forget_fraction(0.3);
        assert_eq!(view.len(), 70);
        view.forget_fraction(0.0);
        assert_eq!(view.len(), 70);
        view.forget_fraction(1.0);
        assert!(view.is_empty());
    }
}
