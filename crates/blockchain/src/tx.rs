//! Transactions and transaction IDs.

use bytes::Bytes;
use graphene_hashes::{sha256d, Digest};

/// A transaction ID: the double-SHA256 of the serialized transaction.
pub type TxId = Digest;

/// A transaction: an opaque payload plus its cached ID.
///
/// Graphene never inspects transaction *contents* — only IDs and sizes — so
/// the payload is opaque bytes. `Bytes` keeps clones cheap: a mempool, a
/// block and an in-flight message can share one buffer, mirroring how a real
/// node avoids copying transaction data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transaction {
    payload: Bytes,
    id: TxId,
}

impl Transaction {
    /// Wrap a serialized transaction payload.
    pub fn new(payload: impl Into<Bytes>) -> Self {
        let payload = payload.into();
        let id = sha256d(&payload);
        Transaction { payload, id }
    }

    /// Construct a transaction with an explicitly forged ID.
    ///
    /// Real IDs are always the double-SHA256 of the payload; forging one is
    /// a 2^64+-work brute force. This constructor exists so adversarial
    /// simulations (paper §6.1, manufactured short-ID collisions) can model
    /// a successful grind without burning the CPU time — production code
    /// must never call it.
    pub fn forge_with_id(payload: impl Into<Bytes>, id: TxId) -> Self {
        Transaction { payload: payload.into(), id }
    }

    /// The transaction ID (double-SHA256 of the payload).
    #[inline]
    pub fn id(&self) -> &TxId {
        &self.id
    }

    /// Serialized size in bytes.
    #[inline]
    pub fn size(&self) -> usize {
        self.payload.len()
    }

    /// Borrow the raw payload.
    #[inline]
    pub fn payload(&self) -> &Bytes {
        &self.payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_is_double_sha() {
        let tx = Transaction::new(&b"spend 1 coin"[..]);
        assert_eq!(*tx.id(), sha256d(b"spend 1 coin"));
        assert_eq!(tx.size(), 12);
    }

    #[test]
    fn distinct_payloads_distinct_ids() {
        let a = Transaction::new(&b"a"[..]);
        let b = Transaction::new(&b"b"[..]);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn clone_shares_payload() {
        let tx = Transaction::new(vec![0u8; 1000]);
        let c = tx.clone();
        // Bytes clones are refcounted: same backing pointer.
        assert_eq!(tx.payload().as_ptr(), c.payload().as_ptr());
    }
}
