//! Synthetic workload generation for every evaluation scenario.
//!
//! The paper's deployments measured live BCH/ETH traffic; our substitute is
//! a deterministic generator (seeded `StdRng`) that controls exactly the
//! variables the figures sweep:
//!
//! * block size `n` (200 / 2000 / 10000 in the simulations);
//! * receiver mempool size `m` as a multiple of `n` (Fig. 14);
//! * the fraction of the block already in the receiver's mempool
//!   (Figs. 16–17);
//! * mempool-synchronization overlap with `m = n` (Fig. 18);
//! * transaction-size profiles approximating BCH and ETH traffic
//!   (Figs. 12–13).
//!
//! Two tiers are provided: [`Scenario`] carries full [`Transaction`]s (for
//! byte-exact full-block/missing-transaction accounting) and [`IdScenario`]
//! carries bare txids (an order of magnitude faster; decode-rate Monte
//! Carlo needs tens of thousands of trials and never looks at payloads).

use crate::block::{Block, OrderingScheme};
use crate::mempool::Mempool;
use crate::tx::{Transaction, TxId};
use graphene_hashes::Digest;
use rand::{rngs::StdRng, RngExt};

/// Transaction-size distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TxProfile {
    /// Every transaction exactly this many bytes.
    Fixed(usize),
    /// Uniform in `[min, max]`.
    Uniform(usize, usize),
    /// Bitcoin-Cash-like: most transactions 190–420 bytes, occasional large
    /// consolidations.
    BtcLike,
    /// Ethereum-like: small RLP transactions, 100–160 bytes.
    EthLike,
}

impl TxProfile {
    /// Draw one transaction size.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        match *self {
            TxProfile::Fixed(s) => s.max(8),
            TxProfile::Uniform(min, max) => rng.random_range(min.max(8)..=max.max(min).max(8)),
            TxProfile::BtcLike => {
                if rng.random_range(0..100) < 5 {
                    rng.random_range(600..2000) // consolidation / multisig
                } else {
                    rng.random_range(190..=420)
                }
            }
            TxProfile::EthLike => rng.random_range(100..=160),
        }
    }

    /// Mean size in bytes (used when estimating repair-transmission cost
    /// without materializing payloads).
    pub fn mean(&self) -> f64 {
        match *self {
            TxProfile::Fixed(s) => s.max(8) as f64,
            TxProfile::Uniform(min, max) => (min.max(8) + max.max(min).max(8)) as f64 / 2.0,
            TxProfile::BtcLike => 0.95 * 305.0 + 0.05 * 1300.0,
            TxProfile::EthLike => 130.0,
        }
    }
}

/// Parameters for a block-relay scenario.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioParams {
    /// Transactions in the block (`n`).
    pub block_size: usize,
    /// Extra receiver-mempool transactions, as a multiple of `n` — the
    /// x-axis of Fig. 14. `m = n·fraction_of_block + extras`.
    pub extra_mempool_multiple: f64,
    /// Fraction of the block's transactions the receiver already has —
    /// the x-axis of Figs. 16–17 (1.0 for Protocol 1 scenarios).
    pub block_fraction_in_mempool: f64,
    /// Transaction-size distribution.
    pub profile: TxProfile,
    /// Block transaction ordering.
    pub ordering: OrderingScheme,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            block_size: 200,
            extra_mempool_multiple: 1.0,
            block_fraction_in_mempool: 1.0,
            profile: TxProfile::Fixed(250),
            ordering: OrderingScheme::Ctor,
        }
    }
}

/// A fully materialized block-relay scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The block the sender relays.
    pub block: Block,
    /// The receiver's mempool.
    pub receiver_mempool: Mempool,
    /// The sender's mempool (always a superset of the block).
    pub sender_mempool: Mempool,
}

impl Scenario {
    /// Generate a scenario from `params`, deterministically from `rng`.
    pub fn generate(params: &ScenarioParams, rng: &mut StdRng) -> Scenario {
        let n = params.block_size;
        let mk_tx = |rng: &mut StdRng| -> Transaction {
            let size = params.profile.sample(rng);
            let mut payload = vec![0u8; size];
            rng.fill(&mut payload[..]);
            Transaction::new(payload)
        };

        let block_txns: Vec<Transaction> = (0..n).map(|_| mk_tx(rng)).collect();
        let held = ((n as f64) * params.block_fraction_in_mempool).round() as usize;
        let extras = ((n as f64) * params.extra_mempool_multiple).round() as usize;

        let mut receiver_mempool: Mempool = block_txns.iter().take(held).cloned().collect();
        for _ in 0..extras {
            receiver_mempool.insert(mk_tx(rng));
        }

        let sender_mempool: Mempool = block_txns.iter().cloned().collect();
        let block = Block::assemble(Digest::ZERO, 1_700_000_000, block_txns, params.ordering);
        Scenario { block, receiver_mempool, sender_mempool }
    }

    /// Generate a mempool-synchronization scenario (Fig. 18): both peers
    /// hold `n` transactions, a `fraction_common` of which are shared; the
    /// rest of each pool is unrelated. Returns `(sender, receiver)` pools.
    pub fn mempool_sync(
        n: usize,
        fraction_common: f64,
        profile: TxProfile,
        rng: &mut StdRng,
    ) -> (Mempool, Mempool) {
        let common = ((n as f64) * fraction_common).round() as usize;
        let mk_tx = |rng: &mut StdRng| -> Transaction {
            let size = profile.sample(rng);
            let mut payload = vec![0u8; size];
            rng.fill(&mut payload[..]);
            Transaction::new(payload)
        };
        let shared: Vec<Transaction> = (0..common).map(|_| mk_tx(rng)).collect();
        let mut sender: Mempool = shared.iter().cloned().collect();
        let mut receiver: Mempool = shared.into_iter().collect();
        for _ in common..n {
            sender.insert(mk_tx(rng));
            receiver.insert(mk_tx(rng));
        }
        (sender, receiver)
    }
}

/// A lightweight, IDs-only scenario for high-volume Monte Carlo.
#[derive(Clone, Debug)]
pub struct IdScenario {
    /// IDs in the sender's block.
    pub block_ids: Vec<TxId>,
    /// IDs in the receiver's mempool (some block IDs plus extras).
    pub receiver_ids: Vec<TxId>,
    /// How many of `block_ids` the receiver holds (prefix of `block_ids`).
    pub held: usize,
}

impl IdScenario {
    /// Generate random 32-byte IDs directly — statistically identical to
    /// hashing random payloads, ~10× faster.
    pub fn generate(
        n: usize,
        extra_mempool_multiple: f64,
        block_fraction_in_mempool: f64,
        rng: &mut StdRng,
    ) -> IdScenario {
        let block_ids: Vec<TxId> = (0..n).map(|_| Digest(rng.random())).collect();
        let held = ((n as f64) * block_fraction_in_mempool).round() as usize;
        let extras = ((n as f64) * extra_mempool_multiple).round() as usize;
        let mut receiver_ids: Vec<TxId> = block_ids[..held.min(n)].to_vec();
        receiver_ids.extend((0..extras).map(|_| Digest(rng.random())));
        IdScenario { block_ids, receiver_ids, held: held.min(n) }
    }

    /// Receiver mempool size `m`.
    pub fn mempool_size(&self) -> usize {
        self.receiver_ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn scenario_shapes() {
        let params = ScenarioParams {
            block_size: 100,
            extra_mempool_multiple: 0.5,
            block_fraction_in_mempool: 1.0,
            ..Default::default()
        };
        let s = Scenario::generate(&params, &mut rng(1));
        assert_eq!(s.block.len(), 100);
        assert_eq!(s.receiver_mempool.len(), 150);
        // Receiver holds the whole block.
        assert!(s.block.ids().iter().all(|id| s.receiver_mempool.contains(id)));
    }

    #[test]
    fn partial_block_possession() {
        let params = ScenarioParams {
            block_size: 200,
            extra_mempool_multiple: 1.0,
            block_fraction_in_mempool: 0.6,
            ..Default::default()
        };
        let s = Scenario::generate(&params, &mut rng(2));
        let held = s.block.ids().iter().filter(|id| s.receiver_mempool.contains(id)).count();
        assert_eq!(held, 120);
        assert_eq!(s.receiver_mempool.len(), 120 + 200);
    }

    #[test]
    fn deterministic_given_seed() {
        let params = ScenarioParams::default();
        let a = Scenario::generate(&params, &mut rng(7));
        let b = Scenario::generate(&params, &mut rng(7));
        assert_eq!(a.block.id(), b.block.id());
    }

    #[test]
    fn mempool_sync_overlap() {
        let (s, r) = Scenario::mempool_sync(1000, 0.3, TxProfile::Fixed(100), &mut rng(3));
        assert_eq!(s.len(), 1000);
        assert_eq!(r.len(), 1000);
        let common = s.iter().filter(|t| r.contains(t.id())).count();
        assert_eq!(common, 300);
    }

    #[test]
    fn id_scenario_shapes() {
        let s = IdScenario::generate(500, 2.0, 0.8, &mut rng(4));
        assert_eq!(s.block_ids.len(), 500);
        assert_eq!(s.held, 400);
        assert_eq!(s.mempool_size(), 400 + 1000);
        // The held prefix is in the receiver's set.
        assert!(s.receiver_ids[..400].iter().zip(&s.block_ids[..400]).all(|(a, b)| a == b));
    }

    #[test]
    fn profiles_sample_in_range() {
        let mut r = rng(5);
        for _ in 0..200 {
            let s = TxProfile::BtcLike.sample(&mut r);
            assert!((190..2000).contains(&s));
            let e = TxProfile::EthLike.sample(&mut r);
            assert!((100..=160).contains(&e));
            assert_eq!(TxProfile::Fixed(3).sample(&mut r), 8); // clamped
        }
    }

    #[test]
    fn profile_means_sane() {
        assert!((TxProfile::Fixed(250).mean() - 250.0).abs() < 1e-9);
        assert!(TxProfile::BtcLike.mean() > 300.0);
        assert!(TxProfile::EthLike.mean() < 160.0);
    }
}
