//! A compact bit vector backing the Bloom filter.

/// Fixed-length bit vector stored as packed `u64` words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Create an all-zero vector of `len` bits.
    pub fn new(len: usize) -> Self {
        BitVec { words: vec![0u64; len.div_ceil(64)], len }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i` to 1. Panics if out of range.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Read bit `i`. Panics if out of range.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Count of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Serialize as packed little-endian bytes (`ceil(len/8)` of them).
    pub fn to_bytes(&self) -> Vec<u8> {
        let nbytes = self.len.div_ceil(8);
        let mut out = Vec::with_capacity(nbytes);
        for i in 0..nbytes {
            let word = self.words[i / 8];
            out.push((word >> ((i % 8) * 8)) as u8);
        }
        out
    }

    /// Rebuild from packed bytes produced by [`BitVec::to_bytes`].
    ///
    /// `len` is the bit length; bytes beyond it are ignored. Returns `None`
    /// if `bytes` is too short to hold `len` bits.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Option<Self> {
        if bytes.len() < len.div_ceil(8) {
            return None;
        }
        let mut v = BitVec::new(len);
        for (i, &b) in bytes.iter().take(len.div_ceil(8)).enumerate() {
            v.words[i / 8] |= (b as u64) << ((i % 8) * 8);
        }
        // Mask stray bits above `len` so equality is structural.
        if !len.is_multiple_of(64) {
            if let Some(last) = v.words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get() {
        let mut v = BitVec::new(130);
        assert_eq!(v.len(), 130);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!v.get(i));
            v.set(i);
            assert!(v.get(i));
        }
        assert_eq!(v.count_ones(), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        BitVec::new(10).get(10);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut v = BitVec::new(77);
        for i in (0..77).step_by(3) {
            v.set(i);
        }
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), 10);
        assert_eq!(BitVec::from_bytes(&bytes, 77), Some(v));
    }

    #[test]
    fn from_bytes_too_short() {
        assert_eq!(BitVec::from_bytes(&[0xff], 9), None);
    }

    #[test]
    fn zero_length() {
        let v = BitVec::new(0);
        assert!(v.is_empty());
        assert_eq!(v.to_bytes().len(), 0);
        assert_eq!(BitVec::from_bytes(&[], 0), Some(v));
    }
}
