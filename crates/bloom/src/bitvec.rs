//! A compact bit vector backing the Bloom filter.

/// Fixed-length bit vector stored as packed `u64` words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Create an all-zero vector of `len` bits.
    pub fn new(len: usize) -> Self {
        BitVec { words: vec![0u64; len.div_ceil(64)], len }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i` to 1. Panics if out of range.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Read bit `i`. Panics if out of range.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Clear bit `i` (set it to 0). Panics if out of range.
    ///
    /// The batch membership kernels start from an all-ones result mask and
    /// knock out misses as probes fail, so the write path only ever clears.
    #[inline]
    pub fn unset(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Read the `i`-th backing word (bits `64·i .. 64·i+63`). Panics if out
    /// of range. This is the single-word form of [`BitVec::gather_words`]
    /// for callers that already bucketed their probes by word index.
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        self.words[i]
    }

    /// Word-gather: for each bit index in `bits`, append the backing word
    /// that holds it to `out` (so `out[j]` contains bit `bits[j] % 64`).
    ///
    /// Splitting a probe pass into "gather the words" then "test the bits"
    /// lets the loads issue back-to-back without the test logic in between —
    /// the word-parallel half of the batch Bloom kernel. Panics if any index
    /// is out of range.
    pub fn gather_words(&self, bits: &[usize], out: &mut Vec<u64>) {
        out.reserve(bits.len());
        for &i in bits {
            assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
            out.push(self.words[i / 64]);
        }
    }

    /// Count of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Borrow the packed `u64` words (word-level bulk operations).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reset every bit to 0 without touching the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Set every in-range bit to 1 (word-level fill; stray bits above `len`
    /// stay 0 so equality remains structural).
    pub fn fill_ones(&mut self) {
        self.words.fill(u64::MAX);
        if !self.len.is_multiple_of(64) {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << (self.len % 64)) - 1;
            }
        }
        if self.len == 0 {
            self.words.clear();
        }
    }

    /// Word-level union: OR every bit of `other` into `self`. Panics if the
    /// lengths differ (a union across geometries is meaningless).
    pub fn union_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bit-vector length mismatch in union");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Word-level intersection: AND every bit of `self` with `other`.
    /// Panics if the lengths differ.
    pub fn intersect_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bit-vector length mismatch in intersection");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// Serialize as packed little-endian bytes (`ceil(len/8)` of them).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len.div_ceil(8));
        self.write_bytes(&mut out);
        out
    }

    /// Append the packed little-endian bytes to `out` without allocating a
    /// temporary (the wire encoder's reusable-buffer path). Byte-identical
    /// to [`BitVec::to_bytes`].
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        let nbytes = self.len.div_ceil(8);
        out.reserve(nbytes);
        // Whole words first (8 bytes at a time), then the ragged tail.
        let full_words = nbytes / 8;
        for w in &self.words[..full_words] {
            out.extend_from_slice(&w.to_le_bytes());
        }
        for i in (full_words * 8)..nbytes {
            let word = self.words[i / 8];
            out.push((word >> ((i % 8) * 8)) as u8);
        }
    }

    /// Rebuild from packed bytes produced by [`BitVec::to_bytes`].
    ///
    /// `len` is the bit length; bytes beyond it are ignored. Returns `None`
    /// if `bytes` is too short to hold `len` bits.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Option<Self> {
        if bytes.len() < len.div_ceil(8) {
            return None;
        }
        let mut v = BitVec::new(len);
        for (i, &b) in bytes.iter().take(len.div_ceil(8)).enumerate() {
            v.words[i / 8] |= (b as u64) << ((i % 8) * 8);
        }
        // Mask stray bits above `len` so equality is structural.
        if !len.is_multiple_of(64) {
            if let Some(last) = v.words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get() {
        let mut v = BitVec::new(130);
        assert_eq!(v.len(), 130);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!v.get(i));
            v.set(i);
            assert!(v.get(i));
        }
        assert_eq!(v.count_ones(), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        BitVec::new(10).get(10);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut v = BitVec::new(77);
        for i in (0..77).step_by(3) {
            v.set(i);
        }
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), 10);
        assert_eq!(BitVec::from_bytes(&bytes, 77), Some(v));
    }

    #[test]
    fn from_bytes_too_short() {
        assert_eq!(BitVec::from_bytes(&[0xff], 9), None);
    }

    #[test]
    fn zero_length() {
        let v = BitVec::new(0);
        assert!(v.is_empty());
        assert_eq!(v.to_bytes().len(), 0);
        assert_eq!(BitVec::from_bytes(&[], 0), Some(v));
    }

    #[test]
    fn write_bytes_matches_to_bytes() {
        for len in [0usize, 1, 7, 8, 63, 64, 65, 77, 128, 130, 1000] {
            let mut v = BitVec::new(len);
            for i in (0..len).step_by(3) {
                v.set(i);
            }
            let mut appended = vec![0xaa, 0xbb]; // pre-existing prefix survives
            v.write_bytes(&mut appended);
            assert_eq!(&appended[..2], &[0xaa, 0xbb]);
            assert_eq!(&appended[2..], v.to_bytes().as_slice(), "len {len}");
        }
    }

    #[test]
    fn union_and_intersection_are_wordwise() {
        let mut a = BitVec::new(130);
        let mut b = BitVec::new(130);
        for i in (0..130).step_by(2) {
            a.set(i);
        }
        for i in (0..130).step_by(3) {
            b.set(i);
        }
        let mut u = a.clone();
        u.union_with(&b);
        let mut x = a.clone();
        x.intersect_with(&b);
        for i in 0..130 {
            assert_eq!(u.get(i), a.get(i) || b.get(i), "union bit {i}");
            assert_eq!(x.get(i), a.get(i) && b.get(i), "intersection bit {i}");
        }
    }

    #[test]
    fn unset_clears_single_bits() {
        let mut v = BitVec::new(130);
        v.fill_ones();
        for i in [0usize, 63, 64, 129] {
            v.unset(i);
            assert!(!v.get(i));
        }
        assert_eq!(v.count_ones(), 126);
        v.unset(0); // idempotent
        assert_eq!(v.count_ones(), 126);
    }

    #[test]
    fn word_gather_matches_get() {
        let mut v = BitVec::new(200);
        for i in (0..200).step_by(5) {
            v.set(i);
        }
        let bits: Vec<usize> = vec![0, 1, 63, 64, 65, 127, 128, 199];
        let mut words = Vec::new();
        v.gather_words(&bits, &mut words);
        assert_eq!(words.len(), bits.len());
        for (j, &i) in bits.iter().enumerate() {
            assert_eq!((words[j] >> (i % 64)) & 1 == 1, v.get(i), "bit {i}");
            assert_eq!(words[j], v.word(i / 64));
        }
    }

    #[test]
    fn fill_and_clear() {
        let mut v = BitVec::new(70);
        v.fill_ones();
        assert_eq!(v.count_ones(), 70);
        // Stray bits above len stay clear so equality is structural.
        let mut w = BitVec::new(70);
        for i in 0..70 {
            w.set(i);
        }
        assert_eq!(v, w);
        v.clear();
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v, BitVec::new(70));
    }
}
