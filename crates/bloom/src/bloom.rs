//! The classic Bloom filter (Bloom 1970), sized per the paper's formulas.
//!
//! # Index derivation
//!
//! Two strategies are provided (paper §6.3, "Reducing Processing Time"):
//!
//! * [`HashStrategy::DoubleHashing`] — Kirsch–Mitzenmacher: two independent
//!   64-bit SipHash values `h1`, `h2` give index `i` as `h1 + i·h2`. Works
//!   for any `k` and any element length; this is the portable default.
//! * [`HashStrategy::KPiece`] — the §6.3 optimization: a txid is *already*
//!   the output of a cryptographic hash, so instead of rehashing it `k`
//!   times, slice the 32-byte ID into `k` pieces and use each piece as an
//!   index (after mixing in the filter's salt so distinct filters are
//!   independent). Valid for `k ≤ 8` (four bytes per piece); construction
//!   falls back to double hashing above that.
//!
//! The deployed BCH implementation reported §6.3 roughly halving receiver
//! processing; the `bloom_hashing` bench in `crates/bench` reproduces that
//! comparison.

use crate::bitvec::BitVec;
use crate::params::{bloom_bits, optimal_hash_count, theoretical_fpr};
use crate::Membership;
use graphene_hashes::{siphash24, Digest, SipKey};

/// How bit indexes are derived from a 32-byte ID.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HashStrategy {
    /// Kirsch–Mitzenmacher double hashing over SipHash-2-4 (any `k`).
    DoubleHashing,
    /// Slice the already-uniform txid into `k` 4-byte pieces (k ≤ 8).
    KPiece,
}

/// A Bloom filter keyed by transaction IDs.
///
/// ```
/// use graphene_bloom::{BloomFilter, Membership};
/// use graphene_hashes::sha256;
///
/// let ids: Vec<_> = (0u64..100).map(|i| sha256(&i.to_le_bytes())).collect();
/// let mut filter = BloomFilter::new(ids.len(), 0.01, 7);
/// for id in &ids {
///     filter.insert(id);
/// }
/// assert!(ids.iter().all(|id| filter.contains(id)));
/// ```
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: BitVec,
    k: u32,
    /// Target false-positive rate the filter was constructed for.
    fpr: f64,
    /// Salt decorrelates multiple filters over the same txid universe
    /// (Graphene's S, R and F must be independent).
    salt: u64,
    strategy: HashStrategy,
    inserted: usize,
}

impl BloomFilter {
    /// Create a filter for `n` expected items at false-positive rate `fpr`.
    ///
    /// `fpr >= 1.0` produces the degenerate zero-byte filter that matches
    /// everything — Graphene uses this when the optimizer drives `f_S → 1`
    /// (paper §3.3.1, special case `m ≈ n`).
    pub fn new(n: usize, fpr: f64, salt: u64) -> Self {
        Self::with_strategy(n, fpr, salt, HashStrategy::DoubleHashing)
    }

    /// As [`BloomFilter::new`] with an explicit [`HashStrategy`].
    pub fn with_strategy(n: usize, fpr: f64, salt: u64, strategy: HashStrategy) -> Self {
        let nbits = bloom_bits(n, fpr);
        let k = optimal_hash_count(nbits, n);
        let strategy = match strategy {
            HashStrategy::KPiece if k <= 8 => HashStrategy::KPiece,
            _ => HashStrategy::DoubleHashing,
        };
        BloomFilter { bits: BitVec::new(nbits), k, fpr: fpr.min(1.0), salt, strategy, inserted: 0 }
    }

    /// Construct with explicit geometry (used by wire decoding).
    pub fn from_parts(bits: BitVec, k: u32, fpr: f64, salt: u64, strategy: HashStrategy) -> Self {
        BloomFilter { bits, k, fpr, salt, strategy, inserted: 0 }
    }

    /// Number of hash functions.
    pub fn hash_count(&self) -> u32 {
        self.k
    }

    /// Number of bits in the underlying array.
    pub fn bit_len(&self) -> usize {
        self.bits.len()
    }

    /// Number of items inserted so far.
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// The salt this filter mixes into its hash functions.
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// The index-derivation strategy in use.
    pub fn strategy(&self) -> HashStrategy {
        self.strategy
    }

    /// Borrow the raw bit array (for serialization).
    pub fn bit_vec(&self) -> &BitVec {
        &self.bits
    }

    /// Insert a txid.
    ///
    /// Allocation-free: the `k` bit indexes are computed in one pass (no
    /// intermediate `Vec`), already reduced modulo `m` exactly once.
    pub fn insert(&mut self, id: &Digest) {
        self.inserted += 1;
        if self.bits.is_empty() {
            return; // match-everything filter
        }
        match self.strategy {
            HashStrategy::DoubleHashing => {
                let m = self.bits.len() as u64;
                let (h1, h2) = double_hashes(self.salt, id);
                let mut h = h1;
                for _ in 0..self.k {
                    self.bits.set((h % m) as usize);
                    h = h.wrapping_add(h2);
                }
            }
            HashStrategy::KPiece => {
                let m = self.bits.len() as u64;
                for i in 0..self.k {
                    self.bits.set(kpiece_index(self.salt, id, i, m));
                }
            }
        }
    }

    /// The realized false-positive rate given the current fill, from the
    /// standard `(1 - e^{-kn/m})^k` model.
    pub fn realized_fpr(&self) -> f64 {
        theoretical_fpr(self.bits.len(), self.k, self.inserted)
    }

    /// Merge another filter with identical geometry into this one (word-level
    /// OR). The result answers `contains` true for anything either operand
    /// matched. Panics on geometry mismatch.
    pub fn union_with(&mut self, other: &BloomFilter) {
        assert_eq!(
            (self.k, self.salt, self.strategy),
            (other.k, other.salt, other.strategy),
            "bloom union across different hash geometries"
        );
        self.bits.union_with(&other.bits);
        self.inserted += other.inserted;
    }
}

/// The Kirsch–Mitzenmacher pair `(h1, h2)` for a txid (`h2` forced odd).
#[inline]
fn double_hashes(salt: u64, id: &Digest) -> (u64, u64) {
    let h1 = siphash24(SipKey::new(salt, 0x5350_4c49_5431), &id.0);
    let h2 = siphash24(SipKey::new(salt, 0x5350_4c49_5432), &id.0) | 1;
    (h1, h2)
}

/// §6.3 index derivation: the i-th 4-byte piece of the (uniform) txid, mixed
/// with the salt by a cheap multiply-xor so distinct filters over the same
/// IDs stay independent.
#[inline]
fn kpiece_index(salt: u64, id: &Digest, i: u32, m: u64) -> usize {
    let off = (i as usize) * 4;
    let piece = u32::from_le_bytes(id.0[off..off + 4].try_into().expect("4-byte piece"));
    let mixed = (piece as u64 ^ salt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (mixed % m) as usize
}

impl Membership for BloomFilter {
    fn contains(&self, id: &Digest) -> bool {
        if self.bits.is_empty() {
            return true; // degenerate fpr >= 1 filter
        }
        // One-pass, allocation-free probe with early exit on the first
        // clear bit; indexes are reduced by `m` exactly once.
        match self.strategy {
            HashStrategy::DoubleHashing => {
                let m = self.bits.len() as u64;
                let (h1, h2) = double_hashes(self.salt, id);
                let mut h = h1;
                for _ in 0..self.k {
                    if !self.bits.get((h % m) as usize) {
                        return false;
                    }
                    h = h.wrapping_add(h2);
                }
                true
            }
            HashStrategy::KPiece => {
                let m = self.bits.len() as u64;
                (0..self.k).all(|i| self.bits.get(kpiece_index(self.salt, id, i, m)))
            }
        }
    }

    /// Wire size, matching `graphene-wire`'s encoder exactly: a flag byte,
    /// then (for non-degenerate filters) bit length `u32`, `k` byte,
    /// salt `u64`, and the packed bit array.
    fn serialized_size(&self) -> usize {
        if self.bits.is_empty() {
            return 1; // a single flag byte for the match-all filter
        }
        1 + 4 + 1 + 8 + self.bits.len().div_ceil(8)
    }

    fn fpr(&self) -> f64 {
        self.fpr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_hashes::sha256;

    fn ids(n: usize, tag: u64) -> Vec<Digest> {
        (0..n as u64).map(|i| sha256(&[i.to_le_bytes(), tag.to_le_bytes()].concat())).collect()
    }

    #[test]
    fn no_false_negatives() {
        for strategy in [HashStrategy::DoubleHashing, HashStrategy::KPiece] {
            let set = ids(500, 1);
            let mut f = BloomFilter::with_strategy(set.len(), 0.01, 42, strategy);
            for id in &set {
                f.insert(id);
            }
            assert!(set.iter().all(|id| f.contains(id)), "{strategy:?}");
        }
    }

    #[test]
    fn fpr_close_to_target() {
        for strategy in [HashStrategy::DoubleHashing, HashStrategy::KPiece] {
            let inserted = ids(1000, 2);
            let probes = ids(20_000, 3);
            let target = 0.02;
            let mut f = BloomFilter::with_strategy(inserted.len(), target, 7, strategy);
            for id in &inserted {
                f.insert(id);
            }
            let fp = probes.iter().filter(|id| f.contains(id)).count();
            let rate = fp as f64 / probes.len() as f64;
            // Allow generous slack: the estimate itself has variance.
            assert!(rate < target * 1.8, "{strategy:?}: observed fpr {rate} vs target {target}");
            assert!(rate > target * 0.3, "{strategy:?}: observed fpr {rate} suspiciously low");
        }
    }

    #[test]
    fn degenerate_match_all() {
        let f = BloomFilter::new(100, 1.0, 0);
        assert_eq!(f.bit_len(), 0);
        assert!(f.contains(&sha256(b"anything")));
        assert_eq!(f.serialized_size(), 1);
    }

    #[test]
    fn salts_decorrelate() {
        let set = ids(2000, 4);
        let probes = ids(30_000, 5);
        let build = |salt| {
            let mut f = BloomFilter::new(set.len(), 0.05, salt);
            for id in &set {
                f.insert(id);
            }
            f
        };
        let f1 = build(1);
        let f2 = build(2);
        // False positives of one filter should be (mostly) independent of the
        // other: joint FPR ≈ fpr², far below single-filter FPR.
        let joint = probes.iter().filter(|id| f1.contains(id) && f2.contains(id)).count();
        let single = probes.iter().filter(|id| f1.contains(id)).count();
        assert!(
            joint * 5 < single.max(1),
            "joint {joint} vs single {single} — filters correlated?"
        );
    }

    #[test]
    fn kpiece_falls_back_when_k_too_large() {
        // fpr small enough to need k > 8.
        let f = BloomFilter::with_strategy(1000, 0.0001, 0, HashStrategy::KPiece);
        assert!(f.hash_count() > 8);
        assert_eq!(f.strategy(), HashStrategy::DoubleHashing);
    }

    #[test]
    fn serialized_size_tracks_formula() {
        let f = BloomFilter::new(1000, 0.01, 0);
        let expect = crate::params::bloom_size_bytes(1000, 0.01);
        // Payload plus the 14-byte wire header.
        assert!(f.serialized_size() >= expect && f.serialized_size() <= expect + 14);
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new(100, 0.01, 0);
        let misses = ids(1000, 9).iter().filter(|id| f.contains(id)).count();
        assert_eq!(misses, 0, "an empty filter must reject essentially all probes");
    }
}
