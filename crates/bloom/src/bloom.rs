//! The classic Bloom filter (Bloom 1970), sized per the paper's formulas.
//!
//! # Index derivation
//!
//! Two strategies are provided (paper §6.3, "Reducing Processing Time"):
//!
//! * [`HashStrategy::DoubleHashing`] — Kirsch–Mitzenmacher: two independent
//!   64-bit SipHash values `h1`, `h2` give index `i` as `h1 + i·h2`. Works
//!   for any `k` and any element length; this is the portable default.
//! * [`HashStrategy::KPiece`] — the §6.3 optimization: a txid is *already*
//!   the output of a cryptographic hash, so instead of rehashing it `k`
//!   times, slice the 32-byte ID into `k` pieces and use each piece as an
//!   index (after mixing in the filter's salt so distinct filters are
//!   independent). Valid for `k ≤ 8` (four bytes per piece); construction
//!   falls back to double hashing above that.
//!
//! The deployed BCH implementation reported §6.3 roughly halving receiver
//! processing; the `bloom_hashing` bench in `crates/bench` reproduces that
//! comparison.

use crate::bitvec::BitVec;
use crate::params::{bloom_bits, optimal_hash_count, theoretical_fpr};
use crate::Membership;
use graphene_hashes::{siphash24, siphash24_x4, Digest, SipKey, SIP_LANES};

/// How bit indexes are derived from a 32-byte ID.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HashStrategy {
    /// Kirsch–Mitzenmacher double hashing over SipHash-2-4 (any `k`).
    DoubleHashing,
    /// Slice the already-uniform txid into `k` 4-byte pieces (k ≤ 8).
    KPiece,
}

/// A Bloom filter keyed by transaction IDs.
///
/// ```
/// use graphene_bloom::{BloomFilter, Membership};
/// use graphene_hashes::sha256;
///
/// let ids: Vec<_> = (0u64..100).map(|i| sha256(&i.to_le_bytes())).collect();
/// let mut filter = BloomFilter::new(ids.len(), 0.01, 7);
/// for id in &ids {
///     filter.insert(id);
/// }
/// assert!(ids.iter().all(|id| filter.contains(id)));
/// ```
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: BitVec,
    k: u32,
    /// Target false-positive rate the filter was constructed for.
    fpr: f64,
    /// Salt decorrelates multiple filters over the same txid universe
    /// (Graphene's S, R and F must be independent).
    salt: u64,
    strategy: HashStrategy,
    inserted: usize,
}

impl BloomFilter {
    /// Create a filter for `n` expected items at false-positive rate `fpr`.
    ///
    /// `fpr >= 1.0` produces the degenerate zero-byte filter that matches
    /// everything — Graphene uses this when the optimizer drives `f_S → 1`
    /// (paper §3.3.1, special case `m ≈ n`).
    pub fn new(n: usize, fpr: f64, salt: u64) -> Self {
        Self::with_strategy(n, fpr, salt, HashStrategy::DoubleHashing)
    }

    /// As [`BloomFilter::new`] with an explicit [`HashStrategy`].
    pub fn with_strategy(n: usize, fpr: f64, salt: u64, strategy: HashStrategy) -> Self {
        let nbits = bloom_bits(n, fpr);
        let k = optimal_hash_count(nbits, n);
        let strategy = match strategy {
            HashStrategy::KPiece if k <= 8 => HashStrategy::KPiece,
            _ => HashStrategy::DoubleHashing,
        };
        BloomFilter { bits: BitVec::new(nbits), k, fpr: fpr.min(1.0), salt, strategy, inserted: 0 }
    }

    /// Construct with explicit geometry (used by wire decoding).
    pub fn from_parts(bits: BitVec, k: u32, fpr: f64, salt: u64, strategy: HashStrategy) -> Self {
        BloomFilter { bits, k, fpr, salt, strategy, inserted: 0 }
    }

    /// Number of hash functions.
    pub fn hash_count(&self) -> u32 {
        self.k
    }

    /// Number of bits in the underlying array.
    pub fn bit_len(&self) -> usize {
        self.bits.len()
    }

    /// Number of items inserted so far.
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// The salt this filter mixes into its hash functions.
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// The index-derivation strategy in use.
    pub fn strategy(&self) -> HashStrategy {
        self.strategy
    }

    /// Borrow the raw bit array (for serialization).
    pub fn bit_vec(&self) -> &BitVec {
        &self.bits
    }

    /// Insert a txid.
    ///
    /// Allocation-free: the `k` bit indexes are computed in one pass (no
    /// intermediate `Vec`), already reduced modulo `m` exactly once.
    pub fn insert(&mut self, id: &Digest) {
        self.inserted += 1;
        if self.bits.is_empty() {
            return; // match-everything filter
        }
        match self.strategy {
            HashStrategy::DoubleHashing => {
                let m = self.bits.len() as u64;
                let (h1, h2) = double_hashes(self.salt, id);
                let mut h = h1;
                for _ in 0..self.k {
                    self.bits.set((h % m) as usize);
                    h = h.wrapping_add(h2);
                }
            }
            HashStrategy::KPiece => {
                let m = self.bits.len() as u64;
                for i in 0..self.k {
                    self.bits.set(kpiece_index(self.salt, id, i, m));
                }
            }
        }
    }

    /// The realized false-positive rate given the current fill, from the
    /// standard `(1 - e^{-kn/m})^k` model.
    pub fn realized_fpr(&self) -> f64 {
        theoretical_fpr(self.bits.len(), self.k, self.inserted)
    }

    /// Merge another filter with identical geometry into this one (word-level
    /// OR). The result answers `contains` true for anything either operand
    /// matched. Panics on geometry mismatch.
    pub fn union_with(&mut self, other: &BloomFilter) {
        assert_eq!(
            (self.k, self.salt, self.strategy),
            (other.k, other.salt, other.strategy),
            "bloom union across different hash geometries"
        );
        self.bits.union_with(&other.bits);
        self.inserted += other.inserted;
    }

    /// Insert a slice of txids, hashing [`SIP_LANES`] of them in interleaved
    /// flight per loop iteration.
    ///
    /// Bit-identical to calling [`BloomFilter::insert`] element by element
    /// (the same indexes are set; set order is invisible). Duplicate and
    /// overlapping inputs are fine — re-setting a bit is a no-op, and
    /// `inserted` counts slice elements exactly like repeated scalar calls
    /// would.
    pub fn insert_batch(&mut self, ids: &[Digest]) {
        self.inserted += ids.len();
        if self.bits.is_empty() {
            return; // match-everything filter
        }
        let m = self.bits.len() as u64;
        match self.strategy {
            HashStrategy::DoubleHashing => {
                let mut h1 = Vec::new();
                let mut h2 = Vec::new();
                double_hashes_batch(self.salt, ids, &mut h1, &mut h2);
                let mc = ModChain::new(m);
                for (&a, &b) in h1.iter().zip(&h2) {
                    let mut h = a;
                    let mut r = a % m;
                    let bm = if self.k > 1 { b % m } else { 0 };
                    for _ in 0..self.k {
                        self.bits.set(r as usize);
                        mc.advance(&mut h, &mut r, b, bm);
                    }
                }
            }
            HashStrategy::KPiece => {
                for id in ids {
                    for i in 0..self.k {
                        self.bits.set(kpiece_index(self.salt, id, i, m));
                    }
                }
            }
        }
    }

    /// Batch membership: set `out[j]` iff `self.contains(&ids[j])`.
    ///
    /// Allocating convenience over [`BloomFilter::contains_batch_with`].
    pub fn contains_batch(&self, ids: &[Digest]) -> BitVec {
        let mut out = BitVec::new(ids.len());
        self.contains_batch_with(ids, &mut out, &mut ProbeScratch::default());
        out
    }

    /// Batch membership into a caller-provided result mask, allocation-free
    /// after scratch warm-up.
    ///
    /// `out` must have exactly `ids.len()` bits; on return `out[j]` equals
    /// `self.contains(&ids[j])` bit for bit. The kernel hashes
    /// [`SIP_LANES`] digests per loop iteration (the dominant cost of a
    /// probe), then tests bits — for filters too big for cache the probe
    /// offsets are first sorted so the word loads walk the array in
    /// address order instead of hopping randomly. Probes are pure reads, so
    /// `ids` may freely contain duplicates or overlap other batches.
    pub fn contains_batch_with(
        &self,
        ids: &[Digest],
        out: &mut BitVec,
        scratch: &mut ProbeScratch,
    ) {
        assert_eq!(out.len(), ids.len(), "result mask length must equal batch length");
        assert!(ids.len() < MAX_BATCH, "batch of {} exceeds {MAX_BATCH}", ids.len());
        // Start from all-ones and knock out misses: the degenerate
        // match-everything filter then needs no probes at all.
        out.fill_ones();
        if self.bits.is_empty() {
            return;
        }
        let m = self.bits.len() as u64;
        match self.strategy {
            HashStrategy::DoubleHashing => {
                double_hashes_batch(self.salt, ids, &mut scratch.h1, &mut scratch.h2);
                let mc = ModChain::new(m);
                if self.bits.words().len() >= BATCH_SORT_WORDS {
                    // Word-parallel path: pack every probe as
                    // `word_index << 32 | slot << 6 | bit`, sort (word index
                    // occupies the high bits, so this is address order), and
                    // clear the slot on each missing bit.
                    scratch.probes.clear();
                    scratch.probes.reserve(ids.len() * self.k as usize);
                    for (s, (&a, &b)) in scratch.h1.iter().zip(&scratch.h2).enumerate() {
                        let mut h = a;
                        let mut r = a % m;
                        let bm = if self.k > 1 { b % m } else { 0 };
                        for _ in 0..self.k {
                            scratch.probes.push((r / 64) << 32 | (s as u64) << 6 | (r % 64));
                            mc.advance(&mut h, &mut r, b, bm);
                        }
                    }
                    scratch.probes.sort_unstable();
                    for &p in &scratch.probes {
                        if self.bits.word((p >> 32) as usize) >> (p & 63) & 1 == 0 {
                            out.unset((p >> 6 & (MAX_BATCH as u64 - 1)) as usize);
                        }
                    }
                } else {
                    // Cache-resident filter: probe directly with the scalar
                    // early exit. Batched hashing plus the divide-free index
                    // chain is the win here — the second divide (`h2 % m`)
                    // is deferred until the first probe actually hits.
                    for (s, (&a, &b)) in scratch.h1.iter().zip(&scratch.h2).enumerate() {
                        let mut h = a;
                        let mut r = a % m;
                        if !self.bits.get(r as usize) {
                            out.unset(s);
                            continue;
                        }
                        let bm = if self.k > 1 { b % m } else { 0 };
                        for _ in 1..self.k {
                            mc.advance(&mut h, &mut r, b, bm);
                            if !self.bits.get(r as usize) {
                                out.unset(s);
                                break;
                            }
                        }
                    }
                }
            }
            HashStrategy::KPiece => {
                // No hashing to amortize (§6.3 slices the txid directly), so
                // the batch win is issuing the word loads back-to-back via
                // the gather helper before any test logic runs.
                let k = self.k as usize;
                scratch.idxs.clear();
                scratch.idxs.reserve(ids.len() * k);
                for id in ids {
                    for i in 0..self.k {
                        scratch.idxs.push(kpiece_index(self.salt, id, i, m));
                    }
                }
                scratch.words.clear();
                self.bits.gather_words(&scratch.idxs, &mut scratch.words);
                for s in 0..ids.len() {
                    for j in s * k..(s + 1) * k {
                        if scratch.words[j] >> (scratch.idxs[j] % 64) & 1 == 0 {
                            out.unset(s);
                            break;
                        }
                    }
                }
            }
        }
    }
}

/// Upper bound on one batch's length (the sorted-probe packing keeps the
/// slot in 26 bits). 67M keys per call is far above any mempool pass; split
/// larger workloads into chunks.
pub const MAX_BATCH: usize = 1 << 26;

/// Filter size (in 64-bit words) above which the batch probe sorts its
/// offsets for address-order access: 64 KiB words = 512 KiB of filter, the
/// point where random probes start missing mid-level cache. Below it the
/// sort costs more than the locality buys. Either path yields identical
/// result bits — probes are pure reads.
const BATCH_SORT_WORDS: usize = 1 << 16;

/// Reusable scratch for [`BloomFilter::contains_batch_with`], so steady-state
/// batch probing allocates nothing (the PR 5 `PeelScratch` pattern).
#[derive(Clone, Debug, Default)]
pub struct ProbeScratch {
    /// Per-slot Kirsch–Mitzenmacher `h1`.
    h1: Vec<u64>,
    /// Per-slot Kirsch–Mitzenmacher `h2` (already forced odd).
    h2: Vec<u64>,
    /// Packed sorted probes (`word << 32 | slot << 6 | bit`).
    probes: Vec<u64>,
    /// K-piece bit indexes, `k` consecutive entries per slot.
    idxs: Vec<usize>,
    /// Words gathered for [`ProbeScratch::idxs`].
    words: Vec<u64>,
}

/// A divide-free Kirsch–Mitzenmacher index chain.
///
/// The scalar probe computes `(h1 + i·h2 mod 2^64) mod m` with one 64-bit
/// divide per probe. The batch kernels instead carry the remainder along:
/// stepping `h → h + h2` steps `r → r + (h2 mod m)` with a conditional
/// subtract — except when the 64-bit chain wraps, which silently subtracts
/// `2^64` from the true value, so the remainder must also absorb
/// `-2^64 ≡ m - (2^64 mod m) (mod m)`. Tracking `h` alongside `r` makes the
/// wrap observable (`h_next < h`), keeping the chain *exactly* equal to the
/// scalar derivation for every step — the equivalence proptests exercise
/// the wrap path heavily since random `h2` wraps about every other step.
#[derive(Clone, Copy)]
struct ModChain {
    m: u64,
    /// `(m - 2^64 mod m) mod m`, the remainder correction for a wrap.
    wrap_adj: u64,
}

impl ModChain {
    #[inline]
    fn new(m: u64) -> Self {
        let two64 = ((1u128 << 64) % m as u128) as u64;
        ModChain { m, wrap_adj: (m - two64) % m }
    }

    /// Advance the pair `(h, r)` — invariant `r == h % m` — by `step`,
    /// where `step_mod == step % m`. Branchless: both the `≥ m` folds and
    /// the wrap correction are data-dependent about half the time each for
    /// random hashes, so predicated arithmetic beats branches here.
    #[inline]
    fn advance(self, h: &mut u64, r: &mut u64, step: u64, step_mod: u64) {
        let next = h.wrapping_add(step);
        let mut nr = *r + step_mod;
        nr -= self.m * u64::from(nr >= self.m);
        nr += self.wrap_adj * u64::from(next < *h);
        nr -= self.m * u64::from(nr >= self.m);
        *h = next;
        *r = nr;
    }
}

/// Compute [`double_hashes`] for a slice of txids with the SipHash states
/// lane-interleaved: [`SIP_LANES`] digests are hashed per loop iteration
/// (twice — once per Kirsch–Mitzenmacher key), giving the out-of-order core
/// independent dependency chains to overlap. Spare lanes of a ragged final
/// chunk repeat lane 0 and are discarded.
fn double_hashes_batch(salt: u64, ids: &[Digest], h1: &mut Vec<u64>, h2: &mut Vec<u64>) {
    h1.clear();
    h2.clear();
    h1.reserve(ids.len());
    h2.reserve(ids.len());
    let k1 = [SipKey::new(salt, 0x5350_4c49_5431); SIP_LANES];
    let k2 = [SipKey::new(salt, 0x5350_4c49_5432); SIP_LANES];
    let mut msgs = [[0u64; 4]; SIP_LANES];
    for chunk in ids.chunks(SIP_LANES) {
        for (l, id) in chunk.iter().enumerate() {
            msgs[l] = digest_words(id);
        }
        for l in chunk.len()..SIP_LANES {
            msgs[l] = msgs[0];
        }
        let a = siphash24_x4::<4>(&k1, &msgs);
        let b = siphash24_x4::<4>(&k2, &msgs);
        h1.extend_from_slice(&a[..chunk.len()]);
        h2.extend(b[..chunk.len()].iter().map(|&x| x | 1));
    }
}

/// A 32-byte digest as the four little-endian words SipHash consumes.
#[inline]
fn digest_words(id: &Digest) -> [u64; 4] {
    core::array::from_fn(|w| {
        u64::from_le_bytes(id.0[w * 8..w * 8 + 8].try_into().expect("8-byte word"))
    })
}

/// The Kirsch–Mitzenmacher pair `(h1, h2)` for a txid (`h2` forced odd).
#[inline]
fn double_hashes(salt: u64, id: &Digest) -> (u64, u64) {
    let h1 = siphash24(SipKey::new(salt, 0x5350_4c49_5431), &id.0);
    let h2 = siphash24(SipKey::new(salt, 0x5350_4c49_5432), &id.0) | 1;
    (h1, h2)
}

/// §6.3 index derivation: the i-th 4-byte piece of the (uniform) txid, mixed
/// with the salt by a cheap multiply-xor so distinct filters over the same
/// IDs stay independent.
#[inline]
fn kpiece_index(salt: u64, id: &Digest, i: u32, m: u64) -> usize {
    let off = (i as usize) * 4;
    let piece = u32::from_le_bytes(id.0[off..off + 4].try_into().expect("4-byte piece"));
    let mixed = (piece as u64 ^ salt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (mixed % m) as usize
}

impl Membership for BloomFilter {
    fn contains(&self, id: &Digest) -> bool {
        if self.bits.is_empty() {
            return true; // degenerate fpr >= 1 filter
        }
        // One-pass, allocation-free probe with early exit on the first
        // clear bit; indexes are reduced by `m` exactly once.
        match self.strategy {
            HashStrategy::DoubleHashing => {
                let m = self.bits.len() as u64;
                let (h1, h2) = double_hashes(self.salt, id);
                let mut h = h1;
                for _ in 0..self.k {
                    if !self.bits.get((h % m) as usize) {
                        return false;
                    }
                    h = h.wrapping_add(h2);
                }
                true
            }
            HashStrategy::KPiece => {
                let m = self.bits.len() as u64;
                (0..self.k).all(|i| self.bits.get(kpiece_index(self.salt, id, i, m)))
            }
        }
    }

    /// Wire size, matching `graphene-wire`'s encoder exactly: a flag byte,
    /// then (for non-degenerate filters) bit length `u32`, `k` byte,
    /// salt `u64`, and the packed bit array.
    fn serialized_size(&self) -> usize {
        if self.bits.is_empty() {
            return 1; // a single flag byte for the match-all filter
        }
        1 + 4 + 1 + 8 + self.bits.len().div_ceil(8)
    }

    fn fpr(&self) -> f64 {
        self.fpr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_hashes::sha256;

    fn ids(n: usize, tag: u64) -> Vec<Digest> {
        (0..n as u64).map(|i| sha256(&[i.to_le_bytes(), tag.to_le_bytes()].concat())).collect()
    }

    #[test]
    fn no_false_negatives() {
        for strategy in [HashStrategy::DoubleHashing, HashStrategy::KPiece] {
            let set = ids(500, 1);
            let mut f = BloomFilter::with_strategy(set.len(), 0.01, 42, strategy);
            for id in &set {
                f.insert(id);
            }
            assert!(set.iter().all(|id| f.contains(id)), "{strategy:?}");
        }
    }

    #[test]
    fn fpr_close_to_target() {
        for strategy in [HashStrategy::DoubleHashing, HashStrategy::KPiece] {
            let inserted = ids(1000, 2);
            let probes = ids(20_000, 3);
            let target = 0.02;
            let mut f = BloomFilter::with_strategy(inserted.len(), target, 7, strategy);
            for id in &inserted {
                f.insert(id);
            }
            let fp = probes.iter().filter(|id| f.contains(id)).count();
            let rate = fp as f64 / probes.len() as f64;
            // Allow generous slack: the estimate itself has variance.
            assert!(rate < target * 1.8, "{strategy:?}: observed fpr {rate} vs target {target}");
            assert!(rate > target * 0.3, "{strategy:?}: observed fpr {rate} suspiciously low");
        }
    }

    #[test]
    fn degenerate_match_all() {
        let f = BloomFilter::new(100, 1.0, 0);
        assert_eq!(f.bit_len(), 0);
        assert!(f.contains(&sha256(b"anything")));
        assert_eq!(f.serialized_size(), 1);
    }

    #[test]
    fn salts_decorrelate() {
        let set = ids(2000, 4);
        let probes = ids(30_000, 5);
        let build = |salt| {
            let mut f = BloomFilter::new(set.len(), 0.05, salt);
            for id in &set {
                f.insert(id);
            }
            f
        };
        let f1 = build(1);
        let f2 = build(2);
        // False positives of one filter should be (mostly) independent of the
        // other: joint FPR ≈ fpr², far below single-filter FPR.
        let joint = probes.iter().filter(|id| f1.contains(id) && f2.contains(id)).count();
        let single = probes.iter().filter(|id| f1.contains(id)).count();
        assert!(
            joint * 5 < single.max(1),
            "joint {joint} vs single {single} — filters correlated?"
        );
    }

    #[test]
    fn kpiece_falls_back_when_k_too_large() {
        // fpr small enough to need k > 8.
        let f = BloomFilter::with_strategy(1000, 0.0001, 0, HashStrategy::KPiece);
        assert!(f.hash_count() > 8);
        assert_eq!(f.strategy(), HashStrategy::DoubleHashing);
    }

    #[test]
    fn serialized_size_tracks_formula() {
        let f = BloomFilter::new(1000, 0.01, 0);
        let expect = crate::params::bloom_size_bytes(1000, 0.01);
        // Payload plus the 14-byte wire header.
        assert!(f.serialized_size() >= expect && f.serialized_size() <= expect + 14);
    }

    /// Batch insert + batch probe produce the exact bits and answers of the
    /// element-at-a-time path, for both strategies, including duplicates in
    /// the batch and the empty batch.
    #[test]
    fn batch_matches_scalar() {
        for strategy in [HashStrategy::DoubleHashing, HashStrategy::KPiece] {
            let mut set = ids(300, 6);
            set.push(set[0]); // duplicate key in the insert batch
            let mut probes = ids(500, 7);
            probes.extend_from_slice(&set[..50]);
            probes.push(probes[0]); // duplicate key in the probe batch

            let mut scalar = BloomFilter::with_strategy(set.len(), 0.02, 11, strategy);
            for id in &set {
                scalar.insert(id);
            }
            let mut batch = BloomFilter::with_strategy(set.len(), 0.02, 11, strategy);
            batch.insert_batch(&set);
            assert_eq!(scalar.bit_vec(), batch.bit_vec(), "{strategy:?} bits");
            assert_eq!(scalar.inserted(), batch.inserted(), "{strategy:?} inserted");

            let mask = batch.contains_batch(&probes);
            for (j, id) in probes.iter().enumerate() {
                assert_eq!(mask.get(j), scalar.contains(id), "{strategy:?} probe {j}");
            }
            assert_eq!(batch.contains_batch(&[]).len(), 0);
        }
    }

    /// The degenerate match-everything filter answers all-ones in batch
    /// form too.
    #[test]
    fn batch_degenerate_match_all() {
        let mut f = BloomFilter::new(100, 1.0, 0);
        let probes = ids(10, 8);
        f.insert_batch(&probes);
        assert_eq!(f.inserted(), 10);
        let mask = f.contains_batch(&probes);
        assert_eq!(mask.count_ones(), probes.len());
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new(100, 0.01, 0);
        let misses = ids(1000, 9).iter().filter(|id| f.contains(id)).count();
        assert_eq!(misses, 0, "an empty filter must reject essentially all probes");
    }
}
