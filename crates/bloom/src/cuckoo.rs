//! Cuckoo filter (Fan, Andersen, Kaminsky, Mitzenmacher — CoNEXT 2014).
//!
//! Listed by the paper (§3.3) as a drop-in alternative to the Bloom filters
//! in Graphene. Partial-key cuckoo hashing with 4-slot buckets; supports
//! deletion, which classic Bloom filters do not.

use crate::Membership;
use graphene_hashes::{siphash24, Digest, SipKey};

const SLOTS_PER_BUCKET: usize = 4;
const MAX_KICKS: usize = 500;

/// A cuckoo filter over txids with 16-bit fingerprints.
///
/// A 16-bit fingerprint and 4-slot buckets give a worst-case false-positive
/// rate of roughly `2·4/2^16 ≈ 1.2e-4`; the effective rate scales down when
/// the requested `fpr` is larger because lookups also check the requested
/// target (we keep fingerprints full-width for simplicity — the wire format
/// could pack them tighter, which `serialized_size` models).
#[derive(Clone, Debug)]
pub struct CuckooFilter {
    /// Fingerprints; 0 = empty slot.
    buckets: Vec<[u16; SLOTS_PER_BUCKET]>,
    nbuckets: usize,
    salt: u64,
    fpr: f64,
    fingerprint_bits: u32,
    len: usize,
}

impl CuckooFilter {
    /// Create a filter for about `n` items at target rate `fpr`.
    pub fn new(n: usize, fpr: f64, salt: u64) -> Self {
        // Fingerprint size: ceil(log2(2b/ε)) bits, clamped to [4, 16].
        let bits =
            ((2.0 * SLOTS_PER_BUCKET as f64 / fpr.max(1e-9)).log2().ceil() as u32).clamp(4, 16);
        // 95% target load factor for b = 4.
        let nbuckets = ((n as f64 / (SLOTS_PER_BUCKET as f64 * 0.95)).ceil() as usize)
            .next_power_of_two()
            .max(1);
        CuckooFilter {
            buckets: vec![[0u16; SLOTS_PER_BUCKET]; nbuckets],
            nbuckets,
            salt,
            fpr,
            fingerprint_bits: bits,
            len: 0,
        }
    }

    /// Number of stored fingerprints.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no items are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn fingerprint(&self, id: &Digest) -> u16 {
        let h = siphash24(SipKey::new(self.salt, 0x4350_4650), &id.0);
        let mask = if self.fingerprint_bits >= 16 {
            u16::MAX
        } else {
            ((1u32 << self.fingerprint_bits) - 1) as u16
        };
        // Fingerprint 0 is the empty marker; remap.
        let fp = (h as u16) & mask;
        if fp == 0 {
            1
        } else {
            fp
        }
    }

    fn index1(&self, id: &Digest) -> usize {
        (siphash24(SipKey::new(self.salt, 0x4350_4931), &id.0) as usize) & (self.nbuckets - 1)
    }

    fn index2(&self, i1: usize, fp: u16) -> usize {
        // Partial-key cuckoo hashing: i2 = i1 XOR hash(fp).
        let h = siphash24(SipKey::new(self.salt, 0x4350_4932), &fp.to_le_bytes());
        (i1 ^ h as usize) & (self.nbuckets - 1)
    }

    fn bucket_insert(&mut self, idx: usize, fp: u16) -> bool {
        for slot in self.buckets[idx].iter_mut() {
            if *slot == 0 {
                *slot = fp;
                return true;
            }
        }
        false
    }

    /// Insert a txid. Returns `false` if the filter is too full (the item is
    /// *not* inserted and the caller should rebuild with more capacity).
    pub fn insert(&mut self, id: &Digest) -> bool {
        let fp = self.fingerprint(id);
        let i1 = self.index1(id);
        let i2 = self.index2(i1, fp);
        if self.bucket_insert(i1, fp) || self.bucket_insert(i2, fp) {
            self.len += 1;
            return true;
        }
        // Evict: random-walk displacement.
        let mut idx = if (fp as usize) & 1 == 0 { i1 } else { i2 };
        let mut fp = fp;
        for kick in 0..MAX_KICKS {
            let slot = kick % SLOTS_PER_BUCKET;
            core::mem::swap(&mut fp, &mut self.buckets[idx][slot]);
            idx = self.index2(idx, fp);
            if self.bucket_insert(idx, fp) {
                self.len += 1;
                return true;
            }
        }
        false
    }

    /// Remove a txid. Returns `true` if a matching fingerprint was removed.
    pub fn remove(&mut self, id: &Digest) -> bool {
        let fp = self.fingerprint(id);
        let i1 = self.index1(id);
        let i2 = self.index2(i1, fp);
        for idx in [i1, i2] {
            for slot in self.buckets[idx].iter_mut() {
                if *slot == fp {
                    *slot = 0;
                    self.len -= 1;
                    return true;
                }
            }
        }
        false
    }
}

impl Membership for CuckooFilter {
    fn contains(&self, id: &Digest) -> bool {
        let fp = self.fingerprint(id);
        let i1 = self.index1(id);
        let i2 = self.index2(i1, fp);
        self.buckets[i1].contains(&fp) || self.buckets[i2].contains(&fp)
    }

    /// Wire size: packed fingerprints at `fingerprint_bits` each + header.
    fn serialized_size(&self) -> usize {
        (self.nbuckets * SLOTS_PER_BUCKET * self.fingerprint_bits as usize).div_ceil(8) + 9
    }

    fn fpr(&self) -> f64 {
        self.fpr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_hashes::sha256;

    fn ids(n: usize, tag: u64) -> Vec<Digest> {
        (0..n as u64).map(|i| sha256(&[i.to_le_bytes(), tag.to_le_bytes()].concat())).collect()
    }

    #[test]
    fn insert_then_contains() {
        let set = ids(1000, 1);
        let mut f = CuckooFilter::new(set.len(), 0.01, 3);
        for id in &set {
            assert!(f.insert(id));
        }
        assert!(set.iter().all(|id| f.contains(id)));
        assert_eq!(f.len(), 1000);
    }

    #[test]
    fn false_positive_rate_bounded() {
        let set = ids(2000, 2);
        let probes = ids(50_000, 3);
        let mut f = CuckooFilter::new(set.len(), 0.01, 3);
        for id in &set {
            assert!(f.insert(id));
        }
        let fp = probes.iter().filter(|id| f.contains(id)).count();
        let rate = fp as f64 / probes.len() as f64;
        assert!(rate < 0.02, "observed fpr {rate}");
    }

    #[test]
    fn remove_restores_absence() {
        let set = ids(100, 4);
        let mut f = CuckooFilter::new(set.len(), 0.01, 1);
        for id in &set {
            assert!(f.insert(id));
        }
        for id in &set {
            assert!(f.remove(id));
        }
        assert!(f.is_empty());
        // After removal, essentially nothing should match.
        let hits = set.iter().filter(|id| f.contains(id)).count();
        assert_eq!(hits, 0);
    }

    #[test]
    fn remove_absent_returns_false() {
        let mut f = CuckooFilter::new(10, 0.01, 1);
        assert!(!f.remove(&sha256(b"absent")));
    }

    #[test]
    fn overfill_reports_failure() {
        // Cram far more items than capacity; insert must eventually refuse
        // rather than loop forever or silently drop.
        let mut f = CuckooFilter::new(8, 0.01, 1);
        let mut failed = false;
        for id in ids(2000, 5) {
            if !f.insert(&id) {
                failed = true;
                break;
            }
        }
        assert!(failed, "expected an insert failure on gross overfill");
    }
}
