//! Golomb-coded sets (Golomb 1966; used by BIP158 compact block filters).
//!
//! A GCS stores the sorted sequence `h(x) mod (n/f)` for each member `x`,
//! delta-encoded with Golomb–Rice codes. It sits within ~1.44× of the
//! information-theoretic membership bound — smaller than a Bloom filter —
//! but queries require decoding the whole stream. The paper (§3.3) lists it
//! as a Bloom alternative; the tradeoff bench in `crates/bench` compares
//! them.

use crate::bitvec::BitVec;
use crate::Membership;
use graphene_hashes::{siphash24, siphash24_x4, Digest, SipKey, SIP_LANES};
use std::sync::OnceLock;

/// Bit-level writer for Golomb–Rice codes.
#[derive(Default)]
struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the final byte (0..8).
    used: u32,
}

impl BitWriter {
    fn push_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= 1 << (7 - self.used);
        }
        self.used = (self.used + 1) % 8;
    }

    fn push_bits(&mut self, value: u64, nbits: u32) {
        for i in (0..nbits).rev() {
            self.push_bit((value >> i) & 1 == 1);
        }
    }

    fn push_unary(&mut self, q: u64) {
        for _ in 0..q {
            self.push_bit(true);
        }
        self.push_bit(false);
    }
}

/// Bit-level reader mirroring [`BitWriter`].
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    fn read_bit(&mut self) -> Option<bool> {
        let byte = *self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    fn read_bits(&mut self, nbits: u32) -> Option<u64> {
        let mut v = 0u64;
        for _ in 0..nbits {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Some(v)
    }

    fn read_unary(&mut self) -> Option<u64> {
        let mut q = 0u64;
        while self.read_bit()? {
            q += 1;
            if q > 1 << 40 {
                return None; // corrupt stream guard
            }
        }
        Some(q)
    }
}

/// Builder: collect items, then [`GcsBuilder::build`].
pub struct GcsBuilder {
    hashed: Vec<u64>,
    n: usize,
    fpr: f64,
    salt: u64,
}

impl GcsBuilder {
    /// Start a set for `n` expected items at false-positive rate `fpr`.
    pub fn new(n: usize, fpr: f64, salt: u64) -> Self {
        GcsBuilder { hashed: Vec::with_capacity(n), n: n.max(1), fpr, salt }
    }

    /// Add a txid.
    pub fn insert(&mut self, id: &Digest) {
        self.hashed.push(hash_to_range(self.salt, id, range(self.n, self.fpr)));
    }

    /// Add a slice of txids, hashing [`SIP_LANES`] of them lane-interleaved
    /// per loop iteration.
    ///
    /// [`GcsBuilder::build`] sorts and deduplicates, so insertion order —
    /// and therefore batching — cannot change the encoded bytes: the result
    /// is byte-identical to element-at-a-time [`GcsBuilder::insert`] calls.
    pub fn insert_batch(&mut self, ids: &[Digest]) {
        let r = range(self.n, self.fpr);
        self.hashed.reserve(ids.len());
        hash_to_range_batch(self.salt, ids, r, &mut self.hashed);
    }

    /// Encode into an immutable, queryable [`Gcs`].
    pub fn build(mut self) -> Gcs {
        self.hashed.sort_unstable();
        self.hashed.dedup();
        let p = rice_parameter(self.fpr);
        let mut w = BitWriter::default();
        let mut prev = 0u64;
        for &v in &self.hashed {
            let delta = v - prev;
            w.push_unary(delta >> p);
            w.push_bits(delta & ((1u64 << p) - 1), p);
            prev = v;
        }
        Gcs {
            // The builder already holds the sorted deduplicated values, so
            // seed the query cache instead of re-decoding on first lookup.
            decoded: OnceLock::from(self.hashed.clone()),
            data: w.bytes,
            count: self.hashed.len(),
            n: self.n,
            fpr: self.fpr,
            salt: self.salt,
        }
    }
}

/// An immutable Golomb-coded set.
pub struct Gcs {
    data: Vec<u8>,
    count: usize,
    n: usize,
    fpr: f64,
    salt: u64,
    /// Sorted decoded values, materialized at most once (the set is
    /// immutable, so the cache never needs invalidation). Wire bytes are
    /// still `data`; this only accelerates `contains`.
    decoded: OnceLock<Vec<u64>>,
}

fn range(n: usize, fpr: f64) -> u64 {
    ((n as f64 / fpr.clamp(1e-12, 1.0)).ceil() as u64).max(1)
}

fn rice_parameter(fpr: f64) -> u32 {
    (1.0 / fpr.clamp(1e-12, 0.999)).log2().round().max(0.0) as u32
}

fn hash_to_range(salt: u64, id: &Digest, range: u64) -> u64 {
    // Map a 64-bit hash uniformly onto [0, range) by 128-bit multiply-shift.
    let h = siphash24(SipKey::new(salt, 0x4743_5348), &id.0);
    ((h as u128 * range as u128) >> 64) as u64
}

/// [`hash_to_range`] for a slice of txids, [`SIP_LANES`] SipHash states in
/// flight per iteration; appends one value per id to `out` in input order.
/// Spare lanes of a ragged final chunk repeat lane 0 and are discarded.
fn hash_to_range_batch(salt: u64, ids: &[Digest], range: u64, out: &mut Vec<u64>) {
    let keys = [SipKey::new(salt, 0x4743_5348); SIP_LANES];
    let mut msgs = [[0u64; 4]; SIP_LANES];
    for chunk in ids.chunks(SIP_LANES) {
        for (l, id) in chunk.iter().enumerate() {
            msgs[l] = core::array::from_fn(|w| {
                u64::from_le_bytes(id.0[w * 8..w * 8 + 8].try_into().expect("8-byte word"))
            });
        }
        for l in chunk.len()..SIP_LANES {
            msgs[l] = msgs[0];
        }
        let h = siphash24_x4::<4>(&keys, &msgs);
        out.extend(h[..chunk.len()].iter().map(|&h| ((h as u128 * range as u128) >> 64) as u64));
    }
}

impl Gcs {
    /// Number of encoded (distinct) members.
    pub fn len(&self) -> usize {
        self.count
    }

    /// The raw Golomb–Rice byte stream (the wire payload). Exposed so
    /// equivalence tests can assert the encoding byte-for-byte.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// True if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The sorted hashed values, decoded at most once and then shared.
    fn decoded(&self) -> &[u64] {
        self.decoded.get_or_init(|| self.decode())
    }

    /// Batch membership: set `out[j]` iff `self.contains(&ids[j])`.
    ///
    /// The targets are hashed [`SIP_LANES`] at a time, then looked up in the
    /// decoded-value cache; answers are bitwise identical to per-element
    /// [`Membership::contains`] calls (duplicates in `ids` are fine — reads
    /// only).
    pub fn contains_batch_with(&self, ids: &[Digest], out: &mut BitVec) {
        assert_eq!(out.len(), ids.len(), "result mask length must equal batch length");
        out.clear();
        let mut targets = Vec::with_capacity(ids.len());
        hash_to_range_batch(self.salt, ids, range(self.n, self.fpr), &mut targets);
        let decoded = self.decoded();
        for (j, t) in targets.iter().enumerate() {
            if decoded.binary_search(t).is_ok() {
                out.set(j);
            }
        }
    }

    /// Allocating convenience over [`Gcs::contains_batch_with`].
    pub fn contains_batch(&self, ids: &[Digest]) -> BitVec {
        let mut out = BitVec::new(ids.len());
        self.contains_batch_with(ids, &mut out);
        out
    }

    /// Decode the sorted hashed values (linear scan).
    fn decode(&self) -> Vec<u64> {
        let p = rice_parameter(self.fpr);
        let mut r = BitReader::new(&self.data);
        let mut out = Vec::with_capacity(self.count);
        let mut prev = 0u64;
        for _ in 0..self.count {
            let Some(q) = r.read_unary() else { break };
            let Some(rem) = r.read_bits(p) else { break };
            prev += (q << p) | rem;
            out.push(prev);
        }
        out
    }
}

impl Membership for Gcs {
    fn contains(&self, id: &Digest) -> bool {
        let target = hash_to_range(self.salt, id, range(self.n, self.fpr));
        // Decoded lazily at most once, then binary-searched per query.
        self.decoded().binary_search(&target).is_ok()
    }

    fn serialized_size(&self) -> usize {
        self.data.len() + 9
    }

    fn fpr(&self) -> f64 {
        self.fpr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_hashes::sha256;

    fn ids(n: usize, tag: u64) -> Vec<Digest> {
        (0..n as u64).map(|i| sha256(&[i.to_le_bytes(), tag.to_le_bytes()].concat())).collect()
    }

    fn build(set: &[Digest], fpr: f64) -> Gcs {
        let mut b = GcsBuilder::new(set.len(), fpr, 11);
        for id in set {
            b.insert(id);
        }
        b.build()
    }

    #[test]
    fn members_always_match() {
        let set = ids(1000, 1);
        let g = build(&set, 0.01);
        // A few of the 1000 hashed values collide within the range n/f and
        // are deduplicated; membership is unaffected.
        assert!(g.len() <= 1000 && g.len() >= 980, "len {}", g.len());
        assert!(set.iter().all(|id| g.contains(id)));
    }

    #[test]
    fn fpr_bounded() {
        let set = ids(1000, 2);
        let probes = ids(30_000, 3);
        let g = build(&set, 0.01);
        let fp = probes.iter().filter(|id| g.contains(id)).count();
        let rate = fp as f64 / probes.len() as f64;
        assert!(rate < 0.02, "observed fpr {rate}");
    }

    #[test]
    fn smaller_than_bloom_at_same_fpr() {
        let set = ids(2000, 4);
        let g = build(&set, 0.001);
        let bloom_bytes = crate::params::bloom_size_bytes(2000, 0.001);
        assert!(
            g.serialized_size() < bloom_bytes,
            "gcs {} >= bloom {bloom_bytes}",
            g.serialized_size()
        );
    }

    #[test]
    fn empty_set() {
        let g = GcsBuilder::new(10, 0.01, 0).build();
        assert!(g.is_empty());
        assert!(!g.contains(&sha256(b"x")));
    }

    /// Batch insert yields byte-identical encodings and batch queries give
    /// the exact per-element answers, including duplicate keys and the
    /// empty batch.
    #[test]
    fn batch_matches_scalar() {
        let mut set = ids(800, 6);
        set.push(set[3]); // duplicate insert
        let scalar = build(&set, 0.01);
        let mut b = GcsBuilder::new(set.len(), 0.01, 11);
        b.insert_batch(&set);
        let batched = b.build();
        assert_eq!(scalar.data(), batched.data(), "encodings diverged");

        let mut probes = ids(500, 7);
        probes.extend_from_slice(&set[..50]);
        probes.push(probes[0]);
        let mask = batched.contains_batch(&probes);
        for (j, id) in probes.iter().enumerate() {
            assert_eq!(mask.get(j), scalar.contains(id), "probe {j}");
        }
        assert_eq!(batched.contains_batch(&[]).len(), 0);
    }

    #[test]
    fn bitio_roundtrip() {
        let mut w = BitWriter::default();
        w.push_unary(5);
        w.push_bits(0b1011, 4);
        w.push_unary(0);
        w.push_bits(0x3ff, 10);
        let mut r = BitReader::new(&w.bytes);
        assert_eq!(r.read_unary(), Some(5));
        assert_eq!(r.read_bits(4), Some(0b1011));
        assert_eq!(r.read_unary(), Some(0));
        assert_eq!(r.read_bits(10), Some(0x3ff));
    }

    #[test]
    fn reader_handles_truncation() {
        let mut r = BitReader::new(&[0b1111_1111]);
        // All ones and then the stream ends: unary never terminates.
        assert_eq!(r.read_unary(), None);
    }
}
