//! Probabilistic set-membership filters for the Graphene suite.
//!
//! Graphene's sender filter `S` and receiver filter `R` (paper §3) are
//! classic Bloom filters; §3.3 notes that "any alternative can be used if
//! Eqs. 2, 3, 4, and 5 are updated appropriately". This crate provides:
//!
//! * [`BloomFilter`] — the classic filter, sized by the paper's byte formula
//!   `-n·ln f / (8·ln² 2)`, with two index-derivation strategies: portable
//!   double hashing (Kirsch–Mitzenmacher) and the §6.3 *k-piece* optimization
//!   that slices the already-cryptographic txid instead of rehashing it.
//! * [`CuckooFilter`] — Fan et al.'s cuckoo filter (partial-key cuckoo
//!   hashing, 4-slot buckets), supporting deletion.
//! * [`Gcs`] — a Golomb-coded set: near information-theoretic size at the
//!   cost of linear-scan queries.
//!
//! All three implement the [`Membership`] trait so the protocol layer can be
//! instantiated with any backend (ablation candidate 6 in `DESIGN.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitvec;
pub mod bloom;
pub mod cuckoo;
pub mod gcs;
pub mod params;

pub use bitvec::BitVec;
pub use bloom::{BloomFilter, HashStrategy, ProbeScratch, MAX_BATCH};
pub use cuckoo::CuckooFilter;
pub use gcs::{Gcs, GcsBuilder};
pub use params::{bloom_bits, bloom_size_bytes, optimal_hash_count};

use graphene_hashes::Digest;

/// Common interface over approximate-membership structures keyed by txids.
pub trait Membership {
    /// True if `id` may be in the set (false positives at rate [`Membership::fpr`]);
    /// false means definitely absent.
    fn contains(&self, id: &Digest) -> bool;

    /// Size of the structure as transmitted on the wire, in bytes.
    fn serialized_size(&self) -> usize;

    /// The false-positive rate this structure was built for.
    fn fpr(&self) -> f64;
}
