//! Bloom-filter sizing formulas from the paper (§2.1, §3.3.1).

/// Number of filter bits for `n` items at false-positive rate `f`:
/// `-n·log2(f) / ln 2` (paper §2.1), i.e. `-n·ln f / ln² 2`.
///
/// Clamps to at least 1 bit for a non-degenerate filter; `f >= 1` yields 0
/// bits (the match-everything filter used when `m ≈ n`, §3.3.1).
pub fn bloom_bits(n: usize, f: f64) -> usize {
    if f >= 1.0 || n == 0 {
        return 0;
    }
    let f = f.max(f64::MIN_POSITIVE);
    let bits = -(n as f64) * f.ln() / (core::f64::consts::LN_2 * core::f64::consts::LN_2);
    (bits.ceil() as usize).max(1)
}

/// Size in bytes of the Bloom filter payload: `-n·ln f / (8·ln² 2)` (Eq. 2's
/// `T_BF` term), realized with ceiling to whole bytes.
pub fn bloom_size_bytes(n: usize, f: f64) -> usize {
    bloom_bits(n, f).div_ceil(8)
}

/// Optimal number of hash functions for `bits` total bits and `n` items:
/// `k = (bits/n)·ln 2`, at least 1.
pub fn optimal_hash_count(bits: usize, n: usize) -> u32 {
    if n == 0 || bits == 0 {
        return 1;
    }
    let k = (bits as f64 / n as f64) * core::f64::consts::LN_2;
    (k.round() as u32).max(1)
}

/// The theoretical false-positive rate of a Bloom filter with `bits` bits,
/// `k` hashes and `n` inserted items: `(1 - e^{-kn/bits})^k`.
pub fn theoretical_fpr(bits: usize, k: u32, n: usize) -> f64 {
    if bits == 0 {
        return 1.0;
    }
    if n == 0 {
        return 0.0;
    }
    let exponent = -(k as f64) * (n as f64) / (bits as f64);
    (1.0 - exponent.exp()).powi(k as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_formula_matches_paper() {
        // n = 1000, f = 0.01: -1000·ln(0.01)/ln²2 ≈ 9585.1 bits.
        let bits = bloom_bits(1000, 0.01);
        assert!((9585..=9587).contains(&bits), "got {bits}");
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(bloom_bits(1000, 1.0), 0);
        assert_eq!(bloom_bits(0, 0.01), 0);
        assert_eq!(bloom_size_bytes(1000, 1.0), 0);
        assert_eq!(bloom_bits(10, 0.0), bloom_bits(10, f64::MIN_POSITIVE));
    }

    #[test]
    fn optimal_k_near_log2_inv_f() {
        // For optimally sized filters, k ≈ -log2(f).
        for &f in &[0.1, 0.01, 0.001] {
            let n = 5000;
            let k = optimal_hash_count(bloom_bits(n, f), n);
            let expect = (-f.log2()).round() as u32;
            assert!((k as i64 - expect as i64).abs() <= 1, "f={f}: k={k} expect≈{expect}");
        }
    }

    #[test]
    fn theoretical_fpr_close_to_target() {
        for &f in &[0.5, 0.1, 0.01] {
            let n = 10_000;
            let bits = bloom_bits(n, f);
            let k = optimal_hash_count(bits, n);
            let actual = theoretical_fpr(bits, k, n);
            assert!(actual <= f * 1.25, "f={f}: theoretical {actual} too far above target");
        }
    }

    #[test]
    fn size_monotone_in_n_and_precision() {
        assert!(bloom_size_bytes(2000, 0.01) > bloom_size_bytes(1000, 0.01));
        assert!(bloom_size_bytes(1000, 0.001) > bloom_size_bytes(1000, 0.01));
    }
}
