//! Property-based tests for the membership structures.

use graphene_bloom::{
    bitvec::BitVec, BloomFilter, CuckooFilter, GcsBuilder, HashStrategy, Membership,
};
use graphene_hashes::sha256;
use proptest::prelude::*;

fn digest(seed: u64) -> graphene_hashes::Digest {
    sha256(&seed.to_le_bytes())
}

proptest! {
    /// No Bloom false negatives, any geometry, either strategy.
    #[test]
    fn bloom_no_false_negatives(
        seeds in proptest::collection::hash_set(any::<u64>(), 1..200),
        fpr in 0.0005f64..0.9,
        salt: u64,
        kpiece: bool,
    ) {
        let strategy = if kpiece { HashStrategy::KPiece } else { HashStrategy::DoubleHashing };
        let mut f = BloomFilter::with_strategy(seeds.len(), fpr, salt, strategy);
        let ids: Vec<_> = seeds.iter().map(|s| digest(*s)).collect();
        for id in &ids {
            f.insert(id);
        }
        prop_assert!(ids.iter().all(|id| f.contains(id)));
    }

    /// Cuckoo filters: membership after insert, absence after remove.
    #[test]
    fn cuckoo_insert_remove(
        seeds in proptest::collection::hash_set(any::<u64>(), 1..150),
        salt: u64,
    ) {
        let mut f = CuckooFilter::new(seeds.len() * 2, 0.01, salt);
        let ids: Vec<_> = seeds.iter().map(|s| digest(*s)).collect();
        for id in &ids {
            prop_assert!(f.insert(id), "insert failed below capacity");
        }
        prop_assert!(ids.iter().all(|id| f.contains(id)));
        for id in &ids {
            prop_assert!(f.remove(id));
        }
        prop_assert!(f.is_empty());
    }

    /// GCS: every member matches after build.
    #[test]
    fn gcs_members_match(
        seeds in proptest::collection::hash_set(any::<u64>(), 1..150),
        fpr in 0.001f64..0.3,
        salt: u64,
    ) {
        let mut b = GcsBuilder::new(seeds.len(), fpr, salt);
        let ids: Vec<_> = seeds.iter().map(|s| digest(*s)).collect();
        for id in &ids {
            b.insert(id);
        }
        let g = b.build();
        prop_assert!(ids.iter().all(|id| g.contains(id)));
    }

    /// BitVec round-trips through bytes at any length.
    #[test]
    fn bitvec_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
        let mut v = BitVec::new(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i);
            }
        }
        let bytes = v.to_bytes();
        let back = BitVec::from_bytes(&bytes, bits.len()).expect("roundtrip");
        prop_assert_eq!(back, v);
    }

    /// The degenerate (match-all) filter accepts everything.
    #[test]
    fn match_all_accepts_all(seed: u64) {
        let f = BloomFilter::new(10, 1.0, 0);
        prop_assert!(f.contains(&digest(seed)));
    }
}
