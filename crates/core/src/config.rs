//! Protocol configuration.

use graphene_blockchain::OrderingScheme;
use graphene_bloom::HashStrategy;

/// Tunables for a Graphene deployment.
///
/// Defaults mirror the paper's evaluation: `β = 239/240`, IBLTs
/// parameterized for a `1/240` decode-failure rate, CTOR ordering,
/// ping-pong decoding enabled.
#[derive(Clone, Copy, Debug)]
pub struct GrapheneConfig {
    /// β-assurance level for the Chernoff bounds (Theorems 1–3).
    pub beta: f64,
    /// Target IBLT decode-failure denominator (`1/x`) used when sizing
    /// IBLTs from the parameter table.
    pub iblt_rate_denom: u32,
    /// Bloom index-derivation strategy (§6.3 k-piece vs. double hashing).
    pub bloom_strategy: HashStrategy,
    /// Transaction ordering scheme (CTOR ⇒ no ordering bytes, §6.2).
    pub ordering: OrderingScheme,
    /// Enable §4.2 ping-pong decoding in Protocol 2.
    pub pingpong: bool,
    /// Proactively prefill transactions never inv'd to the peer
    /// (Protocol 1 step 3 note).
    pub prefill: bool,
    /// FPR override used by the `m ≈ n` special case (§3.3.1; the paper
    /// uses 0.1 and reports 0.001–0.2 all work).
    pub special_case_fpr: f64,
    /// Extension (not in the paper): when Protocol 1's IBLT decodes
    /// *completely* but reveals missing transactions, fetch exactly those
    /// by short ID instead of running the full Protocol 2 round — the
    /// receiver already knows precisely what it lacks, so Bloom filter `R`
    /// and IBLT `J` add nothing. Off by default (paper-faithful).
    pub direct_fetch: bool,
}

impl Default for GrapheneConfig {
    fn default() -> Self {
        GrapheneConfig {
            beta: 239.0 / 240.0,
            iblt_rate_denom: 240,
            bloom_strategy: HashStrategy::DoubleHashing,
            ordering: OrderingScheme::Ctor,
            pingpong: true,
            prefill: true,
            special_case_fpr: 0.1,
            direct_fetch: false,
        }
    }
}

impl GrapheneConfig {
    /// Sanity-check the configuration.
    pub fn validate(&self) -> Result<(), crate::GrapheneError> {
        if !(0.0 < self.beta && self.beta < 1.0) {
            return Err(crate::GrapheneError::BadConfig("beta must be in (0, 1)"));
        }
        if self.iblt_rate_denom == 0 {
            return Err(crate::GrapheneError::BadConfig("iblt_rate_denom must be positive"));
        }
        if !(0.0 < self.special_case_fpr && self.special_case_fpr < 1.0) {
            return Err(crate::GrapheneError::BadConfig("special_case_fpr must be in (0, 1)"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(GrapheneConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_bad_beta() {
        let c = GrapheneConfig { beta: 1.0, ..Default::default() };
        assert!(c.validate().is_err());
        let c = GrapheneConfig { beta: 0.0, ..Default::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_bad_rate_and_fpr() {
        let c = GrapheneConfig { iblt_rate_denom: 0, ..Default::default() };
        assert!(c.validate().is_err());
        let c = GrapheneConfig { special_case_fpr: 1.5, ..Default::default() };
        assert!(c.validate().is_err());
    }
}
