//! Encode-once relay cache: canonical Graphene encodings shared across
//! receivers (ROADMAP open item 2, the relay-node architecture).
//!
//! Protocol 1's sender-side work — sizing `a*`, building Bloom filter `S`
//! and IBLT `I`, serializing the frame — depends only on the block and the
//! receiver's mempool size `m`. A relay node serving a block to thousands
//! of peers therefore repeats near-identical work per peer. This module
//! caches the *encoded wire frame* keyed by `(block id, m-bucket, protocol
//! variant)` and hands out refcounted [`Bytes`] clones, so one encoding
//! serves every receiver in the same mempool-size class (the same
//! encode-once/serve-many shape BIP-152 compact-block relays use).
//!
//! # Keying and canonicalization
//!
//! Receivers are bucketed by rounding their reported mempool count **up**
//! to the next power of two ([`MBucket::for_count`]); the cached frame is
//! encoded at the bucket's upper bound ([`MBucket::canonical_m`]). Rounding
//! up is the conservative direction: a larger `m` sizes a larger `a*` and a
//! lower `f_S`, and a receiver whose true mempool is smaller than the
//! canonical `m` passes *fewer* items through `S` than the filter was
//! sized for. β-assurance is preserved for every receiver in the bucket.
//!
//! # What must never be cached
//!
//! * **Retry-rung encodings.** Every rung of the recovery ladder re-salts
//!   `S` and `I` ([`RetryTweak::for_attempt`]) precisely so a failed decode
//!   is retried against *independent* hash functions. Serving a cached
//!   attempt-0 frame in response to a `GetGrapheneRetryMsg` would silently
//!   reuse the salts that just failed. The [`EncodeCache::cacheable`] guard
//!   admits only `attempt == 0 && salt_tweak == 0` encodings.
//! * **Peer-specific frames.** When prefilling is on and a per-peer inv log
//!   is supplied, the prefilled transaction list differs per receiver.
//! * **Protocol 2 responses.** `GrapheneRecoveryMsg` is a function of the
//!   receiver's Bloom filter `R` — receiver-dependent by construction.
//! * **Rateless cell windows.** A `RatelessCellsMsg` answers a window
//!   request keyed by its start index, and every request names a window the
//!   stream has not served that receiver yet — a cached frame could only
//!   replay cells the receiver already consumed (the decoder rejects the
//!   duplicate as a gap). Servers regenerate any window statelessly from
//!   `(block, salt)` and count the encode as a bypass.
//!
//! Bypasses are counted ([`CacheStats::bypasses`]) so the fan-out
//! experiment can report them as encodings performed.
//!
//! # Bounds
//!
//! The cache holds at most `capacity_bytes` of frame payload, evicting the
//! least-recently-used entry first. The capacity is meant to be wired into
//! the node's resource accounting (netsim's `ResourceLimits` counts it
//! toward the accounted ceiling). The cache is process memory: it is
//! deliberately absent from `NodeSnapshot`, and a crash/restore cycle
//! restarts it empty.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::protocol1::RetryTweak;
use bytes::Bytes;
use graphene_hashes::Digest;
use parking_lot::Mutex;
use std::collections::HashMap;

/// A mempool-size class: receivers whose reported `m` rounds up to the
/// same power of two share one canonical encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MBucket {
    canonical: u64,
}

impl MBucket {
    /// The bucket for variants with no mempool-size dependence (full
    /// blocks).
    pub const NONE: MBucket = MBucket { canonical: 0 };

    /// Bucket a reported mempool count: round up to the next power of two
    /// (minimum 1, so `m = 0` and `m = 1` share a bucket).
    pub fn for_count(m: u64) -> MBucket {
        MBucket { canonical: m.max(1).next_power_of_two() }
    }

    /// The canonical `m` the bucket's shared encoding is sized for — its
    /// upper bound, the conservative direction for β-assurance.
    pub fn canonical_m(&self) -> u64 {
        self.canonical
    }
}

/// Which sender-side encoding a cache entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheVariant {
    /// The Protocol 1 `GrapheneBlockMsg` frame (`S` + `I`).
    Graphene,
    /// A `FullBlockMsg` frame (the ladder's terminal rung).
    FullBlock,
}

/// Cache key: one canonical encoding per (block, size class, variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The block being relayed.
    pub block: Digest,
    /// The receiver's mempool-size class ([`MBucket::NONE`] for variants
    /// with no `m` dependence).
    pub bucket: MBucket,
    /// Which encoding this entry holds.
    pub variant: CacheVariant,
}

impl CacheKey {
    /// Key for the Protocol 1 frame serving mempool-size class `bucket`.
    pub fn graphene(block: Digest, bucket: MBucket) -> CacheKey {
        CacheKey { block, bucket, variant: CacheVariant::Graphene }
    }

    /// Key for the full-block frame (no `m` dependence).
    pub fn full_block(block: Digest) -> CacheKey {
        CacheKey { block, bucket: MBucket::NONE, variant: CacheVariant::FullBlock }
    }
}

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache (each one is an encoding *not*
    /// performed).
    pub hits: u64,
    /// Lookups that missed and forced a fresh encoding.
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Frame bytes whose encoding was skipped thanks to a hit.
    pub bytes_saved: u64,
    /// Encodings that were not cache-eligible (retry rungs, peer-specific
    /// prefill, receiver-dependent Protocol 2 responses).
    pub bypasses: u64,
}

struct Entry {
    frame: Bytes,
    last_used: u64,
}

struct Inner {
    map: HashMap<CacheKey, Entry>,
    used_bytes: u64,
    tick: u64,
    stats: CacheStats,
}

/// A bounded, LRU-evicting cache of encoded wire frames.
///
/// Interior mutability (a `parking_lot::Mutex`) lets sender entry points
/// take `&EncodeCache`, so one cache can be threaded through the whole
/// relay path without plumbing `&mut` everywhere.
pub struct EncodeCache {
    capacity_bytes: u64,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for EncodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("EncodeCache")
            .field("capacity_bytes", &self.capacity_bytes)
            .field("used_bytes", &inner.used_bytes)
            .field("entries", &inner.map.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl EncodeCache {
    /// A cache holding at most `capacity_bytes` of frame payload.
    pub fn new(capacity_bytes: u64) -> EncodeCache {
        EncodeCache {
            capacity_bytes,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                used_bytes: 0,
                tick: 0,
                stats: CacheStats::default(),
            }),
        }
    }

    /// The guard deciding whether an encoding may be served from / stored
    /// into the cache. Only the canonical attempt-0 encoding with no
    /// per-peer prefill qualifies; see the module docs for why retry rungs
    /// must always re-encode.
    pub fn cacheable(tweak: &RetryTweak, peer_specific: bool) -> bool {
        tweak.attempt == 0 && tweak.salt_tweak == 0 && !peer_specific
    }

    /// Look up a frame, bumping its LRU position. Counts a hit (and the
    /// bytes whose encoding was skipped) or a miss.
    pub fn lookup(&self, key: &CacheKey) -> Option<Bytes> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let frame = entry.frame.clone();
                inner.stats.hits += 1;
                inner.stats.bytes_saved += frame.len() as u64;
                Some(frame)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a frame, evicting least-recently-used entries until the
    /// byte budget holds. A frame larger than the whole budget is not
    /// stored (it could only ever evict everything else for one entry).
    pub fn insert(&self, key: CacheKey, frame: Bytes) {
        let len = frame.len() as u64;
        if len > self.capacity_bytes {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.remove(&key) {
            inner.used_bytes -= old.frame.len() as u64;
        }
        while inner.used_bytes + len > self.capacity_bytes {
            let victim = inner.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    if let Some(e) = inner.map.remove(&k) {
                        inner.used_bytes -= e.frame.len() as u64;
                        inner.stats.evictions += 1;
                    }
                }
                None => break,
            }
        }
        inner.used_bytes += len;
        inner.map.insert(key, Entry { frame, last_used: tick });
    }

    /// Record a non-cacheable encoding (retry rung, peer-specific prefill,
    /// Protocol 2 response).
    pub fn note_bypass(&self) {
        self.inner.lock().stats.bypasses += 1;
    }

    /// Snapshot of the effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Bytes of frame payload currently held.
    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().used_bytes
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Number of cached frames.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when no frames are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GrapheneConfig;

    fn frame(n: usize, fill: u8) -> Bytes {
        Bytes::from(vec![fill; n])
    }

    fn key(tag: u8, m: u64) -> CacheKey {
        CacheKey::graphene(Digest([tag; 32]), MBucket::for_count(m))
    }

    #[test]
    fn buckets_round_up_to_powers_of_two() {
        assert_eq!(MBucket::for_count(0).canonical_m(), 1);
        assert_eq!(MBucket::for_count(1).canonical_m(), 1);
        assert_eq!(MBucket::for_count(2).canonical_m(), 2);
        assert_eq!(MBucket::for_count(3).canonical_m(), 4);
        assert_eq!(MBucket::for_count(1000).canonical_m(), 1024);
        assert_eq!(MBucket::for_count(1024).canonical_m(), 1024);
        assert_eq!(MBucket::for_count(1025).canonical_m(), 2048);
        // Same bucket ⇒ same key; adjacent buckets differ.
        assert_eq!(MBucket::for_count(513), MBucket::for_count(1024));
        assert_ne!(MBucket::for_count(512), MBucket::for_count(513));
    }

    #[test]
    fn hit_miss_and_bytes_saved_counters() {
        let c = EncodeCache::new(1 << 16);
        assert!(c.lookup(&key(1, 100)).is_none());
        c.insert(key(1, 100), frame(64, 0xaa));
        let got = c.lookup(&key(1, 100)).expect("hit");
        assert_eq!(&got[..], &[0xaa; 64][..]);
        // A different bucket of the same block misses.
        assert!(c.lookup(&key(1, 5000)).is_none());
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.bytes_saved, 64);
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let c = EncodeCache::new(256);
        c.insert(key(1, 10), frame(100, 1));
        c.insert(key(2, 10), frame(100, 2));
        // Touch key 1 so key 2 is the LRU victim.
        assert!(c.lookup(&key(1, 10)).is_some());
        c.insert(key(3, 10), frame(100, 3));
        assert!(c.used_bytes() <= 256);
        assert!(c.lookup(&key(1, 10)).is_some(), "recently used entry evicted");
        assert!(c.lookup(&key(2, 10)).is_none(), "LRU entry survived over budget");
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn oversized_frame_is_not_stored() {
        let c = EncodeCache::new(64);
        c.insert(key(1, 10), frame(65, 9));
        assert_eq!(c.used_bytes(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_replaces_without_leaking_bytes() {
        let c = EncodeCache::new(1024);
        c.insert(key(1, 10), frame(100, 1));
        c.insert(key(1, 10), frame(40, 2));
        assert_eq!(c.used_bytes(), 40);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn cacheable_guard_rejects_retries_and_prefill() {
        let cfg = GrapheneConfig::default();
        assert!(EncodeCache::cacheable(&RetryTweak::initial(&cfg), false));
        assert!(!EncodeCache::cacheable(&RetryTweak::initial(&cfg), true));
        for attempt in 1..4 {
            let t = RetryTweak::for_attempt(&cfg, attempt);
            assert!(!EncodeCache::cacheable(&t, false), "attempt {attempt} admitted");
            assert_ne!(t.salt_tweak, 0);
        }
    }
}
