//! Error types for the Graphene protocol.

use core::fmt;

/// Failures surfaced by the protocol layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrapheneError {
    /// Invalid configuration.
    BadConfig(&'static str),
    /// Protocol 1 could not reconstruct the block (expected when the
    /// receiver is missing transactions; the caller should run Protocol 2).
    Protocol1Failed(P1Failure),
    /// Protocol 2 could not reconstruct the block.
    Protocol2Failed(P2Failure),
    /// A peer sent a provably malformed structure (ban-worthy, §6.1).
    Malformed(&'static str),
}

/// Why Protocol 1 failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum P1Failure {
    /// `I ⊖ I′` left a non-empty 2-core.
    IbltIncomplete,
    /// The IBLT recovered transactions the receiver does not hold — the
    /// mempool is missing part of the block.
    MissingTransactions {
        /// How many block transactions the receiver provably lacks.
        count: usize,
    },
    /// Reconstructed set hashed to the wrong Merkle root.
    MerkleMismatch,
    /// Two mempool transactions share a short ID (§6.1 collision), so the
    /// candidate set is ambiguous.
    ShortIdCollision,
    /// The peeling loop recovered the same value twice — only possible when
    /// the sender inserted an item into fewer than `k` cells (the §6.1
    /// malformed-IBLT attack). Provably the sender's fault: ban-worthy.
    Malformed(&'static str),
}

/// Why Protocol 2 failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum P2Failure {
    /// `J ⊖ J′` (with ping-pong) left a non-empty 2-core.
    IbltIncomplete,
    /// Reconstructed set hashed to the wrong Merkle root.
    MerkleMismatch,
    /// Two candidate transactions share a short ID.
    ShortIdCollision,
    /// `J` peeled the same value twice on the plain (non-ping-pong) path —
    /// the §6.1 malformed-IBLT signature, provably the sender's fault.
    /// (Ping-pong decode failures are *not* classified here: the receiver's
    /// own `cancel` operations can manufacture double-decodes.)
    Malformed(&'static str),
}

impl fmt::Display for GrapheneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrapheneError::BadConfig(what) => write!(f, "bad configuration: {what}"),
            GrapheneError::Protocol1Failed(why) => write!(f, "protocol 1 failed: {why:?}"),
            GrapheneError::Protocol2Failed(why) => write!(f, "protocol 2 failed: {why:?}"),
            GrapheneError::Malformed(what) => write!(f, "malformed peer data: {what}"),
        }
    }
}

impl std::error::Error for GrapheneError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GrapheneError::Protocol1Failed(P1Failure::MissingTransactions { count: 3 });
        assert!(e.to_string().contains("protocol 1"));
        assert!(format!("{e}").contains("3"));
    }
}
