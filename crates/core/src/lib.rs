//! Graphene: efficient interactive set reconciliation for block propagation.
//!
//! This crate is the paper's primary contribution (Ozisik et al., SIGCOMM
//! 2019): a block-relay protocol combining a Bloom filter `S` with an IBLT
//! `I`, each too weak alone but whose *sum* is smaller than either — or than
//! any deployed alternative (Compact Blocks, XThin).
//!
//! # Protocol 1 (receiver has the whole block)
//!
//! The sender learns the receiver's mempool size `m` from `getdata`, picks
//! the false-positive rate `f_S = a/(m-n)` that minimizes the combined size
//! of `S` and `I` (Eq. 2), pads the IBLT capacity to `a* > a` false
//! positives with β-assurance (Theorem 1), and sends both. The receiver
//! passes her mempool through `S`, builds `I′` from the survivors, and peels
//! `I ⊖ I′` to eliminate the false positives. See [`protocol1`].
//!
//! # Protocol 2 (receiver missing transactions)
//!
//! If `I ⊖ I′` does not decode (or the Merkle root fails), the receiver
//! derives β-assurance bounds `x* ≤ x` and `y* ≥ y` on the unobservable
//! true/false-positive split of her candidate set (Theorems 2–3), sends a
//! Bloom filter `R` of the candidates, and the sender answers with the
//! definitely-missing transactions plus an IBLT `J` sized for `b + y*`.
//! Ping-pong decoding across `I ⊖ I′` and `J ⊖ J′` (§4.2) squares the
//! residual failure rate. See [`protocol2`].
//!
//! The same machinery synchronizes whole mempools ([`mempool_sync`]), with
//! the `m ≈ n` special case of §3.3.1 handled via a third filter `F`.
//!
//! [`session`] glues both protocols into a two-party relay with exact
//! byte accounting per message — the quantity every figure in the paper
//! plots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod encode_cache;
pub mod error;
pub mod mempool_sync;
pub mod ordering;
pub mod params;
pub mod protocol1;
pub mod protocol2;
pub mod recovery;
pub mod session;

pub use config::GrapheneConfig;
pub use encode_cache::{CacheKey, CacheStats, CacheVariant, EncodeCache, MBucket};
pub use error::GrapheneError;
pub use params::{a_star, optimal_a, optimal_b, x_star, y_star, ProtocolParams};
pub use recovery::{relay_with_recovery, LadderReport, RecoveryPolicy, RungKind, RungReport};
pub use session::{
    relay_block, relay_block_attempt, relay_block_attempt_cached, relay_block_cached, NodeSnapshot,
    RelayOutcome, RelayReport,
};
