//! Mempool synchronization (paper §3.2.1): two peers obtain the union of
//! their transaction pools using the same machinery as block relay.
//!
//! The sender (ideally the peer with the *smaller* pool — `S` scales with
//! the sender's set) places his entire mempool in `S` and `I`. The receiver
//! partitions her pool into `Z` (passes `S`) and `H` (fails `S` — hers
//! alone, definitely unknown to the sender). Reconciliation then proceeds
//! exactly as Protocols 1/2 over the pseudo-block "sender's mempool": the
//! receiver learns the sender-only transactions, and ships `H` plus any
//! discovered `S` false positives back. Because `m ≈ n` is the common shape
//! here, the §3.3.1 special case (filter `F`) triggers routinely — Fig. 18
//! evaluates exactly this path.

use crate::config::GrapheneConfig;
use crate::protocol1::{self};
use crate::protocol2::{self};
use crate::session::ByteBreakdown;
use graphene_blockchain::{Block, Mempool, OrderingScheme, TxId};
use graphene_bloom::Membership;
use graphene_hashes::{short_id_8, Digest};
use graphene_wire::messages::{BlockTxnMsg, GetDataMsg, Message};
use graphene_wire::varint::varint_len;
use std::collections::HashMap;

/// Result of a synchronization round.
#[derive(Debug, Clone)]
pub struct SyncReport {
    /// Whether both peers ended with the exact union.
    pub success: bool,
    /// Byte breakdown of the Graphene structures (tx bodies accounted in
    /// `missing_txns`/`extra_fetch`/`h_transfer`).
    pub bytes: ByteBreakdown,
    /// Bytes spent shipping the receiver-only transactions (`H` + false
    /// positives) back to the sender.
    pub h_transfer: usize,
    /// Round trips used.
    pub rounds: u32,
    /// Size of the final union.
    pub union_size: usize,
}

/// Synchronize two mempools; returns the report plus both updated pools.
pub fn sync_mempools(
    sender: &Mempool,
    receiver: &Mempool,
    cfg: &GrapheneConfig,
) -> (SyncReport, Mempool, Mempool) {
    let mut bytes = ByteBreakdown::default();
    let m = receiver.len();

    // The pseudo-block: the sender's entire pool, CTOR-ordered so the
    // Merkle commitment doubles as the reconciliation check.
    let txns: Vec<_> = sender.iter().cloned().collect();
    let block = Block::assemble(Digest::ZERO, 0, txns, OrderingScheme::Ctor);

    // Handshake: receiver announces its pool size (getdata shape).
    bytes.getdata =
        Message::GetData(GetDataMsg { block_id: block.id(), mempool_count: m as u64 }).wire_size();

    let (p1_msg, _) = protocol1::sender_encode(&block, m as u64, None, cfg);
    bytes.bloom_s = p1_msg.bloom_s.serialized_size();
    bytes.iblt_i = p1_msg.iblt_i.serialized_size();
    bytes.p1_overhead = Message::GrapheneBlock(p1_msg.clone()).wire_size()
        - bytes.bloom_s
        - bytes.iblt_i
        - p1_msg.order_bytes.len();

    let mut rounds = 2u32;
    let mut receiver_pool = receiver.clone();
    // Once the receiver reconstructs the sender's pool exactly, everything
    // of hers outside it — H (failed S outright) plus the S false positives
    // the IBLT identified — ships back to the sender.
    let mut known_sender_set: Option<Vec<TxId>> = None;

    let p1_result = protocol1::receiver_decode(&p1_msg, receiver, cfg);
    let reconciled = match p1_result {
        Ok(ok) => {
            // Sender's pool ⊆ receiver's pool (plus FPs already peeled).
            // The receiver reconstructed the pseudo-block exactly; nothing
            // to fetch.
            known_sender_set = Some(ok.ordered_ids);
            true
        }
        Err((_why, mut state)) => {
            rounds += 2;
            let (req, _rs) = protocol2::receiver_request(&state, block.id(), block.len(), m, cfg);
            let req_wire = Message::GrapheneRequest(req.clone()).wire_size();
            bytes.bloom_r = req.bloom_r.serialized_size();
            bytes.p2_request_overhead = req_wire - bytes.bloom_r;

            let rec = protocol2::sender_respond(&block, &req, m, cfg);
            bytes.missing_txns =
                rec.missing.iter().map(|tx| varint_len(tx.size() as u64) + tx.size()).sum();
            bytes.iblt_j = rec.iblt_j.serialized_size();
            bytes.bloom_f = rec.bloom_f.as_ref().map_or(0, |f| f.serialized_size());
            bytes.p2_response_overhead = Message::GrapheneRecovery(rec.clone()).wire_size()
                - bytes.missing_txns
                - bytes.iblt_j
                - bytes.bloom_f;

            // Sender-only transactions delivered outright enter the
            // receiver's pool.
            for tx in &rec.missing {
                receiver_pool.insert(tx.clone());
            }

            match protocol2::receiver_complete(
                &mut state,
                &rec,
                block.header().merkle_root,
                &p1_msg.order_bytes,
                cfg,
            ) {
                Ok(ok) => {
                    let mut set: Vec<TxId> = ok.resolved.values().copied().collect();
                    if ok.needs_fetch.is_empty() {
                        known_sender_set = Some(set);
                        true
                    } else {
                        // Extra round: fetch stragglers by short ID.
                        rounds += 2;
                        let lookup: HashMap<u64, &graphene_blockchain::Transaction> =
                            block.txns().iter().map(|tx| (short_id_8(tx.id()), tx)).collect();
                        let mut fetched = Vec::new();
                        for s in &ok.needs_fetch {
                            if let Some(tx) = lookup.get(s) {
                                fetched.push((*tx).clone());
                            }
                        }
                        let all_found = fetched.len() == ok.needs_fetch.len();
                        let body_bytes: usize =
                            fetched.iter().map(|tx| varint_len(tx.size() as u64) + tx.size()).sum();
                        bytes.extra_fetch = 5
                            + 32
                            + varint_len(ok.needs_fetch.len() as u64)
                            + 8 * ok.needs_fetch.len()
                            + Message::BlockTxn(BlockTxnMsg {
                                block_id: block.id(),
                                txns: fetched.clone(),
                            })
                            .wire_size()
                            - body_bytes;
                        bytes.missing_txns += body_bytes;
                        for tx in fetched {
                            set.push(*tx.id());
                            receiver_pool.insert(tx);
                        }
                        if all_found {
                            known_sender_set = Some(set);
                        }
                        all_found
                    }
                }
                Err(_) => false,
            }
        }
    };

    // Ship back everything the sender lacks: H plus discovered false
    // positives, i.e. receiver transactions outside the reconstructed
    // sender set. If reconciliation failed, fall back to H alone (the
    // definite negatives of S).
    let h_ids: Vec<TxId> = match &known_sender_set {
        Some(set) => {
            let set: std::collections::HashSet<TxId> = set.iter().copied().collect();
            receiver.iter().filter(|tx| !set.contains(tx.id())).map(|tx| *tx.id()).collect()
        }
        None => {
            // Batch-probe S over the receiver pool (interleaved hashing);
            // same answers and order as per-element `contains` calls.
            let pool_ids: Vec<TxId> = receiver.iter().map(|tx| *tx.id()).collect();
            let hits = p1_msg.bloom_s.contains_batch(&pool_ids);
            pool_ids.iter().enumerate().filter(|(j, _)| !hits.get(*j)).map(|(_, id)| *id).collect()
        }
    };
    let h_txns: Vec<_> = h_ids.iter().filter_map(|id| receiver.get(id)).cloned().collect();
    let h_transfer = if h_txns.is_empty() {
        0
    } else {
        Message::BlockTxn(BlockTxnMsg { block_id: block.id(), txns: h_txns.clone() }).wire_size()
    };
    let mut sender_pool = sender.clone();
    for tx in h_txns {
        sender_pool.insert(tx);
    }
    // Sender also adopts everything it already had (no-op) — the receiver's
    // remaining novel transactions all failed S or were discovered above.

    // Ground truth: both pools must now equal the union.
    let mut union_ids: Vec<TxId> =
        sender.iter().chain(receiver.iter()).map(|tx| *tx.id()).collect();
    union_ids.sort();
    union_ids.dedup();
    let success = reconciled
        && union_ids.iter().all(|id| sender_pool.contains(id))
        && union_ids.iter().all(|id| receiver_pool.contains(id));

    (
        SyncReport { success, bytes, h_transfer, rounds, union_size: union_ids.len() },
        sender_pool,
        receiver_pool,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_blockchain::{Scenario, TxProfile};
    use rand::{rngs::StdRng, SeedableRng};

    fn cfg() -> GrapheneConfig {
        GrapheneConfig::default()
    }

    fn pools(n: usize, common: f64, seed: u64) -> (Mempool, Mempool) {
        Scenario::mempool_sync(n, common, TxProfile::Fixed(150), &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn identical_pools_trivial() {
        let (a, b) = pools(300, 1.0, 1);
        let (report, sa, sb) = sync_mempools(&a, &b, &cfg());
        assert!(report.success);
        assert_eq!(report.union_size, 300);
        assert_eq!(sa.len(), 300);
        assert_eq!(sb.len(), 300);
        assert_eq!(report.h_transfer, 0);
    }

    #[test]
    fn partial_overlap_unions() {
        for common in [0.0, 0.3, 0.7, 0.9] {
            let (a, b) = pools(200, common, (common * 100.0) as u64 + 2);
            let (report, sa, sb) = sync_mempools(&a, &b, &cfg());
            assert!(report.success, "common = {common}: {report:?}");
            assert_eq!(sa.len(), report.union_size, "common = {common}");
            assert_eq!(sb.len(), report.union_size, "common = {common}");
            let expect = 200 + 200 - (200.0 * common).round() as usize;
            assert_eq!(report.union_size, expect, "common = {common}");
        }
    }

    #[test]
    fn disjoint_pools_full_exchange() {
        let (a, b) = pools(100, 0.0, 9);
        let (report, sa, sb) = sync_mempools(&a, &b, &cfg());
        assert!(report.success);
        assert_eq!(report.union_size, 200);
        assert_eq!(sa.len(), 200);
        assert_eq!(sb.len(), 200);
        assert!(report.h_transfer > 0, "receiver-only txns must ship back");
    }

    #[test]
    fn smaller_sender_cheaper() {
        // §3.2.1: "more efficient if the peer with the smaller mempool acts
        // as the sender since S will be smaller." Model the natural shape:
        // one peer's pool is a subset of the other's.
        let mut rng = StdRng::seed_from_u64(10);
        let (big, _) = Scenario::mempool_sync(2000, 1.0, TxProfile::Fixed(150), &mut rng);
        let small: Mempool = big.iter().take(500).cloned().collect();

        let (r1, sa1, sb1) = sync_mempools(&small, &big, &cfg());
        let (r2, sa2, sb2) = sync_mempools(&big, &small, &cfg());
        assert!(r1.success && r2.success);
        for p in [&sa1, &sb1, &sa2, &sb2] {
            assert_eq!(p.len(), 2000);
        }
        // Structure bytes only (tx bodies dominate the reverse direction and
        // are accounted separately).
        let structures = |r: &SyncReport| {
            r.bytes.bloom_s + r.bytes.iblt_i + r.bytes.bloom_r + r.bytes.iblt_j + r.bytes.bloom_f
        };
        assert!(
            structures(&r1) < structures(&r2),
            "small-sender {} vs big-sender {}",
            structures(&r1),
            structures(&r2)
        );
    }
}
