//! Transaction-ordering transmission (paper §6.2).
//!
//! Bloom filters and IBLTs carry unordered sets, but the Merkle root commits
//! to an order. Under CTOR the order is implicit (sort by txid, zero bytes).
//! Under miner-chosen ordering the sender ships a permutation: for each
//! block position, the rank of its transaction within the sorted ID list,
//! packed at `⌈log2 n⌉` bits each — the `n·log2 n` bits the paper says
//! dominate Graphene itself as `n` grows.

use graphene_blockchain::TxId;

/// Bits needed to index `n` items.
fn index_bits(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Encode the permutation taking the sorted ID list to block order.
///
/// Returns the packed rank list. Empty when `n ≤ 1` (or under CTOR, where
/// callers skip encoding entirely).
pub fn encode_order(block_order: &[TxId]) -> Vec<u8> {
    let n = block_order.len();
    let bits = index_bits(n);
    if bits == 0 {
        return Vec::new();
    }
    let mut sorted: Vec<TxId> = block_order.to_vec();
    sorted.sort();
    let mut out = Vec::with_capacity((n * bits as usize).div_ceil(8));
    let mut acc: u64 = 0;
    let mut used: u32 = 0;
    for id in block_order {
        let rank = sorted.binary_search(id).expect("id is in its own list") as u64;
        acc |= rank << used;
        used += bits;
        while used >= 8 {
            out.push(acc as u8);
            acc >>= 8;
            used -= 8;
        }
    }
    if used > 0 {
        out.push(acc as u8);
    }
    out
}

/// Apply a permutation produced by [`encode_order`] to a *sorted* candidate
/// ID list, recovering block order. Returns `None` if the byte string is
/// too short or contains an out-of-range rank.
pub fn decode_order(sorted: &[TxId], order_bytes: &[u8]) -> Option<Vec<TxId>> {
    let n = sorted.len();
    let bits = index_bits(n);
    if bits == 0 {
        return Some(sorted.to_vec());
    }
    if order_bytes.len() < (n * bits as usize).div_ceil(8) {
        return None;
    }
    let mask = (1u64 << bits) - 1;
    let mut out = Vec::with_capacity(n);
    let mut acc: u64 = 0;
    let mut used: u32 = 0;
    let mut byte_iter = order_bytes.iter();
    for _ in 0..n {
        while used < bits {
            acc |= (*byte_iter.next()? as u64) << used;
            used += 8;
        }
        let rank = (acc & mask) as usize;
        acc >>= bits;
        used -= bits;
        if rank >= n {
            return None;
        }
        out.push(sorted[rank]);
    }
    Some(out)
}

/// Size in bytes of the encoded permutation for `n` transactions — the
/// `⌈n·⌈log2 n⌉ / 8⌉` cost quoted in §6.2.
pub fn order_bytes_len(n: usize) -> usize {
    (n * index_bits(n) as usize).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_hashes::sha256;

    fn ids(n: usize) -> Vec<TxId> {
        (0..n as u64).map(|i| sha256(&i.to_le_bytes())).collect()
    }

    #[test]
    fn roundtrip_various_sizes() {
        for n in [0usize, 1, 2, 3, 7, 8, 9, 100, 257] {
            let block_order = ids(n); // hash order ≈ random permutation
            let bytes = encode_order(&block_order);
            assert_eq!(bytes.len(), order_bytes_len(n), "n = {n}");
            let mut sorted = block_order.clone();
            sorted.sort();
            let recovered = decode_order(&sorted, &bytes).expect("decode");
            assert_eq!(recovered, block_order, "n = {n}");
        }
    }

    #[test]
    fn trivial_sizes_are_free() {
        assert_eq!(order_bytes_len(0), 0);
        assert_eq!(order_bytes_len(1), 0);
        assert!(order_bytes_len(2) >= 1);
    }

    #[test]
    fn cost_close_to_n_log_n_bits() {
        let n = 2000usize;
        let exact = order_bytes_len(n);
        let approx = (n as f64 * (n as f64).log2() / 8.0).ceil() as usize;
        // ⌈log2⌉ vs log2: within one bit per element.
        assert!(exact >= approx);
        assert!(exact <= approx + n / 8 + 1);
    }

    #[test]
    fn decode_rejects_short_or_corrupt() {
        let block_order = ids(10);
        let mut sorted = block_order.clone();
        sorted.sort();
        let bytes = encode_order(&block_order);
        assert!(decode_order(&sorted, &bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn decode_rejects_out_of_range_rank() {
        // n = 3 needs 2 bits; rank 3 is out of range.
        let sorted = {
            let mut s = ids(3);
            s.sort();
            s
        };
        let bytes = vec![0b11_11_11u8];
        assert!(decode_order(&sorted, &bytes).is_none());
    }
}
