//! Parameter derivation: the paper's §3.3 math.
//!
//! Everything here is pure arithmetic — no data structures — so it can be
//! validated directly against the theorems (Figs. 19–20 reproduce the
//! empirical validation of Theorems 2 and 3).

use graphene_bloom::params::bloom_size_bytes;
use graphene_iblt::{CELL_BYTES, HEADER_BYTES};
use graphene_iblt_params::{params_for, IbltParams};

/// The Chernoff padding factor δ = ½(s + √(s² + 8s)) shared by Theorems 1
/// and 3 (derived in Lemma 1's inversion).
pub fn chernoff_delta(s: f64) -> f64 {
    if s <= 0.0 {
        return 0.0;
    }
    0.5 * (s + (s * s + 8.0 * s).sqrt())
}

/// Theorem 1: pad the expected false-positive count `a` to `a*` such that
/// `a* ≥ a` with probability `beta`.
pub fn a_star(a: f64, beta: f64) -> usize {
    if a <= 0.0 {
        return 0;
    }
    let s = -(1.0 - beta).ln() / a;
    ((1.0 + chernoff_delta(s)) * a).ceil() as usize
}

/// Theorem 2: a lower bound `x* ≤ x` (with β-assurance) on the number of
/// true positives hidden inside the observed count `z` of mempool
/// transactions passing `S`.
///
/// `cap` bounds the scan (use `min(z, n)` — the receiver cannot hold more
/// true positives than the block has transactions).
pub fn x_star(z: usize, m: usize, f_s: f64, beta: f64, cap: usize) -> usize {
    if z == 0 || m == 0 {
        return 0;
    }
    let cap = cap.min(z);
    let budget = 1.0 - beta;
    let mut best = 0usize;
    for k in 0..=cap {
        let remaining = (m - k.min(m)) as f64;
        let mu = remaining * f_s;
        if mu <= 0.0 {
            break;
        }
        let delta_k = (z - k) as f64 / mu - 1.0;
        if delta_k <= 0.0 {
            // Chernoff bound vacuous: observing z is unexceptional if the
            // receiver holds k true positives. Larger k only gets worse.
            break;
        }
        // ln of (e^δ / (1+δ)^{1+δ})^μ, computed in log space.
        let ln_term = mu * (delta_k - (1.0 + delta_k) * (1.0 + delta_k).ln());
        // The paper's bound sums k+1 identical terms.
        let ln_bound = ((k + 1) as f64).ln() + ln_term;
        if ln_bound <= budget.ln() {
            best = k;
        } else {
            break;
        }
    }
    best
}

/// Theorem 3: an upper bound `y* ≥ y` (with β-assurance) on the number of
/// false positives through `S`, given the Theorem 2 bound `x_star`.
pub fn y_star(m: usize, x_star: usize, f_s: f64, beta: f64) -> usize {
    let mu = (m.saturating_sub(x_star)) as f64 * f_s;
    if mu <= 0.0 {
        return 0;
    }
    let s = -(1.0 - beta).ln() / mu;
    ((1.0 + chernoff_delta(s)) * mu).ceil() as usize
}

/// Wire size in bytes of an IBLT sized to recover `j` items at failure rate
/// `1/rate_denom`, from the embedded parameter table.
pub fn iblt_cost(j: usize, rate_denom: u32) -> usize {
    let p = params_for(j.max(1), rate_denom);
    HEADER_BYTES + p.c * CELL_BYTES
}

/// The sender's Protocol 1 size optimization (Eqs. 2–3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AChoice {
    /// Expected Bloom-filter false positives `a` the optimizer chose.
    pub a: usize,
    /// β-assurance padding `a* ≥ a` (Theorem 1) the IBLT is sized for.
    pub a_star: usize,
    /// Resulting `f_S = a / (m - n)` (1.0 when `m ≤ n`).
    pub fpr: f64,
    /// Bloom-filter payload bytes at this choice.
    pub bloom_bytes: usize,
    /// IBLT geometry for `a*` recoverable items.
    pub iblt: IbltParams,
    /// Combined size `T(a)` in bytes.
    pub total: usize,
}

/// Evaluate `T(a)` exactly: real (ceiling-discretized) Bloom and IBLT sizes.
fn eval_a(n: usize, m_minus_n: usize, a: usize, beta: f64, rate_denom: u32) -> AChoice {
    let a = a.clamp(1, m_minus_n.max(1));
    let fpr = if m_minus_n == 0 { 1.0 } else { (a as f64 / m_minus_n as f64).min(1.0) };
    let astar = if m_minus_n == 0 { 1 } else { a_star(a as f64, beta).max(1) };
    let bloom_bytes = if fpr >= 1.0 { 1 } else { 14 + bloom_size_bytes(n, fpr) };
    let iblt = params_for(astar, rate_denom);
    let iblt_bytes = HEADER_BYTES + iblt.c * CELL_BYTES;
    AChoice { a, a_star: astar, fpr, bloom_bytes, iblt, total: bloom_bytes + iblt_bytes }
}

/// Choose `a` minimizing the summed size of `S` and `I` (paper §3.3.1).
///
/// Candidates follow the paper: every `a < 100` evaluated with exact ceiling
/// sizes, the Eq. 3 critical point `a = n/(8·r·τ·ln² 2)`, and the endpoint
/// `a = m - n` (the IBLT-only solution that wins when `m ≈ n`). We add a
/// log-spaced sweep between — with exact evaluation it costs microseconds
/// and guards against discretization surprises.
pub fn optimal_a(n: usize, m: usize, beta: f64, rate_denom: u32) -> AChoice {
    let n = n.max(1);
    let mn = m.saturating_sub(n);
    if mn == 0 {
        // m ≤ n: a match-everything filter plus a small IBLT; Protocol 2
        // repairs whatever is actually out of sync.
        return eval_a(n, 0, 1, beta, rate_denom);
    }
    let mut candidates: Vec<usize> = (1..=100.min(mn)).collect();
    // Eq. 3 with r = CELL_BYTES and a representative τ = 1.5.
    let ln2sq = core::f64::consts::LN_2 * core::f64::consts::LN_2;
    let critical = (n as f64 / (8.0 * CELL_BYTES as f64 * 1.5 * ln2sq)).round() as usize;
    candidates.push(critical.clamp(1, mn));
    candidates.push(mn);
    // Log-spaced sweep from 100 to m-n.
    let mut v = 100.0f64;
    while (v as usize) < mn {
        candidates.push(v as usize);
        v *= 1.25;
    }
    candidates
        .into_iter()
        .map(|a| eval_a(n, mn, a, beta, rate_denom))
        .min_by(|x, y| (x.total, x.a).cmp(&(y.total, y.a)))
        .expect("candidate list is never empty")
}

/// The receiver's Protocol 2 size optimization (Eqs. 4–5).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BChoice {
    /// Expected `R` false positives `b` the optimizer chose.
    pub b: usize,
    /// Resulting `f_R = b / (n - x*)` (1.0 when `n ≤ x*`).
    pub fpr: f64,
    /// Items the IBLT `J` must recover: `b + y*`.
    pub j: usize,
    /// Bloom-filter (`R`) payload bytes.
    pub bloom_bytes: usize,
    /// IBLT geometry for `j` recoverable items.
    pub iblt: IbltParams,
    /// Combined size `T(b)` in bytes.
    pub total: usize,
}

fn eval_b(z: usize, n_minus_xstar: usize, ystar: usize, b: usize, rate_denom: u32) -> BChoice {
    let b = b.clamp(1, n_minus_xstar.max(1));
    let fpr = if n_minus_xstar == 0 { 1.0 } else { (b as f64 / n_minus_xstar as f64).min(1.0) };
    let bloom_bytes = if fpr >= 1.0 { 1 } else { 14 + bloom_size_bytes(z, fpr) };
    let j = b + ystar;
    let iblt = params_for(j.max(1), rate_denom);
    let iblt_bytes = HEADER_BYTES + iblt.c * CELL_BYTES;
    BChoice { b, fpr, j, bloom_bytes, iblt, total: bloom_bytes + iblt_bytes }
}

/// Choose `b` minimizing the summed size of `R` and `J` (paper §3.3.2),
/// given the candidate-set size `z` and the Theorem 2/3 bounds.
pub fn optimal_b(z: usize, n: usize, xstar: usize, ystar: usize, rate_denom: u32) -> BChoice {
    let nx = n.saturating_sub(xstar);
    if nx == 0 {
        return eval_b(z.max(1), 0, ystar, 1, rate_denom);
    }
    let mut candidates: Vec<usize> = (1..=100.min(nx)).collect();
    let ln2sq = core::f64::consts::LN_2 * core::f64::consts::LN_2;
    let critical = (z as f64 / (8.0 * CELL_BYTES as f64 * 1.5 * ln2sq)).round() as usize;
    candidates.push(critical.clamp(1, nx));
    candidates.push(nx);
    let mut v = 100.0f64;
    while (v as usize) < nx {
        candidates.push(v as usize);
        v *= 1.25;
    }
    candidates
        .into_iter()
        .map(|b| eval_b(z.max(1), nx, ystar, b, rate_denom))
        .min_by(|x, y| (x.total, x.b).cmp(&(y.total, y.b)))
        .expect("candidate list is never empty")
}

/// Bundled Protocol 1 parameters, exported for introspection by the
/// evaluation harness.
#[derive(Clone, Copy, Debug)]
pub struct ProtocolParams {
    /// Block size `n`.
    pub n: usize,
    /// Receiver mempool size `m` (as reported in `getdata`).
    pub m: usize,
    /// The Protocol 1 size optimization outcome.
    pub a_choice: AChoice,
}

impl ProtocolParams {
    /// Derive Protocol 1 parameters for a block of `n` transactions and a
    /// receiver mempool of `m`.
    pub fn derive(n: usize, m: usize, beta: f64, rate_denom: u32) -> ProtocolParams {
        ProtocolParams { n, m, a_choice: optimal_a(n, m, beta, rate_denom) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BETA: f64 = 239.0 / 240.0;

    #[test]
    fn delta_zero_for_nonpositive() {
        assert_eq!(chernoff_delta(0.0), 0.0);
        assert_eq!(chernoff_delta(-1.0), 0.0);
        assert!(chernoff_delta(1.0) > 0.0);
    }

    #[test]
    fn a_star_exceeds_a() {
        for a in [1usize, 5, 20, 100, 1000] {
            let astar = a_star(a as f64, BETA);
            assert!(astar > a, "a = {a}: a* = {astar}");
            // Padding is relatively tighter for larger a (concentration).
            if a >= 100 {
                assert!(astar < a * 2, "a = {a}: a* = {astar} overshoots");
            }
        }
        assert_eq!(a_star(0.0, BETA), 0);
    }

    #[test]
    fn x_star_is_conservative_lower_bound() {
        // Receiver holds x = 180 of a 200-txn block; mempool m = 1000,
        // f_S = 0.1 ⇒ E[y] = (1000-180)·0.1 = 82, z ≈ 262.
        let (m, f_s) = (1000usize, 0.1);
        let (x, y_expected) = (180usize, 82usize);
        let z = x + y_expected;
        let xs = x_star(z, m, f_s, BETA, 200);
        assert!(xs <= x, "x* = {xs} exceeds true x = {x}");
        assert!(xs > 0, "x* degenerate");
    }

    #[test]
    fn x_star_zero_cases() {
        assert_eq!(x_star(0, 100, 0.1, BETA, 10), 0);
        assert_eq!(x_star(10, 0, 0.1, BETA, 10), 0);
    }

    #[test]
    fn y_star_exceeds_expectation() {
        let m = 3000;
        let xs = 150;
        let f_s = 0.05;
        let expect = (m - xs) as f64 * f_s;
        let ys = y_star(m, xs, f_s, BETA);
        assert!(ys as f64 > expect);
        assert!((ys as f64) < expect * 3.0, "y* = {ys} vs E[y] = {expect}");
        assert_eq!(y_star(100, 100, 0.5, BETA), 0);
    }

    #[test]
    fn optimal_a_balances_structures() {
        // Paper's headline case: n = 2000, m = 6000.
        let c = optimal_a(2000, 6000, BETA, 240);
        assert!(c.a >= 1 && c.a <= 4000);
        assert!(c.a_star > c.a);
        assert!(c.total < 6 * 2000, "Graphene should beat Compact Blocks: {}", c.total);
        // The combined structure must be smaller than either extreme.
        let tiny_a = {
            let fpr = 1.0 / 4000.0;
            14 + bloom_size_bytes(2000, fpr) + iblt_cost(a_star(1.0, BETA), 240)
        };
        let huge_a = 1 + iblt_cost(a_star(4000.0, BETA), 240);
        assert!(c.total <= tiny_a, "optimizer worse than a=1: {} vs {tiny_a}", c.total);
        assert!(c.total <= huge_a, "optimizer worse than a=m-n: {} vs {huge_a}", c.total);
    }

    #[test]
    fn optimal_a_m_equals_n() {
        let c = optimal_a(500, 500, BETA, 240);
        assert_eq!(c.fpr, 1.0);
        assert_eq!(c.bloom_bytes, 1);
    }

    #[test]
    fn optimal_a_scales_sublinearly_in_mempool() {
        // Fig. 14's observation: Graphene grows sublinearly as the mempool
        // grows.
        let t1 = optimal_a(2000, 4000, BETA, 240).total;
        let t4 = optimal_a(2000, 10_000, BETA, 240).total;
        assert!(t4 > t1);
        assert!(
            (t4 as f64) < (t1 as f64) * 2.5,
            "mempool 4x extra txns ballooned size: {t1} -> {t4}"
        );
    }

    #[test]
    fn optimal_b_basic() {
        let c = optimal_b(2200, 2000, 1800, 120, 240);
        assert!(c.b >= 1);
        assert_eq!(c.j, c.b + 120);
        assert!(c.total > 0);
    }

    #[test]
    fn optimal_b_receiver_has_everything() {
        let c = optimal_b(2000, 2000, 2000, 50, 240);
        assert_eq!(c.fpr, 1.0);
        assert_eq!(c.bloom_bytes, 1);
    }

    #[test]
    fn protocol_params_derive() {
        let p = ProtocolParams::derive(200, 600, BETA, 240);
        assert_eq!(p.n, 200);
        assert_eq!(p.m, 600);
        assert!(p.a_choice.total > 0);
    }

    #[test]
    fn x_star_monotone_in_z() {
        // More observed positives can only raise the certified lower bound.
        let (m, f_s) = (5000usize, 0.05);
        let mut prev = 0usize;
        for z in (100..2000).step_by(100) {
            let xs = x_star(z, m, f_s, BETA, z);
            assert!(xs >= prev, "x*({z}) = {xs} < x*({}) = {prev}", z - 100);
            prev = xs;
        }
    }

    #[test]
    fn y_star_decreases_with_x_star() {
        // A better lower bound on true positives shrinks the FP bound.
        let (m, f_s) = (5000usize, 0.05);
        let lo = y_star(m, 100, f_s, BETA);
        let hi = y_star(m, 2000, f_s, BETA);
        assert!(hi < lo, "y*(x*=2000) = {hi} !< y*(x*=100) = {lo}");
    }

    #[test]
    fn optimal_b_grows_with_y_star() {
        // Larger y* forces a larger IBLT J (total size monotone).
        let a = optimal_b(2000, 2000, 1000, 50, 240).total;
        let b = optimal_b(2000, 2000, 1000, 500, 240).total;
        assert!(b > a, "T(y*=500) = {b} !> T(y*=50) = {a}");
    }

    #[test]
    fn iblt_cost_monotone() {
        let mut prev = 0usize;
        for j in [1usize, 5, 20, 100, 500, 2000, 10_000] {
            let c = iblt_cost(j, 240);
            assert!(c >= prev, "iblt_cost({j}) = {c} < previous {prev}");
            prev = c;
        }
    }

    #[test]
    fn graphene_smaller_than_bloom_alone() {
        // Theorem 4's comparison: a Bloom filter alone at f = 1/(144(m-n))
        // vs Graphene's optimized pair, for a large block.
        let (n, m) = (10_000usize, 30_000usize);
        let bloom_alone = bloom_size_bytes(n, 1.0 / (144.0 * (m - n) as f64));
        let graphene = optimal_a(n, m, BETA, 240).total;
        assert!(graphene < bloom_alone, "graphene {graphene} >= bloom-alone {bloom_alone}");
    }
}
