//! Protocol 1: relay a block whose transactions the receiver (probably)
//! already has (paper §3.1, Fig. 2).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::config::GrapheneConfig;
use crate::encode_cache::{CacheKey, EncodeCache, MBucket};
use crate::error::P1Failure;
use crate::ordering::{decode_order, encode_order};
use crate::params::{optimal_a, AChoice};
use bytes::Bytes;
use graphene_blockchain::{Block, Mempool, OrderingScheme, PeerView, TxId};
use graphene_bloom::{params::theoretical_fpr, BloomFilter};
use graphene_hashes::short_id_8;
use graphene_iblt::Iblt;
use graphene_iblt_params::params_for;
use graphene_wire::messages::{GrapheneBlockMsg, Message};
use graphene_wire::{Decode, Encode};
use std::collections::HashMap;

/// Salt-domain constants so S, I, R, J and F are mutually independent even
/// though all are derived from the block ID.
pub(crate) const SALT_S: u64 = 0x5331;
pub(crate) const SALT_I: u64 = 0x4931;
pub(crate) const SALT_R: u64 = 0x5232;
pub(crate) const SALT_J: u64 = 0x4a32;
pub(crate) const SALT_F: u64 = 0x4633;

/// Build Protocol 1's `S` + `I` message for `block`, given the receiver's
/// reported mempool size `m` (from `getdata`).
///
/// `peer` (when [`GrapheneConfig::prefill`] is set) supplies the per-peer
/// inv log: block transactions never announced to this peer are attached in
/// full, since they cannot be in the receiver's mempool.
pub fn sender_encode(
    block: &Block,
    mempool_count: u64,
    peer: Option<&PeerView>,
    cfg: &GrapheneConfig,
) -> (GrapheneBlockMsg, AChoice) {
    sender_encode_retry(block, mempool_count, peer, cfg, &RetryTweak::initial(cfg))
}

/// Parameter inflation for one rung of the recovery ladder's re-request.
///
/// Theorem 3's β-assurance model bounds each attempt's failure probability
/// by `1 − β`; independent retries with fresh salts drive the residual
/// failure rate down geometrically. Attempt `t` therefore decays the
/// failure budget `1 − β` by `BETA_DECAY^t`, inflates the IBLT sizing set
/// `a*` by `INFLATION^t`, and perturbs the salt base so `S` and `I` hash
/// independently of every earlier attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryTweak {
    /// Retry number (0 = the original encode, which this leaves untouched).
    pub attempt: u32,
    /// β-assurance used for this attempt.
    pub beta: f64,
    /// Multiplier applied to the IBLT sizing set `a*`.
    pub inflation: f64,
    /// XOR'd into the salt base (0 for attempt 0).
    pub salt_tweak: u64,
}

impl RetryTweak {
    /// Per-attempt shrink factor of the failure budget `1 − β`.
    pub const BETA_DECAY: f64 = 0.25;
    /// Per-attempt multiplier on the IBLT's recoverable-set size.
    pub const INFLATION: f64 = 1.5;

    /// The identity tweak: attempt 0 reproduces `sender_encode` exactly.
    pub fn initial(cfg: &GrapheneConfig) -> RetryTweak {
        RetryTweak { attempt: 0, beta: cfg.beta, inflation: 1.0, salt_tweak: 0 }
    }

    /// The tweak for retry number `attempt` (1-based).
    pub fn for_attempt(cfg: &GrapheneConfig, attempt: u32) -> RetryTweak {
        if attempt == 0 {
            return RetryTweak::initial(cfg);
        }
        let budget = (1.0 - cfg.beta) * Self::BETA_DECAY.powi(attempt as i32);
        // SplitMix64-style scramble so each attempt's salt domain is
        // uncorrelated with the block id's low bits.
        let mut s = (attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        s = (s ^ (s >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        s = (s ^ (s >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        RetryTweak {
            attempt,
            beta: 1.0 - budget,
            inflation: Self::INFLATION.powi(attempt as i32),
            salt_tweak: s ^ (s >> 31),
        }
    }
}

/// [`sender_encode`] with per-attempt parameter inflation: the recovery
/// ladder's "try again, bigger and fresher" rung. The receiver needs no
/// matching knob — every salt and geometry it uses travels in the message.
pub fn sender_encode_retry(
    block: &Block,
    mempool_count: u64,
    peer: Option<&PeerView>,
    cfg: &GrapheneConfig,
    tweak: &RetryTweak,
) -> (GrapheneBlockMsg, AChoice) {
    let n = block.len();
    let mut choice = optimal_a(n, mempool_count as usize, tweak.beta, cfg.iblt_rate_denom);
    if tweak.inflation > 1.0 {
        let inflated = ((choice.a_star.max(1) as f64) * tweak.inflation).ceil() as usize;
        choice.a_star = inflated;
        choice.iblt = params_for(inflated, cfg.iblt_rate_denom);
    }
    let salt_base = block.id().low_u64() ^ tweak.salt_tweak;

    let mut bloom_s =
        BloomFilter::with_strategy(n.max(1), choice.fpr, salt_base ^ SALT_S, cfg.bloom_strategy);
    let mut iblt_i = Iblt::new(choice.iblt.c, choice.iblt.k, salt_base ^ SALT_I);
    let block_ids: Vec<TxId> = block.txns().iter().map(|tx| *tx.id()).collect();
    bloom_s.insert_batch(&block_ids);
    for id in &block_ids {
        iblt_i.insert(short_id_8(id));
    }

    let prefilled = match (cfg.prefill, peer) {
        (true, Some(view)) => {
            block.txns().iter().filter(|tx| !view.knows(tx.id())).cloned().collect()
        }
        _ => Vec::new(),
    };

    let order_bytes = match cfg.ordering {
        OrderingScheme::Ctor => Vec::new(),
        OrderingScheme::MinerChosen => encode_order(&block.ids()),
    };

    let msg = GrapheneBlockMsg {
        header: *block.header(),
        block_tx_count: n as u64,
        bloom_s,
        iblt_i,
        prefilled,
        order_bytes,
    };
    (msg, choice)
}

/// Result of a cache-aware Protocol 1 encode.
#[derive(Debug, Clone)]
pub struct CachedEncode {
    /// The Protocol 1 message (decoded back from the frame on a hit).
    pub msg: GrapheneBlockMsg,
    /// The complete wire frame (`type ‖ len ‖ body`) — the exact bytes a
    /// relay node puts on every socket in this mempool-size class.
    pub frame: Bytes,
    /// True when the frame was served from the cache (no encoding work).
    pub from_cache: bool,
    /// The parameter choice, when a fresh encode computed one (`None` on a
    /// cache hit — the parameters are baked into the frame).
    pub choice: Option<AChoice>,
}

/// [`sender_encode_retry`] behind the encode-once relay cache.
///
/// Unlike the per-receiver entry points, this *always* encodes at the
/// canonical `m` of the receiver's [`MBucket`] (rounded up to the next
/// power of two) so that every receiver in a size class gets a
/// byte-identical frame — whether it came from the cache or a fresh
/// encode. Pass `cache: None` to get the canonical frame without caching
/// (the equivalence oracle the tests compare against).
///
/// Non-cacheable encodings — retry rungs with fresh salts, peer-specific
/// prefilled frames — bypass the cache entirely (never served from it,
/// never stored into it) and are counted as bypasses.
pub fn sender_encode_cached(
    block: &Block,
    mempool_count: u64,
    peer: Option<&PeerView>,
    cfg: &GrapheneConfig,
    tweak: &RetryTweak,
    cache: Option<&EncodeCache>,
) -> CachedEncode {
    let bucket = MBucket::for_count(mempool_count);
    let peer_specific = cfg.prefill && peer.is_some();
    let usable = match cache {
        Some(c) if EncodeCache::cacheable(tweak, peer_specific) => Some(c),
        Some(c) => {
            c.note_bypass();
            None
        }
        None => None,
    };
    let key = CacheKey::graphene(block.id(), bucket);
    if let Some(c) = usable {
        if let Some(frame) = c.lookup(&key) {
            // Round-trip the cached frame back into a message so callers
            // (byte accounting, receiver simulation) see exactly what the
            // wire carries. A frame we encoded ourselves always decodes;
            // if it somehow does not, fall through to a fresh encode
            // rather than serving a corrupt frame.
            if let Ok(Message::GrapheneBlock(msg)) = Message::decode_exact(&frame) {
                return CachedEncode { msg, frame, from_cache: true, choice: None };
            }
        }
    }
    let (msg, choice) = sender_encode_retry(block, bucket.canonical_m(), peer, cfg, tweak);
    let frame = Bytes::from(Message::GrapheneBlock(msg.clone()).to_vec());
    if let Some(c) = usable {
        c.insert(key, frame.clone());
    }
    CachedEncode { msg, frame, from_cache: false, choice: Some(choice) }
}

/// Receiver-side candidate state, preserved for Protocol 2 when Protocol 1
/// fails.
#[derive(Debug)]
pub struct CandidateSet {
    /// Short ID → full txid for every candidate (mempool survivors of `S`
    /// plus prefilled transactions).
    pub by_short: HashMap<u64, TxId>,
    /// `z = |Z|`: number of candidates.
    pub z: usize,
    /// The receiver's estimate of `f_S`, recomputed from the filter geometry
    /// (`f_S` is not transmitted).
    pub fpr_s: f64,
    /// The partially peeled `I ⊖ I′`, kept for §4.2 ping-pong decoding.
    pub i_delta: Option<Iblt>,
    /// Short IDs already peeled out of `I ⊖ I′` on the "in block, not in
    /// candidates" side. Ping-pong alignment in Protocol 2 must account for
    /// these — they are no longer inside `i_delta`'s cells.
    pub partial_left: Vec<u64>,
    /// Short IDs already peeled on the "candidate, not in block" side
    /// (known S false positives).
    pub partial_right: Vec<u64>,
}

/// Outcome of a successful Protocol 1 decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct P1Success {
    /// The block's transaction IDs in block order (Merkle-validated).
    pub ordered_ids: Vec<TxId>,
}

/// Attempt to decode a Graphene block against the local mempool.
///
/// On failure returns the failure reason *and* the candidate state that
/// Protocol 2 builds on ([`crate::protocol2::receiver_request`]).
#[allow(clippy::result_large_err)] // the Err carries Protocol 2's working state by design
pub fn receiver_decode(
    msg: &GrapheneBlockMsg,
    mempool: &Mempool,
    cfg: &GrapheneConfig,
) -> Result<P1Success, (P1Failure, CandidateSet)> {
    let n = msg.block_tx_count as usize;

    // Step 4a: the candidate set Z — mempool IDs that pass S, then the
    // prefilled bodies. Prefilled transactions are authoritative (the
    // sender put them in the block), so on a short-ID collision they
    // displace a mempool candidate silently; only candidate-vs-candidate
    // collisions are unresolvable (§6.1).
    let mut by_short: HashMap<u64, TxId> = HashMap::new();
    let mut collision = false;
    let mut add = |id: &TxId, collision: &mut bool| {
        if let Some(prev) = by_short.insert(short_id_8(id), *id) {
            if prev != *id {
                *collision = true;
            }
        }
    };
    // Batch-probe S over the whole mempool — the interleaved kernel hashes
    // four txids per loop iteration instead of paying two serial SipHash
    // chains per tx. Candidates are added in mempool iteration order, same
    // as the element-at-a-time loop this replaces.
    let pool_ids: Vec<TxId> = mempool.iter().map(|tx| *tx.id()).collect();
    let hits = msg.bloom_s.contains_batch(&pool_ids);
    for (j, id) in pool_ids.iter().enumerate() {
        if hits.get(j) {
            add(id, &mut collision);
        }
    }
    for tx in msg.prefilled.iter() {
        by_short.insert(short_id_8(tx.id()), *tx.id());
    }
    let z = by_short.len();
    let fpr_s = if msg.bloom_s.bit_len() == 0 {
        1.0
    } else {
        theoretical_fpr(msg.bloom_s.bit_len(), msg.bloom_s.hash_count(), n)
    };

    let mut state = CandidateSet {
        by_short,
        z,
        fpr_s,
        i_delta: None,
        partial_left: Vec::new(),
        partial_right: Vec::new(),
    };
    if collision {
        // Two distinct txids share a short ID: the IBLT algebra over short
        // IDs is no longer injective (§6.1). Bail out to recovery.
        return Err((P1Failure::ShortIdCollision, state));
    }

    // Step 4b: I′ over the candidates' short IDs, then peel I ⊖ I′.
    let mut iblt_prime =
        Iblt::new(msg.iblt_i.cell_count(), msg.iblt_i.hash_count(), msg.iblt_i.salt());
    for short in state.by_short.keys() {
        iblt_prime.insert(*short);
    }
    // Consume I′ as the difference buffer (I ⊖ I′ in place) — no third
    // table allocation per decode attempt.
    if iblt_prime.subtract_from(&msg.iblt_i).is_err() {
        // Unreachable for this code path (I′ copies the message's own
        // geometry), but a hostile message deserves the hostile label.
        return Err((P1Failure::Malformed("iblt geometry self-mismatch"), state));
    }
    let mut delta = iblt_prime;
    let peeled = match delta.peel() {
        Ok(r) => r,
        Err(_) => {
            // The peel recovered the same value twice. I′ was built honestly
            // here, so the only explanation is a sender that inserted an
            // item into fewer than k cells — the §6.1 attack. Provable:
            // callers should ban. The half-mutated difference is useless for
            // ping-pong — drop it.
            return Err((P1Failure::Malformed("iblt double-decode (§6.1)"), state));
        }
    };

    if !peeled.complete {
        state.i_delta = Some(delta);
        state.partial_left = peeled.only_left;
        state.partial_right = peeled.only_right;
        return Err((P1Failure::IbltIncomplete, state));
    }

    // Step 4c: adjust the candidate set. `only_right` are S false positives;
    // `only_left` are block transactions the receiver does not hold at all.
    if !peeled.only_left.is_empty() {
        let count = peeled.only_left.len();
        state.i_delta = Some(delta); // fully drained; partials carry the diff
        state.partial_left = peeled.only_left;
        state.partial_right = peeled.only_right;
        return Err((P1Failure::MissingTransactions { count }, state));
    }
    for fp in &peeled.only_right {
        state.by_short.remove(fp);
    }

    finalize(msg, &state, cfg).map_err(|why| (why, state_reset(state)))
}

/// Order the adjusted candidate set and validate the Merkle commitment.
pub(crate) fn finalize(
    msg: &GrapheneBlockMsg,
    state: &CandidateSet,
    cfg: &GrapheneConfig,
) -> Result<P1Success, P1Failure> {
    let mut ids: Vec<TxId> = state.by_short.values().copied().collect();
    ids.sort();
    let ordered = match cfg.ordering {
        OrderingScheme::Ctor => ids,
        OrderingScheme::MinerChosen => {
            decode_order(&ids, &msg.order_bytes).ok_or(P1Failure::MerkleMismatch)?
        }
    };
    let root = graphene_hashes::merkle_root(&ordered);
    if root != msg.header.merkle_root {
        return Err(P1Failure::MerkleMismatch);
    }
    Ok(P1Success { ordered_ids: ordered })
}

/// Rebuild the pristine candidate set after a finalize failure (the decode
/// consumed `i_delta`; Protocol 2 restarts from the full candidate list).
fn state_reset(state: CandidateSet) -> CandidateSet {
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_blockchain::{Scenario, ScenarioParams, Transaction};
    use graphene_bloom::Membership;
    use graphene_hashes::Digest;
    use rand::{rngs::StdRng, SeedableRng};

    fn cfg() -> GrapheneConfig {
        GrapheneConfig::default()
    }

    fn scenario(n: usize, extra: f64, held: f64, seed: u64) -> Scenario {
        let params = ScenarioParams {
            block_size: n,
            extra_mempool_multiple: extra,
            block_fraction_in_mempool: held,
            ..Default::default()
        };
        Scenario::generate(&params, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn happy_path_decodes() {
        let s = scenario(200, 2.0, 1.0, 1);
        let (msg, choice) = sender_encode(&s.block, s.receiver_mempool.len() as u64, None, &cfg());
        assert!(choice.total > 0);
        let got = receiver_decode(&msg, &s.receiver_mempool, &cfg()).expect("protocol 1 decodes");
        assert_eq!(got.ordered_ids, s.block.ids());
    }

    #[test]
    fn repeated_blocks_mostly_decode() {
        let mut failures = 0;
        for seed in 0..50 {
            let s = scenario(100, 3.0, 1.0, seed);
            let (msg, _) = sender_encode(&s.block, s.receiver_mempool.len() as u64, None, &cfg());
            if receiver_decode(&msg, &s.receiver_mempool, &cfg()).is_err() {
                failures += 1;
            }
        }
        assert!(failures <= 1, "{failures}/50 protocol-1 failures");
    }

    #[test]
    fn missing_transactions_detected() {
        let s = scenario(200, 1.0, 0.5, 2);
        let (msg, _) = sender_encode(&s.block, s.receiver_mempool.len() as u64, None, &cfg());
        match receiver_decode(&msg, &s.receiver_mempool, &cfg()) {
            Err((P1Failure::MissingTransactions { count }, state)) => {
                assert!(count > 50, "roughly half of 200 should be missing, got {count}");
                assert!(state.z > 0);
                assert!(state.i_delta.is_some());
            }
            Err((P1Failure::IbltIncomplete, _)) => {
                // Also acceptable: 100 missing txns usually exceed the
                // IBLT's capacity.
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn m_equals_n_uses_match_all_filter() {
        let s = scenario(300, 0.0, 1.0, 3);
        assert_eq!(s.receiver_mempool.len(), 300);
        let (msg, choice) = sender_encode(&s.block, 300, None, &cfg());
        assert_eq!(choice.fpr, 1.0);
        assert_eq!(msg.bloom_s.serialized_size(), 1);
        let got = receiver_decode(&msg, &s.receiver_mempool, &cfg()).expect("decodes");
        assert_eq!(got.ordered_ids.len(), 300);
    }

    #[test]
    fn prefill_covers_unannounced_txns() {
        let s = scenario(100, 1.0, 1.0, 4);
        // The peer view knows everything except three block txns.
        let mut view = PeerView::new();
        let ids = s.block.ids();
        for id in ids.iter().skip(3) {
            view.record(*id);
        }
        // Receiver's mempool is missing those same three.
        let mut pool = s.receiver_mempool.clone();
        for id in ids.iter().take(3) {
            pool.remove(id);
        }
        let (msg, _) = sender_encode(&s.block, pool.len() as u64, Some(&view), &cfg());
        assert_eq!(msg.prefilled.len(), 3);
        let got = receiver_decode(&msg, &pool, &cfg()).expect("prefill rescues the decode");
        assert_eq!(got.ordered_ids, s.block.ids());
    }

    #[test]
    fn miner_order_roundtrips() {
        let mut c = cfg();
        c.ordering = OrderingScheme::MinerChosen;
        let params = ScenarioParams {
            block_size: 150,
            extra_mempool_multiple: 1.0,
            block_fraction_in_mempool: 1.0,
            ordering: OrderingScheme::MinerChosen,
            ..Default::default()
        };
        let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(5));
        let (msg, _) = sender_encode(&s.block, s.receiver_mempool.len() as u64, None, &c);
        assert!(!msg.order_bytes.is_empty());
        let got = receiver_decode(&msg, &s.receiver_mempool, &c).expect("decodes");
        assert_eq!(got.ordered_ids, s.block.ids());
    }

    #[test]
    fn corrupted_root_fails_merkle() {
        let s = scenario(50, 1.0, 1.0, 6);
        let (mut msg, _) = sender_encode(&s.block, s.receiver_mempool.len() as u64, None, &cfg());
        msg.header.merkle_root = Digest([0xee; 32]);
        match receiver_decode(&msg, &s.receiver_mempool, &cfg()) {
            Err((P1Failure::MerkleMismatch, _)) => {}
            other => panic!("expected merkle mismatch, got {other:?}"),
        }
    }

    #[test]
    fn empty_mempool_yields_missing() {
        let s = scenario(80, 0.0, 1.0, 7);
        let (msg, _) = sender_encode(&s.block, 0, None, &cfg());
        let empty = Mempool::new();
        match receiver_decode(&msg, &empty, &cfg()) {
            Err((P1Failure::MissingTransactions { count }, _)) => assert_eq!(count, 80),
            Err((P1Failure::IbltIncomplete, _)) => {} // capacity exceeded
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn extra_unrelated_txn_is_filtered_or_caught() {
        // A mempool FP that sneaks through S must be peeled away by I.
        let s = scenario(120, 4.0, 1.0, 8);
        let mut pool = s.receiver_mempool.clone();
        pool.insert(Transaction::new(&b"unrelated"[..]));
        let (msg, _) = sender_encode(&s.block, pool.len() as u64, None, &cfg());
        let got = receiver_decode(&msg, &pool, &cfg()).expect("decodes");
        assert_eq!(got.ordered_ids, s.block.ids());
    }
}
