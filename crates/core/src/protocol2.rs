//! Protocol 2: recover when the receiver is missing transactions
//! (paper §3.2, Fig. 3), including the `m ≈ n` special case (§3.3.1).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::config::GrapheneConfig;
use crate::error::P2Failure;
use crate::ordering::decode_order;
use crate::params::{optimal_b, x_star, y_star, BChoice};
use crate::protocol1::{CandidateSet, SALT_F, SALT_J, SALT_R};
use graphene_blockchain::{Block, OrderingScheme, Transaction, TxId};
use graphene_bloom::{params::theoretical_fpr, BloomFilter};
use graphene_hashes::short_id_8;
use graphene_iblt::{ping_pong_decode, Iblt};
use graphene_iblt_params::params_for;
use graphene_wire::messages::{GrapheneRecoveryMsg, GrapheneRequestMsg};
use std::collections::HashMap;

/// Receiver-side record of what was sent in the request, needed to finish
/// the decode when the recovery message arrives.
#[derive(Debug)]
pub struct RequestState {
    /// The bounds that sized the request.
    pub choice: BChoice,
    /// Theorem 2's `x*`.
    pub x_star: usize,
    /// Theorem 3's `y*`.
    pub y_star: usize,
    /// Whether the `m ≈ n` special case was triggered.
    pub special_mn: bool,
}

/// Step 1–2: derive `x*`, `y*` and `b`, build Bloom filter `R` over the
/// candidate set, and emit the request message.
///
/// `n` is the block transaction count (from the Protocol 1 message), `m`
/// the receiver's mempool size.
pub fn receiver_request(
    state: &CandidateSet,
    block_id: graphene_hashes::Digest,
    n: usize,
    m: usize,
    cfg: &GrapheneConfig,
) -> (GrapheneRequestMsg, RequestState) {
    let z = state.by_short.len();
    let xs = x_star(z, m, state.fpr_s, cfg.beta, z.min(n));
    let ys = y_star(m, xs, state.fpr_s, cfg.beta);
    let choice = optimal_b(z, n, xs, ys, cfg.iblt_rate_denom);

    // §3.3.1 special case: when `m ≈ n` the sender's filter degenerates
    // (f_S → 1), so nearly the whole mempool passes S (`z ≈ m`) and the
    // false-positive bound explodes (`y* ≈ m`) — the normal path would size
    // IBLT J to ~m cells, "larger than a regular block". Detect that shape
    // and fall back to a fixed f_R with reversed roles.
    let special_mn = m > 0 && z * 10 >= m * 9 && ys * 10 >= m * 9;

    let fpr_r = if special_mn { cfg.special_case_fpr } else { choice.fpr };
    let salt = block_id.low_u64();
    let mut bloom_r =
        BloomFilter::with_strategy(z.max(1), fpr_r, salt ^ SALT_R, cfg.bloom_strategy);
    let candidates: Vec<TxId> = state.by_short.values().copied().collect();
    bloom_r.insert_batch(&candidates);

    let msg =
        GrapheneRequestMsg { block_id, bloom_r, y_star: ys as u64, b: choice.b as u64, special_mn };
    (msg, RequestState { choice, x_star: xs, y_star: ys, special_mn })
}

/// Steps 3–4 (sender): answer with the definitely-missing transactions and
/// IBLT `J`; in the special case also the compensating filter `F`.
///
/// `m` is the receiver's mempool size from the original `getdata`.
pub fn sender_respond(
    block: &Block,
    req: &GrapheneRequestMsg,
    m: usize,
    cfg: &GrapheneConfig,
) -> GrapheneRecoveryMsg {
    let n = block.len();
    let salt = block.id().low_u64();

    // Transactions failing R are definitely missing at the receiver. One
    // batch probe of R over the block serves both this split and the
    // special-case F build below (the scalar path probed R twice per tx).
    let block_ids: Vec<TxId> = block.txns().iter().map(|tx| *tx.id()).collect();
    let r_hits = req.bloom_r.contains_batch(&block_ids);
    let missing: Vec<Transaction> = block
        .txns()
        .iter()
        .enumerate()
        .filter(|(j, _)| !r_hits.get(*j))
        .map(|(_, tx)| tx.clone())
        .collect();

    let (j_capacity, bloom_f) = if req.special_mn {
        // Reversed roles (§3.3.1): the *sender* bounds the false positives
        // of R among his block, substituting block size for mempool size.
        let h = missing.len();
        let z2 = n - h; // block txns that passed R
        let fpr_r = if req.bloom_r.bit_len() == 0 {
            1.0
        } else {
            theoretical_fpr(
                req.bloom_r.bit_len(),
                req.bloom_r.hash_count(),
                req.bloom_r.inserted().max(z2),
            )
        };
        let xs2 = x_star(z2, n, fpr_r, cfg.beta, z2);
        let ys2 = y_star(n, xs2, fpr_r, cfg.beta);
        let choice2 = optimal_b(z2, m, xs2, ys2, cfg.iblt_rate_denom);
        let mut f =
            BloomFilter::with_strategy(z2.max(1), choice2.fpr, salt ^ SALT_F, cfg.bloom_strategy);
        let passed: Vec<TxId> = block_ids
            .iter()
            .enumerate()
            .filter(|(j, _)| r_hits.get(*j))
            .map(|(_, id)| *id)
            .collect();
        f.insert_batch(&passed);
        (choice2.b + ys2, Some(f))
    } else {
        (req.b as usize + req.y_star as usize, None)
    };

    let params = params_for(j_capacity.max(1), cfg.iblt_rate_denom);
    let mut iblt_j = Iblt::new(params.c, params.k, salt ^ SALT_J);
    for tx in block.txns() {
        iblt_j.insert(short_id_8(tx.id()));
    }

    GrapheneRecoveryMsg { block_id: block.id(), missing, iblt_j, bloom_f }
}

/// [`sender_respond`] with the encode-once relay cache threaded through.
///
/// A `GrapheneRecoveryMsg` is a function of the *receiver's* Bloom filter
/// `R`, so it is receiver-dependent by construction and can never be
/// served from the cache. The cache parameter exists so relay-node call
/// sites account the forced re-encode as a bypass in
/// [`crate::encode_cache::CacheStats`] — Protocol 2 traffic is real
/// sender CPU the cache cannot amortize.
pub fn sender_respond_cached(
    block: &Block,
    req: &GrapheneRequestMsg,
    m: usize,
    cfg: &GrapheneConfig,
    cache: Option<&crate::encode_cache::EncodeCache>,
) -> GrapheneRecoveryMsg {
    if let Some(c) = cache {
        c.note_bypass();
    }
    sender_respond(block, req, m, cfg)
}

/// Outcome of Protocol 2 at the receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct P2Success {
    /// Block transaction IDs in block order, if every body is available and
    /// the Merkle root validated. `None` while `needs_fetch` is non-empty.
    pub ordered_ids: Option<Vec<TxId>>,
    /// Short IDs of block transactions whose bodies the receiver still
    /// lacks: they falsely passed `R` (at most `b` of them, with
    /// β-assurance) and must be fetched in one extra round.
    pub needs_fetch: Vec<u64>,
    /// The adjusted candidate map (false positives removed, delivered
    /// transactions added). After fetching `needs_fetch`, add those IDs and
    /// call [`finalize_p2`] on this map.
    pub resolved: HashMap<u64, TxId>,
}

/// Step 5 (receiver): build `J′`, subtract, peel — with §4.2 ping-pong
/// against the Protocol 1 difference when available — and reconstruct.
pub fn receiver_complete(
    p1_state: &mut CandidateSet,
    msg: &GrapheneRecoveryMsg,
    header_root: graphene_hashes::Digest,
    order_bytes: &[u8],
    cfg: &GrapheneConfig,
) -> Result<P2Success, P2Failure> {
    // Candidate set C: survivors of S (optionally re-filtered through F in
    // the special case) plus the newly received transactions.
    //
    // Collision policy (§6.1): a delivered transaction is *authoritative* —
    // the sender put it in the block — so on a short-ID collision it
    // displaces a mere mempool candidate (which must have been an attacker
    // transaction or astronomical accident). Only same-tier collisions are
    // unresolvable. This is what confines the manufactured-collision attack
    // to probability f_S·f_R.
    let mut by_short: HashMap<u64, TxId> = HashMap::new();
    let mut collision = false;
    {
        let mut add = |id: &TxId| {
            if let Some(prev) = by_short.insert(short_id_8(id), *id) {
                if prev != *id {
                    collision = true;
                }
            }
        };
        match &msg.bloom_f {
            Some(f) => {
                // Batch-probe F over the candidates; the pass visits them
                // in the same (by_short iteration) order as the scalar loop.
                let cand: Vec<TxId> = p1_state.by_short.values().copied().collect();
                let hits = f.contains_batch(&cand);
                for (j, id) in cand.iter().enumerate() {
                    if hits.get(j) {
                        add(id);
                    }
                }
            }
            None => {
                for id in p1_state.by_short.values() {
                    add(id);
                }
            }
        }
    }
    if collision {
        return Err(P2Failure::ShortIdCollision);
    }
    // Delivered transactions overwrite candidates without raising the
    // collision flag; a displaced candidate simply drops out of C.
    for tx in &msg.missing {
        by_short.insert(short_id_8(tx.id()), *tx.id());
    }

    // J′ and the difference.
    let mut j_prime =
        Iblt::new(msg.iblt_j.cell_count(), msg.iblt_j.hash_count(), msg.iblt_j.salt());
    for short in by_short.keys() {
        j_prime.insert(*short);
    }
    // Consume J′ as the difference buffer (J ⊖ J′ in place) — no third
    // table allocation per decode attempt.
    if j_prime.subtract_from(&msg.iblt_j).is_err() {
        // Unreachable for an honest receiver (J′ copies the message's own
        // geometry): a self-inconsistent message is provably hostile.
        return Err(P2Failure::Malformed("iblt geometry self-mismatch"));
    }
    let mut j_delta = j_prime;

    // Ping-pong (§4.2): align I ⊖ I′ with J ⊖ J′, then decode jointly. Only
    // valid in the normal (non-F) path where the two differences cover the
    // same item set after alignment:
    //
    //   I ⊖ I′ (post-peel) ≡ (B\Z − PL) ∪ (Z\B − PR)
    //   J ⊖ J′            ≡ (B\Z − T)  ∪ (Z\B)
    //
    // where PL/PR are the values Protocol 1's partial peel already removed
    // and T the newly delivered transactions. Cancelling T∖PL out of the
    // former and PL∖T, PR out of the latter makes both differences equal.
    let (result, extra_left, extra_right) =
        if cfg.pingpong && msg.bloom_f.is_none() && p1_state.i_delta.is_some() {
            use std::collections::HashSet;
            let pl: HashSet<u64> = p1_state.partial_left.iter().copied().collect();
            let t_set: HashSet<u64> = msg.missing.iter().map(|tx| short_id_8(tx.id())).collect();
            let Some(i_delta) = p1_state.i_delta.as_mut() else { unreachable!("guarded above") };
            for s in &t_set {
                if !pl.contains(s) {
                    // Residual §6.1 corner: if a delivered transaction's short
                    // ID collides with a Z candidate, the pair already XOR-
                    // cancelled inside I ⊖ I′ and this cancel inserts a phantom
                    // −1 entry. The joint decode then fails (never miscorrects —
                    // the Merkle check guards finalization) and the session
                    // falls back; probability ≈ f_S · Pr[P1 IBLT failure].
                    i_delta.cancel(*s, 1);
                }
            }
            for l in &pl {
                if !t_set.contains(l) {
                    j_delta.cancel(*l, 1);
                }
            }
            for r in &p1_state.partial_right {
                j_delta.cancel(*r, -1);
            }
            let r = match ping_pong_decode(i_delta, &mut j_delta) {
                Ok(r) => r,
                Err(_) => return Err(P2Failure::IbltIncomplete),
            };
            // The partial-peel results are part of the difference too.
            (r, p1_state.partial_left.clone(), p1_state.partial_right.clone())
        } else {
            let r = match j_delta.peel() {
                Ok(r) => r,
                // Plain path: J′ was built honestly from the message's own
                // geometry, so a double-decode is the §6.1 signature and
                // provably the sender's fault. (On the ping-pong path above
                // the receiver's own `cancel` calls can inject phantom
                // entries, so failures there stay `IbltIncomplete`.)
                Err(_) => return Err(P2Failure::Malformed("iblt double-decode (§6.1)")),
            };
            (r, Vec::new(), Vec::new())
        };

    if !result.complete {
        return Err(P2Failure::IbltIncomplete);
    }

    // Adjust: drop false positives; block-only values are R false positives
    // whose bodies we lack — fetch them in one extra round.
    for fp in result.only_right.iter().chain(&extra_right) {
        by_short.remove(fp);
    }
    let needs_fetch: Vec<u64> = result
        .only_left
        .iter()
        .chain(&extra_left)
        .copied()
        .filter(|s| !by_short.contains_key(s))
        .collect();
    if !needs_fetch.is_empty() {
        return Ok(P2Success { ordered_ids: None, needs_fetch, resolved: by_short });
    }

    finalize_p2(&by_short, header_root, order_bytes, cfg)
}

/// Complete the reconstruction once every candidate body is known.
pub fn finalize_p2(
    by_short: &HashMap<u64, TxId>,
    header_root: graphene_hashes::Digest,
    order_bytes: &[u8],
    cfg: &GrapheneConfig,
) -> Result<P2Success, P2Failure> {
    let mut ids: Vec<TxId> = by_short.values().copied().collect();
    ids.sort();
    let ordered = match cfg.ordering {
        OrderingScheme::Ctor => ids,
        OrderingScheme::MinerChosen => {
            decode_order(&ids, order_bytes).ok_or(P2Failure::MerkleMismatch)?
        }
    };
    if graphene_hashes::merkle_root(&ordered) != header_root {
        return Err(P2Failure::MerkleMismatch);
    }
    Ok(P2Success {
        ordered_ids: Some(ordered),
        needs_fetch: Vec::new(),
        resolved: by_short.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol1::{receiver_decode, sender_encode};
    use graphene_blockchain::{Mempool, Scenario, ScenarioParams};
    use rand::{rngs::StdRng, SeedableRng};

    fn cfg() -> GrapheneConfig {
        GrapheneConfig::default()
    }

    fn scenario(n: usize, extra: f64, held: f64, seed: u64) -> Scenario {
        let params = ScenarioParams {
            block_size: n,
            extra_mempool_multiple: extra,
            block_fraction_in_mempool: held,
            ..Default::default()
        };
        Scenario::generate(&params, &mut StdRng::seed_from_u64(seed))
    }

    /// Drive P1 → P2 end to end; panic on any unexpected state.
    fn run_full(s: &Scenario, cfg: &GrapheneConfig) -> Result<P2Success, P2Failure> {
        let m = s.receiver_mempool.len();
        let (p1_msg, _) = sender_encode(&s.block, m as u64, None, cfg);
        let (_, mut state) = match receiver_decode(&p1_msg, &s.receiver_mempool, cfg) {
            Ok(ok) => {
                return Ok(P2Success {
                    ordered_ids: Some(ok.ordered_ids),
                    needs_fetch: vec![],
                    resolved: HashMap::new(),
                })
            }
            Err(e) => e,
        };
        let (req, _req_state) = receiver_request(&state, s.block.id(), s.block.len(), m, cfg);
        let rec = sender_respond(&s.block, &req, m, cfg);
        receiver_complete(&mut state, &rec, p1_msg.header.merkle_root, &p1_msg.order_bytes, cfg)
    }

    #[test]
    fn recovers_half_missing_block() {
        let s = scenario(200, 1.0, 0.5, 1);
        let got = run_full(&s, &cfg()).expect("protocol 2 recovers");
        match got.ordered_ids {
            Some(ids) => assert_eq!(ids, s.block.ids()),
            None => {
                // An R false positive needed an extra fetch; bounded by b.
                assert!(got.needs_fetch.len() <= 20);
            }
        }
    }

    #[test]
    fn recovers_across_fractions() {
        for (seed, held) in [(2u64, 0.0), (3, 0.2), (4, 0.8), (5, 0.95)] {
            let s = scenario(150, 1.0, held, seed);
            let got = run_full(&s, &cfg()).unwrap_or_else(|e| panic!("held = {held}: {e:?}"));
            if let Some(ids) = got.ordered_ids {
                assert_eq!(ids, s.block.ids(), "held = {held}");
            }
        }
    }

    #[test]
    fn m_equals_n_special_case() {
        // Receiver holds 40% of the block and unrelated spam tops the
        // mempool up to exactly n: the classic special-case shape.
        let params = ScenarioParams {
            block_size: 300,
            extra_mempool_multiple: 0.6,
            block_fraction_in_mempool: 0.4,
            ..Default::default()
        };
        let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(6));
        assert_eq!(s.receiver_mempool.len(), s.block.len());
        let got = run_full(&s, &cfg()).expect("special case recovers");
        if let Some(ids) = got.ordered_ids {
            assert_eq!(ids, s.block.ids());
        }
    }

    #[test]
    fn special_case_flag_round_trips_to_f_filter() {
        let params = ScenarioParams {
            block_size: 300,
            extra_mempool_multiple: 0.6,
            block_fraction_in_mempool: 0.4,
            ..Default::default()
        };
        let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(7));
        let m = s.receiver_mempool.len();
        let (p1_msg, _) = sender_encode(&s.block, m as u64, None, &cfg());
        let Err((_, state)) = receiver_decode(&p1_msg, &s.receiver_mempool, &cfg()) else {
            panic!("protocol 1 cannot succeed at 40% possession");
        };
        let (req, req_state) = receiver_request(&state, s.block.id(), s.block.len(), m, &cfg());
        if req_state.special_mn {
            assert!(req.special_mn);
            let rec = sender_respond(&s.block, &req, m, &cfg());
            assert!(rec.bloom_f.is_some(), "special case must carry filter F");
        }
    }

    #[test]
    fn empty_mempool_full_recovery() {
        let s = scenario(100, 0.0, 1.0, 8);
        let m = 0usize;
        let (p1_msg, _) = sender_encode(&s.block, m as u64, None, &cfg());
        let empty = Mempool::new();
        let Err((_, mut state)) = receiver_decode(&p1_msg, &empty, &cfg()) else {
            panic!("cannot decode against an empty mempool");
        };
        let (req, _) = receiver_request(&state, s.block.id(), s.block.len(), m, &cfg());
        let rec = sender_respond(&s.block, &req, m, &cfg());
        // Everything is missing: the sender ships all 100 transactions.
        assert_eq!(rec.missing.len(), 100);
        let got = receiver_complete(
            &mut state,
            &rec,
            p1_msg.header.merkle_root,
            &p1_msg.order_bytes,
            &cfg(),
        )
        .expect("trivial recovery");
        assert_eq!(got.ordered_ids.expect("complete"), s.block.ids());
    }

    #[test]
    fn request_bounds_are_consistent() {
        let s = scenario(400, 2.0, 0.7, 9);
        let m = s.receiver_mempool.len();
        let (p1_msg, _) = sender_encode(&s.block, m as u64, None, &cfg());
        let Err((_, state)) = receiver_decode(&p1_msg, &s.receiver_mempool, &cfg()) else {
            panic!("expected P1 failure at 70% possession");
        };
        let (req, rs) = receiver_request(&state, s.block.id(), s.block.len(), m, &cfg());
        // x* must lower-bound the true x = 280; y* must upper-bound true y.
        let true_x = s.block.ids().iter().filter(|id| s.receiver_mempool.contains(id)).count();
        assert!(rs.x_star <= true_x, "x* = {} vs x = {true_x}", rs.x_star);
        let true_y = state.by_short.len() - true_x;
        assert!(rs.y_star >= true_y, "y* = {} vs y = {true_y}", rs.y_star);
        assert_eq!(req.y_star as usize, rs.y_star);
    }

    #[test]
    fn pingpong_can_be_disabled() {
        let mut c = cfg();
        c.pingpong = false;
        let s = scenario(200, 1.0, 0.5, 10);
        // Must still work (single-IBLT decode path).
        let got = run_full(&s, &c);
        assert!(got.is_ok(), "{got:?}");
    }
}
