//! The failure-recovery ladder: graceful degradation from Graphene down to
//! a full block, with every rung's cost accounted.
//!
//! The paper's β-assurance model (Theorems 1–3) bounds each Graphene
//! attempt's failure probability by `1 − β` but says nothing about what a
//! client *does* on failure. Deployed relay protocols answer with a
//! fallback ladder — BIP 152 Compact Blocks escalates `cmpctblock →
//! getblocktxn → full block` — and this module gives Graphene the same
//! shape:
//!
//! 1. **Graphene** — the ordinary attempt ([`crate::relay_block_attempt`]).
//! 2. **GrapheneRetry** — re-request with inflated parameters: fresh salts,
//!    β decayed toward 1 (shrinking the failure budget per Theorem 3's
//!    assurance model), and an IBLT sized `1.5×` per attempt
//!    ([`RetryTweak`]).
//! 3. **Rateless** (optional, via [`RatelessMode`]) — stream coded cells
//!    from a rateless IBLT (arXiv 2402.02668) against the candidate set
//!    the failed attempt already built, growing the stream until it
//!    decodes. A bad difference estimate costs a few more cells instead of
//!    a whole fresh sketch — this rung replaces the retry cliff with
//!    incremental degradation.
//! 4. **ShortIdFetch** — an xthin-style exchange (BUIP010): the receiver
//!    ships a Bloom filter of its mempool, the sender answers with the
//!    block's 8-byte short IDs plus whatever missed the filter.
//! 5. **FullBlock** — the uncompressed block; cannot fail.
//!
//! Every rung records its bytes and rounds in a [`RungReport`]; the merged
//! [`ByteBreakdown`] keeps figures honest about what degradation costs.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::config::GrapheneConfig;
use crate::protocol1::{self, RetryTweak};
use crate::protocol2;
use crate::session::{relay_block_attempt, ByteBreakdown};
use graphene_blockchain::{Block, Mempool, PeerView, TxId};
use graphene_bloom::{BloomFilter, Membership};
use graphene_hashes::{merkle_root, short_id_8, Digest};
use graphene_iblt::rateless::{CellStream, DecodeProgress, RatelessDecoder, MAX_CELLS_PER_BATCH};
use graphene_wire::messages::{
    BlockTxnMsg, FullBlockMsg, GetFullBlockMsg, GetGrapheneTxnMsg, GetMoreCellsMsg, Message,
    RatelessCellsMsg, XthinBlockMsg, XthinGetDataMsg,
};
use graphene_wire::varint::varint_len;
use std::collections::HashMap;

/// Salt domain for the short-ID rung's mempool filter, disjoint from the
/// S/I/R/J/F domains in [`crate::protocol1`].
const SALT_XF: u64 = 0x5846;

/// Salt domain for the rateless rung's cell stream, disjoint from every
/// other domain.
const SALT_RL: u64 = 0x524c;

/// The rateless codec salt for a block: a deterministic function of the
/// block ID, so a receiver can verify the salt a `RatelessCells` frame
/// claims — a wrong salt is provable misbehavior, not a decode mystery.
pub fn rateless_salt(block_id: &Digest) -> u64 {
    block_id.low_u64() ^ SALT_RL
}

/// Where the rateless rung sits in the ladder, if anywhere.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RatelessMode {
    /// No rateless rung (the PR 2 ladder, unchanged).
    #[default]
    Off,
    /// Run the inflated retries first, then the rateless rung before
    /// falling through to short-ID fetch.
    AfterRetries,
    /// Replace the inflated retries entirely: one Graphene attempt, then
    /// stream cells. This is the "no retry cliff" configuration.
    ReplaceRetries,
}

/// Knobs for the recovery ladder.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryPolicy {
    /// Inflated Graphene re-requests before escalating past Graphene
    /// (rung 2 repeats this many times with growing parameters).
    pub graphene_retries: u32,
    /// False-positive rate of the mempool filter in the short-ID rung.
    pub shortid_fpr: f64,
    /// Whether (and where) the rateless rung runs.
    pub rateless: RatelessMode,
    /// Most coded-cell batches the rateless rung may request before it
    /// falls through to the short-ID rung.
    pub rateless_max_batches: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            graphene_retries: 2,
            shortid_fpr: 0.001,
            rateless: RatelessMode::Off,
            rateless_max_batches: 8,
        }
    }
}

impl RecoveryPolicy {
    /// The "no retry cliff" ladder: one Graphene attempt, then stream
    /// rateless cells instead of inflated retries.
    pub fn rateless_first() -> Self {
        RecoveryPolicy { rateless: RatelessMode::ReplaceRetries, ..Default::default() }
    }
}

/// Which rung of the ladder an attempt ran on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RungKind {
    /// The ordinary Graphene attempt.
    Graphene,
    /// Inflated-parameter Graphene re-request.
    GrapheneRetry,
    /// Rateless coded-cell stream against the failed attempt's candidates.
    Rateless,
    /// Xthin-style short-ID fetch.
    ShortIdFetch,
    /// Uncompressed block.
    FullBlock,
}

impl RungKind {
    /// Stable lowercase name for CSV output.
    pub fn as_str(&self) -> &'static str {
        match self {
            RungKind::Graphene => "graphene",
            RungKind::GrapheneRetry => "graphene_retry",
            RungKind::Rateless => "rateless",
            RungKind::ShortIdFetch => "shortid_fetch",
            RungKind::FullBlock => "full_block",
        }
    }
}

/// One rung's outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RungReport {
    /// Which rung.
    pub kind: RungKind,
    /// Retry attempt number (0 for the initial Graphene attempt; only
    /// meaningful for the Graphene rungs).
    pub attempt: u32,
    /// Bytes this rung spent (all messages, bodies included).
    pub bytes: usize,
    /// Network round trips this rung took.
    pub rounds: u32,
    /// Whether this rung reconstructed the block.
    pub success: bool,
}

/// The whole ladder's outcome. The ladder always delivers — the last rung
/// ships the block verbatim — so there is no failure variant; degradation
/// shows up as *which* rung delivered and what the descent cost.
#[derive(Clone, Debug)]
pub struct LadderReport {
    /// The rung that finally delivered the block.
    pub delivered: RungKind,
    /// Every rung attempted, in order. The last entry succeeded.
    pub rungs: Vec<RungReport>,
    /// Merged byte accounting across all rungs.
    pub bytes: ByteBreakdown,
    /// Total round trips across all rungs.
    pub rounds: u32,
    /// The block's transaction IDs in block order (Merkle-validated).
    pub ordered_ids: Vec<TxId>,
}

impl LadderReport {
    /// True when the first rung sufficed (no degradation).
    pub fn clean(&self) -> bool {
        self.rungs.len() == 1
    }
}

/// Relay `block` with the full recovery ladder: never gives up, always
/// reports what the descent cost.
pub fn relay_with_recovery(
    block: &Block,
    peer: Option<&PeerView>,
    receiver_mempool: &Mempool,
    cfg: &GrapheneConfig,
    policy: &RecoveryPolicy,
) -> LadderReport {
    let mut rungs = Vec::new();
    let mut bytes = ByteBreakdown::default();
    let mut rounds = 0u32;

    // Rungs 1–2: Graphene, then inflated re-requests with fresh salts
    // (skipped when the rateless rung replaces them).
    let retries = match policy.rateless {
        RatelessMode::ReplaceRetries => 0,
        _ => policy.graphene_retries,
    };
    for attempt in 0..=retries {
        let tweak = RetryTweak::for_attempt(cfg, attempt);
        let r = relay_block_attempt(block, peer, receiver_mempool, cfg, &tweak);
        bytes.absorb(&r.bytes);
        rounds += r.rounds;
        let kind = if attempt == 0 { RungKind::Graphene } else { RungKind::GrapheneRetry };
        let success = r.outcome.is_success();
        rungs.push(RungReport { kind, attempt, bytes: r.bytes.total(), rounds: r.rounds, success });
        if success {
            if let Some(ordered_ids) = r.ordered_ids {
                return LadderReport { delivered: kind, rungs, bytes, rounds, ordered_ids };
            }
        }
    }

    // Rateless rung: stream coded cells against the candidates the failed
    // attempt already built, growing the stream until it decodes.
    if policy.rateless != RatelessMode::Off {
        match rateless_rung(block, peer, receiver_mempool, cfg, policy, &mut bytes, &mut rounds) {
            Ok((report, ordered_ids)) => {
                rungs.push(report);
                return LadderReport {
                    delivered: RungKind::Rateless,
                    rungs,
                    bytes,
                    rounds,
                    ordered_ids,
                };
            }
            Err(report) => rungs.push(report),
        }
    }

    // Rung 3: xthin-style short-ID fetch.
    match shortid_rung(block, receiver_mempool, cfg, policy, &mut bytes, &mut rounds) {
        Ok((report, ordered_ids)) => {
            rungs.push(report);
            return LadderReport {
                delivered: RungKind::ShortIdFetch,
                rungs,
                bytes,
                rounds,
                ordered_ids,
            };
        }
        Err(report) => rungs.push(report),
    }

    // Rung 4: the full block. Cannot fail.
    let get = Message::GetFullBlock(GetFullBlockMsg { block_id: block.id() }).wire_size();
    let full =
        Message::FullBlock(FullBlockMsg { header: *block.header(), txns: block.txns().to_vec() })
            .wire_size();
    let bodies: usize =
        block.txns().iter().map(|tx| varint_len(tx.size() as u64) + tx.size()).sum();
    bytes.fallback += get + full - bodies;
    bytes.missing_txns += bodies;
    rounds += 1;
    rungs.push(RungReport {
        kind: RungKind::FullBlock,
        attempt: 0,
        bytes: get + full,
        rounds: 1,
        success: true,
    });
    LadderReport { delivered: RungKind::FullBlock, rungs, bytes, rounds, ordered_ids: block.ids() }
}

/// The rateless rung: the receiver keeps the [`CandidateSet`] its failed
/// Graphene attempt built (mempool survivors of `S`, i.e. block∩mempool
/// plus `S` false positives), so sender and receiver already share almost
/// everything — the remaining job is reconciling the block's short-ID set
/// against the candidates, whose symmetric difference is small however
/// badly the original IBLT was sized. The sender streams coded cells from
/// a [`CellStream`] over the block's short IDs; the receiver's
/// [`RatelessDecoder`] peels incrementally and asks for more until it
/// decodes. Recovered `only_remote` IDs are genuinely missing bodies
/// (fetched by short ID, as in Protocol 2's extra round); `only_local`
/// IDs are `S` false positives and are dropped from the candidates.
///
/// The candidate state is regenerated here rather than threaded out of
/// [`relay_block_attempt`] — the encode is deterministic, so this is
/// byte-for-byte the state the receiver holds, at zero wire cost.
///
/// [`CandidateSet`]: crate::protocol1::CandidateSet
fn rateless_rung(
    block: &Block,
    peer: Option<&PeerView>,
    mempool: &Mempool,
    cfg: &GrapheneConfig,
    policy: &RecoveryPolicy,
    bytes: &mut ByteBreakdown,
    rounds: &mut u32,
) -> Result<(RungReport, Vec<TxId>), RungReport> {
    let fail = |bytes: usize, rounds: u32| RungReport {
        kind: RungKind::Rateless,
        attempt: 0,
        bytes,
        rounds,
        success: false,
    };

    let (msg, _) = protocol1::sender_encode(block, mempool.len() as u64, peer, cfg);
    let state = match protocol1::receiver_decode(&msg, mempool, cfg) {
        // Unreachable when the ladder descended honestly (the identical
        // attempt just failed), but harmless: deliver at zero extra cost.
        Ok(ok) => {
            return Ok((
                RungReport {
                    kind: RungKind::Rateless,
                    attempt: 0,
                    bytes: 0,
                    rounds: 0,
                    success: true,
                },
                ok.ordered_ids,
            ))
        }
        Err((_, state)) => state,
    };

    let salt = rateless_salt(&block.id());
    let mut stream = CellStream::new(salt, block.txns().iter().map(|tx| short_id_8(tx.id())));
    let mut decoder = RatelessDecoder::new(salt, state.by_short.keys().copied());

    // First-batch sizing: the partial peel and the candidate-count gap both
    // lower-bound the difference — and both undercount it, because Bloom
    // false positives inflate `z` toward `n` while also joining the
    // difference themselves. 3× covers that undercount plus the codec's
    // ~1.35d overhead, so most degraded relays decode in one batch.
    let d_est = (state.partial_left.len() + state.partial_right.len())
        .max(state.z.abs_diff(block.len()))
        .max(4);
    let mut batch = (3 * d_est).clamp(8, MAX_CELLS_PER_BATCH);

    let mut rung_bytes = 0usize;
    let mut rung_rounds = 0u32;
    let mut decoded = None;
    for _ in 0..policy.rateless_max_batches {
        let start = stream.emitted();
        let cells = stream.cells(batch);
        let req = Message::GetMoreCells(GetMoreCellsMsg {
            block_id: block.id(),
            from_index: start,
            count: batch as u32,
        });
        let resp = Message::RatelessCells(RatelessCellsMsg {
            block_id: block.id(),
            salt,
            start_index: start,
            cells: cells.clone(),
        });
        rung_bytes += req.wire_size() + resp.wire_size();
        rung_rounds += 1;
        match decoder.push_cells(start, &cells) {
            Ok(DecodeProgress::Decoded(diff)) => {
                decoded = Some(diff);
                break;
            }
            Ok(DecodeProgress::NeedMore(n)) => batch = n,
            // An honest stream cannot be malformed; bail to the next rung.
            Err(_) => break,
        }
    }
    bytes.rateless += rung_bytes;
    *rounds += rung_rounds;
    let Some(diff) = decoded else {
        return Err(fail(rung_bytes, rung_rounds));
    };

    // Resolve the decoded difference: drop `S` false positives, fetch the
    // genuinely missing bodies by short ID (Protocol 2's extra round).
    let mut resolved: HashMap<u64, TxId> = state.by_short.clone();
    for s in &diff.only_local {
        resolved.remove(s);
    }
    if !diff.only_remote.is_empty() {
        let req = Message::GetGrapheneTxn(GetGrapheneTxnMsg {
            block_id: block.id(),
            short_ids: diff.only_remote.clone(),
        });
        let lookup: HashMap<u64, &graphene_blockchain::Transaction> =
            block.txns().iter().map(|tx| (short_id_8(tx.id()), tx)).collect();
        let fetched: Vec<_> =
            diff.only_remote.iter().filter_map(|s| lookup.get(s).map(|tx| (*tx).clone())).collect();
        let resp = Message::BlockTxn(BlockTxnMsg { block_id: block.id(), txns: fetched.clone() });
        let fetched_bodies: usize =
            fetched.iter().map(|tx| varint_len(tx.size() as u64) + tx.size()).sum();
        let fetch_bytes = req.wire_size() + resp.wire_size();
        rung_bytes += fetch_bytes;
        rung_rounds += 1;
        bytes.rateless += fetch_bytes - fetched_bodies;
        bytes.missing_txns += fetched_bodies;
        *rounds += 1;
        if fetched.len() != diff.only_remote.len() {
            // A recovered short ID the sender does not recognize: a decode
            // artifact (XOR collision); fall through to the next rung.
            return Err(fail(rung_bytes, rung_rounds));
        }
        for tx in &fetched {
            resolved.insert(short_id_8(tx.id()), *tx.id());
        }
    }

    match protocol2::finalize_p2(&resolved, block.header().merkle_root, &msg.order_bytes, cfg) {
        Ok(ok) => match ok.ordered_ids {
            Some(ids) => Ok((
                RungReport {
                    kind: RungKind::Rateless,
                    attempt: 0,
                    bytes: rung_bytes,
                    rounds: rung_rounds,
                    success: true,
                },
                ids,
            )),
            None => Err(fail(rung_bytes, rung_rounds)),
        },
        Err(_) => Err(fail(rung_bytes, rung_rounds)),
    }
}

/// The xthin-style rung: receiver sends a Bloom filter of its mempool, the
/// sender answers with block-order short IDs plus the transactions that
/// missed the filter; unresolved short IDs cost one repair round.
///
/// Fails (→ full block) only when short-ID resolution is ambiguous or the
/// Merkle root does not validate.
fn shortid_rung(
    block: &Block,
    mempool: &Mempool,
    cfg: &GrapheneConfig,
    policy: &RecoveryPolicy,
    bytes: &mut ByteBreakdown,
    rounds: &mut u32,
) -> Result<(RungReport, Vec<TxId>), RungReport> {
    let mut rung_bytes = 0usize;
    let mut rung_rounds = 1u32;

    // Receiver → sender: Bloom filter over the whole mempool.
    let salt = block.id().low_u64() ^ SALT_XF;
    let mut filter = BloomFilter::with_strategy(
        mempool.len().max(1),
        policy.shortid_fpr,
        salt,
        cfg.bloom_strategy,
    );
    for tx in mempool.iter() {
        filter.insert(tx.id());
    }
    let req = Message::XthinGetData(XthinGetDataMsg {
        block_id: block.id(),
        mempool_filter: filter.clone(),
    });
    rung_bytes += req.wire_size();

    // Sender → receiver: short IDs in block order + filter misses in full.
    let missing: Vec<_> =
        block.txns().iter().filter(|tx| !filter.contains(tx.id())).cloned().collect();
    let short_ids: Vec<u64> = block.txns().iter().map(|tx| short_id_8(tx.id())).collect();
    let resp = Message::XthinBlock(XthinBlockMsg {
        header: *block.header(),
        short_ids: short_ids.clone(),
        missing: missing.clone(),
    });
    let missing_bodies: usize =
        missing.iter().map(|tx| varint_len(tx.size() as u64) + tx.size()).sum();
    rung_bytes += resp.wire_size();
    bytes.fallback += rung_bytes - missing_bodies;
    bytes.missing_txns += missing_bodies;

    // Receiver: resolve short IDs mempool-first; delivered bodies are
    // authoritative on collision (same policy as Protocol 2).
    let mut by_short: HashMap<u64, Vec<TxId>> = HashMap::new();
    for tx in mempool.iter() {
        by_short.entry(short_id_8(tx.id())).or_default().push(*tx.id());
    }
    for tx in &missing {
        by_short.insert(short_id_8(tx.id()), vec![*tx.id()]);
    }

    let mut ordered: Vec<Option<TxId>> = Vec::with_capacity(short_ids.len());
    let mut repair: Vec<u64> = Vec::new();
    for s in &short_ids {
        match by_short.get(s).map(Vec::as_slice) {
            Some([id]) => ordered.push(Some(*id)),
            Some(_) | None => {
                // Ambiguous (two mempool txns collide) or absent (filter
                // false negative cannot happen; absent means the sender's
                // view diverged): repair by explicit fetch.
                ordered.push(None);
                repair.push(*s);
            }
        }
    }

    if !repair.is_empty() {
        rung_rounds += 1;
        let req = Message::GetGrapheneTxn(GetGrapheneTxnMsg {
            block_id: block.id(),
            short_ids: repair.clone(),
        });
        let lookup: HashMap<u64, &graphene_blockchain::Transaction> =
            block.txns().iter().map(|tx| (short_id_8(tx.id()), tx)).collect();
        let fetched: Vec<_> =
            repair.iter().filter_map(|s| lookup.get(s).map(|tx| (*tx).clone())).collect();
        let resp = Message::BlockTxn(BlockTxnMsg { block_id: block.id(), txns: fetched.clone() });
        let fetched_bodies: usize =
            fetched.iter().map(|tx| varint_len(tx.size() as u64) + tx.size()).sum();
        let repair_bytes = req.wire_size() + resp.wire_size();
        rung_bytes += repair_bytes;
        bytes.fallback += repair_bytes - fetched_bodies;
        bytes.missing_txns += fetched_bodies;

        let fetched_by_short: HashMap<u64, TxId> =
            fetched.iter().map(|tx| (short_id_8(tx.id()), *tx.id())).collect();
        for (slot, s) in ordered.iter_mut().zip(&short_ids) {
            if slot.is_none() {
                *slot = fetched_by_short.get(s).copied();
            }
        }
    }

    *rounds += rung_rounds;
    let ids: Option<Vec<TxId>> = ordered.into_iter().collect();
    let validated = ids.filter(|ids| merkle_root(ids) == block.header().merkle_root);
    let report = RungReport {
        kind: RungKind::ShortIdFetch,
        attempt: 0,
        bytes: rung_bytes,
        rounds: rung_rounds,
        success: validated.is_some(),
    };
    match validated {
        Some(ids) => Ok((report, ids)),
        None => Err(report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_blockchain::{Scenario, ScenarioParams};
    use rand::{rngs::StdRng, SeedableRng};

    fn cfg() -> GrapheneConfig {
        GrapheneConfig::default()
    }

    fn scenario(n: usize, extra: f64, held: f64, seed: u64) -> Scenario {
        let params = ScenarioParams {
            block_size: n,
            extra_mempool_multiple: extra,
            block_fraction_in_mempool: held,
            ..Default::default()
        };
        Scenario::generate(&params, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn clean_relay_stays_on_first_rung() {
        let s = scenario(400, 2.0, 1.0, 1);
        let r = relay_with_recovery(
            &s.block,
            None,
            &s.receiver_mempool,
            &cfg(),
            &RecoveryPolicy::default(),
        );
        assert!(r.clean(), "rungs: {:?}", r.rungs);
        assert_eq!(r.delivered, RungKind::Graphene);
        assert_eq!(r.ordered_ids, s.block.ids());
    }

    #[test]
    fn ladder_always_delivers_under_flaky_config() {
        // A deliberately under-assured configuration (low β, coarse IBLT
        // rate, no ping-pong) fails on ~4% of seeds; the ladder must still
        // deliver every block, with the deeper rungs rescuing those seeds.
        let mut flaky = cfg();
        flaky.beta = 0.51;
        flaky.iblt_rate_denom = 3;
        flaky.pingpong = false;
        let policy = RecoveryPolicy::default();
        let mut degraded = 0usize;
        for seed in 0..100u64 {
            let s = scenario(100, 1.0, 0.5, seed);
            let r = relay_with_recovery(&s.block, None, &s.receiver_mempool, &flaky, &policy);
            assert_eq!(r.ordered_ids, s.block.ids(), "seed {seed}");
            assert!(r.rungs.last().is_some_and(|last| last.success), "seed {seed}");
            if !r.clean() {
                degraded += 1;
                // Deeper rungs imply all earlier rungs failed.
                for earlier in &r.rungs[..r.rungs.len() - 1] {
                    assert!(!earlier.success, "seed {seed}: {:?}", r.rungs);
                }
            }
        }
        assert!(degraded > 0, "flaky config never degraded; test is vacuous");
    }

    #[test]
    fn ladder_bytes_are_the_sum_of_rungs() {
        let mut flaky = cfg();
        flaky.beta = 0.51;
        flaky.iblt_rate_denom = 3;
        flaky.pingpong = false;
        for seed in 0..30u64 {
            let s = scenario(120, 1.0, 0.6, seed);
            let r = relay_with_recovery(
                &s.block,
                None,
                &s.receiver_mempool,
                &flaky,
                &RecoveryPolicy::default(),
            );
            let rung_sum: usize = r.rungs.iter().map(|g| g.bytes).sum();
            assert_eq!(r.bytes.total(), rung_sum, "seed {seed}: {:?}", r.rungs);
            let rounds_sum: u32 = r.rungs.iter().map(|g| g.rounds).sum();
            assert_eq!(r.rounds, rounds_sum, "seed {seed}");
        }
    }

    #[test]
    fn ladder_handles_empty_mempool() {
        // With nothing in the mempool every body must travel regardless of
        // which rung delivers; the ladder must stay correct.
        let s = scenario(60, 0.0, 1.0, 9);
        let empty = Mempool::new();
        let r = relay_with_recovery(
            &s.block,
            None,
            &empty,
            &cfg(),
            &RecoveryPolicy { graphene_retries: 0, ..Default::default() },
        );
        assert_eq!(r.ordered_ids, s.block.ids());
        // Whichever rung delivered, the bodies all had to travel.
        let bodies: usize = s.block.txns().iter().map(|tx| tx.size()).sum();
        assert!(r.bytes.total() >= bodies);
    }

    fn flaky() -> GrapheneConfig {
        let mut flaky = cfg();
        flaky.beta = 0.51;
        flaky.iblt_rate_denom = 3;
        flaky.pingpong = false;
        flaky
    }

    #[test]
    fn rateless_rung_rescues_the_flaky_config() {
        // The "no retry cliff" ladder: every degraded seed must be rescued
        // by the rateless rung (never an inflated retry, and the deeper
        // rungs should not be needed — the stream just grows until it
        // decodes).
        let policy = RecoveryPolicy::rateless_first();
        let mut degraded = 0usize;
        for seed in 0..100u64 {
            let s = scenario(100, 1.0, 0.5, seed);
            let r = relay_with_recovery(&s.block, None, &s.receiver_mempool, &flaky(), &policy);
            assert_eq!(r.ordered_ids, s.block.ids(), "seed {seed}");
            assert!(
                r.rungs.iter().all(|g| g.kind != RungKind::GrapheneRetry),
                "seed {seed}: ReplaceRetries ran a retry rung: {:?}",
                r.rungs
            );
            if !r.clean() {
                degraded += 1;
                assert_eq!(r.delivered, RungKind::Rateless, "seed {seed}: {:?}", r.rungs);
                assert!(r.bytes.rateless > 0, "seed {seed}: rateless rung charged no bytes");
            }
        }
        assert!(degraded > 0, "flaky config never degraded; test is vacuous");
    }

    #[test]
    fn rateless_after_retries_sits_between_retry_and_shortid() {
        // `AfterRetries` only engages once every Graphene attempt —
        // including the inflated retry — has failed, so this needs a
        // harsher config than `flaky()`: an IBLT rate coarse enough that
        // even the 1.5×-inflated retry occasionally fails to peel.
        let mut harsh = flaky();
        harsh.iblt_rate_denom = 2;
        let policy = RecoveryPolicy {
            rateless: RatelessMode::AfterRetries,
            graphene_retries: 1,
            ..Default::default()
        };
        let mut saw_rateless = false;
        for seed in 0..300u64 {
            let s = scenario(200, 1.0, 0.5, seed);
            let r = relay_with_recovery(&s.block, None, &s.receiver_mempool, &harsh, &policy);
            assert_eq!(r.ordered_ids, s.block.ids(), "seed {seed}");
            if let Some(pos) = r.rungs.iter().position(|g| g.kind == RungKind::Rateless) {
                saw_rateless = true;
                // Every rung before it is a Graphene attempt, all failed.
                for g in &r.rungs[..pos] {
                    assert!(g.kind <= RungKind::GrapheneRetry, "{:?}", r.rungs);
                    assert!(!g.success);
                }
            }
        }
        assert!(saw_rateless, "rateless rung never engaged");
    }

    #[test]
    fn rateless_ladder_bytes_are_the_sum_of_rungs() {
        for seed in 0..30u64 {
            let s = scenario(120, 1.0, 0.6, seed);
            let r = relay_with_recovery(
                &s.block,
                None,
                &s.receiver_mempool,
                &flaky(),
                &RecoveryPolicy::rateless_first(),
            );
            let rung_sum: usize = r.rungs.iter().map(|g| g.bytes).sum();
            assert_eq!(r.bytes.total(), rung_sum, "seed {seed}: {:?}", r.rungs);
            let rounds_sum: u32 = r.rungs.iter().map(|g| g.rounds).sum();
            assert_eq!(r.rounds, rounds_sum, "seed {seed}");
        }
    }

    #[test]
    fn rateless_rung_cheaper_than_inflated_retries_when_degraded() {
        // The bad-difference-estimate regime, at unit scale: a big block
        // almost entirely held by the receiver, so the true difference is
        // tiny relative to `n` — yet the under-assured sketches fail. A
        // retry re-ships block-proportional sketches (fresh S + inflated I
        // + full P2); the rateless rung streams difference-proportional
        // cells instead, and must beat it on bytes AND rounds.
        let mut retry_bytes = 0usize;
        let mut retry_rounds = 0u32;
        let mut rateless_bytes = 0usize;
        let mut rateless_rounds = 0u32;
        let mut degraded = 0usize;
        for seed in 0..60u64 {
            let s = scenario(800, 1.0, 0.95, seed);
            let a = relay_with_recovery(
                &s.block,
                None,
                &s.receiver_mempool,
                &flaky(),
                &RecoveryPolicy::default(),
            );
            let b = relay_with_recovery(
                &s.block,
                None,
                &s.receiver_mempool,
                &flaky(),
                &RecoveryPolicy::rateless_first(),
            );
            if a.clean() && b.clean() {
                continue;
            }
            degraded += 1;
            retry_bytes += a.bytes.total_excluding_txns();
            retry_rounds += a.rounds;
            rateless_bytes += b.bytes.total_excluding_txns();
            rateless_rounds += b.rounds;
        }
        assert!(degraded > 0, "no degraded seeds");
        assert!(
            rateless_bytes < retry_bytes,
            "rateless {rateless_bytes} B !< retry {retry_bytes} B over {degraded} degraded seeds"
        );
        assert!(
            rateless_rounds < retry_rounds,
            "rateless {rateless_rounds} rounds !< retry {retry_rounds}"
        );
    }

    #[test]
    fn full_block_rung_is_a_safety_net() {
        // With zero Graphene retries, any first-rung failure lands directly
        // on the deep (non-Graphene) rungs, which must charge fallback bytes.
        let mut flaky = cfg();
        flaky.beta = 0.51;
        flaky.iblt_rate_denom = 3;
        flaky.pingpong = false;
        let mut saw_deep = false;
        for seed in 0..100u64 {
            let s = scenario(100, 1.0, 0.5, seed);
            let r = relay_with_recovery(
                &s.block,
                None,
                &s.receiver_mempool,
                &flaky,
                &RecoveryPolicy { graphene_retries: 0, ..Default::default() },
            );
            assert_eq!(r.ordered_ids, s.block.ids(), "seed {seed}");
            if r.delivered >= RungKind::ShortIdFetch {
                saw_deep = true;
                assert!(r.bytes.fallback > 0, "seed {seed}: deep rung with no fallback bytes");
            }
        }
        assert!(saw_deep, "no run reached the deep rungs");
    }
}
