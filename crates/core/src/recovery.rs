//! The failure-recovery ladder: graceful degradation from Graphene down to
//! a full block, with every rung's cost accounted.
//!
//! The paper's β-assurance model (Theorems 1–3) bounds each Graphene
//! attempt's failure probability by `1 − β` but says nothing about what a
//! client *does* on failure. Deployed relay protocols answer with a
//! fallback ladder — BIP 152 Compact Blocks escalates `cmpctblock →
//! getblocktxn → full block` — and this module gives Graphene the same
//! shape:
//!
//! 1. **Graphene** — the ordinary attempt ([`crate::relay_block_attempt`]).
//! 2. **GrapheneRetry** — re-request with inflated parameters: fresh salts,
//!    β decayed toward 1 (shrinking the failure budget per Theorem 3's
//!    assurance model), and an IBLT sized `1.5×` per attempt
//!    ([`RetryTweak`]).
//! 3. **ShortIdFetch** — an xthin-style exchange (BUIP010): the receiver
//!    ships a Bloom filter of its mempool, the sender answers with the
//!    block's 8-byte short IDs plus whatever missed the filter.
//! 4. **FullBlock** — the uncompressed block; cannot fail.
//!
//! Every rung records its bytes and rounds in a [`RungReport`]; the merged
//! [`ByteBreakdown`] keeps figures honest about what degradation costs.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::config::GrapheneConfig;
use crate::protocol1::RetryTweak;
use crate::session::{relay_block_attempt, ByteBreakdown};
use graphene_blockchain::{Block, Mempool, PeerView, TxId};
use graphene_bloom::{BloomFilter, Membership};
use graphene_hashes::{merkle_root, short_id_8};
use graphene_wire::messages::{
    BlockTxnMsg, FullBlockMsg, GetFullBlockMsg, GetGrapheneTxnMsg, Message, XthinBlockMsg,
    XthinGetDataMsg,
};
use graphene_wire::varint::varint_len;
use std::collections::HashMap;

/// Salt domain for the short-ID rung's mempool filter, disjoint from the
/// S/I/R/J/F domains in [`crate::protocol1`].
const SALT_XF: u64 = 0x5846;

/// Knobs for the recovery ladder.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryPolicy {
    /// Inflated Graphene re-requests before escalating past Graphene
    /// (rung 2 repeats this many times with growing parameters).
    pub graphene_retries: u32,
    /// False-positive rate of the mempool filter in the short-ID rung.
    pub shortid_fpr: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { graphene_retries: 2, shortid_fpr: 0.001 }
    }
}

/// Which rung of the ladder an attempt ran on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RungKind {
    /// The ordinary Graphene attempt.
    Graphene,
    /// Inflated-parameter Graphene re-request.
    GrapheneRetry,
    /// Xthin-style short-ID fetch.
    ShortIdFetch,
    /// Uncompressed block.
    FullBlock,
}

impl RungKind {
    /// Stable lowercase name for CSV output.
    pub fn as_str(&self) -> &'static str {
        match self {
            RungKind::Graphene => "graphene",
            RungKind::GrapheneRetry => "graphene_retry",
            RungKind::ShortIdFetch => "shortid_fetch",
            RungKind::FullBlock => "full_block",
        }
    }
}

/// One rung's outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RungReport {
    /// Which rung.
    pub kind: RungKind,
    /// Retry attempt number (0 for the initial Graphene attempt; only
    /// meaningful for the Graphene rungs).
    pub attempt: u32,
    /// Bytes this rung spent (all messages, bodies included).
    pub bytes: usize,
    /// Network round trips this rung took.
    pub rounds: u32,
    /// Whether this rung reconstructed the block.
    pub success: bool,
}

/// The whole ladder's outcome. The ladder always delivers — the last rung
/// ships the block verbatim — so there is no failure variant; degradation
/// shows up as *which* rung delivered and what the descent cost.
#[derive(Clone, Debug)]
pub struct LadderReport {
    /// The rung that finally delivered the block.
    pub delivered: RungKind,
    /// Every rung attempted, in order. The last entry succeeded.
    pub rungs: Vec<RungReport>,
    /// Merged byte accounting across all rungs.
    pub bytes: ByteBreakdown,
    /// Total round trips across all rungs.
    pub rounds: u32,
    /// The block's transaction IDs in block order (Merkle-validated).
    pub ordered_ids: Vec<TxId>,
}

impl LadderReport {
    /// True when the first rung sufficed (no degradation).
    pub fn clean(&self) -> bool {
        self.rungs.len() == 1
    }
}

/// Relay `block` with the full recovery ladder: never gives up, always
/// reports what the descent cost.
pub fn relay_with_recovery(
    block: &Block,
    peer: Option<&PeerView>,
    receiver_mempool: &Mempool,
    cfg: &GrapheneConfig,
    policy: &RecoveryPolicy,
) -> LadderReport {
    let mut rungs = Vec::new();
    let mut bytes = ByteBreakdown::default();
    let mut rounds = 0u32;

    // Rungs 1–2: Graphene, then inflated re-requests with fresh salts.
    for attempt in 0..=policy.graphene_retries {
        let tweak = RetryTweak::for_attempt(cfg, attempt);
        let r = relay_block_attempt(block, peer, receiver_mempool, cfg, &tweak);
        bytes.absorb(&r.bytes);
        rounds += r.rounds;
        let kind = if attempt == 0 { RungKind::Graphene } else { RungKind::GrapheneRetry };
        let success = r.outcome.is_success();
        rungs.push(RungReport { kind, attempt, bytes: r.bytes.total(), rounds: r.rounds, success });
        if success {
            if let Some(ordered_ids) = r.ordered_ids {
                return LadderReport { delivered: kind, rungs, bytes, rounds, ordered_ids };
            }
        }
    }

    // Rung 3: xthin-style short-ID fetch.
    match shortid_rung(block, receiver_mempool, cfg, policy, &mut bytes, &mut rounds) {
        Ok((report, ordered_ids)) => {
            rungs.push(report);
            return LadderReport {
                delivered: RungKind::ShortIdFetch,
                rungs,
                bytes,
                rounds,
                ordered_ids,
            };
        }
        Err(report) => rungs.push(report),
    }

    // Rung 4: the full block. Cannot fail.
    let get = Message::GetFullBlock(GetFullBlockMsg { block_id: block.id() }).wire_size();
    let full =
        Message::FullBlock(FullBlockMsg { header: *block.header(), txns: block.txns().to_vec() })
            .wire_size();
    let bodies: usize =
        block.txns().iter().map(|tx| varint_len(tx.size() as u64) + tx.size()).sum();
    bytes.fallback += get + full - bodies;
    bytes.missing_txns += bodies;
    rounds += 1;
    rungs.push(RungReport {
        kind: RungKind::FullBlock,
        attempt: 0,
        bytes: get + full,
        rounds: 1,
        success: true,
    });
    LadderReport { delivered: RungKind::FullBlock, rungs, bytes, rounds, ordered_ids: block.ids() }
}

/// The xthin-style rung: receiver sends a Bloom filter of its mempool, the
/// sender answers with block-order short IDs plus the transactions that
/// missed the filter; unresolved short IDs cost one repair round.
///
/// Fails (→ full block) only when short-ID resolution is ambiguous or the
/// Merkle root does not validate.
fn shortid_rung(
    block: &Block,
    mempool: &Mempool,
    cfg: &GrapheneConfig,
    policy: &RecoveryPolicy,
    bytes: &mut ByteBreakdown,
    rounds: &mut u32,
) -> Result<(RungReport, Vec<TxId>), RungReport> {
    let mut rung_bytes = 0usize;
    let mut rung_rounds = 1u32;

    // Receiver → sender: Bloom filter over the whole mempool.
    let salt = block.id().low_u64() ^ SALT_XF;
    let mut filter = BloomFilter::with_strategy(
        mempool.len().max(1),
        policy.shortid_fpr,
        salt,
        cfg.bloom_strategy,
    );
    for tx in mempool.iter() {
        filter.insert(tx.id());
    }
    let req = Message::XthinGetData(XthinGetDataMsg {
        block_id: block.id(),
        mempool_filter: filter.clone(),
    });
    rung_bytes += req.wire_size();

    // Sender → receiver: short IDs in block order + filter misses in full.
    let missing: Vec<_> =
        block.txns().iter().filter(|tx| !filter.contains(tx.id())).cloned().collect();
    let short_ids: Vec<u64> = block.txns().iter().map(|tx| short_id_8(tx.id())).collect();
    let resp = Message::XthinBlock(XthinBlockMsg {
        header: *block.header(),
        short_ids: short_ids.clone(),
        missing: missing.clone(),
    });
    let missing_bodies: usize =
        missing.iter().map(|tx| varint_len(tx.size() as u64) + tx.size()).sum();
    rung_bytes += resp.wire_size();
    bytes.fallback += rung_bytes - missing_bodies;
    bytes.missing_txns += missing_bodies;

    // Receiver: resolve short IDs mempool-first; delivered bodies are
    // authoritative on collision (same policy as Protocol 2).
    let mut by_short: HashMap<u64, Vec<TxId>> = HashMap::new();
    for tx in mempool.iter() {
        by_short.entry(short_id_8(tx.id())).or_default().push(*tx.id());
    }
    for tx in &missing {
        by_short.insert(short_id_8(tx.id()), vec![*tx.id()]);
    }

    let mut ordered: Vec<Option<TxId>> = Vec::with_capacity(short_ids.len());
    let mut repair: Vec<u64> = Vec::new();
    for s in &short_ids {
        match by_short.get(s).map(Vec::as_slice) {
            Some([id]) => ordered.push(Some(*id)),
            Some(_) | None => {
                // Ambiguous (two mempool txns collide) or absent (filter
                // false negative cannot happen; absent means the sender's
                // view diverged): repair by explicit fetch.
                ordered.push(None);
                repair.push(*s);
            }
        }
    }

    if !repair.is_empty() {
        rung_rounds += 1;
        let req = Message::GetGrapheneTxn(GetGrapheneTxnMsg {
            block_id: block.id(),
            short_ids: repair.clone(),
        });
        let lookup: HashMap<u64, &graphene_blockchain::Transaction> =
            block.txns().iter().map(|tx| (short_id_8(tx.id()), tx)).collect();
        let fetched: Vec<_> =
            repair.iter().filter_map(|s| lookup.get(s).map(|tx| (*tx).clone())).collect();
        let resp = Message::BlockTxn(BlockTxnMsg { block_id: block.id(), txns: fetched.clone() });
        let fetched_bodies: usize =
            fetched.iter().map(|tx| varint_len(tx.size() as u64) + tx.size()).sum();
        let repair_bytes = req.wire_size() + resp.wire_size();
        rung_bytes += repair_bytes;
        bytes.fallback += repair_bytes - fetched_bodies;
        bytes.missing_txns += fetched_bodies;

        let fetched_by_short: HashMap<u64, TxId> =
            fetched.iter().map(|tx| (short_id_8(tx.id()), *tx.id())).collect();
        for (slot, s) in ordered.iter_mut().zip(&short_ids) {
            if slot.is_none() {
                *slot = fetched_by_short.get(s).copied();
            }
        }
    }

    *rounds += rung_rounds;
    let ids: Option<Vec<TxId>> = ordered.into_iter().collect();
    let validated = ids.filter(|ids| merkle_root(ids) == block.header().merkle_root);
    let report = RungReport {
        kind: RungKind::ShortIdFetch,
        attempt: 0,
        bytes: rung_bytes,
        rounds: rung_rounds,
        success: validated.is_some(),
    };
    match validated {
        Some(ids) => Ok((report, ids)),
        None => Err(report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_blockchain::{Scenario, ScenarioParams};
    use rand::{rngs::StdRng, SeedableRng};

    fn cfg() -> GrapheneConfig {
        GrapheneConfig::default()
    }

    fn scenario(n: usize, extra: f64, held: f64, seed: u64) -> Scenario {
        let params = ScenarioParams {
            block_size: n,
            extra_mempool_multiple: extra,
            block_fraction_in_mempool: held,
            ..Default::default()
        };
        Scenario::generate(&params, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn clean_relay_stays_on_first_rung() {
        let s = scenario(400, 2.0, 1.0, 1);
        let r = relay_with_recovery(
            &s.block,
            None,
            &s.receiver_mempool,
            &cfg(),
            &RecoveryPolicy::default(),
        );
        assert!(r.clean(), "rungs: {:?}", r.rungs);
        assert_eq!(r.delivered, RungKind::Graphene);
        assert_eq!(r.ordered_ids, s.block.ids());
    }

    #[test]
    fn ladder_always_delivers_under_flaky_config() {
        // A deliberately under-assured configuration (low β, coarse IBLT
        // rate, no ping-pong) fails on ~4% of seeds; the ladder must still
        // deliver every block, with the deeper rungs rescuing those seeds.
        let mut flaky = cfg();
        flaky.beta = 0.51;
        flaky.iblt_rate_denom = 3;
        flaky.pingpong = false;
        let policy = RecoveryPolicy::default();
        let mut degraded = 0usize;
        for seed in 0..100u64 {
            let s = scenario(100, 1.0, 0.5, seed);
            let r = relay_with_recovery(&s.block, None, &s.receiver_mempool, &flaky, &policy);
            assert_eq!(r.ordered_ids, s.block.ids(), "seed {seed}");
            assert!(r.rungs.last().is_some_and(|last| last.success), "seed {seed}");
            if !r.clean() {
                degraded += 1;
                // Deeper rungs imply all earlier rungs failed.
                for earlier in &r.rungs[..r.rungs.len() - 1] {
                    assert!(!earlier.success, "seed {seed}: {:?}", r.rungs);
                }
            }
        }
        assert!(degraded > 0, "flaky config never degraded; test is vacuous");
    }

    #[test]
    fn ladder_bytes_are_the_sum_of_rungs() {
        let mut flaky = cfg();
        flaky.beta = 0.51;
        flaky.iblt_rate_denom = 3;
        flaky.pingpong = false;
        for seed in 0..30u64 {
            let s = scenario(120, 1.0, 0.6, seed);
            let r = relay_with_recovery(
                &s.block,
                None,
                &s.receiver_mempool,
                &flaky,
                &RecoveryPolicy::default(),
            );
            let rung_sum: usize = r.rungs.iter().map(|g| g.bytes).sum();
            assert_eq!(r.bytes.total(), rung_sum, "seed {seed}: {:?}", r.rungs);
            let rounds_sum: u32 = r.rungs.iter().map(|g| g.rounds).sum();
            assert_eq!(r.rounds, rounds_sum, "seed {seed}");
        }
    }

    #[test]
    fn ladder_handles_empty_mempool() {
        // With nothing in the mempool every body must travel regardless of
        // which rung delivers; the ladder must stay correct.
        let s = scenario(60, 0.0, 1.0, 9);
        let empty = Mempool::new();
        let r = relay_with_recovery(
            &s.block,
            None,
            &empty,
            &cfg(),
            &RecoveryPolicy { graphene_retries: 0, ..Default::default() },
        );
        assert_eq!(r.ordered_ids, s.block.ids());
        // Whichever rung delivered, the bodies all had to travel.
        let bodies: usize = s.block.txns().iter().map(|tx| tx.size()).sum();
        assert!(r.bytes.total() >= bodies);
    }

    #[test]
    fn full_block_rung_is_a_safety_net() {
        // With zero Graphene retries, any first-rung failure lands directly
        // on the deep (non-Graphene) rungs, which must charge fallback bytes.
        let mut flaky = cfg();
        flaky.beta = 0.51;
        flaky.iblt_rate_denom = 3;
        flaky.pingpong = false;
        let mut saw_deep = false;
        for seed in 0..100u64 {
            let s = scenario(100, 1.0, 0.5, seed);
            let r = relay_with_recovery(
                &s.block,
                None,
                &s.receiver_mempool,
                &flaky,
                &RecoveryPolicy { graphene_retries: 0, ..Default::default() },
            );
            assert_eq!(r.ordered_ids, s.block.ids(), "seed {seed}");
            if r.delivered >= RungKind::ShortIdFetch {
                saw_deep = true;
                assert!(r.bytes.fallback > 0, "seed {seed}: deep rung with no fallback bytes");
            }
        }
        assert!(saw_deep, "no run reached the deep rungs");
    }
}
