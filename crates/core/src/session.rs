//! A complete two-party Graphene relay with exact byte accounting.
//!
//! This glues Protocols 1 and 2 (and the extra-fetch round for `R` false
//! positives) into one call, producing the per-message byte breakdown that
//! the paper's figures plot. The underlying wire encodings come from
//! `graphene-wire`, so every byte counted here is a byte a real socket
//! would carry.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::config::GrapheneConfig;
use crate::encode_cache::EncodeCache;
use crate::error::P2Failure;
use crate::protocol1::{self, RetryTweak};
use crate::protocol2::{self};
use graphene_blockchain::{Block, Mempool, PeerView, TxId};
use graphene_bloom::Membership;
use graphene_hashes::short_id_8;
use graphene_iblt::Iblt;
use graphene_wire::messages::{
    BlockTxnMsg, FullBlockMsg, GetDataMsg, GetFullBlockMsg, GrapheneBlockMsg, InvMsg, Message,
};
use graphene_wire::varint::varint_len;
use std::collections::HashMap;

/// The durable half of a node's relay state: what survives a crash.
///
/// Deployed clients persist the mempool and the accepted chain to disk;
/// everything receiver-side that belongs to an *in-flight* reconciliation —
/// the Protocol 1 [`CandidateSet`](crate::protocol1::CandidateSet), partial
/// short-ID resolutions, collected-but-unconfirmed bodies, retry timers —
/// is process memory and is lost on restart. This type encodes that split:
/// a crashed node restores from a `NodeSnapshot` and re-learns any block it
/// was mid-session on through the ordinary announcement path, never by
/// resuming decode state.
#[derive(Clone, Debug, Default)]
pub struct NodeSnapshot {
    /// Unconfirmed transactions at snapshot time.
    pub mempool: Mempool,
    /// Fully validated blocks held at snapshot time.
    pub blocks: Vec<Block>,
}

impl NodeSnapshot {
    /// Drop every mempool transaction `keep` rejects — the "stale mempool"
    /// of a node rejoining after downtime (its pool aged out or was only
    /// partially flushed to disk). Deterministic given a deterministic
    /// predicate; accepted blocks are never trimmed.
    pub fn retain_mempool(&mut self, keep: impl Fn(&TxId) -> bool) {
        let drop: Vec<TxId> =
            self.mempool.iter().map(|tx| *tx.id()).filter(|id| !keep(id)).collect();
        for id in &drop {
            self.mempool.remove(id);
        }
    }
}

/// How the relay concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelayOutcome {
    /// Protocol 1 sufficed (the common case, Fig. 12's 99.7%).
    DecodedP1,
    /// Protocol 2 recovered the block.
    DecodedP2 {
        /// Whether an extra round fetched `R` false positives.
        extra_fetch: bool,
    },
    /// Both protocols failed; the relay fell back to a full block.
    Failed {
        /// The failure that ended the attempt.
        p2: P2Failure,
        /// Bytes the fallback actually cost (full block + framing). Zero
        /// only from [`relay_block_attempt`], whose caller owns the ladder.
        fallback_bytes: usize,
    },
}

impl RelayOutcome {
    /// True if the block was reconstructed (by either protocol).
    pub fn is_success(&self) -> bool {
        !matches!(self, RelayOutcome::Failed { .. })
    }
}

/// Byte-level breakdown per message component (Fig. 17's categories).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ByteBreakdown {
    /// Block announcement.
    pub inv: usize,
    /// `getdata` with mempool count.
    pub getdata: usize,
    /// Bloom filter `S` payload.
    pub bloom_s: usize,
    /// IBLT `I` payload.
    pub iblt_i: usize,
    /// Prefilled (never-inv'd) transactions in the Protocol 1 message.
    pub prefilled: usize,
    /// Ordering permutation bytes (zero under CTOR).
    pub order: usize,
    /// Residual Protocol 1 framing (header, counts).
    pub p1_overhead: usize,
    /// Bloom filter `R` payload (Protocol 2 request).
    pub bloom_r: usize,
    /// Residual Protocol 2 request framing.
    pub p2_request_overhead: usize,
    /// Missing transactions shipped in the recovery message.
    pub missing_txns: usize,
    /// IBLT `J` payload.
    pub iblt_j: usize,
    /// Filter `F` (`m ≈ n` special case only).
    pub bloom_f: usize,
    /// Residual recovery framing.
    pub p2_response_overhead: usize,
    /// The extra round fetching `R` false positives by short ID.
    pub extra_fetch: usize,
    /// Rateless-rung structural bytes: coded-cell windows and their
    /// requests (bodies fetched afterwards land in `missing_txns`).
    pub rateless: usize,
    /// Structural bytes of non-Graphene fallback rungs (short-ID fetch or
    /// full block, including framing; bodies land in `missing_txns`).
    pub fallback: usize,
}

impl ByteBreakdown {
    /// Sum of every component.
    pub fn total(&self) -> usize {
        self.inv
            + self.getdata
            + self.bloom_s
            + self.iblt_i
            + self.prefilled
            + self.order
            + self.p1_overhead
            + self.bloom_r
            + self.p2_request_overhead
            + self.missing_txns
            + self.iblt_j
            + self.bloom_f
            + self.p2_response_overhead
            + self.extra_fetch
            + self.rateless
            + self.fallback
    }

    /// Total excluding transaction bodies — the quantity Figs. 14/17/18
    /// plot ("we exclude the cost of sending the missing transactions
    /// themselves for both protocols").
    pub fn total_excluding_txns(&self) -> usize {
        self.total() - self.missing_txns - self.prefilled
    }

    /// Accumulate another breakdown into this one (used by the recovery
    /// ladder to merge per-rung accounting into a whole-relay view).
    pub fn absorb(&mut self, other: &ByteBreakdown) {
        self.inv += other.inv;
        self.getdata += other.getdata;
        self.bloom_s += other.bloom_s;
        self.iblt_i += other.iblt_i;
        self.prefilled += other.prefilled;
        self.order += other.order;
        self.p1_overhead += other.p1_overhead;
        self.bloom_r += other.bloom_r;
        self.p2_request_overhead += other.p2_request_overhead;
        self.missing_txns += other.missing_txns;
        self.iblt_j += other.iblt_j;
        self.bloom_f += other.bloom_f;
        self.p2_response_overhead += other.p2_response_overhead;
        self.extra_fetch += other.extra_fetch;
        self.rateless += other.rateless;
        self.fallback += other.fallback;
    }
}

/// Result of a relay attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelayReport {
    /// How it ended.
    pub outcome: RelayOutcome,
    /// Network round trips used (1 = Protocol 1 only; each additional
    /// protocol phase adds one).
    pub rounds: u32,
    /// Exact bytes by component.
    pub bytes: ByteBreakdown,
    /// The reconstructed block-order transaction IDs (when successful).
    pub ordered_ids: Option<Vec<TxId>>,
}

/// Relay `block` from a sender to a receiver holding `receiver_mempool`.
///
/// `peer` optionally carries the sender's inv log for this receiver
/// (enables prefilling). The exchange is simulated in-process but every
/// message is sized through its real wire encoding.
///
/// ```
/// use graphene::{relay_block, GrapheneConfig};
/// use graphene_blockchain::{Block, Mempool, OrderingScheme, Transaction};
/// use graphene_hashes::Digest;
///
/// let txns: Vec<Transaction> = (0..100u64)
///     .map(|i| Transaction::new(i.to_le_bytes().to_vec()))
///     .collect();
/// let block = Block::assemble(Digest::ZERO, 0, txns.clone(), OrderingScheme::Ctor);
/// let mempool: Mempool = txns.into_iter().collect();
///
/// let report = relay_block(&block, None, &mempool, &GrapheneConfig::default());
/// assert!(report.outcome.is_success());
/// assert!(report.bytes.total_excluding_txns() < 6 * 100); // beats Compact Blocks
/// ```
pub fn relay_block(
    block: &Block,
    peer: Option<&PeerView>,
    receiver_mempool: &Mempool,
    cfg: &GrapheneConfig,
) -> RelayReport {
    let report = relay_block_attempt(block, peer, receiver_mempool, cfg, &RetryTweak::initial(cfg));
    finish_with_fallback(block, report)
}

/// [`relay_block`] through the encode-once relay cache.
///
/// The Protocol 1 frame is encoded (or served) at the canonical `m` of the
/// receiver's mempool-size bucket — see
/// [`sender_encode_cached`](protocol1::sender_encode_cached) — so every
/// receiver in a size class observes a byte-identical frame. With
/// `cache: None` the same canonical encoding is performed fresh, making
/// this the uncached oracle the equivalence tests compare against.
pub fn relay_block_cached(
    block: &Block,
    peer: Option<&PeerView>,
    receiver_mempool: &Mempool,
    cfg: &GrapheneConfig,
    cache: Option<&EncodeCache>,
) -> RelayReport {
    let report = relay_block_attempt_cached(
        block,
        peer,
        receiver_mempool,
        cfg,
        &RetryTweak::initial(cfg),
        cache,
    );
    finish_with_fallback(block, report)
}

/// A real client does not stop at "failed": it fetches the full block, and
/// those bytes belong in the accounting (they used to be silently dropped,
/// under-reporting every failed relay).
fn finish_with_fallback(block: &Block, mut report: RelayReport) -> RelayReport {
    if let RelayOutcome::Failed { p2, .. } = report.outcome {
        let get = Message::GetFullBlock(GetFullBlockMsg { block_id: block.id() }).wire_size();
        let full = Message::FullBlock(FullBlockMsg {
            header: *block.header(),
            txns: block.txns().to_vec(),
        })
        .wire_size();
        let bodies: usize =
            block.txns().iter().map(|tx| varint_len(tx.size() as u64) + tx.size()).sum();
        report.bytes.fallback = get + full - bodies;
        report.bytes.missing_txns += bodies;
        report.rounds += 1;
        report.outcome = RelayOutcome::Failed { p2, fallback_bytes: get + full };
    }
    report
}

/// One rung of a relay: a single Graphene attempt with no implicit
/// full-block fallback. [`relay_block`] wraps this for the classic
/// one-attempt-then-full-block client; [`crate::recovery`] chains several
/// attempts with inflated parameters instead.
pub fn relay_block_attempt(
    block: &Block,
    peer: Option<&PeerView>,
    receiver_mempool: &Mempool,
    cfg: &GrapheneConfig,
    tweak: &RetryTweak,
) -> RelayReport {
    attempt_inner(block, peer, receiver_mempool, cfg, tweak, EncodeMode::PerReceiver)
}

/// [`relay_block_attempt`] through the encode-once relay cache: the
/// Protocol 1 frame is canonical for the receiver's mempool-size bucket
/// (with or without a cache), retry rungs and Protocol 2 responses bypass
/// the cache and are accounted as bypasses.
pub fn relay_block_attempt_cached(
    block: &Block,
    peer: Option<&PeerView>,
    receiver_mempool: &Mempool,
    cfg: &GrapheneConfig,
    tweak: &RetryTweak,
    cache: Option<&EncodeCache>,
) -> RelayReport {
    attempt_inner(block, peer, receiver_mempool, cfg, tweak, EncodeMode::Bucketed(cache))
}

/// How the attempt encodes Protocol 1's message.
enum EncodeMode<'a> {
    /// Size `S`/`I` for the receiver's exact `m` (the paper's two-party
    /// session; byte counts match the figures).
    PerReceiver,
    /// Size for the canonical `m` of the receiver's bucket, optionally
    /// serving/populating the relay cache.
    Bucketed(Option<&'a EncodeCache>),
}

fn attempt_inner(
    block: &Block,
    peer: Option<&PeerView>,
    receiver_mempool: &Mempool,
    cfg: &GrapheneConfig,
    tweak: &RetryTweak,
    mode: EncodeMode<'_>,
) -> RelayReport {
    let mut bytes = ByteBreakdown::default();
    let m = receiver_mempool.len();

    // inv / getdata round (retries re-request instead of re-announcing, and
    // carry the attempt number so the sender can inflate).
    if tweak.attempt == 0 {
        bytes.inv = Message::Inv(InvMsg { block_id: block.id() }).wire_size();
        bytes.getdata =
            Message::GetData(GetDataMsg { block_id: block.id(), mempool_count: m as u64 })
                .wire_size();
    } else {
        bytes.getdata = Message::GetGrapheneRetry(graphene_wire::messages::GetGrapheneRetryMsg {
            block_id: block.id(),
            mempool_count: m as u64,
            attempt: tweak.attempt,
        })
        .wire_size();
    }

    // Protocol 1. Downstream sizing (x*, y*, b) uses the attempt's decayed
    // β too, so the whole rung is more forgiving, not just the filter.
    let cfg = &GrapheneConfig { beta: tweak.beta, ..*cfg };
    let p1_msg = match &mode {
        EncodeMode::PerReceiver => {
            protocol1::sender_encode_retry(block, m as u64, peer, cfg, tweak).0
        }
        EncodeMode::Bucketed(cache) => {
            protocol1::sender_encode_cached(block, m as u64, peer, cfg, tweak, *cache).msg
        }
    };
    account_p1(&p1_msg, &mut bytes);

    let (p1_failure, mut state) = match protocol1::receiver_decode(&p1_msg, receiver_mempool, cfg) {
        Ok(ok) => {
            return RelayReport {
                outcome: RelayOutcome::DecodedP1,
                rounds: 2,
                bytes,
                ordered_ids: Some(ok.ordered_ids),
            }
        }
        Err(e) => e,
    };

    // Direct-fetch extension: a *complete* IBLT decode that merely revealed
    // missing transactions already identifies exactly what to fetch — the
    // Protocol 2 structures would carry no new information.
    if cfg.direct_fetch
        && matches!(p1_failure, crate::error::P1Failure::MissingTransactions { .. })
        && state.i_delta.as_ref().is_some_and(Iblt::is_drained)
    {
        let mut resolved: HashMap<u64, TxId> = state.by_short.clone();
        for fp in &state.partial_right {
            resolved.remove(fp);
        }
        return fetch_extras(block, resolved, state.partial_left.clone(), &p1_msg, bytes, cfg);
    }
    let _ = p1_failure; // every other failure routes through Protocol 2

    // Protocol 2.
    let (req, _req_state) = protocol2::receiver_request(&state, block.id(), block.len(), m, cfg);
    let req_wire = Message::GrapheneRequest(req.clone()).wire_size();
    bytes.bloom_r = req.bloom_r.serialized_size();
    bytes.p2_request_overhead = req_wire - bytes.bloom_r;

    let rec = match &mode {
        EncodeMode::PerReceiver => protocol2::sender_respond(block, &req, m, cfg),
        EncodeMode::Bucketed(cache) => {
            protocol2::sender_respond_cached(block, &req, m, cfg, *cache)
        }
    };
    let rec_wire = Message::GrapheneRecovery(rec.clone()).wire_size();
    bytes.missing_txns =
        rec.missing.iter().map(|tx| varint_len(tx.size() as u64) + tx.size()).sum();
    bytes.iblt_j = rec.iblt_j.serialized_size();
    bytes.bloom_f = rec.bloom_f.as_ref().map_or(0, |f| f.serialized_size());
    bytes.p2_response_overhead = rec_wire - bytes.missing_txns - bytes.iblt_j - bytes.bloom_f;

    let completed = protocol2::receiver_complete(
        &mut state,
        &rec,
        block.header().merkle_root,
        &p1_msg.order_bytes,
        cfg,
    );

    match completed {
        Ok(ok) => {
            if ok.needs_fetch.is_empty() {
                RelayReport {
                    outcome: RelayOutcome::DecodedP2 { extra_fetch: false },
                    rounds: 3,
                    bytes,
                    ordered_ids: ok.ordered_ids,
                }
            } else {
                // One more round: fetch R false positives by short ID.
                fetch_extras(block, ok.resolved, ok.needs_fetch, &p1_msg, bytes, cfg)
            }
        }
        Err(p2) => RelayReport {
            outcome: RelayOutcome::Failed { p2, fallback_bytes: 0 },
            rounds: 3,
            bytes,
            ordered_ids: None,
        },
    }
}

/// The extra round: the receiver requests the short IDs it could not
/// resolve; the sender answers with the transactions; the receiver
/// finalizes against the already-adjusted candidate map.
fn fetch_extras(
    block: &Block,
    mut resolved: HashMap<u64, TxId>,
    needs: Vec<u64>,
    p1_msg: &GrapheneBlockMsg,
    mut bytes: ByteBreakdown,
    cfg: &GrapheneConfig,
) -> RelayReport {
    // Request: same shape as BIP152's getblocktxn but keyed by short ID
    // (32-byte block id + 8 bytes per entry, framed).
    let req_bytes = 5 + 32 + varint_len(needs.len() as u64) + 8 * needs.len();

    // Sender side: look the short IDs up in the block.
    let lookup: HashMap<u64, &graphene_blockchain::Transaction> =
        block.txns().iter().map(|tx| (short_id_8(tx.id()), tx)).collect();
    let mut fetched = Vec::new();
    for s in &needs {
        if let Some(tx) = lookup.get(s) {
            fetched.push((*tx).clone());
        }
    }
    let resp = Message::BlockTxn(BlockTxnMsg { block_id: block.id(), txns: fetched.clone() });
    // Split bodies out of the structure metric, as with `missing_txns`.
    let body_bytes: usize = fetched.iter().map(|tx| varint_len(tx.size() as u64) + tx.size()).sum();
    bytes.extra_fetch = req_bytes + resp.wire_size() - body_bytes;
    bytes.missing_txns += body_bytes;

    if fetched.len() != needs.len() {
        // Sender does not recognize a short ID: hostile or collided state.
        return RelayReport {
            outcome: RelayOutcome::Failed { p2: P2Failure::ShortIdCollision, fallback_bytes: 0 },
            rounds: 4,
            bytes,
            ordered_ids: None,
        };
    }

    // Receiver: add the fetched bodies and finalize.
    for tx in &fetched {
        resolved.insert(short_id_8(tx.id()), *tx.id());
    }
    match protocol2::finalize_p2(&resolved, block.header().merkle_root, &p1_msg.order_bytes, cfg) {
        Ok(ok) => RelayReport {
            outcome: RelayOutcome::DecodedP2 { extra_fetch: true },
            rounds: 4,
            bytes,
            ordered_ids: ok.ordered_ids,
        },
        Err(p2) => RelayReport {
            outcome: RelayOutcome::Failed { p2, fallback_bytes: 0 },
            rounds: 4,
            bytes,
            ordered_ids: None,
        },
    }
}

fn account_p1(msg: &GrapheneBlockMsg, bytes: &mut ByteBreakdown) {
    use graphene_wire::Encode;
    let wire = Message::GrapheneBlock(msg.clone()).wire_size();
    bytes.bloom_s = msg.bloom_s.encoded_len();
    bytes.iblt_i = msg.iblt_i.serialized_size();
    bytes.prefilled = msg.prefilled.iter().map(|tx| varint_len(tx.size() as u64) + tx.size()).sum();
    bytes.order = msg.order_bytes.len();
    bytes.p1_overhead = wire - bytes.bloom_s - bytes.iblt_i - bytes.prefilled - bytes.order;
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_blockchain::{Scenario, ScenarioParams};
    use rand::{rngs::StdRng, SeedableRng};

    fn cfg() -> GrapheneConfig {
        GrapheneConfig::default()
    }

    fn scenario(n: usize, extra: f64, held: f64, seed: u64) -> Scenario {
        let params = ScenarioParams {
            block_size: n,
            extra_mempool_multiple: extra,
            block_fraction_in_mempool: held,
            ..Default::default()
        };
        Scenario::generate(&params, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn p1_path_report() {
        let s = scenario(500, 2.0, 1.0, 1);
        let r = relay_block(&s.block, None, &s.receiver_mempool, &cfg());
        assert_eq!(r.outcome, RelayOutcome::DecodedP1);
        assert_eq!(r.rounds, 2);
        assert_eq!(r.ordered_ids.as_deref(), Some(&s.block.ids()[..]));
        assert!(r.bytes.bloom_s > 0);
        assert!(r.bytes.iblt_i > 0);
        assert_eq!(r.bytes.bloom_r, 0);
        // Headline claim sanity: well under Compact Blocks' ~6n bytes.
        assert!(
            r.bytes.total_excluding_txns() < 6 * 500,
            "{} bytes",
            r.bytes.total_excluding_txns()
        );
    }

    #[test]
    fn p2_path_report() {
        let s = scenario(300, 1.0, 0.5, 2);
        let r = relay_block(&s.block, None, &s.receiver_mempool, &cfg());
        assert!(r.outcome.is_success(), "{:?}", r.outcome);
        assert!(r.rounds >= 3);
        assert!(r.bytes.bloom_r > 0);
        assert!(r.bytes.iblt_j > 0);
        assert!(r.bytes.missing_txns > 0);
        if let Some(ids) = &r.ordered_ids {
            assert_eq!(ids, &s.block.ids());
        }
    }

    #[test]
    fn success_rate_over_many_relays() {
        let mut p1 = 0;
        let mut p2 = 0;
        let mut failed = 0;
        for seed in 0..60u64 {
            let held = if seed % 3 == 0 { 1.0 } else { 0.7 };
            let s = scenario(120, 1.5, held, seed);
            let r = relay_block(&s.block, None, &s.receiver_mempool, &cfg());
            match r.outcome {
                RelayOutcome::DecodedP1 => p1 += 1,
                RelayOutcome::DecodedP2 { .. } => p2 += 1,
                RelayOutcome::Failed { .. } => failed += 1,
            }
            if let Some(ids) = &r.ordered_ids {
                assert_eq!(ids, &s.block.ids(), "seed {seed}");
            }
        }
        assert!(p1 >= 18, "P1 successes: {p1}");
        assert!(p2 >= 30, "P2 successes: {p2}");
        assert!(failed <= 1, "failures: {failed}");
    }

    #[test]
    fn direct_fetch_skips_protocol2() {
        // A receiver missing a handful of transactions, with an IBLT that
        // still decodes completely: direct fetch must resolve without the
        // Protocol 2 structures and cost less.
        let mut hit = 0usize;
        for seed in 0..40u64 {
            let s = scenario(300, 1.0, 0.99, seed); // missing ~3 of 300
            let mut direct = cfg();
            direct.direct_fetch = true;
            let r_direct = relay_block(&s.block, None, &s.receiver_mempool, &direct);
            let r_paper = relay_block(&s.block, None, &s.receiver_mempool, &cfg());
            assert!(r_direct.outcome.is_success(), "seed {seed}: {:?}", r_direct.outcome);
            if let Some(ids) = &r_direct.ordered_ids {
                assert_eq!(ids, &s.block.ids(), "seed {seed}");
            }
            // Only compare costs when the direct path actually engaged
            // (i.e. the P1 IBLT decoded despite the missing txns).
            if r_direct.bytes.bloom_r == 0 && r_direct.bytes.extra_fetch > 0 {
                hit += 1;
                assert!(
                    r_direct.bytes.total_excluding_txns() < r_paper.bytes.total_excluding_txns(),
                    "seed {seed}: direct {} !< paper {}",
                    r_direct.bytes.total_excluding_txns(),
                    r_paper.bytes.total_excluding_txns()
                );
            }
        }
        assert!(hit >= 20, "direct-fetch path engaged only {hit}/40 times");
    }

    #[test]
    fn failed_relay_accounts_fallback_bytes() {
        // Outright failures need an under-assured config (β low, coarse
        // IBLT table rate, no ping-pong rescue): ~4% of these seeds fail.
        let mut flaky = cfg();
        flaky.beta = 0.51;
        flaky.iblt_rate_denom = 3;
        flaky.pingpong = false;
        let mut checked = 0;
        for seed in 0..100u64 {
            let s = scenario(100, 1.0, 0.5, seed);
            let r = relay_block(&s.block, None, &s.receiver_mempool, &flaky);
            if let RelayOutcome::Failed { fallback_bytes, .. } = r.outcome {
                assert!(fallback_bytes > 0, "seed {seed}: zero-cost failure");
                assert!(r.bytes.fallback > 0, "seed {seed}");
                // The fallback round ships every body; totals must reflect it.
                let bodies: usize = s.block.txns().iter().map(|tx| tx.size()).sum();
                assert!(r.bytes.total() > bodies, "seed {seed}");
                // Structure-only metric stays clean of the shipped bodies.
                assert!(r.bytes.total_excluding_txns() < r.bytes.total(), "seed {seed}");
                checked += 1;
            }
            // The attempt-level API keeps reporting the bare attempt.
            let a = relay_block_attempt(
                &s.block,
                None,
                &s.receiver_mempool,
                &flaky,
                &RetryTweak::initial(&flaky),
            );
            if let RelayOutcome::Failed { fallback_bytes, .. } = a.outcome {
                assert_eq!(fallback_bytes, 0);
                assert_eq!(a.bytes.fallback, 0);
            }
        }
        assert!(checked > 0, "no failing seed found; weaken the scenario");
    }

    #[test]
    fn retry_tweak_inflates_and_resalts() {
        let s = scenario(200, 1.5, 0.9, 3);
        let c = cfg();
        let m = s.receiver_mempool.len() as u64;
        let (base, base_choice) = protocol1::sender_encode(&s.block, m, None, &c);
        let t = RetryTweak::for_attempt(&c, 2);
        assert!(t.beta > c.beta);
        let (retry, retry_choice) = protocol1::sender_encode_retry(&s.block, m, None, &c, &t);
        assert_ne!(retry.iblt_i.salt(), base.iblt_i.salt(), "retry must re-salt");
        assert!(
            retry_choice.iblt.c > base_choice.iblt.c,
            "retry IBLT not inflated: {} vs {}",
            retry_choice.iblt.c,
            base_choice.iblt.c
        );
        // The receiver needs no special handling: everything rides in the
        // message.
        let got = protocol1::receiver_decode(&retry, &s.receiver_mempool, &c);
        if let Ok(ok) = got {
            assert_eq!(ok.ordered_ids, s.block.ids());
        }
    }

    #[test]
    fn breakdown_totals_consistent() {
        let s = scenario(200, 1.0, 0.6, 11);
        let r = relay_block(&s.block, None, &s.receiver_mempool, &cfg());
        let b = &r.bytes;
        assert_eq!(
            b.total(),
            b.inv
                + b.getdata
                + b.bloom_s
                + b.iblt_i
                + b.prefilled
                + b.order
                + b.p1_overhead
                + b.bloom_r
                + b.p2_request_overhead
                + b.missing_txns
                + b.iblt_j
                + b.bloom_f
                + b.p2_response_overhead
                + b.extra_fetch
                + b.rateless
                + b.fallback
        );
        assert!(b.total_excluding_txns() <= b.total());
    }
}
