//! Adversary-rate sweep over the netsim recovery ladder.
//!
//! Places a network of [`PEERS`] peers — an honest ring of [`HONEST`] with
//! two hostile peers attached at spokes — and relays one block while the
//! hostile peers fire the §6.1/§6.2 attacks (malformed IBLTs, oversized
//! filters, inconsistent counts, stalls, garbage repair data) at a swept
//! per-message rate, on top of mild link-level drop and corruption. Every
//! honest peer must still receive the block; the sweep measures what the
//! attacks cost in latency, bytes, ladder escalations, failovers, and how
//! reliably provable misbehavior is banned.
//!
//! Trials run through the deterministic [`Engine`], so every reported
//! number is bit-identical for any `--threads` value.

use crate::{Engine, MeanAcc, PropAcc, SumAcc};
use graphene::GrapheneConfig;
use graphene_blockchain::{Scenario, ScenarioParams};
use graphene_netsim::{
    AdversaryConfig, Behavior, LinkParams, Network, PeerId, RelayProtocol, SimTime,
};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Total peers per trial network.
pub const PEERS: usize = 10;
/// Honest peers (a redundant ring, so every victim has two announcers).
pub const HONEST: usize = 8;
/// Attack rates the default sweep visits.
pub const RATES: &[f64] = &[0.0, 0.05, 0.1, 0.2, 0.3, 0.5];
/// Simulated-time budget per trial.
const MAX_TIME: SimTime = SimTime(900_000_000);

/// Aggregated results for one attack rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// Per-message attack firing probability of the hostile peers.
    pub rate: f64,
    /// Whether every peer's ladder ran the rateless coded-cell rung in
    /// place of the inflated Graphene retry.
    pub rateless: bool,
    /// Fraction of honest peers that received the block, over all trials.
    pub honest_delivery: f64,
    /// Mean time until the *last* honest peer held the block (ms).
    pub mean_completion_ms: f64,
    /// Mean total relay traffic (bytes, all frames).
    pub mean_bytes: f64,
    /// Mean bans issued per trial.
    pub mean_bans: f64,
    /// Mean recovery-ladder escalations per trial.
    pub mean_escalations: f64,
    /// Mean session failovers per trial.
    pub mean_failovers: f64,
}

/// Raw per-trial measurements.
struct Trial {
    honest_with_block: usize,
    completion_ms: f64,
    bytes: f64,
    bans: f64,
    escalations: f64,
    failovers: f64,
}

/// Hostile-peer configuration at a given firing rate: the provable §6.1
/// attack at the full rate, the rest scaled so no single fault dominates.
fn adversary_at(rate: f64, seed: u64) -> AdversaryConfig {
    AdversaryConfig {
        malformed_iblt: rate,
        stall: rate * 0.75,
        garbage: rate,
        count_skew: rate * 0.5,
        oversized_filter: rate * 0.5,
        seed,
        ..Default::default()
    }
}

/// One trial: build the ring-plus-adversaries network, relay one 150-txn
/// block from peer 0, and read the metrics off.
fn run_once(rate: f64, rateless: bool, seed: u64) -> Trial {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = ScenarioParams {
        block_size: 150,
        extra_mempool_multiple: 1.0,
        block_fraction_in_mempool: 1.0,
        ..Default::default()
    };
    let s = Scenario::generate(&params, &mut rng);
    let mut net =
        Network::new(PEERS, RelayProtocol::Graphene(GrapheneConfig::default()), rng.random());
    for i in 0..PEERS {
        net.peer_mut(PeerId(i)).mempool = s.receiver_mempool.clone();
    }
    for a in HONEST..PEERS {
        net.peer_mut(PeerId(a)).behavior = Behavior::Adversarial(adversary_at(rate, rng.random()));
    }
    if rateless {
        net.enable_rateless();
    }
    // Mild unattributable link faults ride along at every rate, so the
    // ladder handles corruption and hostility at once.
    net.set_default_link(LinkParams {
        drop_chance: 0.02,
        corrupt_chance: 0.02,
        ..LinkParams::default()
    });
    // Honest ring; each adversary links one near-origin peer (so it gets
    // the block quickly) to one far-side peer — where its announcement
    // beats the ring flood, making it that victim's primary server.
    for i in 0..HONEST {
        net.connect(PeerId(i), PeerId((i + 1) % HONEST));
    }
    for (k, a) in (HONEST..PEERS).enumerate() {
        net.connect(PeerId(k), PeerId(a));
        net.connect(PeerId(HONEST / 2 + k), PeerId(a));
    }

    net.propagate(PeerId(0), s.block, MAX_TIME);

    let arrivals: Vec<SimTime> =
        (0..HONEST).filter_map(|i| net.metrics.arrival(PeerId(i))).collect();
    let completion = arrivals.iter().max().copied().unwrap_or(MAX_TIME);
    Trial {
        honest_with_block: arrivals.len(),
        completion_ms: completion.0 as f64 / 1_000.0,
        bytes: net.metrics.total_bytes() as f64,
        bans: net.metrics.bans() as f64,
        escalations: net.metrics.escalations() as f64,
        failovers: net.metrics.failovers() as f64,
    }
}

/// Run `trials` trials at one attack rate through `engine`.
pub fn sweep_point(engine: &Engine, trials: usize, rate: f64, rateless: bool) -> SweepPoint {
    type Acc = (PropAcc, MeanAcc, MeanAcc, SumAcc, SumAcc, SumAcc);
    let arm = if rateless { "rateless" } else { "retry" };
    let label = format!("adversary rate={:.0}% arm={arm}", rate * 100.0);
    let (delivered, completion, bytes, bans, escalations, failovers) =
        engine.run(&label, trials, |_, rng: &mut StdRng, acc: &mut Acc| {
            let t = run_once(rate, rateless, rng.random());
            for i in 0..HONEST {
                acc.0.push(i < t.honest_with_block);
            }
            acc.1.push(t.completion_ms);
            acc.2.push(t.bytes);
            acc.3.push(t.bans);
            acc.4.push(t.escalations);
            acc.5.push(t.failovers);
        });
    SweepPoint {
        rate,
        rateless,
        honest_delivery: delivered.rate(),
        mean_completion_ms: completion.mean(),
        mean_bytes: bytes.mean(),
        mean_bans: bans.sum() / trials as f64,
        mean_escalations: escalations.sum() / trials as f64,
        mean_failovers: failovers.sum() / trials as f64,
    }
}

/// Sweep all `rates`, each in both ladder arms (inflated retries, then
/// the rateless coded-cell rung).
pub fn run_sweep(engine: &Engine, trials: usize, rates: &[f64]) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &rateless in &[false, true] {
        for &rate in rates {
            points.push(sweep_point(engine, trials, rate, rateless));
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ordering lemma the trial relies on: arrivals counted per honest
    /// peer index map onto the PropAcc correctly.
    #[test]
    fn honest_delivery_is_complete_under_attack() {
        // The ISSUE acceptance scenario: link drop + corruption plus a
        // hostile peer firing malformed IBLTs at well over 10% — in both
        // ladder arms.
        for rateless in [false, true] {
            let t = run_once(0.3, rateless, 0xdeed);
            assert_eq!(
                t.honest_with_block, HONEST,
                "an honest peer missed the block (rateless={rateless})"
            );
            assert!(t.bytes > 0.0);
        }
    }

    /// Provably-malformed traffic gets someone banned at high rates.
    #[test]
    fn high_rate_attacks_get_banned() {
        let mut bans = 0.0;
        for seed in 0..6u64 {
            bans += run_once(0.8, false, 0x1234 + seed).bans;
        }
        assert!(bans > 0.0, "no adversary was ever banned");
    }

    /// The rateless arm survives the full fault battery too — including
    /// the cell-specific attacks (stalled streams, garbage cells).
    #[test]
    fn rateless_arm_delivers_under_attack() {
        let mut bans = 0.0;
        for seed in 0..6u64 {
            let t = run_once(0.5, true, 0x5150 + seed);
            assert_eq!(t.honest_with_block, HONEST, "seed {seed}: honest peer missed the block");
            bans += t.bans;
        }
        assert!(bans > 0.0, "no adversary was ever banned in the rateless arm");
    }

    /// The sweep is bit-identical for any thread count (the mc engine's
    /// chunked merge order plus counter-based trial seeds).
    #[test]
    fn sweep_is_thread_count_invariant() {
        let trials = 6;
        let rates = [0.0, 0.2];
        let a = run_sweep(&Engine::new(1, 77), trials, &rates);
        let b = run_sweep(&Engine::new(2, 77), trials, &rates);
        let c = run_sweep(&Engine::new(8, 77), trials, &rates);
        assert_eq!(a, b, "1 vs 2 threads diverged");
        assert_eq!(a, c, "1 vs 8 threads diverged");
        for p in &a {
            assert!((p.honest_delivery - 1.0).abs() < 1e-12, "delivery not total: {p:?}");
        }
    }

    /// Attacks cost latency and traffic, and only attackers get banned.
    /// (Escalations are deliberately NOT asserted monotone: at high rates
    /// the first provably malformed message bans the adversary, which
    /// *silences* it — so ladder activity can fall as the rate rises.)
    #[test]
    fn attack_rate_increases_recovery_work() {
        let engine = Engine::new(4, 5);
        let clean = sweep_point(&engine, 8, 0.0, false);
        let hostile = sweep_point(&engine, 8, 0.5, false);
        assert_eq!(clean.mean_bans, 0.0, "honest peers must never be banned: {clean:?}");
        assert!(hostile.mean_bans > 0.0, "no adversary banned: {hostile:?}");
        assert!(
            hostile.mean_completion_ms > clean.mean_completion_ms,
            "hostile {hostile:?} vs clean {clean:?}"
        );
        assert!(hostile.mean_bytes > clean.mean_bytes, "hostile {hostile:?} vs clean {clean:?}");
        assert!(hostile.mean_failovers > clean.mean_failovers);
    }

    const _: () = assert!(PEERS - HONEST == 2, "spoke wiring assumes two adversaries");
}
