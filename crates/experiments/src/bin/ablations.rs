//! Ablation studies for the design choices called out in DESIGN.md §6.
//!
//! 1. **Chernoff padding (`a*`) on/off** — sizing IBLT `I` for the *expected*
//!    false-positive count `a` instead of the β-assured `a*` collapses the
//!    Protocol 1 decode rate (this is why Theorem 1 exists).
//! 2. **Eq. 3 closed form vs exact discrete scan** — §3.3.1 warns the
//!    closed-form critical point can be up to ~20% off the true discrete
//!    minimum for `a < 100`.
//! 3. **Bloom backend** — classic Bloom vs Cuckoo vs Golomb-coded set at
//!    equal FPR: the size/query tradeoff behind §3.3's "alternatives" note.

use graphene::params::{a_star, optimal_a};
use graphene_bloom::{params::bloom_size_bytes, BloomFilter, CuckooFilter, GcsBuilder, Membership};
use graphene_experiments::{PropAcc, RunOpts, Table, TableWriter};
use graphene_hashes::{short_id_8, Digest};
use graphene_iblt::{Iblt, CELL_BYTES, HEADER_BYTES};
use graphene_iblt_params::params_for;
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Ablation 1: decode rate with and without the Theorem 1 padding.
fn padding_ablation(opts: &RunOpts) -> Table {
    let beta = 239.0 / 240.0;
    let mut table = Table::new(
        "Ablation 1 — IBLT sized for a (unpadded) vs a* (Theorem 1): P1 decode failure",
        &["n", "m", "a", "a_star", "fail_unpadded", "fail_padded", "trials"],
    );
    for (n, mult) in [(200usize, 2.0), (1000, 1.0)] {
        let m = n + (n as f64 * mult) as usize;
        let choice = optimal_a(n, m, beta, 240);
        let (a, astar) = (choice.a, choice.a_star);
        let trials = opts.trials_for(n);
        let fail = opts.engine().run(
            &format!("ablation padding n={n}"),
            trials,
            |_, rng: &mut StdRng, acc: &mut [PropAcc; 2]| {
                let block: Vec<Digest> = (0..n).map(|_| Digest(rng.random())).collect();
                let extras: Vec<Digest> = (0..m - n).map(|_| Digest(rng.random())).collect();
                let salt: u64 = rng.random();
                let mut s = BloomFilter::new(n, choice.fpr, salt);
                for id in &block {
                    s.insert(id);
                }
                for (which, j) in [(0usize, a), (1, astar)] {
                    let p = params_for(j.max(1), 240);
                    let mut i = Iblt::new(p.c, p.k, salt ^ (which as u64 + 1));
                    let mut i_prime = Iblt::new(p.c, p.k, salt ^ (which as u64 + 1));
                    for id in &block {
                        i.insert(short_id_8(id));
                        i_prime.insert(short_id_8(id)); // receiver holds all
                    }
                    for id in &extras {
                        if s.contains(id) {
                            i_prime.insert(short_id_8(id));
                        }
                    }
                    let ok = i
                        .subtract(&i_prime)
                        .and_then(|mut d| d.peel())
                        .map(|r| r.complete)
                        .unwrap_or(false);
                    acc[which].push(!ok);
                }
            },
        );
        table.row(&[
            n.to_string(),
            m.to_string(),
            a.to_string(),
            astar.to_string(),
            format!("{:.4}", fail[0].rate()),
            format!("{:.4}", fail[1].rate()),
            trials.to_string(),
        ]);
    }
    table
}

/// Ablation 2: Eq. 3 closed form only vs the exact discrete scan.
fn closed_form_ablation() -> Table {
    let beta = 239.0 / 240.0;
    let mut table = Table::new(
        "Ablation 2 — a from Eq. 3 closed form vs exact discrete optimum: T(a) bytes",
        &["n", "m", "a_closed", "T_closed", "a_exact", "T_exact", "penalty_%"],
    );
    let ln2sq = core::f64::consts::LN_2 * core::f64::consts::LN_2;
    for (n, m) in [(50usize, 500usize), (200, 1000), (500, 2000), (2000, 6000), (10_000, 30_000)] {
        let mn = m - n;
        // Closed form with τ = 1.5, r = CELL_BYTES, clamped like Eq. 3 users must.
        let a_closed =
            ((n as f64 / (8.0 * CELL_BYTES as f64 * 1.5 * ln2sq)).round() as usize).clamp(1, mn);
        let t = |a: usize| -> usize {
            let fpr = (a as f64 / mn as f64).min(1.0);
            let bloom = if fpr >= 1.0 { 1 } else { 14 + bloom_size_bytes(n, fpr) };
            let astar = a_star(a as f64, beta).max(1);
            let p = params_for(astar, 240);
            bloom + HEADER_BYTES + p.c * CELL_BYTES
        };
        let t_closed = t(a_closed);
        let exact = optimal_a(n, m, beta, 240);
        table.row(&[
            n.to_string(),
            m.to_string(),
            a_closed.to_string(),
            t_closed.to_string(),
            exact.a.to_string(),
            exact.total.to_string(),
            format!("{:.1}", 100.0 * (t_closed as f64 / exact.total as f64 - 1.0)),
        ]);
    }
    table
}

/// Ablation 3: membership-structure backends at equal target FPR.
fn backend_ablation() -> Table {
    let mut table = Table::new(
        "Ablation 3 — membership backends at n = 2000, fpr = 0.005: size and observed FPR",
        &["backend", "bytes", "observed_fpr", "supports_delete"],
    );
    let n = 2000usize;
    let fpr = 0.005f64;
    let mut rng = StdRng::seed_from_u64(0xabab);
    let members: Vec<Digest> = (0..n).map(|_| Digest(rng.random())).collect();
    let probes: Vec<Digest> = (0..100_000).map(|_| Digest(rng.random())).collect();

    let mut bloom = BloomFilter::new(n, fpr, 1);
    let mut cuckoo = CuckooFilter::new(n, fpr, 2);
    let mut gcs = GcsBuilder::new(n, fpr, 3);
    for id in &members {
        bloom.insert(id);
        assert!(cuckoo.insert(id));
        gcs.insert(id);
    }
    let gcs = gcs.build();

    let observed = |f: &dyn Membership| -> f64 {
        probes.iter().filter(|id| f.contains(id)).count() as f64 / probes.len() as f64
    };
    for (label, f, del) in [
        ("bloom", &bloom as &dyn Membership, "no"),
        ("cuckoo", &cuckoo as &dyn Membership, "yes"),
        ("gcs", &gcs as &dyn Membership, "no"),
    ] {
        table.row(&[
            label.into(),
            f.serialized_size().to_string(),
            format!("{:.5}", observed(f)),
            del.into(),
        ]);
    }
    table
}

fn main() {
    let opts = RunOpts::from_args(2000);
    let w = TableWriter::new();
    w.emit("ablation_padding", &padding_ablation(&opts));
    w.emit("ablation_closed_form", &closed_form_ablation());
    w.emit("ablation_backends", &backend_ablation());
}
