//! Adversary-rate sweep (§6.1/§6.2 hardening): hostile peers fire
//! malformed IBLTs, oversized filters, inconsistent counts, stalls, and
//! garbage repair data at increasing rates while links drop and corrupt
//! frames. Reports honest-peer delivery, latency, traffic, and how the
//! misbehavior-scoring/banning and recovery ladder respond.

use graphene_experiments::adversary::{run_sweep, RATES};
use graphene_experiments::{RunOpts, Table, TableWriter};

fn main() {
    let opts = RunOpts::from_args(40);
    let engine = opts.engine();
    let mut table = Table::new(
        "Adversarial relay — 8 honest peers (ring) + 2 hostile, drop/corrupt 2% links, \
         both ladder arms (inflated retries / rateless cells)",
        &[
            "arm",
            "attack_%",
            "delivered_%",
            "mean_ms",
            "mean_kB",
            "bans",
            "escalations",
            "failovers",
        ],
    );
    for p in run_sweep(&engine, opts.trials, RATES) {
        assert!(
            (p.honest_delivery - 1.0).abs() < 1e-12,
            "honest delivery must stay total under attack: {p:?}"
        );
        table.row(&[
            (if p.rateless { "rateless" } else { "retry" }).to_string(),
            format!("{:.0}", p.rate * 100.0),
            format!("{:.1}", p.honest_delivery * 100.0),
            format!("{:.0}", p.mean_completion_ms),
            format!("{:.1}", p.mean_bytes / 1000.0),
            format!("{:.2}", p.mean_bans),
            format!("{:.1}", p.mean_escalations),
            format!("{:.1}", p.mean_failovers),
        ]);
    }
    TableWriter::new().emit("adversary_sweep", &table);
    println!(
        "Delivery stayed at 100% in both arms (asserted): the recovery ladder\n\
         (Graphene retry *or* rateless cells → short-id fetch → full block →\n\
         failover) routes around both hostile peers and link faults. Bans\n\
         count only *provable* misbehavior — §6.1 double-decode IBLTs,\n\
         §6.2 cap violations, and wrong-salt or phantom-folded cell streams\n\
         — so they rise with the attack rate while honest peers are never\n\
         banned."
    );
}
