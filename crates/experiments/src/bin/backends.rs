//! §3.3 "Alternatives to Bloom filters": Graphene's Protocol 1 size when
//! the sender's filter S is a classic Bloom filter, a Golomb-coded set, or
//! a Cuckoo filter — "any alternative can be used if Eqs. 2, 3, 4, and 5
//! are updated appropriately". We update Eq. 2's filter term to each
//! structure's size law and re-run the joint optimization.
//!
//! Size laws (bytes, payload only):
//!   bloom:  −n·ln f / (8·ln² 2)             ≈ 0.1803·n·log2(1/f)
//!   gcs:    n·(log2(1/f) + 1.5) / 8          (Rice coding overhead ~1.5 b)
//!   cuckoo: n·(log2(1/f) + 3) / (8·0.95)     (tag + 2·b slack, 95% load)

use graphene::params::a_star;
use graphene_experiments::{Table, TableWriter};
use graphene_iblt::{CELL_BYTES, HEADER_BYTES};
use graphene_iblt_params::params_for;

#[derive(Clone, Copy)]
enum Backend {
    Bloom,
    Gcs,
    Cuckoo,
}

fn filter_bytes(backend: Backend, n: usize, f: f64) -> usize {
    if f >= 1.0 {
        return 1;
    }
    let bits_per = (1.0 / f).log2();
    let bytes = match backend {
        Backend::Bloom => -(n as f64) * f.ln() / (8.0 * core::f64::consts::LN_2.powi(2)),
        Backend::Gcs => n as f64 * (bits_per + 1.5) / 8.0,
        Backend::Cuckoo => n as f64 * (bits_per + 3.0) / (8.0 * 0.95),
    };
    bytes.ceil() as usize + 14
}

/// Optimize `a` for a given backend (discrete scan, like `optimal_a`).
fn optimize(backend: Backend, n: usize, m: usize, beta: f64) -> (usize, usize) {
    let mn = m.saturating_sub(n);
    if mn == 0 {
        let p = params_for(1, 240);
        return (1, 1 + HEADER_BYTES + p.c * CELL_BYTES);
    }
    let mut best = (1usize, usize::MAX);
    let mut candidates: Vec<usize> = (1..=100.min(mn)).collect();
    let mut v = 100.0f64;
    while (v as usize) < mn {
        candidates.push(v as usize);
        v *= 1.25;
    }
    candidates.push(mn);
    for a in candidates {
        let f = (a as f64 / mn as f64).min(1.0);
        let astar = a_star(a as f64, beta).max(1);
        let p = params_for(astar, 240);
        let total = filter_bytes(backend, n, f) + HEADER_BYTES + p.c * CELL_BYTES;
        if total < best.1 {
            best = (a, total);
        }
    }
    best
}

fn main() {
    let beta = 239.0 / 240.0;
    let mut table = Table::new(
        "§3.3 — Graphene P1 size by filter backend (Eq. 2 with each size law)",
        &["n", "m", "bloom_total", "gcs_total", "cuckoo_total", "gcs_vs_bloom_%"],
    );
    for (n, m) in
        [(200usize, 600usize), (2000, 6000), (10_000, 30_000), (2000, 2200), (2000, 12_000)]
    {
        let (_, bloom) = optimize(Backend::Bloom, n, m, beta);
        let (_, gcs) = optimize(Backend::Gcs, n, m, beta);
        let (_, cuckoo) = optimize(Backend::Cuckoo, n, m, beta);
        table.row(&[
            n.to_string(),
            m.to_string(),
            bloom.to_string(),
            gcs.to_string(),
            cuckoo.to_string(),
            format!("{:+.1}", 100.0 * (gcs as f64 / bloom as f64 - 1.0)),
        ]);
    }
    TableWriter::new().emit("backends", &table);
    println!(
        "GCS trades ~20% smaller filters for O(n) query time; Cuckoo costs more space\n\
         but supports deletion (useful for rolling mempool filters)."
    );
}
