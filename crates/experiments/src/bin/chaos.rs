//! Chaos sweep: relay a block across 12 peers while the environment fails
//! around the protocol — churn (rejoin with an aged mempool), a scheduled
//! partition that heals, crash/restart (all volatile session state lost),
//! on links that drop, corrupt, duplicate and reorder frames, with every
//! peer running a bounded inbox under non-zero processing delays.
//!
//! The run *asserts* the two robustness claims at every sweep point:
//! delivery is 100% and the largest per-peer accounted-memory high-water
//! mark stays under the configured ceiling. Output bytes are identical
//! for every `--threads` value (CI diffs the CSV across thread counts).

use graphene_experiments::chaos::{run_sweep, sweep_limits, PEERS};
use graphene_experiments::{RunOpts, Table, TableWriter};

fn main() {
    let opts = RunOpts::from_args(20);
    let engine = opts.engine();
    let ceiling = sweep_limits().accounted_ceiling();
    let mut table = Table::new(
        "Chaos sweep — 12 peers (ring + chords), churn × partition × crash, \
         duplicating/reordering lossy links, bounded inboxes, both ladder arms",
        &[
            "arm",
            "churn_%",
            "part_s",
            "crash_%",
            "delivered_%",
            "mean_ms",
            "mean_kB",
            "hwm_kB",
            "shed",
            "stale",
            "outages",
        ],
    );
    for p in run_sweep(&engine, opts.trials) {
        assert!((p.delivery - 1.0).abs() < 1e-12, "delivery must stay total under chaos: {p:?}");
        assert!(
            p.max_hwm_bytes <= ceiling as f64,
            "accounted memory {} exceeded ceiling {ceiling}: {p:?}",
            p.max_hwm_bytes
        );
        table.row(&[
            (if p.rateless { "rateless" } else { "retry" }).to_string(),
            format!("{:.0}", p.churn_rate * 100.0),
            format!("{}", p.partition_ms / 1000),
            format!("{:.0}", p.crash_rate * 100.0),
            format!("{:.1}", p.delivery * 100.0),
            format!("{:.0}", p.mean_completion_ms),
            format!("{:.1}", p.mean_bytes / 1000.0),
            format!("{:.1}", p.max_hwm_bytes / 1000.0),
            format!("{:.1}", p.mean_shed),
            format!("{:.1}", p.mean_stale),
            format!("{:.1}", p.mean_outages),
        ]);
    }
    TableWriter::new().emit("chaos_sweep", &table);
    println!(
        "All {PEERS} peers received the block at every point (asserted), in both\n\
         ladder arms, and the largest per-peer accounted memory stayed under\n\
         the {ceiling}-byte ceiling (asserted) — in-flight rateless decode state\n\
         is charged against the same ceiling. Churn rejoins re-learn the block\n\
         through the reconnect handshake, partitioned sides converge after the\n\
         heal re-announcement, and crashed peers restore from their durable\n\
         snapshot — losing every in-flight session (and any half-decoded cell\n\
         stream) but never the chain."
    );
}
