//! §2.1 comparison: CPISync (Characteristic Polynomial Interpolation)
//! versus IBLTs for recovering a set difference of known size `d`.
//!
//! The paper: "several approaches involve more computation but are smaller
//! in size … Our focus is on IBLTs because they are balanced: minimal
//! computational costs and small size." This experiment puts numbers on
//! that sentence: CPISync transfers ~8 bytes per difference (near the
//! information bound) but decodes in O(d³); the IBLT transfers ~24–48
//! bytes per difference and decodes in O(d).
//!
//! The stdout table carries only the deterministic byte counts (so output
//! is reproducible for a fixed `--seed` at any `--threads`); the measured
//! decode times go to stderr alongside the engine's own timing lines.

use graphene_baselines::cpisync::{reconcile, sketch, CHECK};
use graphene_experiments::{RunOpts, SumAcc, Table, TableWriter};
use graphene_iblt::{Iblt, CELL_BYTES, HEADER_BYTES};
use graphene_iblt_params::params_for;
use rand::{rngs::StdRng, RngExt};
use std::time::Instant;

fn main() {
    let opts = RunOpts::from_args(20);
    let engine = opts.engine();
    let mut table = Table::new(
        "§2.1 — CPISync vs IBLT for a difference of d items (sets of 2000)",
        &["d", "cpi_bytes", "iblt_bytes", "bytes_ratio", "trials"],
    );
    let n = 2000usize;
    for d in [2usize, 8, 32, 128, 512] {
        let trials = opts.trials;
        let (cpi_b, iblt_b, cpi_t, iblt_t) = engine.run(
            &format!("cpisync d={d}"),
            trials,
            |_, rng: &mut StdRng, acc: &mut (SumAcc, SumAcc, SumAcc, SumAcc)| {
                let shared: Vec<u64> = (0..n - d).map(|_| rng.random()).collect();
                let extra: Vec<u64> = (0..d).map(|_| rng.random()).collect();
                let mut a = shared.clone();
                a.extend(&extra);
                let b = shared;

                // CPISync with the exact bound (fair best case for it).
                let sk = sketch(a.iter().copied(), d);
                acc.0.push(sk.serialized_size() as f64);
                let t0 = Instant::now();
                let diff = reconcile(&sk, &b).expect("bound is exact");
                acc.2.push(t0.elapsed().as_secs_f64() * 1000.0);
                assert_eq!(diff.only_remote.len(), d);

                // IBLT sized from the table at 1/240.
                let p = params_for(d, 240);
                acc.1.push((HEADER_BYTES + p.c * CELL_BYTES) as f64);
                let salt: u64 = rng.random();
                let mut ia = Iblt::new(p.c, p.k, salt);
                let mut ib = Iblt::new(p.c, p.k, salt);
                let t1 = Instant::now();
                for &v in &a {
                    ia.insert(v);
                }
                for &v in &b {
                    ib.insert(v);
                }
                let r = ia.subtract(&ib).unwrap().peel().unwrap();
                acc.3.push(t1.elapsed().as_secs_f64() * 1000.0);
                assert!(r.complete);
            },
        );
        let _ = CHECK;
        // Byte counts are identical every trial, so the means are exact.
        let cpi_bytes = (cpi_b.sum() / trials as f64).round() as usize;
        let iblt_bytes = (iblt_b.sum() / trials as f64).round() as usize;
        eprintln!(
            "[cpisync] d={d}: decode {:.3} ms/trial (cpisync) vs {:.3} ms/trial (iblt), {:.1}x",
            cpi_t.sum() / trials as f64,
            iblt_t.sum() / trials as f64,
            cpi_t.sum() / iblt_t.sum().max(1e-9),
        );
        table.row(&[
            d.to_string(),
            cpi_bytes.to_string(),
            iblt_bytes.to_string(),
            format!("{:.2}", iblt_bytes as f64 / cpi_bytes as f64),
            trials.to_string(),
        ]);
    }
    TableWriter::new().emit("cpisync", &table);
    println!(
        "CPISync is ~3-6x smaller on the wire but orders of magnitude slower to\n\
         decode as d grows (decode timings on stderr) — the balance argument\n\
         behind Graphene's IBLT choice."
    );
}
