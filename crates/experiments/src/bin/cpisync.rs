//! §2.1 comparison: CPISync (Characteristic Polynomial Interpolation)
//! versus IBLTs for recovering a set difference of known size `d`.
//!
//! The paper: "several approaches involve more computation but are smaller
//! in size … Our focus is on IBLTs because they are balanced: minimal
//! computational costs and small size." This experiment puts numbers on
//! that sentence: CPISync transfers ~8 bytes per difference (near the
//! information bound) but decodes in O(d³); the IBLT transfers ~24–48
//! bytes per difference and decodes in O(d).

use graphene_baselines::cpisync::{reconcile, sketch, CHECK};
use graphene_experiments::{RunOpts, Table, TableWriter};
use graphene_iblt::{Iblt, CELL_BYTES, HEADER_BYTES};
use graphene_iblt_params::params_for;
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::time::Instant;

fn main() {
    let opts = RunOpts::from_args(20);
    let mut table = Table::new(
        "§2.1 — CPISync vs IBLT for a difference of d items (sets of 2000)",
        &["d", "cpi_bytes", "iblt_bytes", "bytes_ratio", "cpi_ms", "iblt_ms", "time_ratio"],
    );
    let n = 2000usize;
    for d in [2usize, 8, 32, 128, 512] {
        let trials = opts.trials;
        let mut cpi_time = 0.0f64;
        let mut iblt_time = 0.0f64;
        let mut rng = StdRng::seed_from_u64(opts.seed ^ d as u64);
        let mut cpi_bytes = 0usize;
        let mut iblt_bytes = 0usize;
        for _ in 0..trials {
            let shared: Vec<u64> = (0..n - d).map(|_| rng.random()).collect();
            let extra: Vec<u64> = (0..d).map(|_| rng.random()).collect();
            let mut a = shared.clone();
            a.extend(&extra);
            let b = shared;

            // CPISync with the exact bound (fair best case for it).
            let sk = sketch(a.iter().copied(), d);
            cpi_bytes = sk.serialized_size();
            let t0 = Instant::now();
            let diff = reconcile(&sk, &b).expect("bound is exact");
            cpi_time += t0.elapsed().as_secs_f64() * 1000.0;
            assert_eq!(diff.only_remote.len(), d);

            // IBLT sized from the table at 1/240.
            let p = params_for(d, 240);
            iblt_bytes = HEADER_BYTES + p.c * CELL_BYTES;
            let salt: u64 = rng.random();
            let mut ia = Iblt::new(p.c, p.k, salt);
            let mut ib = Iblt::new(p.c, p.k, salt);
            let t1 = Instant::now();
            for &v in &a {
                ia.insert(v);
            }
            for &v in &b {
                ib.insert(v);
            }
            let r = ia.subtract(&ib).unwrap().peel().unwrap();
            iblt_time += t1.elapsed().as_secs_f64() * 1000.0;
            assert!(r.complete);
        }
        let _ = CHECK;
        table.row(&[
            d.to_string(),
            cpi_bytes.to_string(),
            iblt_bytes.to_string(),
            format!("{:.2}", iblt_bytes as f64 / cpi_bytes as f64),
            format!("{:.3}", cpi_time / trials as f64),
            format!("{:.3}", iblt_time / trials as f64),
            format!("{:.1}", cpi_time / iblt_time.max(1e-9)),
        ]);
    }
    TableWriter::new().emit("cpisync", &table);
    println!(
        "CPISync is ~3-6x smaller on the wire but orders of magnitude slower to\n\
         decode as d grows — the balance argument behind Graphene's IBLT choice."
    );
}
