//! §5.3.2 comparison (described in prose, "not shown" as a figure in the
//! paper): Graphene versus an IBLT-only Difference Digest (Eppstein et al.)
//! — strata estimator plus a doubled IBLT. The paper reports the digest
//! being "several times more expensive than Graphene".

use graphene::session::relay_block;
use graphene::GrapheneConfig;
use graphene_baselines::diff_digest_relay;
use graphene_blockchain::{Scenario, ScenarioParams, TxProfile};
use graphene_experiments::{MeanAcc, RunOpts, Table, TableWriter};
use rand::rngs::StdRng;

fn main() {
    let opts = RunOpts::from_args(50);
    let engine = opts.engine();
    let cfg = GrapheneConfig::default();
    let mut table = Table::new(
        "§5.3.2 — Graphene vs IBLT-only Difference Digest (receiver holds block, m = 2n)",
        &["n", "graphene_bytes", "diff_digest_bytes", "ratio"],
    );
    for n in [200usize, 500, 1000, 2000, 5000, 10_000] {
        let trials = opts.trials_for(n);
        let params = ScenarioParams {
            block_size: n,
            extra_mempool_multiple: 1.0,
            block_fraction_in_mempool: 1.0,
            profile: TxProfile::Fixed(64),
            ..Default::default()
        };
        let (g_bytes, d_bytes) = engine.run(
            &format!("diffdigest n={n}"),
            trials,
            |_, rng: &mut StdRng, acc: &mut (MeanAcc, MeanAcc)| {
                let s = Scenario::generate(&params, rng);
                let g = relay_block(&s.block, None, &s.receiver_mempool, &cfg);
                acc.0.push(g.bytes.total_excluding_txns() as f64);
                let d = diff_digest_relay(&s.block, &s.receiver_mempool);
                acc.1.push(d.total_excluding_txns() as f64);
            },
        );
        let (gm, dm) = (g_bytes.mean(), d_bytes.mean());
        table.row(&[
            n.to_string(),
            format!("{gm:.0}"),
            format!("{dm:.0}"),
            format!("{:.1}", dm / gm),
        ]);
    }
    TableWriter::new().emit("diffdigest", &table);
}
