//! Encode-once fan-out sweep: one sender relays one block to up to 1200
//! receivers, with and without the relay [`EncodeCache`], reporting the
//! sender's CPU proxy (encodings actually performed), relay bytes, cache
//! hit rate and occupancy — and *asserting* that every cache-served
//! frame is byte-identical to a fresh canonical encode.
//!
//! Flags: `--quick` (2 trials), `--trials N`, `--seed N`, `--threads N`
//! (output is bit-identical for every thread count; CI diffs the CSV),
//! and `--receivers N` to cap the largest sweep point (CI smoke runs at
//! reduced scale).

use graphene_experiments::fanout::{run_sweep, CACHE_BYTES};
use graphene_experiments::mc::default_threads;
use graphene_experiments::{Engine, Table, TableWriter};

/// Fan-out CLI: `RunOpts` minus its 50-trial `--quick` floor (a 1200-
/// receiver trial is expensive; a handful of trials is plenty), plus
/// `--receivers`.
struct Opts {
    trials: usize,
    seed: u64,
    threads: usize,
    receivers: usize,
}

fn parse_args() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts { trials: 5, seed: 0xeca1, threads: default_threads(), receivers: 1200 };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.trials = 2,
            "--trials" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    opts.trials = v;
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    opts.seed = v;
                    i += 1;
                }
            }
            "--threads" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    opts.threads = v;
                    i += 1;
                }
            }
            "--receivers" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    opts.receivers = v;
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    opts
}

fn main() {
    let opts = parse_args();
    let engine = Engine::new(opts.threads, opts.seed);
    let mut table = Table::new(
        "Encode-once fan-out — one block to N receivers, canonical bucketed \
         encodings served from the relay cache vs performed per receiver",
        &[
            "receivers",
            "enc_nocache",
            "enc_cache",
            "reduction_x",
            "hit_rate_%",
            "evictions",
            "MB_nocache",
            "MB_cache",
            "kB_saved",
            "mismatches",
            "delivered_%",
            "cache_kB",
        ],
    );
    for p in run_sweep(&engine, opts.trials, opts.receivers) {
        assert_eq!(p.frame_mismatches, 0.0, "cache-served frame diverged from fresh encode: {p:?}");
        assert!(
            p.max_cache_bytes <= CACHE_BYTES as f64,
            "cache occupancy {} over the {CACHE_BYTES}-byte budget",
            p.max_cache_bytes
        );
        assert!((p.delivery_cached - 1.0).abs() < 1e-12, "cached arm dropped a receiver: {p:?}");
        assert!(
            (p.delivery_uncached - 1.0).abs() < 1e-12,
            "uncached arm dropped a receiver: {p:?}"
        );
        if p.receivers >= 1000 {
            assert!(
                p.reduction >= 10.0,
                "acceptance: {} receivers needs ≥10x fewer encodings, got {:.1}x",
                p.receivers,
                p.reduction
            );
        }
        table.row(&[
            format!("{}", p.receivers),
            format!("{:.0}", p.encodings_uncached),
            format!("{:.1}", p.encodings_cached),
            format!("{:.1}", p.reduction),
            format!("{:.2}", p.hit_rate * 100.0),
            format!("{:.1}", p.evictions),
            format!("{:.3}", p.bytes_uncached / 1e6),
            format!("{:.3}", p.bytes_cached / 1e6),
            format!("{:.1}", p.frame_bytes_saved / 1000.0),
            format!("{:.0}", p.frame_mismatches),
            format!("{:.1}", p.delivery_cached * 100.0),
            format!("{:.2}", p.max_cache_bytes / 1000.0),
        ]);
    }
    TableWriter::new().emit("fanout_sweep", &table);
    println!(
        "Every cache-served frame matched a fresh canonical encode byte-for-byte\n\
         (asserted), both arms delivered to 100% of receivers (asserted), and the\n\
         cache stayed under its {CACHE_BYTES}-byte budget (asserted). The hit rate\n\
         climbs with fan-out: receivers fall into a handful of mempool-size\n\
         buckets, so the sender encodes each block a constant number of times\n\
         no matter how many peers it serves."
    );
}
