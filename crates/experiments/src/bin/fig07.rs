//! Figure 7: decode failure rates of statically parameterized IBLTs
//! (k = 4, τ = 1.5) versus Algorithm 1's optimal geometries, for target
//! failure rates 1/24, 1/240 and 1/2400.

use graphene_experiments::{RunOpts, Table, TableWriter};
use graphene_iblt_params::hypergraph::failure_rate;
use graphene_iblt_params::params_for;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let opts = RunOpts::from_args(20_000);
    let mut table = Table::new(
        "Fig. 7 — IBLT decode failure: static (k=4, tau=1.5) vs optimal parameters",
        &["rate", "j", "k_opt", "c_opt", "fail_static", "fail_optimal", "target"],
    );
    let js = [5usize, 10, 20, 50, 100, 200, 300, 500, 750, 1000];
    for rate in [24u32, 240, 2400] {
        for &j in &js {
            let trials = opts.trials_for(j * 10); // large j decodes are slower
            let mut rng = StdRng::seed_from_u64(opts.seed ^ (rate as u64) << 32 ^ j as u64);
            // Static: c = 1.5 j rounded up to a multiple of 4.
            let c_static = ((j as f64 * 1.5).ceil() as usize).div_ceil(4) * 4;
            let f_static = failure_rate(j, 4, c_static, trials, &mut rng);
            let p = params_for(j, rate);
            let f_opt = failure_rate(j, p.k, p.c, trials, &mut rng);
            table.row(&[
                format!("1/{rate}"),
                j.to_string(),
                p.k.to_string(),
                p.c.to_string(),
                format!("{f_static:.5}"),
                format!("{f_opt:.5}"),
                format!("{:.5}", 1.0 / rate as f64),
            ]);
        }
    }
    TableWriter::new().emit("fig07", &table);
}
