//! Figure 7: decode failure rates of statically parameterized IBLTs
//! (k = 4, τ = 1.5) versus Algorithm 1's optimal geometries, for target
//! failure rates 1/24, 1/240 and 1/2400.

use graphene_experiments::{Accum, PropAcc, RunOpts, Table, TableWriter};
use graphene_iblt_params::hypergraph::{decode_trial_with, Scratch};
use graphene_iblt_params::params_for;
use rand::rngs::StdRng;

/// Decode-failure accumulator with per-chunk [`Scratch`] reuse (the scratch
/// is working memory only and is dropped on merge).
#[derive(Default)]
struct DecodeAcc {
    fail: PropAcc,
    scratch: Scratch,
}

impl Accum for DecodeAcc {
    fn merge(&mut self, other: Self) {
        self.fail.merge(other.fail);
    }
}

fn main() {
    let opts = RunOpts::from_args(20_000);
    let engine = opts.engine();
    let mut table = Table::new(
        "Fig. 7 — IBLT decode failure: static (k=4, tau=1.5) vs optimal parameters",
        &["rate", "j", "k_opt", "c_opt", "fail_static", "fail_optimal", "target"],
    );
    let js = [5usize, 10, 20, 50, 100, 200, 300, 500, 750, 1000];
    for rate in [24u32, 240, 2400] {
        for &j in &js {
            let trials = opts.trials_for(j * 10); // large j decodes are slower
                                                  // Static: c = 1.5 j rounded up to a multiple of 4.
            let c_static = ((j as f64 * 1.5).ceil() as usize).div_ceil(4) * 4;
            let p = params_for(j, rate);
            let run = |label: &str, k: u32, c: usize| {
                engine
                    .run(label, trials, |_, rng: &mut StdRng, acc: &mut DecodeAcc| {
                        let ok = decode_trial_with(j, k, c, rng, &mut acc.scratch);
                        acc.fail.push(!ok);
                    })
                    .fail
                    .rate()
            };
            let f_static = run(&format!("fig07 static rate=1/{rate} j={j}"), 4, c_static);
            let f_opt = run(&format!("fig07 optimal rate=1/{rate} j={j}"), p.k, p.c);
            table.row(&[
                format!("1/{rate}"),
                j.to_string(),
                p.k.to_string(),
                p.c.to_string(),
                format!("{f_static:.5}"),
                format!("{f_opt:.5}"),
                format!("{:.5}", 1.0 / rate as f64),
            ]);
        }
    }
    TableWriter::new().emit("fig07", &table);
}
