//! Figure 10: size (cells) of optimally parameterized IBLTs versus the
//! number of recoverable items, for the three target decode rates, against
//! the static (k = 4, τ = 1.5) baseline.

use graphene_experiments::{Table, TableWriter};
use graphene_iblt_params::params_for;

fn main() {
    let mut table = Table::new(
        "Fig. 10 — optimal IBLT size (cells) vs items, by target failure rate",
        &["j", "static_cells", "cells_1_24", "cells_1_240", "cells_1_2400", "tau_1_240"],
    );
    let mut js: Vec<usize> = (1..=50).collect();
    js.extend((55..=300).step_by(5));
    js.extend((320..=1000).step_by(20));
    for j in js {
        let stat = ((j as f64 * 1.5).ceil() as usize).div_ceil(4) * 4;
        let p24 = params_for(j, 24);
        let p240 = params_for(j, 240);
        let p2400 = params_for(j, 2400);
        table.row(&[
            j.to_string(),
            stat.to_string(),
            p24.c.to_string(),
            p240.c.to_string(),
            p2400.c.to_string(),
            format!("{:.3}", p240.tau(j)),
        ]);
    }
    TableWriter::new().emit("fig10", &table);
}
