//! Figure 11: ping-pong decoding. A primary IBLT parameterized for a 1/240
//! failure rate holds j items; a sibling IBLT (different salt/geometry,
//! same items) of capacity i ≤ j is decoded jointly. The joint failure rate
//! approaches (1/240)² when i = j and improves even for small i.

use graphene_experiments::{PropAcc, RunOpts, Table, TableWriter};
use graphene_iblt::{ping_pong_decode, Iblt};
use graphene_iblt_params::params_for;
use rand::{rngs::StdRng, RngExt};

fn main() {
    let opts = RunOpts::from_args(40_000);
    let engine = opts.engine();
    let mut table = Table::new(
        "Fig. 11 — single vs ping-pong (sibling) decode failure, primary at 1/240",
        &["j", "i_sibling", "fail_single", "fail_pingpong", "trials"],
    );
    for j in [10usize, 20, 50, 100] {
        // Sweep sibling capacities: ~10%..100% of j.
        let steps: Vec<usize> = (1..=5).map(|s| (j * s / 5).max(1)).collect();
        for &i in &steps {
            let pj = params_for(j, 240);
            let pi = params_for(i, 240);
            let trials = opts.trials;
            let (single, joint) = engine.run(
                &format!("fig11 j={j} i={i}"),
                trials,
                |_, rng: &mut StdRng, acc: &mut (PropAcc, PropAcc)| {
                    let salt_a: u64 = rng.random();
                    let salt_b: u64 = rng.random();
                    let mut a = Iblt::new(pj.c, pj.k, salt_a);
                    let mut b = Iblt::new(pi.c, pi.k, salt_b);
                    for _ in 0..j {
                        let v: u64 = rng.random();
                        a.insert(v);
                        b.insert(v);
                    }
                    let single_ok = a.peel_clone().map(|r| r.complete).unwrap_or(false);
                    acc.0.push(!single_ok);
                    let joint_ok =
                        ping_pong_decode(&mut a, &mut b).map(|r| r.complete).unwrap_or(false);
                    acc.1.push(!joint_ok);
                },
            );
            table.row(&[
                j.to_string(),
                i.to_string(),
                format!("{:.6}", single.rate()),
                format!("{:.6}", joint.rate()),
                trials.to_string(),
            ]);
        }
    }
    TableWriter::new().emit("fig11", &table);
}
