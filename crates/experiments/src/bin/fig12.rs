//! Figure 12: the Bitcoin Cash deployment comparison — Graphene Protocol 1
//! encoding size versus XThin* (XThin minus the receiver's filter cost), as
//! block size grows.
//!
//! Substitution (see DESIGN.md): the live BCH node is replaced by synthetic
//! blocks with a BCH-like size distribution against a mempool holding the
//! whole block plus typical extra traffic; the measured quantity — encoding
//! bytes as a function of transactions per block — depends only on the
//! protocol math and wire formats.

use graphene::session::{relay_block, RelayOutcome};
use graphene::GrapheneConfig;
use graphene_baselines::xthin::{xthin_relay, XthinAccounting};
use graphene_blockchain::{Scenario, ScenarioParams, TxProfile};
use graphene_experiments::{MeanAcc, PropAcc, RunOpts, Table, TableWriter};
use rand::rngs::StdRng;

fn main() {
    let opts = RunOpts::from_args(100);
    let engine = opts.engine();
    let cfg = GrapheneConfig::default();
    let mut table = Table::new(
        "Fig. 12 — deployment substitute: Graphene P1 vs XThin* bytes vs block size",
        &["n", "graphene_bytes", "ci95", "xthin_star_bytes", "ratio", "fail_rate"],
    );
    let sizes = [50usize, 100, 200, 500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000];
    for &n in &sizes {
        let trials = opts.trials_for(n);
        let params = ScenarioParams {
            block_size: n,
            extra_mempool_multiple: 1.0,
            block_fraction_in_mempool: 1.0,
            profile: TxProfile::BtcLike,
            ..Default::default()
        };
        let (g_acc, x_acc, fail) = engine.run(
            &format!("fig12 n={n}"),
            trials,
            |_, rng: &mut StdRng, acc: &mut (MeanAcc, MeanAcc, PropAcc)| {
                let s = Scenario::generate(&params, rng);
                let g = relay_block(&s.block, None, &s.receiver_mempool, &cfg);
                acc.2.push(!matches!(g.outcome, RelayOutcome::DecodedP1));
                acc.0.push(g.bytes.total_excluding_txns() as f64);
                let x = xthin_relay(&s.block, &s.receiver_mempool, &XthinAccounting::default());
                acc.1.push(x.total_xthin_star() as f64);
            },
        );
        let (gm, gci) = g_acc.ci95();
        let xm = x_acc.mean();
        table.row(&[
            n.to_string(),
            format!("{gm:.0}"),
            format!("{gci:.0}"),
            format!("{xm:.0}"),
            format!("{:.3}", gm / xm),
            format!("{:.4}", fail.rate()),
        ]);
    }
    TableWriter::new().emit("fig12", &table);
}
