//! Figure 12: the Bitcoin Cash deployment comparison — Graphene Protocol 1
//! encoding size versus XThin* (XThin minus the receiver's filter cost), as
//! block size grows.
//!
//! Substitution (see DESIGN.md): the live BCH node is replaced by synthetic
//! blocks with a BCH-like size distribution against a mempool holding the
//! whole block plus typical extra traffic; the measured quantity — encoding
//! bytes as a function of transactions per block — depends only on the
//! protocol math and wire formats.

use graphene::session::{relay_block, RelayOutcome};
use graphene::GrapheneConfig;
use graphene_baselines::xthin::{xthin_relay, XthinAccounting};
use graphene_blockchain::{Scenario, ScenarioParams, TxProfile};
use graphene_experiments::{mean_ci95, RunOpts, Table, TableWriter};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let opts = RunOpts::from_args(100);
    let cfg = GrapheneConfig::default();
    let mut table = Table::new(
        "Fig. 12 — deployment substitute: Graphene P1 vs XThin* bytes vs block size",
        &["n", "graphene_bytes", "ci95", "xthin_star_bytes", "ratio", "fail_rate"],
    );
    let sizes = [50usize, 100, 200, 500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000];
    for &n in &sizes {
        let trials = opts.trials_for(n);
        let mut graphene_bytes = Vec::with_capacity(trials);
        let mut xthin_bytes = Vec::with_capacity(trials);
        let mut failures = 0usize;
        for t in 0..trials {
            let params = ScenarioParams {
                block_size: n,
                extra_mempool_multiple: 1.0,
                block_fraction_in_mempool: 1.0,
                profile: TxProfile::BtcLike,
                ..Default::default()
            };
            let s = Scenario::generate(
                &params,
                &mut StdRng::seed_from_u64(opts.seed ^ (n as u64) << 20 ^ t as u64),
            );
            let g = relay_block(&s.block, None, &s.receiver_mempool, &cfg);
            if !matches!(g.outcome, RelayOutcome::DecodedP1) {
                failures += 1;
            }
            graphene_bytes.push(g.bytes.total_excluding_txns() as f64);
            let x = xthin_relay(&s.block, &s.receiver_mempool, &XthinAccounting::default());
            xthin_bytes.push(x.total_xthin_star() as f64);
        }
        let (gm, gci) = mean_ci95(&graphene_bytes);
        let (xm, _) = mean_ci95(&xthin_bytes);
        table.row(&[
            n.to_string(),
            format!("{gm:.0}"),
            format!("{gci:.0}"),
            format!("{xm:.0}"),
            format!("{:.3}", gm / xm),
            format!("{:.4}", failures as f64 / trials as f64),
        ]);
    }
    TableWriter::new().emit("fig12", &table);
}
