//! Figure 13: the Ethereum implementation comparison — full blocks vs
//! Graphene Protocol 1 vs an idealized 8-bytes-per-transaction Compact
//! Blocks line, for blocks up to ~1000 transactions against a constant
//! 60,000-transaction mempool.
//!
//! Substitution (see DESIGN.md): historic mainnet blocks replayed through
//! Geth are replaced by synthetic ETH-like blocks; the encoding size is a
//! pure function of (n, m) and the wire formats, so the comparison shape is
//! preserved. Only the sender-side message is sized (the figure's metric),
//! so the 60k mempool never has to be materialized.

use graphene::protocol1::sender_encode;
use graphene::GrapheneConfig;
use graphene_blockchain::{Scenario, ScenarioParams, TxProfile};
use graphene_experiments::{MeanAcc, RunOpts, Table, TableWriter};
use graphene_wire::messages::Message;
use rand::rngs::StdRng;

const ETH_MEMPOOL: u64 = 60_000;

fn main() {
    let opts = RunOpts::from_args(50);
    let engine = opts.engine();
    let cfg = GrapheneConfig::default();
    let mut table = Table::new(
        "Fig. 13 — Ethereum substitute: full block vs Graphene P1 vs 8 B/txn, m = 60,000",
        &["n", "full_block_bytes", "graphene_bytes", "ci95", "ideal_8B_txn"],
    );
    let sizes = [25usize, 50, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000];
    for &n in &sizes {
        let params = ScenarioParams {
            block_size: n,
            extra_mempool_multiple: 0.0,
            block_fraction_in_mempool: 1.0,
            profile: TxProfile::EthLike,
            ..Default::default()
        };
        let (full, graphene) = engine.run(
            &format!("fig13 n={n}"),
            opts.trials,
            |_, rng: &mut StdRng, acc: &mut (MeanAcc, MeanAcc)| {
                let s = Scenario::generate(&params, rng);
                acc.0.push(s.block.serialized_size() as f64);
                let (msg, _) = sender_encode(&s.block, ETH_MEMPOOL, None, &cfg);
                acc.1.push(Message::GrapheneBlock(msg).wire_size() as f64);
            },
        );
        let fm = full.mean();
        let (gm, gci) = graphene.ci95();
        table.row(&[
            n.to_string(),
            format!("{fm:.0}"),
            format!("{gm:.0}"),
            format!("{gci:.0}"),
            (8 * n).to_string(),
        ]);
    }
    TableWriter::new().emit("fig13", &table);
}
