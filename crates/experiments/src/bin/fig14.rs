//! Figure 14: [Simulation, Protocol 1] average Graphene block size versus
//! Compact Blocks as the receiver's mempool grows (extra transactions as a
//! multiple of block size, 0–5), for blocks of 200 / 2000 / 10000
//! transactions.

use graphene::session::relay_block;
use graphene::GrapheneConfig;
use graphene_baselines::compact_blocks_relay;
use graphene_blockchain::{Scenario, ScenarioParams, TxProfile};
use graphene_experiments::{MeanAcc, RunOpts, Table, TableWriter};
use rand::rngs::StdRng;

fn main() {
    let opts = RunOpts::from_args(200);
    let engine = opts.engine();
    let cfg = GrapheneConfig::default();
    let mut table = Table::new(
        "Fig. 14 — [Sim P1] Graphene vs Compact Blocks bytes vs mempool multiple",
        &["n", "multiple", "graphene_bytes", "ci95", "compact_bytes"],
    );
    for n in [200usize, 2000, 10_000] {
        let trials = opts.trials_for(n);
        for mult10 in (0..=50).step_by(5) {
            let multiple = mult10 as f64 / 10.0;
            let params = ScenarioParams {
                block_size: n,
                extra_mempool_multiple: multiple,
                block_fraction_in_mempool: 1.0,
                profile: TxProfile::Fixed(64),
                ..Default::default()
            };
            let (g_acc, c_acc) = engine.run(
                &format!("fig14 n={n} mult={multiple:.1}"),
                trials,
                |_, rng: &mut StdRng, acc: &mut (MeanAcc, MeanAcc)| {
                    let s = Scenario::generate(&params, rng);
                    let g = relay_block(&s.block, None, &s.receiver_mempool, &cfg);
                    acc.0.push(g.bytes.total_excluding_txns() as f64);
                    let c = compact_blocks_relay(&s.block, &s.receiver_mempool);
                    acc.1.push(c.total_excluding_txns() as f64);
                },
            );
            let (gm, gci) = g_acc.ci95();
            let cm = c_acc.mean();
            table.row(&[
                n.to_string(),
                format!("{multiple:.1}"),
                format!("{gm:.0}"),
                format!("{gci:.0}"),
                format!("{cm:.0}"),
            ]);
        }
    }
    TableWriter::new().emit("fig14", &table);
}
