//! Figure 15: [Simulation, Protocol 1] decode failure probability with
//! β = 239/240 as the mempool's extra transactions grow, for blocks of
//! 200 / 2000 / 10000 transactions. The measured rate should stay below
//! 1/240 at every point.

use graphene::GrapheneConfig;
use graphene_experiments::{simulate_relay, FastConfig, PropAcc, RunOpts, Table, TableWriter};
use rand::rngs::StdRng;

fn main() {
    let opts = RunOpts::from_args(10_000);
    let engine = opts.engine();
    let cfg = GrapheneConfig::default();
    let mut table = Table::new(
        "Fig. 15 — [Sim P1] decode failure probability vs mempool multiple (target 1/240)",
        &["n", "multiple", "fail_rate", "trials", "target"],
    );
    for n in [200usize, 2000, 10_000] {
        let trials = opts.trials_for(n);
        for mult10 in (0..=50).step_by(10) {
            let multiple = mult10 as f64 / 10.0;
            let fc = FastConfig {
                n,
                extra_multiple: multiple,
                fraction_held: 1.0,
                force_m_equals_n: false,
            };
            let fail = engine.run(
                &format!("fig15 n={n} mult={multiple:.1}"),
                trials,
                |_, rng: &mut StdRng, acc: &mut PropAcc| {
                    acc.push(!simulate_relay(&fc, &cfg, rng).p1_success);
                },
            );
            table.row(&[
                n.to_string(),
                format!("{multiple:.1}"),
                format!("{:.5}", fail.rate()),
                trials.to_string(),
                format!("{:.5}", 1.0 / 240.0),
            ]);
        }
    }
    TableWriter::new().emit("fig15", &table);
}
