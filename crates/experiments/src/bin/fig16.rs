//! Figure 16: [Simulation, Protocol 2] decode failure probability versus
//! the fraction of the block the receiver holds, with and without §4.2
//! ping-pong decoding. Ping-pong should improve the rate by orders of
//! magnitude.

use graphene::GrapheneConfig;
use graphene_experiments::{simulate_relay, FastConfig, RunOpts, Table, TableWriter};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let opts = RunOpts::from_args(10_000);
    let cfg = GrapheneConfig::default();
    let mut table = Table::new(
        "Fig. 16 — [Sim P2] decode failure vs fraction of block held, ping-pong ablation",
        &["n", "fraction", "fail_pingpong", "fail_single", "trials"],
    );
    for n in [200usize, 2000, 10_000] {
        let trials = opts.trials_for(n);
        for frac10 in (0..=10).step_by(2) {
            let fraction = frac10 as f64 / 10.0;
            let fc = FastConfig {
                n,
                extra_multiple: 1.0,
                fraction_held: fraction,
                force_m_equals_n: false,
            };
            let mut rng = StdRng::seed_from_u64(
                opts.seed ^ (n as u64) << 32 ^ (frac10 as u64) << 8,
            );
            let mut pp_failures = 0usize;
            let mut single_failures = 0usize;
            for _ in 0..trials {
                let o = simulate_relay(&fc, &cfg, &mut rng);
                if !o.p2_success {
                    pp_failures += 1;
                }
                if !o.p2_success_no_pingpong {
                    single_failures += 1;
                }
            }
            table.row(&[
                n.to_string(),
                format!("{fraction:.1}"),
                format!("{:.5}", pp_failures as f64 / trials as f64),
                format!("{:.5}", single_failures as f64 / trials as f64),
                trials.to_string(),
            ]);
        }
    }
    TableWriter::new().emit("fig16", &table);
}
