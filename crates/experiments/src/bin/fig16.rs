//! Figure 16: [Simulation, Protocol 2] decode failure probability versus
//! the fraction of the block the receiver holds, with and without §4.2
//! ping-pong decoding. Ping-pong should improve the rate by orders of
//! magnitude.

use graphene::GrapheneConfig;
use graphene_experiments::{simulate_relay, FastConfig, PropAcc, RunOpts, Table, TableWriter};
use rand::rngs::StdRng;

fn main() {
    let opts = RunOpts::from_args(10_000);
    let engine = opts.engine();
    let cfg = GrapheneConfig::default();
    let mut table = Table::new(
        "Fig. 16 — [Sim P2] decode failure vs fraction of block held, ping-pong ablation",
        &["n", "fraction", "fail_pingpong", "fail_single", "trials"],
    );
    for n in [200usize, 2000, 10_000] {
        let trials = opts.trials_for(n);
        for frac10 in (0..=10).step_by(2) {
            let fraction = frac10 as f64 / 10.0;
            let fc = FastConfig {
                n,
                extra_multiple: 1.0,
                fraction_held: fraction,
                force_m_equals_n: false,
            };
            let (pp_fail, single_fail) = engine.run(
                &format!("fig16 n={n} frac={fraction:.1}"),
                trials,
                |_, rng: &mut StdRng, acc: &mut (PropAcc, PropAcc)| {
                    let o = simulate_relay(&fc, &cfg, rng);
                    acc.0.push(!o.p2_success);
                    acc.1.push(!o.p2_success_no_pingpong);
                },
            );
            table.row(&[
                n.to_string(),
                format!("{fraction:.1}"),
                format!("{:.5}", pp_fail.rate()),
                format!("{:.5}", single_fail.rate()),
                trials.to_string(),
            ]);
        }
    }
    TableWriter::new().emit("fig16", &table);
}
