//! Figure 17: [Simulation, Protocol 2] Graphene Extended cost broken down
//! by message component (getdata, Bloom filter S, IBLT I, Bloom filter R,
//! IBLT J) versus the fraction of the block the receiver holds, against the
//! Compact Blocks cost line. Transaction bodies are excluded from both, as
//! in the paper.

use graphene::session::relay_block;
use graphene::GrapheneConfig;
use graphene_baselines::compact_blocks_relay;
use graphene_blockchain::{Scenario, ScenarioParams, TxProfile};
use graphene_experiments::{MeanAcc, RunOpts, Table, TableWriter};
use rand::rngs::StdRng;

fn main() {
    let opts = RunOpts::from_args(100);
    let engine = opts.engine();
    let cfg = GrapheneConfig::default();
    let mut table = Table::new(
        "Fig. 17 — [Sim P2] bytes by component vs fraction of block held",
        &[
            "n",
            "fraction",
            "getdata",
            "bloom_s",
            "iblt_i",
            "bloom_r",
            "iblt_j",
            "graphene_total",
            "compact_total",
        ],
    );
    for n in [200usize, 2000, 10_000] {
        let trials = opts.trials_for(n);
        for frac10 in (0..=10).step_by(2) {
            let fraction = frac10 as f64 / 10.0;
            let params = ScenarioParams {
                block_size: n,
                extra_mempool_multiple: 1.0,
                block_fraction_in_mempool: fraction,
                profile: TxProfile::Fixed(64),
                ..Default::default()
            };
            // Component order: getdata, bloom_s, iblt_i, bloom_r(+f),
            // iblt_j, graphene total, compact total.
            let parts = engine.run(
                &format!("fig17 n={n} frac={fraction:.1}"),
                trials,
                |_, rng: &mut StdRng, acc: &mut [MeanAcc; 7]| {
                    let s = Scenario::generate(&params, rng);
                    let g = relay_block(&s.block, None, &s.receiver_mempool, &cfg);
                    acc[0].push(g.bytes.getdata as f64);
                    acc[1].push(g.bytes.bloom_s as f64);
                    acc[2].push(g.bytes.iblt_i as f64);
                    acc[3].push((g.bytes.bloom_r + g.bytes.bloom_f) as f64);
                    acc[4].push(g.bytes.iblt_j as f64);
                    acc[5].push(g.bytes.total_excluding_txns() as f64);
                    let c = compact_blocks_relay(&s.block, &s.receiver_mempool);
                    acc[6].push(c.total_excluding_txns() as f64);
                },
            );
            let mut row = vec![n.to_string(), format!("{fraction:.1}")];
            row.extend(parts.iter().map(|m| format!("{:.0}", m.mean())));
            table.row(&row);
        }
    }
    TableWriter::new().emit("fig17", &table);
}
