//! Figure 17: [Simulation, Protocol 2] Graphene Extended cost broken down
//! by message component (getdata, Bloom filter S, IBLT I, Bloom filter R,
//! IBLT J) versus the fraction of the block the receiver holds, against the
//! Compact Blocks cost line. Transaction bodies are excluded from both, as
//! in the paper.

use graphene::session::relay_block;
use graphene::GrapheneConfig;
use graphene_baselines::compact_blocks_relay;
use graphene_blockchain::{Scenario, ScenarioParams, TxProfile};
use graphene_experiments::{mean, RunOpts, Table, TableWriter};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let opts = RunOpts::from_args(100);
    let cfg = GrapheneConfig::default();
    let mut table = Table::new(
        "Fig. 17 — [Sim P2] bytes by component vs fraction of block held",
        &[
            "n", "fraction", "getdata", "bloom_s", "iblt_i", "bloom_r", "iblt_j",
            "graphene_total", "compact_total",
        ],
    );
    for n in [200usize, 2000, 10_000] {
        let trials = opts.trials_for(n);
        for frac10 in (0..=10).step_by(2) {
            let fraction = frac10 as f64 / 10.0;
            let mut getdata = Vec::new();
            let mut bloom_s = Vec::new();
            let mut iblt_i = Vec::new();
            let mut bloom_r = Vec::new();
            let mut iblt_j = Vec::new();
            let mut g_total = Vec::new();
            let mut c_total = Vec::new();
            for t in 0..trials {
                let params = ScenarioParams {
                    block_size: n,
                    extra_mempool_multiple: 1.0,
                    block_fraction_in_mempool: fraction,
                    profile: TxProfile::Fixed(64),
                    ..Default::default()
                };
                let s = Scenario::generate(
                    &params,
                    &mut StdRng::seed_from_u64(
                        opts.seed ^ (n as u64) << 32 ^ (frac10 as u64) << 16 ^ t as u64,
                    ),
                );
                let g = relay_block(&s.block, None, &s.receiver_mempool, &cfg);
                getdata.push(g.bytes.getdata as f64);
                bloom_s.push(g.bytes.bloom_s as f64);
                iblt_i.push(g.bytes.iblt_i as f64);
                bloom_r.push((g.bytes.bloom_r + g.bytes.bloom_f) as f64);
                iblt_j.push(g.bytes.iblt_j as f64);
                g_total.push(g.bytes.total_excluding_txns() as f64);
                let c = compact_blocks_relay(&s.block, &s.receiver_mempool);
                c_total.push(c.total_excluding_txns() as f64);
            }
            table.row(&[
                n.to_string(),
                format!("{fraction:.1}"),
                format!("{:.0}", mean(&getdata)),
                format!("{:.0}", mean(&bloom_s)),
                format!("{:.0}", mean(&iblt_i)),
                format!("{:.0}", mean(&bloom_r)),
                format!("{:.0}", mean(&iblt_j)),
                format!("{:.0}", mean(&g_total)),
                format!("{:.0}", mean(&c_total)),
            ]);
        }
    }
    TableWriter::new().emit("fig17", &table);
}
