//! Figure 18: mempool synchronization with m = n — Graphene (with the
//! §3.3.1 special case) versus Compact Blocks, as the fraction of
//! transactions the two pools share grows. Transaction bodies excluded.

use graphene::config::GrapheneConfig;
use graphene::mempool_sync::sync_mempools;
use graphene_baselines::compact_blocks_relay;
use graphene_blockchain::{Block, OrderingScheme, Scenario, TxProfile};
use graphene_experiments::{MeanAcc, PropAcc, RunOpts, Table, TableWriter};
use graphene_hashes::Digest;
use rand::rngs::StdRng;

fn main() {
    let opts = RunOpts::from_args(100);
    let engine = opts.engine();
    let cfg = GrapheneConfig::default();
    let mut table = Table::new(
        "Fig. 18 — mempool sync (m = n): Graphene vs Compact Blocks vs overlap",
        &["n", "fraction_common", "graphene_bytes", "ci95", "compact_bytes", "success_rate"],
    );
    for n in [200usize, 2000, 10_000] {
        let trials = opts.trials_for(n);
        for frac10 in (0..=10).step_by(2) {
            let fraction = frac10 as f64 / 10.0;
            let (g_acc, c_acc, success) = engine.run(
                &format!("fig18 n={n} frac={fraction:.1}"),
                trials,
                |_, rng: &mut StdRng, acc: &mut (MeanAcc, MeanAcc, PropAcc)| {
                    let (sender, receiver) =
                        Scenario::mempool_sync(n, fraction, TxProfile::Fixed(64), rng);
                    let (report, ..) = sync_mempools(&sender, &receiver, &cfg);
                    acc.2.push(report.success);
                    let b = &report.bytes;
                    // Structures only, as the paper plots.
                    acc.0.push(
                        (b.getdata
                            + b.bloom_s
                            + b.iblt_i
                            + b.p1_overhead
                            + b.bloom_r
                            + b.p2_request_overhead
                            + b.iblt_j
                            + b.bloom_f
                            + b.p2_response_overhead) as f64,
                    );
                    // Compact Blocks doing the same job: relay the sender's
                    // pool as a pseudo-block.
                    let block = Block::assemble(
                        Digest::ZERO,
                        0,
                        sender.iter().cloned().collect(),
                        OrderingScheme::Ctor,
                    );
                    let c = compact_blocks_relay(&block, &receiver);
                    acc.1.push(c.total_excluding_txns() as f64);
                },
            );
            let (gm, gci) = g_acc.ci95();
            table.row(&[
                n.to_string(),
                format!("{fraction:.1}"),
                format!("{gm:.0}"),
                format!("{gci:.0}"),
                format!("{:.0}", c_acc.mean()),
                format!("{:.3}", success.rate()),
            ]);
        }
    }
    TableWriter::new().emit("fig18", &table);
}
