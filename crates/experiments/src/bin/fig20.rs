//! Figure 20: empirical validation of Theorem 3 — the fraction of Monte
//! Carlo trials in which `y* ≥ y`, versus the fraction of the block in the
//! receiver's mempool. Must stay at or above β = 239/240.

use graphene::GrapheneConfig;
use graphene_experiments::{simulate_relay, FastConfig, PropAcc, RunOpts, Table, TableWriter};
use rand::rngs::StdRng;

fn main() {
    let opts = RunOpts::from_args(10_000);
    let engine = opts.engine();
    let cfg = GrapheneConfig::default();
    let mut table = Table::new(
        "Fig. 20 — Theorem 3 validation: Pr[y* >= y] vs fraction of block held (beta = 239/240)",
        &["n", "fraction", "bound_holds", "trials", "beta"],
    );
    for n in [200usize, 2000, 10_000] {
        let trials = opts.trials_for(n);
        for frac10 in (0..=9).step_by(3) {
            let fraction = frac10 as f64 / 10.0;
            let fc = FastConfig {
                n,
                extra_multiple: 1.0,
                fraction_held: fraction,
                force_m_equals_n: false,
            };
            let holds = engine.run(
                &format!("fig20 n={n} frac={fraction:.1}"),
                trials,
                |_, rng: &mut StdRng, acc: &mut PropAcc| {
                    let o = simulate_relay(&fc, &cfg, rng);
                    if !o.p1_success {
                        acc.push(o.y_star_ok);
                    }
                },
            );
            let rate = if holds.trials() == 0 { 1.0 } else { holds.rate() };
            table.row(&[
                n.to_string(),
                format!("{fraction:.1}"),
                format!("{rate:.5}"),
                holds.trials().to_string(),
                format!("{:.5}", 239.0 / 240.0),
            ]);
        }
    }
    TableWriter::new().emit("fig20", &table);
}
