//! Latency sweep: fixed 2 s retry timers vs the adaptive failure
//! detector (RTT-estimated timeouts, hedged fetches, circuit breakers)
//! on heterogeneous latency-class links, with and without a tarpit relay
//! that answers correctly but holds every response just under the fixed
//! timer's jitter floor.
//!
//! The run *asserts* the acceptance claims at every sweep point:
//! delivery is 100% in every arm, no peer is ever banned (a tarpit is
//! honest bytes on a hostile schedule), the fixed arm never hedges, and
//! in the tarpit pair the adaptive arm strictly improves mean p99
//! block-arrival time. Output bytes are identical for every `--threads`
//! value (CI diffs the CSV across thread counts).

use graphene_experiments::latency::{run_sweep, PEERS, TARPIT_HOLD_MS};
use graphene_experiments::{RunOpts, Table, TableWriter};

fn main() {
    let opts = RunOpts::from_args(40);
    let engine = opts.engine();
    let mut table = Table::new(
        "Latency sweep — 12 peers (ring + chords), latency-class links \
         (metro…intercontinental), fixed vs adaptive failure detector, \
         with and without a tarpit relay",
        &[
            "tarpit",
            "arm",
            "delivered_%",
            "p50_ms",
            "p99_ms",
            "hedges",
            "hedge_won",
            "hedge_wasted",
            "breaker_trips",
        ],
    );
    let points = run_sweep(&engine, opts.trials);
    for p in &points {
        assert!((p.delivery - 1.0).abs() < 1e-12, "delivery must stay total: {p:?}");
        assert_eq!(p.bans, 0.0, "hedges, probes and tarpits must never look provable: {p:?}");
        if !p.adaptive {
            assert_eq!(p.hedges_issued, 0.0, "the fixed arm must never hedge: {p:?}");
        }
        table.row(&[
            (if p.tarpit { "on" } else { "off" }).to_string(),
            (if p.adaptive { "adaptive" } else { "fixed" }).to_string(),
            format!("{:.1}", p.delivery * 100.0),
            format!("{:.1}", p.p50_ms),
            format!("{:.1}", p.p99_ms),
            format!("{:.2}", p.hedges_issued),
            format!("{:.2}", p.hedges_won),
            format!("{:.2}", p.hedges_wasted),
            format!("{:.2}", p.breaker_trips),
        ]);
    }
    let fixed_tarpit = points.iter().find(|p| p.tarpit && !p.adaptive).expect("grid point");
    let adaptive_tarpit = points.iter().find(|p| p.tarpit && p.adaptive).expect("grid point");
    assert!(
        adaptive_tarpit.p99_ms < fixed_tarpit.p99_ms,
        "adaptive p99 {:.0} ms must strictly beat fixed {:.0} ms under the tarpit",
        adaptive_tarpit.p99_ms,
        fixed_tarpit.p99_ms
    );
    assert!(adaptive_tarpit.hedges_won > 0.0, "no hedge ever won a race: {adaptive_tarpit:?}");
    TableWriter::new().emit("latency_sweep", &table);
    println!(
        "All {PEERS} peers received the block at every point (asserted), with\n\
         zero bans (asserted — a tarpit answers correctly, just {TARPIT_HOLD_MS} ms\n\
         late, so no provable-misbehavior score may move). Under the tarpit the\n\
         fixed 2 s timer never fires and every captured session pays the full\n\
         hold ({:.0} ms mean p99); the adaptive arm's 1 s initial RTO fires\n\
         first, hedges the request to the best alternate announcer, and the\n\
         hedge wins the race ({:.0} ms mean p99). Off the tarpit the detector\n\
         is free: a healthy network answers inside the initial RTO.",
        fixed_tarpit.p99_ms, adaptive_tarpit.p99_ms
    );
}
