//! §4.2 extension experiment: joint decoding of IBLTs from multiple
//! neighbors. "A receiver could ask many neighbors for the same block and
//! the IBLTs can be jointly decoded" — each neighbor builds its Graphene
//! IBLT with an independent salt; the receiver subtracts her candidate set
//! from each and decodes them together.
//!
//! We sweep the per-table hedge below the single-table requirement and show
//! how many neighbors buy back the decode rate — i.e., how much smaller
//! each sender's IBLT could be if receivers pooled responses.

use graphene_experiments::{PropAcc, RunOpts, Table, TableWriter};
use graphene_iblt::{joint_decode, Iblt};
use rand::{rngs::StdRng, RngExt};

fn main() {
    let opts = RunOpts::from_args(4000);
    let engine = opts.engine();
    let mut table = Table::new(
        "§4.2 extension — joint decode failure rate vs neighbor count (j = 40 items, k = 3)",
        &["tau", "cells", "neighbors_1", "neighbors_2", "neighbors_3", "neighbors_5", "trials"],
    );
    let j = 40usize;
    let counts = [1usize, 2, 3, 5];
    for tau10 in [10usize, 11, 12, 13, 15] {
        let cells = (j * tau10 / 10).div_ceil(3) * 3;
        let trials = opts.trials;
        let failures = engine.run(
            &format!("multipeer tau={:.1}", tau10 as f64 / 10.0),
            trials,
            |_, rng: &mut StdRng, acc: &mut [PropAcc; 4]| {
                let values: Vec<u64> = (0..j).map(|_| rng.random()).collect();
                let salts: Vec<u64> = (0..5).map(|_| rng.random()).collect();
                let build = |salt: u64| {
                    let mut t = Iblt::new(cells, 3, salt);
                    for &v in &values {
                        t.insert(v);
                    }
                    t
                };
                for (slot, &count) in counts.iter().enumerate() {
                    let mut tables: Vec<Iblt> = salts[..count].iter().map(|&s| build(s)).collect();
                    acc[slot].push(!joint_decode(&mut tables).map(|r| r.complete).unwrap_or(false));
                }
            },
        );
        table.row(&[
            format!("{:.1}", tau10 as f64 / 10.0),
            cells.to_string(),
            format!("{:.4}", failures[0].rate()),
            format!("{:.4}", failures[1].rate()),
            format!("{:.4}", failures[2].rate()),
            format!("{:.4}", failures[3].rate()),
            trials.to_string(),
        ]);
    }
    TableWriter::new().emit("multipeer", &table);
    println!(
        "Reading: at τ where one IBLT fails most of the time, a handful of neighbors'\n\
         tables decode jointly — senders could ship materially smaller IBLTs when\n\
         receivers pool responses."
    );
}
