//! Deployment-shaped experiment: mempools diverge *organically* (lossy
//! transaction gossip with propagation delay), then a block is mined and
//! relayed. Unlike the synthetic-fraction figures, divergence here emerges
//! from the network conditions — the closest in-repo analogue to the
//! paper's live BCH deployment (Fig. 12's setting).

use graphene::GrapheneConfig;
use graphene_blockchain::{Block, OrderingScheme, Transaction};
use graphene_experiments::{RunOpts, SumAcc, Table, TableWriter};
use graphene_hashes::Digest;
use graphene_netsim::{LinkParams, Network, PeerId, RelayProtocol, SimTime};
use rand::{rngs::StdRng, RngExt, SeedableRng};

const PEERS: usize = 10;

fn run_once(protocol: RelayProtocol, drop_chance: f64, seed: u64) -> (usize, u64, f64) {
    let mut net = Network::new(PEERS, protocol, seed);
    net.set_default_link(LinkParams {
        latency: SimTime::from_millis(40),
        bandwidth_bps: 10_000_000 / 8,
        drop_chance,
        ..LinkParams::default()
    });
    net.connect_random(3);

    // 150 transactions authored at each peer, gossiped under loss.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    for origin in 0..PEERS {
        let batch: Vec<Transaction> = (0..150)
            .map(|_| {
                let mut payload = vec![0u8; 150];
                rng.fill(&mut payload[..]);
                Transaction::new(payload)
            })
            .collect();
        net.inject_txns(PeerId(origin), batch);
    }
    net.run_until(SimTime::from_millis(20_000));
    let gossip_bytes = net.metrics.total_bytes();

    // Average mempool divergence from the miner's view at block time.
    let miner_pool: Vec<_> = net.peer(PeerId(0)).mempool.sorted_ids();
    let mut divergence = 0.0;
    for p in 1..PEERS {
        let held = miner_pool.iter().filter(|id| net.peer(PeerId(p)).mempool.contains(id)).count();
        divergence += 1.0 - held as f64 / miner_pool.len().max(1) as f64;
    }
    divergence /= (PEERS - 1) as f64;

    let txns: Vec<Transaction> = net.peer(PeerId(0)).mempool.iter().cloned().collect();
    let n = txns.len();
    let block = Block::assemble(Digest::ZERO, 1, txns, OrderingScheme::Ctor);
    let r = net.propagate(PeerId(0), block, SimTime::from_millis(600_000));
    assert_eq!(r.peers_reached, PEERS, "propagation incomplete");
    (n, net.metrics.total_bytes() - gossip_bytes, divergence)
}

fn main() {
    let opts = RunOpts::from_args(10);
    let engine = opts.engine();
    let mut table = Table::new(
        "Organic divergence — gossip txns under loss, then relay the mined block (10 peers)",
        &["drop_%", "protocol", "block_n", "relay_bytes", "avg_missing_%"],
    );
    for drop in [0.0, 0.05, 0.15] {
        for (label, protocol) in [
            ("graphene", RelayProtocol::Graphene(GrapheneConfig::default())),
            ("compact", RelayProtocol::CompactBlocks),
        ] {
            let trials = opts.trials.min(20);
            let (n_sum, bytes_sum, div_sum) = engine.run(
                &format!("organic drop={:.0}% {label}", drop * 100.0),
                trials,
                |_, rng: &mut StdRng, acc: &mut (SumAcc, SumAcc, SumAcc)| {
                    // The network drives its own RNG; hand it a per-trial seed.
                    let (n, bytes, div) = run_once(protocol.clone(), drop, rng.random());
                    acc.0.push(n as f64);
                    acc.1.push(bytes as f64);
                    acc.2.push(div);
                },
            );
            // Counts are exact in f64, so the integer means match the old
            // integer-division output.
            table.row(&[
                format!("{:.0}", drop * 100.0),
                label.into(),
                (n_sum.sum() as usize / trials).to_string(),
                (bytes_sum.sum() as u64 / trials as u64).to_string(),
                format!("{:.1}", 100.0 * div_sum.sum() / trials as f64),
            ]);
        }
    }
    TableWriter::new().emit("organic", &table);
    println!(
        "Relay bytes are the post-gossip block propagation only (all 10 peers),\n\
         including missing-transaction bodies and retry traffic. At zero loss\n\
         Graphene dominates; under heavy loss its extra round trips expose it to\n\
         more drop-triggered retries/fallbacks — exactly the size-vs-complexity\n\
         trade-off §6.4 of the paper concedes."
    );
}
