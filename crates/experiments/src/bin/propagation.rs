//! Internet-scale propagation sweep: p50/p99 block-propagation latency
//! versus network size on Barabási–Albert scale-free overlays with
//! geographic link latencies and adaptive gossip fan-out, up to 100 000
//! peers.
//!
//! The run *asserts* the scale claims at every point: 100% delivery,
//! per-peer accounted memory under the §6.2 ceiling, and a non-trivial
//! event-queue high-water mark (proof the timing wheel was actually
//! loaded). Output bytes are identical for every `--threads` value (CI
//! diffs the CSV across thread counts). `--quick` swaps the full size
//! ladder (500 → 100 000 peers) for a 2 000-peer smoke ladder.

use graphene_experiments::propagation::{run_sweep, trials_for, BA_M, FANOUT};
use graphene_experiments::{RunOpts, Table, TableWriter};

/// Full ladder: two decades of scale ending at the 100k-peer headline.
const SIZES: &[usize] = &[500, 2_000, 10_000, 30_000, 100_000];
/// `--quick` ladder: small enough for CI smoke runs.
const QUICK_SIZES: &[usize] = &[500, 2_000];

fn main() {
    let opts = RunOpts::from_args(10);
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes = if quick { QUICK_SIZES } else { SIZES };
    let engine = opts.engine();
    let mut table = Table::new(
        "Propagation sweep — Barabási–Albert scale-free overlay (m = 4), \
         geographic latency-class links, adaptive gossip fan-out \
         (4 → 8 → all), one Graphene block from peer 0",
        &[
            "peers",
            "trials",
            "delivered_%",
            "p50_ms",
            "p99_ms",
            "event_queue_hwm",
            "wheel_slot_hwm",
            "resource_hwm_b",
            "ceiling_b",
        ],
    );
    let points = run_sweep(&engine, opts.trials, sizes);
    for p in &points {
        assert!((p.delivery - 1.0).abs() < 1e-12, "delivery must stay total at every scale: {p:?}");
        assert!(
            p.resource_hwm_bytes <= p.ceiling_bytes,
            "accounted per-peer memory escaped the ceiling: {p:?}"
        );
        assert!(p.event_queue_hwm > 0, "the scheduler gauge never moved: {p:?}");
        assert!(p.p99_ms >= p.p50_ms, "{p:?}");
        table.row(&[
            p.peers.to_string(),
            p.trials.to_string(),
            format!("{:.1}", p.delivery * 100.0),
            format!("{:.1}", p.p50_ms),
            format!("{:.1}", p.p99_ms),
            p.event_queue_hwm.to_string(),
            p.wheel_slot_hwm.to_string(),
            p.resource_hwm_bytes.to_string(),
            p.ceiling_bytes.to_string(),
        ]);
    }
    TableWriter::new().emit("propagation_sweep", &table);
    let first = points.first().expect("at least one size");
    let last = points.last().expect("at least one size");
    println!(
        "Every peer received the block at every size (asserted), with per-peer\n\
         accounted memory under the ceiling (asserted) — the network grew\n\
         {}x while each peer's budget stayed fixed. Scale-free diameters grow\n\
         ~log n, and the adaptive fan-out (first wave {FANOUT}, doubling on\n\
         retry) keeps hub burst sizes bounded, so p99 rose only {:.1}x\n\
         ({:.0} ms at {} peers -> {:.0} ms at {} peers; {} trials at the\n\
         smallest point, {} at the largest). BA attachment degree m = {BA_M}.",
        last.peers / first.peers,
        last.p99_ms / first.p99_ms,
        first.p99_ms,
        first.peers,
        last.p99_ms,
        last.peers,
        trials_for(opts.trials, first.peers),
        trials_for(opts.trials, last.peers),
    );
}
