//! Rateless-vs-retry sweep: relay scenarios under a deliberately
//! under-assured Graphene configuration and compare what a failed first
//! attempt costs to rescue — the default inflated-retry ladder against
//! the rateless coded-cell rung (`RecoveryPolicy::rateless_first`).
//!
//! The run *asserts* the acceptance claims: both arms deliver every
//! block, and in the bad-difference-estimate regime (large block, tiny
//! true difference) the rateless rung strictly beats the retries on both
//! bytes and rounds. Output bytes are identical for every `--threads`
//! value (CI diffs the CSV across thread counts).

use graphene_experiments::rateless::{run_sweep, POINTS};
use graphene_experiments::{RunOpts, Table, TableWriter};

fn main() {
    let opts = RunOpts::from_args(200);
    let engine = opts.engine();
    let mut table = Table::new(
        "Rateless rung vs inflated retries — flaky config (β=0.51, rate/3, no ping-pong), \
         degraded-trial recovery cost (bodies excluded)",
        &[
            "n",
            "held_%",
            "delivered_%",
            "degraded_%",
            "retry_B",
            "retry_rt",
            "rateless_B",
            "rateless_rt",
        ],
    );
    let points = run_sweep(&engine, opts.trials, POINTS);
    for p in &points {
        assert!(
            (p.delivery - 1.0).abs() < 1e-12,
            "the ladder must always deliver, in both arms: {p:?}"
        );
        table.row(&[
            format!("{}", p.n),
            format!("{:.0}", p.held * 100.0),
            format!("{:.1}", p.delivery * 100.0),
            format!("{:.1}", p.degraded * 100.0),
            format!("{:.0}", p.retry_bytes),
            format!("{:.2}", p.retry_rounds),
            format!("{:.0}", p.rateless_bytes),
            format!("{:.2}", p.rateless_rounds),
        ]);
    }
    // The flagship regime: a bad difference estimate. The rateless rung
    // must strictly win on BOTH bytes and rounds where anything degraded.
    let flagship = points.last().expect("sweep is non-empty");
    assert!(flagship.degraded > 0.0, "flaky config never degraded; sweep is vacuous");
    assert!(
        flagship.rateless_bytes < flagship.retry_bytes,
        "rateless must beat retry on bytes: {flagship:?}"
    );
    assert!(
        flagship.rateless_rounds < flagship.retry_rounds,
        "rateless must beat retry on rounds: {flagship:?}"
    );
    TableWriter::new().emit("rateless_sweep", &table);
    println!(
        "Both arms delivered every block (asserted). Where the under-assured\n\
         sketches failed, the retry arm re-shipped block-proportional state\n\
         (fresh S + 1.5×-inflated IBLT + full order bytes) while the rateless\n\
         arm streamed difference-proportional coded cells — strictly cheaper\n\
         on bytes AND rounds in the bad-estimate regime (asserted). The\n\
         cliff is gone: cost scales with the actual difference, not with\n\
         how wrong the up-front estimate was."
    );
}
