//! §6.1 security experiments.
//!
//! 1. **Manufactured short-ID collisions**: an attacker crafts `t2` whose
//!    8-byte ID prefix collides with block transaction `t1`; the receiver
//!    holds `t2` but has never seen `t1`. XThin always fails to reconstruct
//!    (the 8-byte list resolves to the wrong transaction); Graphene fails
//!    only when `t2` passes `S` *and* `t1` then falsely passes `R` —
//!    probability `f_S · f_R`.
//! 2. **Malformed IBLTs**: an item inserted into only `k−1` cells creates
//!    an endless peel loop in naive decoders; our decoder detects the
//!    double-decode and reports `Malformed`.

use graphene::session::{relay_block, RelayOutcome};
use graphene::GrapheneConfig;
use graphene_baselines::xthin::{xthin_relay, XthinAccounting};
use graphene_blockchain::{Scenario, ScenarioParams, Transaction};
use graphene_experiments::{PropAcc, RunOpts, Table, TableWriter};
use graphene_hashes::short_id_8;
use graphene_iblt::{cell::check_hash, DecodeError, Iblt};
use rand::{rngs::StdRng, RngExt};

/// The §6.1 worst case, modeled with a forged ID (standing in for the
/// attacker's 2^64 SHA-256 grind): block contains `t1`; the receiver holds
/// `t2` whose txid shares `t1`'s 8-byte prefix but has never seen `t1`.
///
/// XThin resolves its 8-byte ID list mempool-first, so `t2` shadows `t1`
/// and reconstruction always fails. Graphene fails only when `t2` passes
/// `S` *and* `t1` then falsely passes `R` — probability `f_S · f_R` — and
/// the delivered-transaction precedence rule resolves every other case.
fn collision_report(opts: &RunOpts) -> Table {
    let cfg = GrapheneConfig::default();
    let mut table = Table::new(
        "§6.1 — manufactured 8-byte collision attack (t1 in block, receiver holds t2)",
        &["protocol", "trials", "reconstruction_failures", "failure_rate"],
    );
    let trials = opts.trials.min(500);
    let (graphene_fail, xthin_fail) = opts.engine().run(
        "sec61 collisions",
        trials,
        |_, rng: &mut StdRng, acc: &mut (PropAcc, PropAcc)| {
            let params = ScenarioParams {
                block_size: 200,
                extra_mempool_multiple: 1.0,
                block_fraction_in_mempool: 1.0,
                ..Default::default()
            };
            let s = Scenario::generate(&params, rng);

            // t1: a block transaction the receiver does NOT hold.
            let t1 = s.block.txns()[0].clone();
            let mut pool = s.receiver_mempool.clone();
            pool.remove(t1.id());
            // t2: the attacker's ground-out collision (same 8-byte prefix,
            // different transaction).
            let mut evil_id = *t1.id();
            evil_id.0[31] ^= rng.random::<u8>() | 1;
            debug_assert_eq!(short_id_8(&evil_id), short_id_8(t1.id()));
            let t2 = Transaction::forge_with_id(rng.random::<[u8; 32]>().to_vec(), evil_id);
            pool.insert(t2);

            let g = relay_block(&s.block, None, &pool, &cfg);
            // Failure for Graphene means the relay could not reconstruct.
            acc.0.push(!matches!(
                g.outcome,
                RelayOutcome::DecodedP1 | RelayOutcome::DecodedP2 { .. }
            ));
            let x = xthin_relay(&s.block, &pool, &XthinAccounting::default());
            acc.1.push(!x.success);
        },
    );
    table.row(&[
        "graphene".into(),
        trials.to_string(),
        graphene_fail.successes().to_string(),
        format!("{:.4}", graphene_fail.rate()),
    ]);
    table.row(&[
        "xthin".into(),
        trials.to_string(),
        xthin_fail.successes().to_string(),
        format!("{:.4}", xthin_fail.rate()),
    ]);
    table
}

fn malformed_report(opts: &RunOpts) -> Table {
    let mut table = Table::new(
        "§6.1 — malformed IBLT (item in k-1 cells): decoder must detect or terminate",
        &["trials", "detected_malformed", "terminated_clean", "hangs"],
    );
    let trials = 200usize;
    let (detected, clean) = opts.engine().run(
        "sec61 malformed",
        trials,
        |_, rng: &mut StdRng, acc: &mut (PropAcc, PropAcc)| {
            let salt: u64 = rng.random();
            let mut attacker = Iblt::new(24, 3, salt);
            // Honest content plus one value inserted into only k-1 cells by
            // direct cell manipulation.
            for v in 0..5u64 {
                attacker.insert(rng.random::<u64>() ^ v);
            }
            let evil: u64 = rng.random();
            let check = check_hash(salt, evil);
            // Use the public API to find its cells: insert then surgically
            // remove one copy from a single cell via erase+insert trickery is
            // not exposed; emulate with erase of a sibling value sharing cells
            // is probabilistic. Directly: insert it, then XOR it back out of
            // one cell by inserting a crafted "anti-value" — not possible via
            // the API. So reconstruct through from_bytes on a patched encoding.
            attacker.insert(evil);
            let mut bytes = attacker.to_bytes();
            // Patch: remove the value from its first cell only, by XORing the
            // key/check sums and decrementing the count in the serialized form.
            // Cell layout after the 13-byte header: count i32, key u64, check u32.
            let ncells = attacker.cell_count();
            for c in 0..ncells {
                let off = 13 + c * 16;
                let count = i32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
                let key = u64::from_le_bytes(bytes[off + 4..off + 12].try_into().unwrap());
                if count >= 1 && key != 0 {
                    // XOR the evil value out of this one cell if present.
                    let new_key = key ^ evil;
                    let new_check =
                        u32::from_le_bytes(bytes[off + 12..off + 16].try_into().unwrap()) ^ check;
                    // Only patch a cell that actually contains it (heuristic:
                    // try; a wrong patch just makes another malformed table,
                    // which is equally fine for this test).
                    bytes[off..off + 4].copy_from_slice(&(count - 1).to_le_bytes());
                    bytes[off + 4..off + 12].copy_from_slice(&new_key.to_le_bytes());
                    bytes[off + 12..off + 16].copy_from_slice(&new_check.to_le_bytes());
                    break;
                }
            }
            // A trial whose patched bytes fail to deserialize contributes to
            // neither column (the old loop `continue`d past it).
            let Some(mut malformed) = Iblt::from_bytes(&bytes) else {
                return;
            };
            match malformed.peel() {
                Err(DecodeError::Malformed { .. }) => acc.0.push(true),
                Ok(_) | Err(_) => acc.1.push(true),
            }
        },
    );
    table.row(&[
        trials.to_string(),
        detected.successes().to_string(),
        clean.successes().to_string(),
        "0".into(), // reaching this line at all proves no endless loop
    ]);
    table
}

fn main() {
    let opts = RunOpts::from_args(300);
    let w = TableWriter::new();
    let t1 = collision_report(&opts);
    w.emit("sec61_collisions", &t1);
    let t2 = malformed_report(&opts);
    w.emit("sec61_malformed", &t2);
}
