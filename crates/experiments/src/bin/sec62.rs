//! §6.2 experiment: transaction-ordering cost. Without CTOR, Graphene must
//! ship an `⌈n·log2 n⌉`-bit permutation — which overtakes the size of
//! Graphene itself as blocks grow. This regenerates the section's
//! quantitative claim.

use graphene::ordering::order_bytes_len;
use graphene::params::optimal_a;
use graphene_experiments::{Table, TableWriter};

fn main() {
    let beta = 239.0 / 240.0;
    let mut table = Table::new(
        "§6.2 — ordering cost vs Graphene structures (m = 2n)",
        &["n", "graphene_bytes", "order_bytes", "order_over_graphene"],
    );
    for n in [100usize, 500, 1000, 2000, 5000, 10_000, 50_000, 100_000] {
        let g = optimal_a(n, 2 * n, beta, 240).total;
        let ord = order_bytes_len(n);
        table.row(&[
            n.to_string(),
            g.to_string(),
            ord.to_string(),
            format!("{:.2}", ord as f64 / g as f64),
        ]);
    }
    TableWriter::new().emit("sec62", &table);
    println!(
        "\"As n grows, this cost is larger than Graphene itself\" — the last column\n\
         crossing 1.0 reproduces §6.2's motivation for CTOR."
    );
}
