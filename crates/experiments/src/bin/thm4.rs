//! §5.1 / Theorem 4: Graphene Protocol 1 versus an optimally small Bloom
//! filter alone (at the f = 1/(144·(m−n)) rate the paper motivates with),
//! and versus Compact Blocks' 6n bytes. The efficiency gain over the filter
//! alone grows Ω(n·log n).

use graphene::params::optimal_a;
use graphene_bloom::params::bloom_size_bytes;
use graphene_experiments::{Table, TableWriter};

fn main() {
    let beta = 239.0 / 240.0;
    let mut table = Table::new(
        "Theorem 4 — Graphene P1 vs Bloom-filter-alone vs Compact Blocks (m = 3n)",
        &["n", "bloom_alone", "graphene", "compact_6n", "gain_bytes", "gain_per_n"],
    );
    for n in [100usize, 200, 500, 1000, 2000, 5000, 10_000, 20_000, 50_000, 100_000] {
        let m = 3 * n;
        let f = 1.0 / (144.0 * (m - n) as f64);
        let bloom_alone = bloom_size_bytes(n, f);
        let g = optimal_a(n, m, beta, 240);
        let gain = bloom_alone as i64 - g.total as i64;
        table.row(&[
            n.to_string(),
            bloom_alone.to_string(),
            g.total.to_string(),
            (6 * n).to_string(),
            gain.to_string(),
            format!("{:.3}", gain as f64 / n as f64),
        ]);
    }
    TableWriter::new().emit("thm4", &table);
    println!(
        "The per-transaction gain (last column) grows with log n — the Ω(n log n) total\n\
         predicted by Theorem 4. Graphene also undercuts Compact Blocks for all but tiny n."
    );
}
