//! Chaos sweep over the netsim failure substrate: churn × partition ×
//! crash/restart, on links that also drop, corrupt, duplicate and reorder
//! frames, with every peer running under tightened resource limits and
//! non-zero frame-processing delays (so the bounded inbox actually sheds).
//!
//! Each trial relays one block across [`PEERS`] peers while the chaos
//! schedule fails the environment around the protocol. The sweep proves
//! the two robustness claims of the chaos substrate:
//!
//! 1. **Delivery stays total** — every peer ends the trial holding the
//!    block, no matter which combination of failure modes fired;
//! 2. **Memory stays bounded** — the largest per-peer accounted
//!    high-water mark never exceeds [`ResourceLimits::accounted_ceiling`].
//!
//! Trials run through the deterministic [`Engine`] and the chaos schedule
//! is a pure function of its seed, so every reported number is
//! bit-identical for any `--threads` value.

use crate::{Engine, MaxAcc, MeanAcc, PropAcc, SumAcc};
use graphene::GrapheneConfig;
use graphene_blockchain::{Scenario, ScenarioParams};
use graphene_netsim::{
    ChaosConfig, LinkParams, Network, PeerId, RelayProtocol, ResourceLimits, SimTime,
};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Peers per trial network (a ring with diameter chords, degree 3).
pub const PEERS: usize = 12;
/// Per-slot churn probabilities the default sweep visits.
pub const CHURN_RATES: &[f64] = &[0.0, 0.02];
/// Partition durations (ms) the default sweep visits (0 = no partition).
pub const PARTITION_MS: &[u64] = &[0, 30_000];
/// Per-slot crash probabilities the default sweep visits.
pub const CRASH_RATES: &[f64] = &[0.0, 0.01];
/// Simulated-time budget per trial — generous, because a partitioned side
/// only learns the block after the heal handshake.
const MAX_TIME: SimTime = SimTime(600_000_000);

/// Tightened per-peer resource limits for the sweep: small enough that
/// duplication storms and reconnect floods exercise load-shedding, large
/// enough that an honest relay still converges.
pub fn sweep_limits() -> ResourceLimits {
    ResourceLimits {
        max_sessions: 16,
        max_pending_announcements: 16,
        max_body_bytes: 256 << 10,
        max_misbehavior_entries: 32,
        max_queue_frames: 256,
        max_queue_bytes: 1 << 20,
        max_encode_cache_bytes: 256 << 10,
        max_rateless_state_bytes: 64 << 10,
        proc_delay_per_frame: SimTime::from_micros(200),
        proc_delay_per_kb: SimTime::from_micros(100),
    }
}

/// Aggregated results for one (churn, partition, crash) sweep point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// Whether every peer's ladder ran the rateless coded-cell rung in
    /// place of the inflated Graphene retry.
    pub rateless: bool,
    /// Per-slot churn probability.
    pub churn_rate: f64,
    /// Partition duration in milliseconds (0 = none).
    pub partition_ms: u64,
    /// Per-slot crash probability.
    pub crash_rate: f64,
    /// Fraction of peers that ended holding the block, over all trials.
    pub delivery: f64,
    /// Mean time until the *last* peer held the block (ms).
    pub mean_completion_ms: f64,
    /// Mean total relay traffic (bytes, all frames).
    pub mean_bytes: f64,
    /// Largest per-peer accounted-memory high-water mark seen in any trial.
    pub max_hwm_bytes: f64,
    /// Mean frames shed by bounded inboxes per trial.
    pub mean_shed: f64,
    /// Mean stale timers dropped per trial (cancelled by crash/restart).
    pub mean_stale: f64,
    /// Mean outages (churn + crash) injected per trial.
    pub mean_outages: f64,
}

/// Raw per-trial measurements.
struct Trial {
    with_block: usize,
    completion_ms: f64,
    bytes: f64,
    hwm_bytes: f64,
    shed: f64,
    stale: f64,
    outages: f64,
}

/// One trial: a 12-peer ring-with-chords Graphene network relays one
/// 150-txn block from peer 0 while the chaos schedule churns, crashes and
/// partitions everyone else. With `adaptive` the peers run the RTT-driven
/// failure detector (hedged fetches + circuit breakers) instead of the
/// fixed 2 s timer.
fn run_once(
    rateless: bool,
    adaptive: bool,
    churn_rate: f64,
    partition_ms: u64,
    crash_rate: f64,
    seed: u64,
) -> Trial {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = ScenarioParams {
        block_size: 150,
        extra_mempool_multiple: 1.0,
        block_fraction_in_mempool: 1.0,
        ..Default::default()
    };
    let s = Scenario::generate(&params, &mut rng);
    let mut net =
        Network::new(PEERS, RelayProtocol::Graphene(GrapheneConfig::default()), rng.random());
    for i in 0..PEERS {
        let p = net.peer_mut(PeerId(i));
        p.mempool = s.receiver_mempool.clone();
        p.limits = sweep_limits();
    }
    if rateless {
        net.enable_rateless();
    }
    if adaptive {
        net.enable_adaptive();
    }
    // Lossy, duplicating, reordering links at every sweep point — chaos
    // rides on top of an already-imperfect network.
    net.set_default_link(LinkParams {
        latency: SimTime::from_millis(30),
        drop_chance: 0.01,
        corrupt_chance: 0.01,
        duplicate_chance: 0.02,
        reorder_chance: 0.05,
        ..LinkParams::default()
    });
    // Ring plus diameter chords: degree 3, so both partition sides keep
    // internal links and the heal handshake has many cut edges to re-arm.
    for i in 0..PEERS {
        net.connect(PeerId(i), PeerId((i + 1) % PEERS));
    }
    for i in 0..PEERS / 2 {
        net.connect(PeerId(i), PeerId(i + PEERS / 2));
    }
    net.enable_chaos(ChaosConfig {
        seed: rng.random(),
        churn_rate,
        crash_rate,
        // The block needs well under a second to cross a healthy network,
        // so chaos must start immediately — and the partition lands
        // mid-relay — for the failures to intersect the propagation.
        partition_at: (partition_ms > 0).then(|| SimTime::from_millis(500)),
        partition_duration: SimTime::from_millis(partition_ms),
        active_from: SimTime::ZERO,
        active_until: SimTime::from_millis(90_000),
        // The origin is exempt so the trial measures propagation
        // robustness, not loss of the only copy.
        exempt: vec![PeerId(0)],
        ..Default::default()
    });

    net.propagate(PeerId(0), s.block, MAX_TIME);

    let arrivals: Vec<SimTime> =
        (0..PEERS).filter_map(|i| net.metrics.arrival(PeerId(i))).collect();
    let completion = arrivals.iter().max().copied().unwrap_or(MAX_TIME);
    Trial {
        with_block: arrivals.len(),
        completion_ms: completion.0 as f64 / 1_000.0,
        bytes: net.metrics.total_bytes() as f64,
        hwm_bytes: net.metrics.resource_hwm_bytes() as f64,
        shed: net.metrics.shed_frames() as f64,
        stale: net.metrics.stale_timers() as f64,
        outages: (net.metrics.churn_outages() + net.metrics.crashes()) as f64,
    }
}

/// Run `trials` trials at one sweep point through `engine`.
pub fn sweep_point(
    engine: &Engine,
    trials: usize,
    rateless: bool,
    adaptive: bool,
    churn_rate: f64,
    partition_ms: u64,
    crash_rate: f64,
) -> SweepPoint {
    type Acc = (PropAcc, MeanAcc, MeanAcc, MaxAcc, SumAcc, SumAcc, SumAcc);
    let arm = if rateless { "rateless" } else { "retry" };
    let label = format!(
        "chaos churn={:.0}% part={}s crash={:.0}% arm={arm}",
        churn_rate * 100.0,
        partition_ms / 1000,
        crash_rate * 100.0
    );
    let (delivered, completion, bytes, hwm, shed, stale, outages) =
        engine.run(&label, trials, |_, rng: &mut StdRng, acc: &mut Acc| {
            let t =
                run_once(rateless, adaptive, churn_rate, partition_ms, crash_rate, rng.random());
            for i in 0..PEERS {
                acc.0.push(i < t.with_block);
            }
            acc.1.push(t.completion_ms);
            acc.2.push(t.bytes);
            acc.3.push(t.hwm_bytes);
            acc.4.push(t.shed);
            acc.5.push(t.stale);
            acc.6.push(t.outages);
        });
    SweepPoint {
        rateless,
        churn_rate,
        partition_ms,
        crash_rate,
        delivery: delivered.rate(),
        mean_completion_ms: completion.mean(),
        mean_bytes: bytes.mean(),
        max_hwm_bytes: hwm.max(),
        mean_shed: shed.sum() / trials as f64,
        mean_stale: stale.sum() / trials as f64,
        mean_outages: outages.sum() / trials as f64,
    }
}

/// Sweep the full churn × partition × crash grid, in both ladder arms
/// (inflated retries, then the rateless coded-cell rung). The fixed-timer
/// failure detector is used throughout — the adaptive arm has its own
/// sweep (`latency`), and keeping it off here keeps this CSV stable.
pub fn run_sweep(engine: &Engine, trials: usize) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &rateless in &[false, true] {
        for &churn in CHURN_RATES {
            for &part in PARTITION_MS {
                for &crash in CRASH_RATES {
                    points.push(sweep_point(engine, trials, rateless, false, churn, part, crash));
                }
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISSUE acceptance scenario: churn + partition + crash at once,
    /// and every peer still ends the trial holding the block with its
    /// accounted memory under the configured ceiling.
    #[test]
    fn combined_chaos_still_delivers_everywhere() {
        let ceiling = sweep_limits().accounted_ceiling() as f64;
        for rateless in [false, true] {
            for seed in [0x0c4a05u64, 0x0c4a06] {
                let t = run_once(rateless, false, 0.02, 30_000, 0.01, seed);
                assert_eq!(
                    t.with_block, PEERS,
                    "a peer missed the block (seed {seed:#x}, rateless={rateless})"
                );
                assert!(t.hwm_bytes <= ceiling, "hwm {} over ceiling {ceiling}", t.hwm_bytes);
                assert!(t.bytes > 0.0);
            }
        }
    }

    /// The adaptive failure detector (hedges + breakers) under full chaos:
    /// delivery must stay total and memory bounded — the breaker reorders
    /// server preference but never blocks a path, so nothing can regress.
    #[test]
    fn combined_chaos_with_adaptive_detector_still_delivers() {
        let ceiling = sweep_limits().accounted_ceiling() as f64;
        for seed in [0x0c4a05u64, 0x0c4a06] {
            let t = run_once(false, true, 0.02, 30_000, 0.01, seed);
            assert_eq!(t.with_block, PEERS, "a peer missed the block (seed {seed:#x}, adaptive)");
            assert!(t.hwm_bytes <= ceiling, "hwm {} over ceiling {ceiling}", t.hwm_bytes);
        }
    }

    /// The all-zero sweep point injects nothing and completes quickly.
    #[test]
    fn quiet_point_is_chaos_free() {
        let t = run_once(false, false, 0.0, 0, 0.0, 0xbead);
        assert_eq!(t.with_block, PEERS);
        // No outages — though stale timers still occur: completed sessions
        // leave their (cancelled) timers to be dropped on pop.
        assert_eq!(t.outages, 0.0);
    }

    /// The sweep is bit-identical for any thread count: the mc engine's
    /// chunked merge order, counter-based trial seeds, and a chaos
    /// schedule that is a pure function of its config seed.
    #[test]
    fn sweep_is_thread_count_invariant() {
        let trials = 3;
        let run = |threads| {
            let engine = Engine::new(threads, 0x51);
            [
                sweep_point(&engine, trials, false, false, 0.0, 0, 0.0),
                sweep_point(&engine, trials, true, false, 0.02, 30_000, 0.01),
            ]
        };
        let (a, b, c) = (run(1), run(2), run(8));
        assert_eq!(a, b, "1 vs 2 threads diverged");
        assert_eq!(a, c, "1 vs 8 threads diverged");
        let ceiling = sweep_limits().accounted_ceiling() as f64;
        for p in &a {
            assert!((p.delivery - 1.0).abs() < 1e-12, "delivery not total: {p:?}");
            assert!(p.max_hwm_bytes <= ceiling, "memory over ceiling: {p:?}");
        }
    }
}
