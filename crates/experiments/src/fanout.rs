//! Encode-once fan-out: one sender relays one block to many receivers
//! through the [`EncodeCache`], bucketing receivers into mempool-size
//! classes so a single canonical Protocol 1 frame serves every receiver
//! in a class.
//!
//! Each trial relays the same block to `receivers` receivers twice:
//!
//! * **cached arm** — through a fresh per-trial [`EncodeCache`]; the
//!   sender's CPU proxy is the number of encodings actually performed
//!   (cache misses plus non-cacheable bypasses);
//! * **uncached arm** — the same canonical bucketed encode with
//!   `cache: None`, one full encode per receiver (the oracle).
//!
//! Alongside the relays, every receiver's cache-served frame is compared
//! byte-for-byte against a fresh canonical encode: the sweep *measures*
//! the equivalence claim, not just the speedup. The sweep runs through
//! the deterministic [`Engine`], so the CSV is bit-identical for any
//! `--threads` value.

use crate::{Engine, MaxAcc, SumAcc};
use graphene::protocol1::{self, RetryTweak};
use graphene::{relay_block_cached, EncodeCache, GrapheneConfig};
use graphene_blockchain::{Block, Mempool, OrderingScheme, Transaction};
use graphene_hashes::Digest;
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Transactions per relayed block.
pub const BLOCK_TXNS: usize = 150;
/// Receiver counts the default sweep visits (the last satisfies the
/// "1k+ receivers" acceptance scenario).
pub const RECEIVER_COUNTS: &[usize] = &[100, 400, 1200];
/// Per-trial cache budget — the same order as
/// `ResourceLimits::max_encode_cache_bytes` in the netsim sweeps, and
/// comfortably above the handful of distinct bucket frames a single
/// block produces.
pub const CACHE_BYTES: u64 = 64 << 10;

/// Extra-transaction counts per receiver size class. With a 150-txn
/// block these give mempool counts of 160..850, spanning the 256, 512
/// and 1024 power-of-two buckets — several classes per bucket, so the
/// cache must serve receivers whose mempools *differ* inside a bucket.
const CLASS_EXTRAS: &[usize] = &[10, 60, 130, 260, 300, 520, 700];
/// One class holds only this fraction of the block, forcing the
/// Protocol 2 recovery path — whose receiver-specific response must
/// bypass the cache.
const PARTIAL_CLASS: usize = 4;
const PARTIAL_HELD: f64 = 0.93;

/// Receiver `i`'s size class. Most receivers rotate through the
/// full-block classes — the paper's deployment saw ~99.7% of relays
/// decode via Protocol 1 alone (Fig. 12) — while every 25th receiver
/// lands in the partial class, so the sweep still exercises the
/// cache-bypassing Protocol 2 path without it dominating the CPU proxy.
fn class_of(i: usize) -> usize {
    const FULL_CLASSES: [usize; 6] = [0, 1, 2, 3, 5, 6];
    if i % 25 == 7 {
        PARTIAL_CLASS
    } else {
        FULL_CLASSES[i % FULL_CLASSES.len()]
    }
}

/// Aggregated results for one receiver-count sweep point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FanoutPoint {
    /// Receivers per trial.
    pub receivers: usize,
    /// Mean encodings performed per trial without the cache (= receivers).
    pub encodings_uncached: f64,
    /// Mean encodings performed per trial with the cache (misses +
    /// bypasses) — the sender CPU proxy.
    pub encodings_cached: f64,
    /// `encodings_uncached / encodings_cached`.
    pub reduction: f64,
    /// Cache hits / (hits + misses) over all trials.
    pub hit_rate: f64,
    /// Mean LRU evictions per trial.
    pub evictions: f64,
    /// Mean total relay bytes per trial, uncached arm.
    pub bytes_uncached: f64,
    /// Mean total relay bytes per trial, cached arm.
    pub bytes_cached: f64,
    /// Mean frame bytes served from the cache per trial (encode work the
    /// sender skipped, in bytes).
    pub frame_bytes_saved: f64,
    /// Cache-served frames that differed from a fresh canonical encode,
    /// summed over all trials and receivers. Must be zero.
    pub frame_mismatches: f64,
    /// Fraction of receivers that reconstructed the block, cached arm.
    pub delivery_cached: f64,
    /// Fraction of receivers that reconstructed the block, uncached arm.
    pub delivery_uncached: f64,
    /// Largest cache occupancy (bytes) observed in any trial.
    pub max_cache_bytes: f64,
}

/// Raw per-trial measurements.
struct Trial {
    encodings_cached: f64,
    hits: f64,
    lookups: f64,
    evictions: f64,
    bytes_uncached: f64,
    bytes_cached: f64,
    frame_bytes_saved: f64,
    frame_mismatches: f64,
    delivered_cached: f64,
    delivered_uncached: f64,
    cache_used_bytes: f64,
}

/// Build the block plus one shared mempool per size class.
fn build_classes(rng: &mut StdRng) -> (Block, Vec<Mempool>) {
    let mk_tx = |rng: &mut StdRng| -> Transaction {
        let mut payload = vec![0u8; 250];
        rng.fill(&mut payload[..]);
        Transaction::new(payload)
    };
    let block_txns: Vec<Transaction> = (0..BLOCK_TXNS).map(|_| mk_tx(rng)).collect();
    let max_extras = CLASS_EXTRAS.iter().copied().max().unwrap_or(0);
    let extra_pool: Vec<Transaction> = (0..max_extras).map(|_| mk_tx(rng)).collect();

    let pools = CLASS_EXTRAS
        .iter()
        .enumerate()
        .map(|(class, &extras)| {
            let held = if class == PARTIAL_CLASS {
                ((BLOCK_TXNS as f64) * PARTIAL_HELD).round() as usize
            } else {
                BLOCK_TXNS
            };
            let mut pool: Mempool = block_txns.iter().take(held).cloned().collect();
            for tx in &extra_pool[..extras] {
                pool.insert(tx.clone());
            }
            pool
        })
        .collect();

    let block = Block::assemble(Digest::ZERO, 1_700_000_000, block_txns, OrderingScheme::Ctor);
    (block, pools)
}

/// One trial: relay the block to `receivers` receivers through a fresh
/// cache, then again without one, verifying frame equivalence throughout.
fn run_once(receivers: usize, seed: u64) -> Trial {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = GrapheneConfig::default();
    let tweak = RetryTweak::initial(&cfg);
    let (block, pools) = build_classes(&mut rng);

    let cache = EncodeCache::new(CACHE_BYTES);
    let mut t = Trial {
        encodings_cached: 0.0,
        hits: 0.0,
        lookups: 0.0,
        evictions: 0.0,
        bytes_uncached: 0.0,
        bytes_cached: 0.0,
        frame_bytes_saved: 0.0,
        frame_mismatches: 0.0,
        delivered_cached: 0.0,
        delivered_uncached: 0.0,
        cache_used_bytes: 0.0,
    };

    // Cached arm: the fan-out under measurement.
    for i in 0..receivers {
        let pool = &pools[class_of(i)];
        let r = relay_block_cached(&block, None, pool, &cfg, Some(&cache));
        t.delivered_cached += r.outcome.is_success() as u64 as f64;
        t.bytes_cached += r.bytes.total() as f64;
    }
    let stats = cache.stats();
    t.encodings_cached = (stats.misses + stats.bypasses) as f64;
    t.hits = stats.hits as f64;
    t.lookups = (stats.hits + stats.misses) as f64;
    t.evictions = stats.evictions as f64;
    t.frame_bytes_saved = stats.bytes_saved as f64;
    t.cache_used_bytes = cache.used_bytes() as f64;

    // Uncached arm: identical canonical encodes, performed fresh per
    // receiver — the oracle for both the byte counts and the frames.
    for i in 0..receivers {
        let pool = &pools[class_of(i)];
        let r = relay_block_cached(&block, None, pool, &cfg, None);
        t.delivered_uncached += r.outcome.is_success() as u64 as f64;
        t.bytes_uncached += r.bytes.total() as f64;
    }

    // Equivalence audit: every receiver's cache-served frame must equal a
    // fresh canonical encode, byte for byte. A shadow cache keeps the
    // audit's lookups out of the measured stats.
    let shadow = EncodeCache::new(CACHE_BYTES);
    for i in 0..receivers {
        let pool = &pools[class_of(i)];
        let m = pool.len() as u64;
        let served = protocol1::sender_encode_cached(&block, m, None, &cfg, &tweak, Some(&shadow));
        let fresh = protocol1::sender_encode_cached(&block, m, None, &cfg, &tweak, None);
        t.frame_mismatches += (served.frame != fresh.frame) as u64 as f64;
    }

    t
}

/// Run `trials` trials at one receiver count through `engine`.
pub fn sweep_point(engine: &Engine, trials: usize, receivers: usize) -> FanoutPoint {
    type Acc = ([SumAcc; 10], MaxAcc);
    let label = format!("fanout receivers={receivers}");
    let (sums, max_cache) = engine.run(&label, trials, |_, rng: &mut StdRng, acc: &mut Acc| {
        let t = run_once(receivers, rng.random());
        let fields = [
            t.encodings_cached,
            t.hits,
            t.lookups,
            t.evictions,
            t.bytes_uncached,
            t.bytes_cached,
            t.frame_bytes_saved,
            t.frame_mismatches,
            t.delivered_cached,
            t.delivered_uncached,
        ];
        for (slot, v) in acc.0.iter_mut().zip(fields) {
            slot.push(v);
        }
        acc.1.push(t.cache_used_bytes);
    });
    let per_trial = |s: &SumAcc| s.sum() / trials as f64;
    let encodings_cached = per_trial(&sums[0]);
    let encodings_uncached = receivers as f64;
    FanoutPoint {
        receivers,
        encodings_uncached,
        encodings_cached,
        reduction: encodings_uncached / encodings_cached.max(1e-9),
        hit_rate: if sums[2].sum() > 0.0 { sums[1].sum() / sums[2].sum() } else { 0.0 },
        evictions: per_trial(&sums[3]),
        bytes_uncached: per_trial(&sums[4]),
        bytes_cached: per_trial(&sums[5]),
        frame_bytes_saved: per_trial(&sums[6]),
        frame_mismatches: sums[7].sum(),
        delivery_cached: sums[8].sum() / (trials * receivers) as f64,
        delivery_uncached: sums[9].sum() / (trials * receivers) as f64,
        max_cache_bytes: max_cache.max(),
    }
}

/// Sweep every receiver count in [`RECEIVER_COUNTS`] (capped at
/// `max_receivers` when smaller counts are requested, e.g. CI smoke).
pub fn run_sweep(engine: &Engine, trials: usize, max_receivers: usize) -> Vec<FanoutPoint> {
    let mut counts: Vec<usize> =
        RECEIVER_COUNTS.iter().copied().filter(|&r| r < max_receivers).collect();
    counts.push(max_receivers);
    counts.iter().map(|&r| sweep_point(engine, trials, r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISSUE acceptance scenario at reduced trial count: 1k+
    /// receivers, ≥10× fewer encodings with the cache, zero frame
    /// mismatches, full delivery both arms, cache under its budget.
    #[test]
    fn fanout_acceptance_point() {
        let engine = Engine::new(2, 0xfa0);
        let p = sweep_point(&engine, 2, 1000);
        assert!(p.reduction >= 10.0, "reduction only {:.1}x", p.reduction);
        assert_eq!(p.frame_mismatches, 0.0, "cached frames diverged");
        assert!((p.delivery_cached - 1.0).abs() < 1e-12, "cached delivery {}", p.delivery_cached);
        assert!(
            (p.delivery_uncached - 1.0).abs() < 1e-12,
            "uncached delivery {}",
            p.delivery_uncached
        );
        assert!(p.max_cache_bytes <= CACHE_BYTES as f64, "cache over budget");
        assert!(p.hit_rate > 0.9, "hit rate {}", p.hit_rate);
        // The P2 class forces receiver-specific responses: bypasses keep
        // encodings_cached above the pure bucket count, but far under the
        // receiver count.
        assert!(p.encodings_cached < p.encodings_uncached / 10.0);
    }

    /// Both arms ship the same number of relay bytes: the cached arm
    /// serves stored frames, it never changes what goes on the wire.
    #[test]
    fn cached_arm_costs_the_same_bytes() {
        let t = run_once(50, 0xbeef);
        assert_eq!(t.bytes_cached, t.bytes_uncached);
        assert_eq!(t.frame_mismatches, 0.0);
        assert!(t.frame_bytes_saved > 0.0);
    }
}
