//! ID-level Monte Carlo of Protocols 1 and 2.
//!
//! Decode-rate figures (15, 16) and the theorem validations (Figs. 19, 20)
//! need tens of thousands of trials per point; materializing transaction
//! bodies and Merkle trees would waste almost all of that time. This module
//! replays the exact same mathematics as `graphene::protocol1/2` — the same
//! `optimal_a`/`x*`/`y*`/`optimal_b` calls, the same real Bloom filters and
//! IBLTs — over bare txids. A unit test cross-validates its Protocol 1
//! behaviour against the full implementation.

use graphene::config::GrapheneConfig;
use graphene::params::{optimal_a, optimal_b, x_star, y_star};
use graphene_blockchain::TxId;
use graphene_bloom::{BloomFilter, Membership};
use graphene_hashes::{short_id_8, Digest};
use graphene_iblt::{ping_pong_decode, Iblt};
use graphene_iblt_params::params_for;
use rand::{rngs::StdRng, RngExt};
use std::collections::HashSet;

/// Scenario knobs for one trial.
#[derive(Clone, Copy, Debug)]
pub struct FastConfig {
    /// Block size `n`.
    pub n: usize,
    /// Extra mempool transactions as a multiple of `n`.
    pub extra_multiple: f64,
    /// Fraction of the block the receiver holds.
    pub fraction_held: f64,
    /// If set, top the mempool up with unrelated transactions so `m = n`
    /// exactly (the Fig. 18 shape).
    pub force_m_equals_n: bool,
}

/// Everything a trial observes.
#[derive(Clone, Debug, Default)]
pub struct FastOutcome {
    /// Protocol 1 decoded (IBLT complete, no missing, set correct).
    pub p1_success: bool,
    /// Protocol 2 decoded with ping-pong enabled.
    pub p2_success: bool,
    /// Protocol 2 decoded *without* ping-pong (Fig. 16's ablation).
    pub p2_success_no_pingpong: bool,
    /// Theorem 2 bound held (`x* ≤ x`).
    pub x_star_ok: bool,
    /// Theorem 3 bound held (`y* ≥ y`).
    pub y_star_ok: bool,
    /// Observed candidate-set size `z`.
    pub z: usize,
    /// True count of block transactions held.
    pub x: usize,
    /// True count of S false positives.
    pub y: usize,
}

/// Run one trial: generate ids, run Protocol 1, and (if the receiver was
/// missing transactions or the decode failed) Protocol 2 both with and
/// without ping-pong.
pub fn simulate_relay(fc: &FastConfig, cfg: &GrapheneConfig, rng: &mut StdRng) -> FastOutcome {
    let n = fc.n;
    let held = ((n as f64) * fc.fraction_held).round() as usize;
    let extras = if fc.force_m_equals_n {
        n - held.min(n)
    } else {
        ((n as f64) * fc.extra_multiple).round() as usize
    };

    let block_ids: Vec<TxId> = (0..n).map(|_| Digest(rng.random())).collect();
    let mut mempool_ids: Vec<TxId> = block_ids[..held.min(n)].to_vec();
    mempool_ids.extend((0..extras).map(|_| Digest(rng.random())));
    let m = mempool_ids.len();

    let mut out = FastOutcome::default();
    let salt = rng.random::<u64>();

    // --- Protocol 1 sender ---
    let choice = optimal_a(n, m, cfg.beta, cfg.iblt_rate_denom);
    let mut bloom_s =
        BloomFilter::with_strategy(n.max(1), choice.fpr, salt ^ 0x51, cfg.bloom_strategy);
    let mut iblt_i = Iblt::new(choice.iblt.c, choice.iblt.k, salt ^ 0x49);
    for id in &block_ids {
        bloom_s.insert(id);
        iblt_i.insert(short_id_8(id));
    }

    // --- Protocol 1 receiver ---
    let candidates: Vec<TxId> =
        mempool_ids.iter().filter(|id| bloom_s.contains(id)).copied().collect();
    out.z = candidates.len();
    out.x = held.min(n);
    out.y = out.z - out.x; // no false negatives: all held block ids pass

    let mut iblt_prime = Iblt::new(iblt_i.cell_count(), iblt_i.hash_count(), iblt_i.salt());
    for id in &candidates {
        iblt_prime.insert(short_id_8(id));
    }
    // I ⊖ I′ computed in place into I′ — no third table per relay.
    if iblt_prime.subtract_from(&iblt_i).is_err() {
        return out;
    }
    let mut i_delta = iblt_prime;
    let p1 = match i_delta.peel() {
        Ok(r) => r,
        Err(_) => return out,
    };
    if p1.complete && p1.only_left.is_empty() {
        // Candidate set minus FPs must equal the block.
        out.p1_success = verify_set(&block_ids, &candidates, &p1.only_right);
        if out.p1_success {
            out.p2_success = true;
            out.p2_success_no_pingpong = true;
            // Bounds are vacuously fine; don't count toward theorem stats.
            out.x_star_ok = true;
            out.y_star_ok = true;
            return out;
        }
    }

    // --- Protocol 2 receiver request ---
    let fpr_s = if bloom_s.bit_len() == 0 {
        1.0
    } else {
        graphene_bloom::params::theoretical_fpr(bloom_s.bit_len(), bloom_s.hash_count(), n)
    };
    let xs = x_star(out.z, m, fpr_s, cfg.beta, out.z.min(n));
    let ys = y_star(m, xs, fpr_s, cfg.beta);
    out.x_star_ok = xs <= out.x;
    out.y_star_ok = ys >= out.y;
    let bchoice = optimal_b(out.z, n, xs, ys, cfg.iblt_rate_denom);
    // §3.3.1 special-case trigger: z ≈ m and y* ≈ m (mirrors protocol2).
    let special = m > 0 && out.z * 10 >= m * 9 && ys * 10 >= m * 9;
    let fpr_r = if special { cfg.special_case_fpr } else { bchoice.fpr };

    let mut bloom_r =
        BloomFilter::with_strategy(out.z.max(1), fpr_r, salt ^ 0x52, cfg.bloom_strategy);
    for id in &candidates {
        bloom_r.insert(id);
    }

    // --- Protocol 2 sender ---
    let missing: Vec<TxId> = block_ids.iter().filter(|id| !bloom_r.contains(id)).copied().collect();
    let (j_capacity, bloom_f) = if special {
        let h = missing.len();
        let z2 = n - h;
        let fpr_r_real = if bloom_r.bit_len() == 0 {
            1.0
        } else {
            graphene_bloom::params::theoretical_fpr(
                bloom_r.bit_len(),
                bloom_r.hash_count(),
                bloom_r.inserted().max(z2),
            )
        };
        let xs2 = x_star(z2, n, fpr_r_real, cfg.beta, z2);
        let ys2 = y_star(n, xs2, fpr_r_real, cfg.beta);
        let c2 = optimal_b(z2, m, xs2, ys2, cfg.iblt_rate_denom);
        let mut f = BloomFilter::with_strategy(z2.max(1), c2.fpr, salt ^ 0x46, cfg.bloom_strategy);
        for id in &block_ids {
            if bloom_r.contains(id) {
                f.insert(id);
            }
        }
        (c2.b + ys2, Some(f))
    } else {
        (bchoice.b + ys, None)
    };
    let jp = params_for(j_capacity.max(1), cfg.iblt_rate_denom);
    let mut iblt_j = Iblt::new(jp.c, jp.k, salt ^ 0x4a);
    for id in &block_ids {
        iblt_j.insert(short_id_8(id));
    }

    // --- Protocol 2 receiver completion ---
    let c_set: Vec<TxId> = match &bloom_f {
        Some(f) => {
            candidates.iter().filter(|id| f.contains(id)).chain(missing.iter()).copied().collect()
        }
        None => candidates.iter().chain(missing.iter()).copied().collect(),
    };
    let mut j_prime = Iblt::new(iblt_j.cell_count(), iblt_j.hash_count(), iblt_j.salt());
    for id in &c_set {
        j_prime.insert(short_id_8(id));
    }
    if j_prime.subtract_from(&iblt_j).is_err() {
        return out;
    }
    let j_delta = j_prime;

    // Without ping-pong.
    {
        let mut jd = j_delta.clone();
        if let Ok(r) = jd.peel() {
            // `only_left` values are R false positives fetched in one extra
            // round by the real protocol — they complete the set.
            out.p2_success_no_pingpong =
                r.complete && verify_p2(&block_ids, &c_set, &r.only_right, &r.only_left);
        }
    }

    // With ping-pong (normal path only; the F-path differences diverge).
    if cfg.pingpong && bloom_f.is_none() {
        let mut jd = j_delta;
        // Align: the delivered T values sat on the block-only side of
        // I ⊖ I′; cancel them (accounting for the partial peel).
        let pl: HashSet<u64> = p1.only_left.iter().copied().collect();
        let t_set: HashSet<u64> = missing.iter().map(short_id_8).collect();
        for s in &t_set {
            if !pl.contains(s) {
                i_delta.cancel(*s, 1);
            }
        }
        for l in &pl {
            if !t_set.contains(l) {
                jd.cancel(*l, 1);
            }
        }
        for r in &p1.only_right {
            jd.cancel(*r, -1);
        }
        if let Ok(r) = ping_pong_decode(&mut i_delta, &mut jd) {
            if r.complete {
                let mut fps: Vec<u64> = r.only_right.clone();
                fps.extend(&p1.only_right);
                let mut fetched: Vec<u64> = r.only_left.clone();
                fetched.extend(&p1.only_left);
                out.p2_success = verify_p2(&block_ids, &c_set, &fps, &fetched);
            }
        }
    } else {
        out.p2_success = out.p2_success_no_pingpong;
    }
    out
}

/// Check that `candidates` minus the false positives `fps` equals the block
/// id set (by short id, as the protocol resolves them).
fn verify_set(block_ids: &[TxId], candidates: &[TxId], fps: &[u64]) -> bool {
    verify_p2(block_ids, candidates, fps, &[])
}

/// Protocol 2 variant: `fetched` short IDs (decoded on the block-only side)
/// arrive via the extra-fetch round and complete the set.
fn verify_p2(block_ids: &[TxId], candidates: &[TxId], fps: &[u64], fetched: &[u64]) -> bool {
    let fp_set: HashSet<u64> = fps.iter().copied().collect();
    let mut resolved: HashSet<u64> =
        candidates.iter().map(short_id_8).filter(|s| !fp_set.contains(s)).collect();
    resolved.extend(fetched.iter().copied());
    let expect: HashSet<u64> = block_ids.iter().map(short_id_8).collect();
    resolved == expect
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cfg() -> GrapheneConfig {
        GrapheneConfig::default()
    }

    #[test]
    fn p1_succeeds_when_holding_everything() {
        let fc =
            FastConfig { n: 200, extra_multiple: 1.0, fraction_held: 1.0, force_m_equals_n: false };
        let mut rng = StdRng::seed_from_u64(1);
        let mut failures = 0;
        for _ in 0..200 {
            if !simulate_relay(&fc, &cfg(), &mut rng).p1_success {
                failures += 1;
            }
        }
        assert!(failures <= 3, "{failures}/200 P1 failures");
    }

    #[test]
    fn p2_recovers_partial_blocks() {
        let fc =
            FastConfig { n: 200, extra_multiple: 1.0, fraction_held: 0.5, force_m_equals_n: false };
        let mut rng = StdRng::seed_from_u64(2);
        let mut p2_failures = 0;
        for _ in 0..200 {
            let o = simulate_relay(&fc, &cfg(), &mut rng);
            assert!(!o.p1_success, "P1 cannot succeed at 50% possession");
            if !o.p2_success {
                p2_failures += 1;
            }
        }
        assert!(p2_failures <= 3, "{p2_failures}/200 P2 failures");
    }

    #[test]
    fn bounds_hold_at_beta_rate() {
        let fc =
            FastConfig { n: 500, extra_multiple: 1.0, fraction_held: 0.6, force_m_equals_n: false };
        let mut rng = StdRng::seed_from_u64(3);
        let (mut xs_bad, mut ys_bad) = (0, 0);
        for _ in 0..300 {
            let o = simulate_relay(&fc, &cfg(), &mut rng);
            if !o.x_star_ok {
                xs_bad += 1;
            }
            if !o.y_star_ok {
                ys_bad += 1;
            }
        }
        // β = 239/240 ⇒ expect ≲ 2 violations in 300.
        assert!(xs_bad <= 4, "x* violated {xs_bad}/300");
        assert!(ys_bad <= 4, "y* violated {ys_bad}/300");
    }

    #[test]
    fn m_equals_n_special_path_runs() {
        let fc =
            FastConfig { n: 300, extra_multiple: 0.0, fraction_held: 0.4, force_m_equals_n: true };
        let mut rng = StdRng::seed_from_u64(4);
        let mut successes = 0;
        for _ in 0..100 {
            let o = simulate_relay(&fc, &cfg(), &mut rng);
            if o.p2_success_no_pingpong {
                successes += 1;
            }
        }
        assert!(successes >= 95, "{successes}/100 m≈n recoveries");
    }

    /// Cross-validate against the full (Transaction-level) implementation:
    /// at the same parameters both should have statistically similar
    /// Protocol 1 success behaviour.
    #[test]
    fn agrees_with_full_protocol() {
        use graphene::session::{relay_block, RelayOutcome};
        use graphene_blockchain::{Scenario, ScenarioParams};

        let trials = 60;
        let mut full_p1 = 0;
        let mut fast_p1 = 0;
        for seed in 0..trials {
            let params = ScenarioParams {
                block_size: 150,
                extra_mempool_multiple: 2.0,
                block_fraction_in_mempool: 1.0,
                ..Default::default()
            };
            let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(seed));
            let r = relay_block(&s.block, None, &s.receiver_mempool, &cfg());
            if r.outcome == RelayOutcome::DecodedP1 {
                full_p1 += 1;
            }
            let fc = FastConfig {
                n: 150,
                extra_multiple: 2.0,
                fraction_held: 1.0,
                force_m_equals_n: false,
            };
            if simulate_relay(&fc, &cfg(), &mut StdRng::seed_from_u64(seed)).p1_success {
                fast_p1 += 1;
            }
        }
        let diff = (full_p1 as i64 - fast_p1 as i64).unsigned_abs();
        assert!(diff <= 5, "full {full_p1} vs fast {fast_p1} P1 successes");
    }

    /// Protocol 2 cross-validation: with the receiver holding only half the
    /// block, both the full (Transaction-level) relay and the fast model
    /// must fall through Protocol 1 and recover via Protocol 2 at
    /// statistically similar rates.
    #[test]
    fn agrees_with_full_protocol_on_p2() {
        use graphene::session::{relay_block, RelayOutcome};
        use graphene_blockchain::{Scenario, ScenarioParams};

        let trials = 60;
        let mut full_p2 = 0;
        let mut fast_p2 = 0;
        for seed in 0..trials {
            let params = ScenarioParams {
                block_size: 150,
                extra_mempool_multiple: 2.0,
                block_fraction_in_mempool: 0.5,
                ..Default::default()
            };
            let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(seed));
            let r = relay_block(&s.block, None, &s.receiver_mempool, &cfg());
            assert_ne!(
                r.outcome,
                RelayOutcome::DecodedP1,
                "P1 cannot succeed at 50% possession (seed {seed})"
            );
            if matches!(r.outcome, RelayOutcome::DecodedP2 { .. }) {
                full_p2 += 1;
            }
            let fc = FastConfig {
                n: 150,
                extra_multiple: 2.0,
                fraction_held: 0.5,
                force_m_equals_n: false,
            };
            let o = simulate_relay(&fc, &cfg(), &mut StdRng::seed_from_u64(seed));
            assert!(!o.p1_success, "fast P1 cannot succeed at 50% possession (seed {seed})");
            if o.p2_success {
                fast_p2 += 1;
            }
        }
        // Protocol 2 targets a 1/240 failure rate; both sides should be
        // near-perfect here and certainly within a few trials of each other.
        assert!(full_p2 >= trials - 3, "full P2 only {full_p2}/{trials}");
        let diff = (full_p2 as i64 - fast_p2 as i64).unsigned_abs();
        assert!(diff <= 5, "full {full_p2} vs fast {fast_p2} P2 successes");
    }
}
