//! Latency sweep over the adaptive failure detector: fixed 2 s timers vs
//! RTT-estimated timeouts with hedged fetches, on heterogeneous links,
//! with and without a tarpit relay.
//!
//! Each trial relays one block across [`PEERS`] peers whose links are
//! drawn from the [`LatencyClass`] pyramid (metro through
//! intercontinental), so round trips span 4 ms to 300 ms. The `tarpit`
//! arms plant one adversarial relay next to the origin that answers
//! every request *correctly* but holds the response [`TARPIT_HOLD_MS`]
//! — calibrated under the fixed timer's −25% jitter floor (1.5 s), so
//! the fixed arm never times out and pays the full hold on every session
//! the tarpit captures, while the adaptive arm's 1 s initial RTO fires
//! first and hedges the request to the best alternate announcer.
//!
//! The sweep reports delivery (must be 1.0 everywhere — asserted by the
//! binary), mean p50/p99 block-arrival times, and the hedge/breaker
//! counters. The headline claim is the tarpit pair: the adaptive arm
//! must strictly improve mean p99 over the fixed arm without losing a
//! single block or banning a single peer — the tarpit is *honest bytes
//! on a hostile schedule*, so no provable-misbehavior score may move.
//!
//! Trials run through the deterministic [`Engine`], so every reported
//! number is bit-identical for any `--threads` value.

use crate::{Engine, PropAcc, SumAcc};
use graphene::GrapheneConfig;
use graphene_blockchain::{Scenario, ScenarioParams};
use graphene_netsim::{
    AdversaryConfig, Behavior, LatencyClass, Network, PeerId, RelayProtocol, SimTime,
};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Peers per trial network (a ring with diameter chords, degree 3).
pub const PEERS: usize = 12;
/// The tarpit relay — a ring neighbor of the origin, so its fast links
/// win announcement races and it captures sessions to hold.
pub const TARPIT: PeerId = PeerId(1);
/// How long the tarpit sits on each response (ms). Under the fixed
/// timer's 1 500 ms jitter floor, over the adaptive arm's 1 250 ms
/// initial-RTO ceiling.
pub const TARPIT_HOLD_MS: u64 = 1_450;
/// Simulated-time budget per trial.
const MAX_TIME: SimTime = SimTime(600_000_000);

/// Aggregated results for one (tarpit, adaptive) sweep point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// Whether the tarpit relay was planted.
    pub tarpit: bool,
    /// Whether peers ran the adaptive failure detector.
    pub adaptive: bool,
    /// Fraction of peers that ended holding the block, over all trials.
    pub delivery: f64,
    /// Mean per-trial median block-arrival time (ms).
    pub p50_ms: f64,
    /// Mean per-trial 99th-percentile block-arrival time (ms).
    pub p99_ms: f64,
    /// Mean hedged fetches issued per trial.
    pub hedges_issued: f64,
    /// Mean hedges that beat the primary per trial.
    pub hedges_won: f64,
    /// Mean hedges the primary beat per trial.
    pub hedges_wasted: f64,
    /// Mean circuit-breaker trips per trial.
    pub breaker_trips: f64,
    /// Total bans across all trials — must stay exactly zero: neither a
    /// tarpit nor a lost hedge race is provable misbehavior.
    pub bans: f64,
}

/// Raw per-trial measurements.
struct Trial {
    with_block: usize,
    p50_ms: f64,
    p99_ms: f64,
    hedges: (u64, u64, u64),
    trips: f64,
    bans: f64,
}

/// One trial: a 12-peer ring-with-chords Graphene network with
/// latency-class links relays one 150-txn block from peer 0. Links
/// incident to the tarpit are forced to metro so its announcements win
/// races; every other pair keeps its drawn class.
fn run_once(tarpit: bool, adaptive: bool, seed: u64) -> Trial {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = ScenarioParams {
        block_size: 150,
        extra_mempool_multiple: 1.0,
        block_fraction_in_mempool: 1.0,
        ..Default::default()
    };
    let s = Scenario::generate(&params, &mut rng);
    let link_seed: u64 = rng.random();
    let mut net =
        Network::new(PEERS, RelayProtocol::Graphene(GrapheneConfig::default()), rng.random());
    for i in 0..PEERS {
        net.peer_mut(PeerId(i)).mempool = s.receiver_mempool.clone();
    }
    if adaptive {
        net.enable_adaptive();
    }
    if tarpit {
        net.peer_mut(TARPIT).behavior = Behavior::Adversarial(AdversaryConfig {
            tarpit: 1.0,
            tarpit_hold: SimTime::from_millis(TARPIT_HOLD_MS),
            seed: rng.random(),
            ..Default::default()
        });
    }
    // Ring plus diameter chords, each edge on its latency-class link.
    // The tarpit's edges are metro regardless of draw: a tarpit that
    // loses every announcement race never captures a session, and the
    // sweep would measure nothing.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for i in 0..PEERS {
        edges.push((i, (i + 1) % PEERS));
    }
    for i in 0..PEERS / 2 {
        edges.push((i, i + PEERS / 2));
    }
    for (i, j) in edges {
        let class = if PeerId(i) == TARPIT || PeerId(j) == TARPIT {
            LatencyClass::Metro
        } else {
            LatencyClass::assign(link_seed, i, j)
        };
        net.connect_with(PeerId(i), PeerId(j), class.link());
    }

    net.propagate(PeerId(0), s.block, MAX_TIME);

    let (issued, won, wasted) = net.metrics.hedge_totals();
    let (trips, _probes) = net.metrics.breaker_totals();
    Trial {
        with_block: net.metrics.peers_with_block(),
        p50_ms: net.metrics.arrival_percentile(50.0).map_or(f64::NAN, |t| t.0 as f64 / 1_000.0),
        p99_ms: net.metrics.arrival_percentile(99.0).map_or(f64::NAN, |t| t.0 as f64 / 1_000.0),
        hedges: (issued, won, wasted),
        trips: trips as f64,
        bans: net.metrics.bans() as f64,
    }
}

/// Run `trials` trials at one sweep point through `engine`.
pub fn sweep_point(engine: &Engine, trials: usize, tarpit: bool, adaptive: bool) -> SweepPoint {
    type Acc = (PropAcc, SumAcc, SumAcc, SumAcc, SumAcc, SumAcc, SumAcc, SumAcc);
    // The engine derives trial seeds from the label, so the arm is
    // deliberately left OUT of it: the fixed and adaptive points at the
    // same tarpit setting then run the *same* scenarios over the same
    // topologies — a paired comparison, where any p99 difference is the
    // detector's doing and not sampling noise.
    let label = format!("latency tarpit={}", if tarpit { "on" } else { "off" });
    let (delivered, p50, p99, issued, won, wasted, trips, bans) =
        engine.run(&label, trials, |_, rng: &mut StdRng, acc: &mut Acc| {
            let t = run_once(tarpit, adaptive, rng.random());
            for i in 0..PEERS {
                acc.0.push(i < t.with_block);
            }
            acc.1.push(t.p50_ms);
            acc.2.push(t.p99_ms);
            acc.3.push(t.hedges.0 as f64);
            acc.4.push(t.hedges.1 as f64);
            acc.5.push(t.hedges.2 as f64);
            acc.6.push(t.trips);
            acc.7.push(t.bans);
        });
    let n = trials as f64;
    SweepPoint {
        tarpit,
        adaptive,
        delivery: delivered.rate(),
        p50_ms: p50.sum() / n,
        p99_ms: p99.sum() / n,
        hedges_issued: issued.sum() / n,
        hedges_won: won.sum() / n,
        hedges_wasted: wasted.sum() / n,
        breaker_trips: trips.sum() / n,
        bans: bans.sum(),
    }
}

/// Sweep the full tarpit × detector grid: {off, on} × {fixed, adaptive}.
pub fn run_sweep(engine: &Engine, trials: usize) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &tarpit in &[false, true] {
        for &adaptive in &[false, true] {
            points.push(sweep_point(engine, trials, tarpit, adaptive));
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISSUE acceptance criterion: under the tarpit the adaptive arm
    /// strictly improves p99 over the fixed arm, both arms deliver every
    /// block, hedges actually win races, and nothing gets banned.
    #[test]
    fn tarpit_pair_adaptive_strictly_improves_p99() {
        let engine = Engine::new(4, 0x1a7e);
        let trials = 30;
        let fixed = sweep_point(&engine, trials, true, false);
        let adaptive = sweep_point(&engine, trials, true, true);
        for p in [&fixed, &adaptive] {
            assert!((p.delivery - 1.0).abs() < 1e-12, "delivery not total: {p:?}");
            assert_eq!(p.bans, 0.0, "a tarpit must never look provable: {p:?}");
        }
        assert_eq!(fixed.hedges_issued, 0.0, "the fixed arm must never hedge: {fixed:?}");
        assert!(adaptive.hedges_won > 0.0, "no hedge ever won a race: {adaptive:?}");
        assert!(
            adaptive.p99_ms < fixed.p99_ms,
            "adaptive p99 {:.0} ms must beat fixed {:.0} ms",
            adaptive.p99_ms,
            fixed.p99_ms
        );
    }

    /// Without the tarpit the adaptive detector must cost nothing:
    /// delivery total, no bans, no hedges, and — because the arms are
    /// seed-paired — *identical* arrival percentiles: a healthy
    /// heterogeneous network answers every request inside the initial
    /// RTO, so no adaptive timer ever fires and the arms never diverge.
    #[test]
    fn quiet_pair_adaptive_is_free() {
        let engine = Engine::new(4, 0x1a7e);
        let trials = 12;
        let fixed = sweep_point(&engine, trials, false, false);
        let adaptive = sweep_point(&engine, trials, false, true);
        for p in [&fixed, &adaptive] {
            assert!((p.delivery - 1.0).abs() < 1e-12, "delivery not total: {p:?}");
            assert_eq!(p.bans, 0.0, "{p:?}");
            assert_eq!(p.hedges_issued, 0.0, "a quiet network must never hedge: {p:?}");
        }
        assert_eq!(
            adaptive.p50_ms, fixed.p50_ms,
            "paired quiet arms must be indistinguishable at p50"
        );
        assert_eq!(
            adaptive.p99_ms, fixed.p99_ms,
            "paired quiet arms must be indistinguishable at p99"
        );
    }

    /// The sweep is bit-identical for any thread count (chunked merge
    /// order plus counter-based trial seeds; the simulator itself is
    /// single-threaded per trial).
    #[test]
    fn sweep_is_thread_count_invariant() {
        let trials = 6;
        let run = |threads| {
            let engine = Engine::new(threads, 0x51);
            [sweep_point(&engine, trials, true, true), sweep_point(&engine, trials, false, false)]
        };
        let (a, b, c) = (run(1), run(2), run(8));
        assert_eq!(a, b, "1 vs 2 threads diverged");
        assert_eq!(a, c, "1 vs 8 threads diverged");
    }
}
