//! Experiment harness: one runnable binary per figure in the paper's
//! evaluation (§5), plus the Theorem 4 comparison and the §6.1 security
//! experiments.
//!
//! Run e.g. `cargo run --release -p graphene-experiments --bin fig14`.
//! Every binary:
//!
//! * prints the same series the paper's figure plots, as an aligned table;
//! * writes a CSV under `results/` for plotting;
//! * accepts `--quick` (fewer Monte Carlo trials), `--trials N`, `--seed N`
//!   and `--threads N` (parallel trial engine; output bytes are identical
//!   for every thread count).
//!
//! `EXPERIMENTS.md` at the repository root records paper-vs-measured for
//! every figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod chaos;
pub mod fanout;
pub mod fastsim;
pub mod latency;
pub mod mc;
pub mod output;
pub mod propagation;
pub mod rateless;
pub mod stats;

pub use fastsim::{simulate_relay, FastConfig, FastOutcome};
pub use mc::{run_trials, Engine};
pub use output::{Table, TableWriter};
pub use stats::{mean, mean_ci95, proportion_ci95, Accum, MaxAcc, MeanAcc, PropAcc, SumAcc};

/// Common CLI knobs for experiment binaries.
#[derive(Clone, Copy, Debug)]
pub struct RunOpts {
    /// Monte Carlo trials per point (binaries scale this per block size).
    pub trials: usize,
    /// RNG seed base.
    pub seed: u64,
    /// Worker threads for the trial engine (`--threads`, default: available
    /// parallelism). Results are bit-identical for any value.
    pub threads: usize,
}

impl RunOpts {
    /// Parse `--quick` / `--trials N` / `--seed N` / `--threads N` from
    /// `std::env::args`.
    ///
    /// `default_trials` is the full-run trial count; `--quick` divides it
    /// by 10 (min 50). `--threads` defaults to the available parallelism
    /// and never affects results, only wall-clock time.
    pub fn from_args(default_trials: usize) -> RunOpts {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut trials = default_trials;
        let mut seed = 0xeca1u64;
        let mut threads = mc::default_threads();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => trials = (default_trials / 10).max(50),
                "--trials" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        trials = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        seed = v;
                        i += 1;
                    }
                }
                "--threads" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        threads = v;
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        RunOpts { trials, seed, threads }
    }

    /// The trial engine configured by these options.
    pub fn engine(&self) -> Engine {
        Engine::new(self.threads, self.seed)
    }

    /// Scale trials down for expensive (large `n`) points.
    pub fn trials_for(&self, n: usize) -> usize {
        match n {
            0..=500 => self.trials,
            501..=5000 => (self.trials / 2).max(25),
            _ => (self.trials / 5).max(10),
        }
    }
}
