//! Deterministic parallel Monte Carlo trial engine.
//!
//! Every experiment binary runs its per-point trials through [`Engine::run`]
//! (or the free function [`run_trials`]). The engine shards trials across
//! crossbeam scoped worker threads while keeping results **bit-identical
//! for any thread count**:
//!
//! * Each trial's RNG is derived from a counter-based seed
//!   `mix(base_seed, point_key, trial_index)` — no state is carried between
//!   trials, so a trial's random stream does not depend on which thread ran
//!   it or on how many trials preceded it on that thread.
//! * Trials are grouped into fixed-size chunks (a constant, independent of
//!   the thread count). Each chunk folds into its own [`Accum`]; workers
//!   claim chunks from a shared counter, and the per-chunk accumulators are
//!   merged sequentially in chunk-index order afterwards. The
//!   floating-point addition order is therefore a function of the trial
//!   count alone.
//!
//! The engine reports per-point wall-clock time and trial throughput to
//! **stderr**, keeping stdout (tables) and `results/*.csv` byte-comparable
//! across runs with different `--threads` values.

use crate::stats::Accum;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Trials per work unit. A constant so the chunk layout — and with it the
/// accumulator merge order — never depends on the thread count.
pub const CHUNK: usize = 64;

/// SplitMix64 finalizer: a bijective avalanche mix.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Counter-based seed for one trial: a pure function of the experiment seed,
/// the point label, and the trial index.
pub fn trial_seed(base_seed: u64, point_key: u64, trial: u64) -> u64 {
    mix64(
        base_seed
            .wrapping_add(mix64(point_key))
            .wrapping_add(trial.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
    )
}

/// FNV-1a hash of a point label, used as the RNG domain separator so equal
/// trial indices at different sweep points draw unrelated streams.
pub fn point_key(label: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shared trial engine: a thread count plus the experiment base seed.
#[derive(Clone, Copy, Debug)]
pub struct Engine {
    /// Worker threads per point (1 = run on the calling thread).
    pub threads: usize,
    /// Experiment-wide RNG seed (`--seed`).
    pub base_seed: u64,
}

impl Engine {
    /// Engine for the given thread count and seed.
    pub fn new(threads: usize, base_seed: u64) -> Engine {
        Engine { threads: threads.max(1), base_seed }
    }

    /// Run `trials` trials of `f` for the sweep point named `label` and
    /// return the merged accumulator.
    ///
    /// `f` is called once per trial with the trial index, a freshly seeded
    /// RNG, and the chunk's accumulator. The result is bit-identical for
    /// every thread count; timing goes to stderr.
    pub fn run<A, F>(&self, label: &str, trials: usize, f: F) -> A
    where
        A: Accum,
        F: Fn(u64, &mut StdRng, &mut A) + Sync,
    {
        let started = Instant::now();
        let acc = self.run_quiet(label, trials, f);
        let secs = started.elapsed().as_secs_f64();
        eprintln!(
            "[mc] {label}: {trials} trials, {} thread(s), {:.3}s wall ({:.0} trials/s)",
            self.threads,
            secs,
            trials as f64 / secs.max(1e-9),
        );
        acc
    }

    /// As [`Engine::run`] but without the stderr timing line (used by tests
    /// and by callers doing their own reporting).
    pub fn run_quiet<A, F>(&self, label: &str, trials: usize, f: F) -> A
    where
        A: Accum,
        F: Fn(u64, &mut StdRng, &mut A) + Sync,
    {
        if trials == 0 {
            return A::default();
        }
        let key = point_key(label);
        let n_chunks = trials.div_ceil(CHUNK);

        let run_chunk = |chunk: usize| {
            let mut acc = A::default();
            let lo = chunk * CHUNK;
            let hi = ((chunk + 1) * CHUNK).min(trials);
            for t in lo..hi {
                let mut rng = StdRng::seed_from_u64(trial_seed(self.base_seed, key, t as u64));
                f(t as u64, &mut rng, &mut acc);
            }
            acc
        };

        let mut chunks: Vec<(usize, A)> = if self.threads <= 1 || n_chunks == 1 {
            (0..n_chunks).map(|c| (c, run_chunk(c))).collect()
        } else {
            let next = AtomicUsize::new(0);
            let workers = self.threads.min(n_chunks);
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        let run_chunk = &run_chunk;
                        scope.spawn(move |_| {
                            let mut mine: Vec<(usize, A)> = Vec::new();
                            loop {
                                let c = next.fetch_add(1, Ordering::Relaxed);
                                if c >= n_chunks {
                                    break;
                                }
                                mine.push((c, run_chunk(c)));
                            }
                            mine
                        })
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().expect("mc worker panicked")).collect()
            })
            .expect("crossbeam scope")
        };

        // Merge in chunk order so the fold sequence is thread-count
        // independent.
        chunks.sort_by_key(|&(c, _)| c);
        let mut out = A::default();
        for (_, acc) in chunks {
            out.merge(acc);
        }
        out
    }
}

/// One-shot convenience: run `trials` trials on all available cores with
/// the given base seed. Figure binaries use [`Engine`] (via
/// [`crate::RunOpts`]) so `--threads` is honoured; this entry point serves
/// ad-hoc callers and tests.
pub fn run_trials<A, F>(trials: usize, base_seed: u64, f: F) -> A
where
    A: Accum,
    F: Fn(u64, &mut StdRng, &mut A) + Sync,
{
    Engine::new(default_threads(), base_seed).run_quiet("run_trials", trials, f)
}

/// The default worker count: available hardware parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{MeanAcc, PropAcc};
    use rand::RngExt;

    fn mean_with_threads(threads: usize) -> (u64, f64, f64) {
        let engine = Engine::new(threads, 0xeca1);
        let acc: MeanAcc = engine.run_quiet("test-point", 1000, |_, rng, acc: &mut MeanAcc| {
            acc.push(rng.random::<f64>());
        });
        let (m, ci) = acc.ci95();
        (acc.n(), m, ci)
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let one = mean_with_threads(1);
        for threads in [2, 3, 8, 16] {
            let t = mean_with_threads(threads);
            assert_eq!(one.0, t.0);
            assert_eq!(one.1.to_bits(), t.1.to_bits(), "{threads} threads: mean differs");
            assert_eq!(one.2.to_bits(), t.2.to_bits(), "{threads} threads: ci differs");
        }
    }

    #[test]
    fn trial_indices_each_seen_once() {
        use std::sync::Mutex;

        #[derive(Default)]
        struct SeenAcc(Vec<u64>);
        impl Accum for SeenAcc {
            fn merge(&mut self, other: Self) {
                self.0.extend(other.0);
            }
        }

        let log = Mutex::new(Vec::new());
        let engine = Engine::new(4, 7);
        let local: SeenAcc = engine.run_quiet("indices", 130, |t, _, acc: &mut SeenAcc| {
            acc.0.push(t);
            log.lock().unwrap().push(t);
        });
        // Merged in chunk order => sorted; the shared log sees every index.
        assert_eq!(local.0, (0..130).collect::<Vec<u64>>());
        let mut global = log.into_inner().unwrap();
        global.sort_unstable();
        assert_eq!(global, (0..130).collect::<Vec<u64>>());
    }

    #[test]
    fn point_label_separates_streams() {
        let engine = Engine::new(1, 42);
        let a: MeanAcc =
            engine.run_quiet("point-a", 64, |_, rng, acc: &mut MeanAcc| acc.push(rng.random()));
        let b: MeanAcc =
            engine.run_quiet("point-b", 64, |_, rng, acc: &mut MeanAcc| acc.push(rng.random()));
        assert_ne!(a.mean().to_bits(), b.mean().to_bits());
    }

    #[test]
    fn base_seed_separates_streams() {
        let roll = |_: u64, rng: &mut StdRng, acc: &mut PropAcc| acc.push(rng.random_bool(0.5));
        let one: PropAcc = Engine::new(1, 1).run_quiet("p", 200, roll);
        let two: PropAcc = Engine::new(1, 2).run_quiet("p", 200, roll);
        assert_ne!(one.successes(), two.successes());
    }

    #[test]
    fn zero_trials_is_default() {
        let acc: MeanAcc = Engine::new(4, 0).run_quiet("empty", 0, |_, _, _| {});
        assert_eq!(acc.n(), 0);
    }

    #[test]
    fn run_trials_matches_engine() {
        let draw = |_: u64, rng: &mut StdRng, acc: &mut MeanAcc| acc.push(rng.random());
        let free: MeanAcc = run_trials(100, 5, draw);
        let eng: MeanAcc = Engine::new(1, 5).run_quiet("run_trials", 100, draw);
        assert_eq!(free.mean().to_bits(), eng.mean().to_bits());
    }
}
