//! Table printing and CSV output.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// An in-memory results table.
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given title and column names.
    pub fn new(title: &str, columns: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let header: Vec<String> =
            self.columns.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
        let _ = writeln!(out, "{}", header.join("  "));
        for row in &self.rows {
            let line: Vec<String> =
                row.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Writes tables to stdout and `results/<name>.csv`.
pub struct TableWriter {
    dir: PathBuf,
}

impl Default for TableWriter {
    fn default() -> Self {
        TableWriter::new()
    }
}

impl TableWriter {
    /// Target the workspace `results/` directory (created on demand).
    pub fn new() -> TableWriter {
        TableWriter { dir: PathBuf::from("results") }
    }

    /// Print the table and persist the CSV as `results/<name>.csv`.
    pub fn emit(&self, name: &str, table: &Table) {
        println!("{}", table.render());
        if fs::create_dir_all(&self.dir).is_ok() {
            let path = self.dir.join(format!("{name}.csv"));
            if let Err(e) = fs::write(&path, table.to_csv()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["n", "bytes"]);
        t.row(&["5".into(), "1234".into()]);
        t.row(&["5000".into(), "9".into()]);
        let s = t.render();
        assert!(s.contains("# demo"));
        assert!(s.contains("   n  bytes"));
        let csv = t.to_csv();
        assert!(csv.starts_with("n,bytes\n5,1234\n"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["1".into()]);
    }
}
