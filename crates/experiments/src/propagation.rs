//! Internet-scale propagation sweep: p50/p99 block-propagation latency
//! versus network size, from hundreds of peers up to 100 000.
//!
//! Each trial builds a Barabási–Albert scale-free overlay (attachment
//! degree [`BA_M`], matching measured Bitcoin-like topologies: a few
//! high-degree hubs, a long leaf tail), assigns every link a latency
//! drawn from the geographic [`LatencyClass`] pyramid — storage-free, so
//! a 100k-peer network carries no per-pair link table — and relays one
//! Graphene block from peer 0 under the adaptive gossip fan-out policy
//! ([`FanoutPolicy::Adaptive`]): [`FANOUT`] announcements per wave,
//! doubling on each retry and flooding the remainder before the retry
//! ladder gives up, so hubs with thousands of neighbors never burst
//! thousands of frames at once.
//!
//! The sweep reports delivery (asserted 100% at every size by the
//! binary), mean p50/p99 block-arrival times, the event-queue and
//! wheel-slot high-water marks of the timing-wheel scheduler, and the
//! per-peer accounted-memory high-water mark against the §6.2 ceiling —
//! the scale claim is only meaningful if memory stays bounded while the
//! network grows 1000×.
//!
//! Trials run through the deterministic [`Engine`], so every reported
//! number is bit-identical for any `--threads` value.
//!
//! # Shared setup
//!
//! Per-trial setup is dominated by handing every peer the base mempool.
//! `Mempool` is copy-on-write (`Arc`-backed), so the per-peer assignment
//! below is a reference-count bump — the map is shared by all `n` peers
//! until a peer first mutates its pool (confirming the relayed block),
//! which is O(peers) instead of O(peers · m) per trial. Topology and
//! scenario are *not* shared across trials on purpose: each trial draws
//! its scenario, geographic-link and Barabási–Albert seeds from its own
//! counter-derived RNG, which is exactly what makes the sweep's CSV
//! byte-identical at `--threads 1/2/8` (asserted below and by CI's
//! cross-thread `cmp`); hoisting those draws out of the trial closure
//! would reshuffle every seed and change the published numbers.

use crate::{Engine, MaxAcc, PropAcc, SumAcc};
use graphene::GrapheneConfig;
use graphene_blockchain::{Scenario, ScenarioParams};
use graphene_netsim::{
    barabasi_albert, FanoutPolicy, Network, PeerId, RelayProtocol, ResourceLimits, SimTime,
};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Barabási–Albert attachment degree (mean degree ≈ 8, like measured
/// reachable-node overlays).
pub const BA_M: usize = 4;
/// First-wave announcement fan-out per peer.
pub const FANOUT: usize = 4;
/// Transactions per relayed block. Small on purpose: the sweep measures
/// the *network* — scheduler, topology, fan-out — not codec throughput,
/// and 100k peers each decode the block once per trial.
pub const BLOCK_TXNS: usize = 30;
/// Simulated-time budget per trial (10 min, far past convergence).
const MAX_TIME: SimTime = SimTime(600_000_000);

/// Aggregated results for one network size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// Network size (number of peers).
    pub peers: usize,
    /// Trials aggregated into this point.
    pub trials: usize,
    /// Fraction of peers that ended holding the block, over all trials.
    pub delivery: f64,
    /// Mean per-trial median block-arrival time (ms).
    pub p50_ms: f64,
    /// Mean per-trial 99th-percentile block-arrival time (ms).
    pub p99_ms: f64,
    /// Peak events pending in the timing wheel, max over trials.
    pub event_queue_hwm: u64,
    /// Peak occupancy of a single wheel slot, max over trials.
    pub wheel_slot_hwm: u64,
    /// Peak accounted per-peer memory (bytes), max over peers and trials.
    pub resource_hwm_bytes: u64,
    /// The §6.2 accounted-memory ceiling those peers ran under.
    pub ceiling_bytes: u64,
}

/// Raw per-trial measurements.
struct Trial {
    with_block: usize,
    p50_ms: f64,
    p99_ms: f64,
    event_queue_hwm: u64,
    wheel_slot_hwm: u64,
    resource_hwm_bytes: u64,
}

/// One trial: a scale-free Graphene network of `n` peers on geographic
/// links relays one block from peer 0 under adaptive fan-out.
fn run_once(n: usize, seed: u64) -> Trial {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = ScenarioParams {
        block_size: BLOCK_TXNS,
        extra_mempool_multiple: 1.0,
        block_fraction_in_mempool: 1.0,
        ..Default::default()
    };
    let s = Scenario::generate(&params, &mut rng);
    let mut net = Network::new(n, RelayProtocol::Graphene(GrapheneConfig::default()), rng.random());
    for i in 0..n {
        // Copy-on-write: all n peers share one map until they mutate it.
        net.peer_mut(PeerId(i)).mempool = s.receiver_mempool.clone();
    }
    net.enable_geographic_links(rng.random());
    net.set_fanout(FanoutPolicy::Adaptive { initial: FANOUT });
    let edges = barabasi_albert(n, BA_M.min(n.saturating_sub(1)).max(1), rng.random());
    net.connect_edges(&edges);

    net.propagate(PeerId(0), s.block, MAX_TIME);

    Trial {
        with_block: net.metrics.peers_with_block(),
        p50_ms: net.metrics.arrival_percentile(50.0).map_or(f64::NAN, |t| t.0 as f64 / 1_000.0),
        p99_ms: net.metrics.arrival_percentile(99.0).map_or(f64::NAN, |t| t.0 as f64 / 1_000.0),
        event_queue_hwm: net.metrics.event_queue_hwm(),
        wheel_slot_hwm: net.metrics.wheel_slot_hwm(),
        resource_hwm_bytes: net.metrics.resource_hwm_bytes(),
    }
}

/// Trials per size: one 100k-peer simulation costs as much as hundreds
/// of 1k-peer ones, and the quantity under study (propagation depth on
/// a fixed topology family) has tiny between-trial variance at large
/// `n`, so the big points need few repetitions.
pub fn trials_for(base: usize, n: usize) -> usize {
    match n {
        0..=1_000 => base.max(1),
        1_001..=10_000 => (base / 5).max(3),
        10_001..=50_000 => 2,
        _ => 1,
    }
}

/// Run `trials` trials at network size `n` through `engine`.
pub fn sweep_point(engine: &Engine, trials: usize, n: usize) -> SweepPoint {
    type Acc = (PropAcc, SumAcc, SumAcc, MaxAcc, MaxAcc, MaxAcc);
    let label = format!("propagation n={n}");
    let (delivered, p50, p99, eq_hwm, slot_hwm, res_hwm) =
        engine.run(&label, trials, |_, rng: &mut StdRng, acc: &mut Acc| {
            let t = run_once(n, rng.random());
            acc.0.push(t.with_block == n);
            acc.1.push(t.p50_ms);
            acc.2.push(t.p99_ms);
            acc.3.push(t.event_queue_hwm as f64);
            acc.4.push(t.wheel_slot_hwm as f64);
            acc.5.push(t.resource_hwm_bytes as f64);
        });
    let nt = trials as f64;
    SweepPoint {
        peers: n,
        trials,
        delivery: delivered.rate(),
        p50_ms: p50.sum() / nt,
        p99_ms: p99.sum() / nt,
        event_queue_hwm: eq_hwm.max() as u64,
        wheel_slot_hwm: slot_hwm.max() as u64,
        resource_hwm_bytes: res_hwm.max() as u64,
        ceiling_bytes: ResourceLimits::default().accounted_ceiling(),
    }
}

/// Sweep the given network sizes, scaling trials down as `n` grows.
pub fn run_sweep(engine: &Engine, base_trials: usize, sizes: &[usize]) -> Vec<SweepPoint> {
    sizes.iter().map(|&n| sweep_point(engine, trials_for(base_trials, n), n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every peer of a 500-node scale-free network gets the block, the
    /// latency percentiles are sane, and the scheduler/memory gauges
    /// actually moved.
    #[test]
    fn five_hundred_peer_point_delivers_fully() {
        let engine = Engine::new(4, 0x9097);
        let p = sweep_point(&engine, 3, 500);
        assert!((p.delivery - 1.0).abs() < 1e-12, "delivery not total: {p:?}");
        assert!(p.p50_ms > 0.0 && p.p50_ms.is_finite(), "{p:?}");
        assert!(p.p99_ms >= p.p50_ms, "{p:?}");
        assert!(p.event_queue_hwm > 0, "{p:?}");
        assert!(p.wheel_slot_hwm > 0, "{p:?}");
        assert!(
            p.resource_hwm_bytes > 0 && p.resource_hwm_bytes <= p.ceiling_bytes,
            "accounted memory escaped the ceiling: {p:?}"
        );
    }

    /// Propagation latency grows sub-linearly with network size: scale-
    /// free diameters grow ~log n, so 10× the peers must cost far less
    /// than 10× the p99.
    #[test]
    fn latency_grows_sublinearly() {
        let engine = Engine::new(4, 0x9098);
        let small = sweep_point(&engine, 3, 100);
        let large = sweep_point(&engine, 2, 1_000);
        assert!((small.delivery - 1.0).abs() < 1e-12, "{small:?}");
        assert!((large.delivery - 1.0).abs() < 1e-12, "{large:?}");
        assert!(
            large.p99_ms < small.p99_ms * 5.0,
            "p99 blew up with size: {} ms @100 vs {} ms @1000",
            small.p99_ms,
            large.p99_ms
        );
    }

    /// The sweep is bit-identical for any thread count.
    #[test]
    fn sweep_is_thread_count_invariant() {
        let run = |threads| {
            let engine = Engine::new(threads, 0x51);
            [sweep_point(&engine, 3, 120), sweep_point(&engine, 2, 400)]
        };
        let (a, b, c) = (run(1), run(2), run(8));
        assert_eq!(a, b, "1 vs 2 threads diverged");
        assert_eq!(a, c, "1 vs 8 threads diverged");
    }
}
