//! Rateless-vs-retry sweep over the recovery ladder: what does a failed
//! Graphene attempt cost to rescue?
//!
//! Each trial generates one scenario under a deliberately under-assured
//! Graphene configuration (low β, coarse IBLT rate, no ping-pong — the
//! same "flaky" knobs the core recovery tests use) and relays it twice
//! through [`relay_with_recovery`]:
//!
//! * **retry arm** — the default ladder: inflated Graphene re-requests
//!   (fresh salts, 1.5×-sized IBLTs), then short IDs, then the full block;
//! * **rateless arm** — [`RecoveryPolicy::rateless_first`]: one Graphene
//!   attempt, then a growing stream of rateless coded cells (arXiv
//!   2402.02668) against the candidates the failed attempt already built.
//!
//! Both arms must deliver every block (asserted). The sweep reports, over
//! the *degraded* trials only (where at least one arm left the first
//! rung), the mean recovery bytes (transaction bodies excluded — both
//! arms ship the same bodies) and round trips per arm. The interesting
//! regime is a bad difference estimate: a large block almost entirely
//! held by the receiver, so the true symmetric difference is tiny but the
//! failed sketches were sized for `n`. There a retry re-ships
//! block-proportional sketches while the rateless rung streams
//! difference-proportional cells — it must win on bytes AND rounds.
//!
//! Trials run through the deterministic [`Engine`], so every reported
//! number is bit-identical for any `--threads` value.

use crate::{Engine, PropAcc, SumAcc};
use graphene::recovery::{relay_with_recovery, RecoveryPolicy};
use graphene::GrapheneConfig;
use graphene_blockchain::{Scenario, ScenarioParams};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// (block size, fraction of the block already in the receiver's mempool)
/// points the default sweep visits. The last point is the
/// bad-difference-estimate regime the ISSUE's acceptance criterion names.
pub const POINTS: &[(usize, f64)] = &[(100, 0.50), (200, 0.50), (400, 0.80), (800, 0.95)];

/// The under-assured configuration that makes first attempts fail on a
/// few percent of seeds: β barely above ½, an IBLT sized at a third of
/// the estimated difference, no ping-pong decode.
pub fn flaky_config() -> GrapheneConfig {
    GrapheneConfig { beta: 0.51, iblt_rate_denom: 3, pingpong: false, ..GrapheneConfig::default() }
}

/// Aggregated results for one (n, held) sweep point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// Block size (transactions).
    pub n: usize,
    /// Fraction of the block in the receiver's mempool.
    pub held: f64,
    /// Fraction of relays (both arms) that reconstructed the block.
    /// Must be 1.0 — the ladder never gives up.
    pub delivery: f64,
    /// Fraction of trials where at least one arm degraded past rung 1.
    pub degraded: f64,
    /// Mean recovery bytes per degraded trial, retry arm (bodies excluded).
    pub retry_bytes: f64,
    /// Mean round trips per degraded trial, retry arm.
    pub retry_rounds: f64,
    /// Mean recovery bytes per degraded trial, rateless arm.
    pub rateless_bytes: f64,
    /// Mean round trips per degraded trial, rateless arm.
    pub rateless_rounds: f64,
}

/// Raw per-trial measurements.
struct Trial {
    delivered_retry: bool,
    delivered_rateless: bool,
    degraded: bool,
    retry_bytes: f64,
    retry_rounds: f64,
    rateless_bytes: f64,
    rateless_rounds: f64,
}

/// One trial: generate the scenario, run both arms, compare.
fn run_once(n: usize, held: f64, seed: u64) -> Trial {
    let params = ScenarioParams {
        block_size: n,
        extra_mempool_multiple: 1.0,
        block_fraction_in_mempool: held,
        ..Default::default()
    };
    let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(seed));
    let cfg = flaky_config();
    let retry =
        relay_with_recovery(&s.block, None, &s.receiver_mempool, &cfg, &RecoveryPolicy::default());
    let rateless = relay_with_recovery(
        &s.block,
        None,
        &s.receiver_mempool,
        &cfg,
        &RecoveryPolicy::rateless_first(),
    );
    let degraded = !(retry.clean() && rateless.clean());
    Trial {
        delivered_retry: retry.ordered_ids == s.block.ids(),
        delivered_rateless: rateless.ordered_ids == s.block.ids(),
        degraded,
        // Bodies excluded: both arms fetch the same missing transactions,
        // so including them would only dilute the protocol-cost contrast.
        retry_bytes: if degraded { retry.bytes.total_excluding_txns() as f64 } else { 0.0 },
        retry_rounds: if degraded { retry.rounds as f64 } else { 0.0 },
        rateless_bytes: if degraded { rateless.bytes.total_excluding_txns() as f64 } else { 0.0 },
        rateless_rounds: if degraded { rateless.rounds as f64 } else { 0.0 },
    }
}

/// Run `trials` trials at one sweep point through `engine`.
pub fn sweep_point(engine: &Engine, trials: usize, n: usize, held: f64) -> SweepPoint {
    type Acc = (PropAcc, SumAcc, SumAcc, SumAcc, SumAcc, SumAcc);
    let label = format!("rateless n={n} held={:.0}%", held * 100.0);
    let (delivered, degraded, retry_b, retry_r, rateless_b, rateless_r) =
        engine.run(&label, trials, |_, rng: &mut StdRng, acc: &mut Acc| {
            let t = run_once(n, held, rng.random());
            acc.0.push(t.delivered_retry);
            acc.0.push(t.delivered_rateless);
            acc.1.push(if t.degraded { 1.0 } else { 0.0 });
            acc.2.push(t.retry_bytes);
            acc.3.push(t.retry_rounds);
            acc.4.push(t.rateless_bytes);
            acc.5.push(t.rateless_rounds);
        });
    let d = degraded.sum().max(1.0);
    SweepPoint {
        n,
        held,
        delivery: delivered.rate(),
        degraded: degraded.sum() / trials as f64,
        retry_bytes: retry_b.sum() / d,
        retry_rounds: retry_r.sum() / d,
        rateless_bytes: rateless_b.sum() / d,
        rateless_rounds: rateless_r.sum() / d,
    }
}

/// Sweep all `points`.
pub fn run_sweep(engine: &Engine, trials: usize, points: &[(usize, f64)]) -> Vec<SweepPoint> {
    points.iter().map(|&(n, held)| sweep_point(engine, trials, n, held)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISSUE acceptance criterion: in the bad-difference-estimate
    /// regime the rateless rung strictly beats the inflated retries on
    /// BOTH bytes and rounds, with every block delivered in both arms.
    #[test]
    fn bad_estimate_regime_rateless_strictly_wins() {
        let p = sweep_point(&Engine::new(4, 0xeca1), 60, 800, 0.95);
        assert!((p.delivery - 1.0).abs() < 1e-12, "a ladder failed to deliver: {p:?}");
        assert!(p.degraded > 0.0, "flaky config never degraded; sweep is vacuous");
        assert!(p.rateless_bytes < p.retry_bytes, "rateless must beat retry on bytes: {p:?}");
        assert!(p.rateless_rounds < p.retry_rounds, "rateless must beat retry on rounds: {p:?}");
    }

    /// The sweep is bit-identical for any thread count (the mc engine's
    /// chunked merge order plus counter-based trial seeds).
    #[test]
    fn sweep_is_thread_count_invariant() {
        let trials = 20;
        let points = [(100, 0.50), (200, 0.80)];
        let a = run_sweep(&Engine::new(1, 7), trials, &points);
        let b = run_sweep(&Engine::new(2, 7), trials, &points);
        let c = run_sweep(&Engine::new(8, 7), trials, &points);
        assert_eq!(a, b, "1 vs 2 threads diverged");
        assert_eq!(a, c, "1 vs 8 threads diverged");
        for p in &a {
            assert!((p.delivery - 1.0).abs() < 1e-12, "delivery not total: {p:?}");
        }
    }
}
