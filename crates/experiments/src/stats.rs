//! Small statistics helpers for the harness.

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Mean with a 95% normal-approximation confidence half-width.
pub fn mean_ci95(xs: &[f64]) -> (f64, f64) {
    let m = mean(xs);
    if xs.len() < 2 {
        return (m, 0.0);
    }
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    (m, 1.96 * (var / xs.len() as f64).sqrt())
}

/// Proportion of `successes` in `trials` with a Wilson 95% interval.
pub fn proportion_ci95(successes: usize, trials: usize) -> (f64, f64, f64) {
    if trials == 0 {
        return (0.0, 0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = 1.96f64;
    let denom = 1.0 + z * z / n;
    let center = (p + z * z / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z * z / (4.0 * n * n)).sqrt();
    (p, (center - half).max(0.0), (center + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let few: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let many: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let (_, ci_few) = mean_ci95(&few);
        let (_, ci_many) = mean_ci95(&many);
        assert!(ci_many < ci_few);
    }

    #[test]
    fn wilson_interval_contains_p() {
        let (p, lo, hi) = proportion_ci95(50, 100);
        assert!((p - 0.5).abs() < 1e-9);
        assert!(lo < 0.5 && 0.5 < hi);
        let (_, lo0, hi0) = proportion_ci95(0, 100);
        assert_eq!(lo0, 0.0);
        assert!(hi0 > 0.0 && hi0 < 0.1);
    }
}
