//! Small statistics helpers for the harness, including the mergeable
//! accumulators consumed by the parallel trial engine ([`crate::mc`]).

/// A statistic that can be accumulated per trial in independent shards and
/// merged afterwards. The engine merges shard accumulators in a fixed
/// (chunk-index) order, so any `merge` implementation — even one summing
/// floats — produces bit-identical results for every thread count.
pub trait Accum: Default + Send {
    /// Fold another shard's accumulator into this one. `other` holds trials
    /// strictly later in the trial order than `self`.
    fn merge(&mut self, other: Self);
}

/// Accumulates a sample mean and its 95% confidence half-width.
#[derive(Clone, Copy, Debug, Default)]
pub struct MeanAcc {
    n: u64,
    sum: f64,
    sum_sq: f64,
}

impl MeanAcc {
    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.sum_sq += x * x;
    }

    /// Number of observations.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for no observations).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.sum / self.n as f64
    }

    /// Mean with a 95% normal-approximation confidence half-width
    /// (same statistic as [`mean_ci95`]).
    pub fn ci95(&self) -> (f64, f64) {
        let m = self.mean();
        if self.n < 2 {
            return (m, 0.0);
        }
        let n = self.n as f64;
        // Sample variance from the running sums; clamp the cancellation
        // residue so a constant series reports exactly zero width.
        let var = ((self.sum_sq - self.sum * self.sum / n) / (n - 1.0)).max(0.0);
        (m, 1.96 * (var / n).sqrt())
    }
}

impl Accum for MeanAcc {
    fn merge(&mut self, other: Self) {
        self.n += other.n;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
    }
}

/// Accumulates a success proportion with a Wilson 95% interval.
#[derive(Clone, Copy, Debug, Default)]
pub struct PropAcc {
    successes: u64,
    trials: u64,
}

impl PropAcc {
    /// Record one Bernoulli outcome.
    pub fn push(&mut self, success: bool) {
        self.trials += 1;
        self.successes += success as u64;
    }

    /// Successes so far.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Trials so far.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Failures so far.
    pub fn failures(&self) -> u64 {
        self.trials - self.successes
    }

    /// Success fraction (0 for no trials).
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.successes as f64 / self.trials as f64
    }

    /// `(p, lo, hi)` Wilson 95% interval (same statistic as
    /// [`proportion_ci95`]).
    pub fn ci95(&self) -> (f64, f64, f64) {
        proportion_ci95(self.successes as usize, self.trials as usize)
    }
}

impl Accum for PropAcc {
    fn merge(&mut self, other: Self) {
        self.successes += other.successes;
        self.trials += other.trials;
    }
}

/// Accumulates a plain sum.
#[derive(Clone, Copy, Debug, Default)]
pub struct SumAcc {
    sum: f64,
}

impl SumAcc {
    /// Add to the sum.
    pub fn push(&mut self, x: f64) {
        self.sum += x;
    }

    /// The sum so far.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

impl Accum for SumAcc {
    fn merge(&mut self, other: Self) {
        self.sum += other.sum;
    }
}

/// Accumulates a running maximum. `max` over floats is associative and
/// commutative, so this statistic is thread-count invariant regardless of
/// merge order — the natural fit for high-water-mark metrics.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxAcc {
    max: f64,
    n: u64,
}

impl MaxAcc {
    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        if self.n == 0 || x > self.max {
            self.max = x;
        }
        self.n += 1;
    }

    /// Largest observation so far (0 for no observations).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.max
    }

    /// Number of observations.
    pub fn n(&self) -> u64 {
        self.n
    }
}

impl Accum for MaxAcc {
    fn merge(&mut self, other: Self) {
        if other.n > 0 && (self.n == 0 || other.max > self.max) {
            self.max = other.max;
        }
        self.n += other.n;
    }
}

macro_rules! impl_accum_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Accum),+> Accum for ($($name,)+) {
            fn merge(&mut self, other: Self) {
                $(self.$idx.merge(other.$idx);)+
            }
        }
    };
}

impl_accum_tuple!(A: 0);
impl_accum_tuple!(A: 0, B: 1);
impl_accum_tuple!(A: 0, B: 1, C: 2);
impl_accum_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_accum_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_accum_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_accum_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_accum_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

impl<A: Accum, const N: usize> Accum for [A; N]
where
    [A; N]: Default,
{
    fn merge(&mut self, other: Self) {
        for (slot, o) in self.iter_mut().zip(other) {
            slot.merge(o);
        }
    }
}

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Mean with a 95% normal-approximation confidence half-width.
pub fn mean_ci95(xs: &[f64]) -> (f64, f64) {
    let m = mean(xs);
    if xs.len() < 2 {
        return (m, 0.0);
    }
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    (m, 1.96 * (var / xs.len() as f64).sqrt())
}

/// Proportion of `successes` in `trials` with a Wilson 95% interval.
pub fn proportion_ci95(successes: usize, trials: usize) -> (f64, f64, f64) {
    if trials == 0 {
        return (0.0, 0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = 1.96f64;
    let denom = 1.0 + z * z / n;
    let center = (p + z * z / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z * z / (4.0 * n * n)).sqrt();
    (p, (center - half).max(0.0), (center + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let few: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let many: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let (_, ci_few) = mean_ci95(&few);
        let (_, ci_many) = mean_ci95(&many);
        assert!(ci_many < ci_few);
    }

    #[test]
    fn mean_acc_matches_slice_helpers() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut acc = MeanAcc::default();
        for &x in &xs {
            acc.push(x);
        }
        let (m_ref, ci_ref) = mean_ci95(&xs);
        let (m, ci) = acc.ci95();
        assert!((m - m_ref).abs() < 1e-9, "{m} vs {m_ref}");
        assert!((ci - ci_ref).abs() < 1e-9, "{ci} vs {ci_ref}");
    }

    #[test]
    fn identical_chunking_merges_bit_identically() {
        // Float addition is not associative, so a chunked fold need not
        // equal a serial fold — the engine instead guarantees a *fixed*
        // chunk layout. Two folds over the same chunk boundaries must agree
        // bit for bit (and stay statistically close to the serial fold).
        let xs: Vec<f64> = (0..1000).map(|i| 1.0 / (i + 1) as f64).collect();
        let fold = || {
            let mut total = MeanAcc::default();
            for chunk in xs.chunks(64) {
                let mut acc = MeanAcc::default();
                for &x in chunk {
                    acc.push(x);
                }
                total.merge(acc);
            }
            total
        };
        let (a, b) = (fold(), fold());
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        assert_eq!(a.ci95(), b.ci95());

        let mut serial = MeanAcc::default();
        for &x in &xs {
            serial.push(x);
        }
        assert_eq!(serial.n(), a.n());
        assert!((serial.mean() - a.mean()).abs() < 1e-12);
    }

    #[test]
    fn prop_acc_matches_wilson() {
        let mut acc = PropAcc::default();
        for i in 0..100 {
            acc.push(i % 2 == 0);
        }
        assert_eq!(acc.ci95(), proportion_ci95(50, 100));
        assert_eq!(acc.failures(), 50);
    }

    #[test]
    fn tuple_and_array_accums_merge_elementwise() {
        let mut a = (MeanAcc::default(), PropAcc::default());
        let mut b = (MeanAcc::default(), PropAcc::default());
        a.0.push(1.0);
        a.1.push(true);
        b.0.push(3.0);
        b.1.push(false);
        a.merge(b);
        assert_eq!(a.0.mean(), 2.0);
        assert_eq!(a.1.trials(), 2);

        let mut arr = [SumAcc::default(), SumAcc::default()];
        let mut arr2 = [SumAcc::default(), SumAcc::default()];
        arr[0].push(1.0);
        arr2[1].push(2.0);
        arr.merge(arr2);
        assert_eq!((arr[0].sum(), arr[1].sum()), (1.0, 2.0));
    }

    #[test]
    fn max_acc_is_merge_order_independent() {
        assert_eq!(MaxAcc::default().max(), 0.0);
        let xs = [-3.0, 7.5, 2.0, 7.5, -10.0, 1.0];
        let mut serial = MaxAcc::default();
        for &x in &xs {
            serial.push(x);
        }
        // Any chunking, any merge order: same max.
        for split in 1..xs.len() {
            let (lo, hi) = xs.split_at(split);
            let fold = |chunk: &[f64]| {
                let mut a = MaxAcc::default();
                chunk.iter().for_each(|&x| a.push(x));
                a
            };
            let mut ab = fold(lo);
            ab.merge(fold(hi));
            let mut ba = fold(hi);
            ba.merge(fold(lo));
            assert_eq!(ab.max().to_bits(), serial.max().to_bits());
            assert_eq!(ba.max().to_bits(), serial.max().to_bits());
            assert_eq!(ab.n(), xs.len() as u64);
        }
        // Negative-only series must not report the empty-default 0.
        let mut neg = MaxAcc::default();
        neg.push(-5.0);
        neg.merge(MaxAcc::default());
        assert_eq!(neg.max(), -5.0);
    }

    #[test]
    fn wilson_interval_contains_p() {
        let (p, lo, hi) = proportion_ci95(50, 100);
        assert!((p - 0.5).abs() < 1e-9);
        assert!(lo < 0.5 && 0.5 < hi);
        let (_, lo0, hi0) = proportion_ci95(0, 100);
        assert_eq!(lo0, 0.0);
        assert!(hi0 > 0.0 && hi0 < 0.1);
    }
}
