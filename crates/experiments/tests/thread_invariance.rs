//! End-to-end thread-count invariance: a figure binary run with a fixed
//! `--seed` must emit byte-identical stdout *and* `results/*.csv` no matter
//! what `--threads` is. Timing lines go to stderr precisely so this holds.

use std::fs;
use std::process::Command;

/// Run the `multipeer` binary in a scratch directory and return its stdout
/// and the CSV it wrote. 130 trials spans three engine chunks, so the
/// multi-threaded runs genuinely shard work.
fn run_multipeer(threads: usize) -> (Vec<u8>, Vec<u8>) {
    let dir = std::env::temp_dir()
        .join(format!("graphene-thread-invariance-{}-t{threads}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_multipeer"))
        .args(["--trials", "130", "--seed", "1234", "--threads", &threads.to_string()])
        .current_dir(&dir)
        .output()
        .expect("spawn multipeer");
    assert!(
        out.status.success(),
        "multipeer --threads {threads} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let csv = fs::read(dir.join("results").join("multipeer.csv")).expect("CSV written");
    fs::remove_dir_all(&dir).ok();
    (out.stdout, csv)
}

#[test]
fn multipeer_output_is_byte_identical_across_thread_counts() {
    let (stdout_1, csv_1) = run_multipeer(1);
    assert!(!csv_1.is_empty());
    for threads in [2usize, 8] {
        let (stdout_n, csv_n) = run_multipeer(threads);
        assert_eq!(stdout_1, stdout_n, "stdout differs at --threads {threads}");
        assert_eq!(csv_1, csv_n, "CSV differs at --threads {threads}");
    }
}
