//! Minimal hex encoding/decoding (no external dependency).

/// Encode `bytes` as lowercase hex.
pub fn encode(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decode a hex string (case-insensitive). Returns `None` on odd length or
/// any non-hex character.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    fn nibble(c: u8) -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = [0x00, 0x01, 0xab, 0xff];
        assert_eq!(encode(&data), "0001abff");
        assert_eq!(decode("0001abff"), Some(data.to_vec()));
        assert_eq!(decode("0001ABFF"), Some(data.to_vec()));
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(decode("abc"), None); // odd length
        assert_eq!(decode("zz"), None); // non-hex
    }

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode(""), Some(vec![]));
    }
}
