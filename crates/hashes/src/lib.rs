//! Cryptographic hash substrate for the Graphene suite.
//!
//! Everything in this crate is implemented from scratch so that the
//! reproduction is fully self-contained:
//!
//! * [`mod@sha256`] — FIPS 180-4 SHA-256 with a streaming API, plus the
//!   double-SHA256 (`sha256d`) used for Bitcoin-style transaction and block
//!   identifiers.
//! * [`siphash`] — SipHash-2-4, the keyed short-input PRF used by Compact
//!   Blocks (BIP152) and XThin to derive per-connection short transaction IDs
//!   that an attacker cannot grind collisions for (paper §6.1).
//! * [`merkle`] — Bitcoin-style Merkle trees; Graphene receivers validate a
//!   decoded block against the Merkle root in the header (paper §3.1 step 4).
//! * [`hex`] — minimal hex encoding/decoding for display and test vectors.
//!
//! The types here deliberately avoid any allocation in hot paths: hashing is
//! `update`/`finalize` over borrowed slices, and short-ID derivation is pure
//! arithmetic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hex;
pub mod merkle;
pub mod sha256;
pub mod siphash;

pub use merkle::{merkle_root, MerkleProof, MerkleTree};
pub use sha256::{sha256, sha256d, Digest, Sha256};
pub use siphash::{siphash24, siphash24_x4, siphash24_x4_u64, SipHasher24, SipKey, SIP_LANES};

/// Derive the 8-byte "short ID" used inside IBLT cells and XThin ID lists.
///
/// The paper (§3.1) notes that the IBLT stores only 8 bytes of each
/// transaction ID while full 32-byte IDs are used for the Bloom filter. The
/// short ID is simply the first 8 bytes of the (already uniform) txid,
/// interpreted little-endian as Bitcoin convention dictates.
#[inline]
pub fn short_id_8(txid: &Digest) -> u64 {
    u64::from_le_bytes(txid.0[..8].try_into().expect("digest has 32 bytes"))
}

/// Derive the 6-byte SipHash short ID used by Compact Blocks (BIP152).
///
/// BIP152 computes `SipHash-2-4(k0, k1, txid)` and keeps the low 6 bytes. The
/// key is derived per-block from the block header and a nonce, which prevents
/// an attacker from pre-computing colliding transactions (paper §6.1).
#[inline]
pub fn short_id_6(key: SipKey, txid: &Digest) -> u64 {
    siphash24(key, &txid.0) & 0x0000_ffff_ffff_ffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_id_8_is_le_prefix() {
        let mut d = Digest([0u8; 32]);
        d.0[..8].copy_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(short_id_8(&d), u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
    }

    #[test]
    fn short_id_6_masks_to_48_bits() {
        let d = sha256(b"graphene");
        let id = short_id_6(SipKey::new(1, 2), &d);
        assert!(id <= 0x0000_ffff_ffff_ffff);
        // Different keys must give different IDs (overwhelmingly).
        assert_ne!(id, short_id_6(SipKey::new(3, 4), &d));
    }
}
