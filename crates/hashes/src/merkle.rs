//! Bitcoin-style Merkle trees over transaction IDs.
//!
//! A Graphene receiver reconstructs the candidate transaction set, orders it
//! (CTOR or explicit ordering), computes the Merkle root, and compares it to
//! the root committed in the block header (paper §3.1 step 4 and §6.2). The
//! root is the final arbiter: probabilistic reconciliation may produce a
//! superset or miss transactions, and only an exact set/order match verifies.
//!
//! The construction follows Bitcoin: leaves are (double-SHA256) txids, each
//! internal node is `sha256d(left || right)`, and a level with an odd number
//! of nodes duplicates its last node.

use crate::sha256::{sha256d, Digest};

/// Compute the Merkle root of a list of txids.
///
/// Returns [`Digest::ZERO`] for an empty list (a real block always has at
/// least the coinbase transaction, so this case is a sentinel only).
pub fn merkle_root(txids: &[Digest]) -> Digest {
    if txids.is_empty() {
        return Digest::ZERO;
    }
    let mut level: Vec<Digest> = txids.to_vec();
    while level.len() > 1 {
        level = next_level(&level);
    }
    level[0]
}

fn next_level(level: &[Digest]) -> Vec<Digest> {
    let mut out = Vec::with_capacity(level.len().div_ceil(2));
    for pair in level.chunks(2) {
        let left = pair[0];
        // Odd level: Bitcoin duplicates the last hash.
        let right = *pair.get(1).unwrap_or(&pair[0]);
        out.push(hash_pair(&left, &right));
    }
    out
}

fn hash_pair(left: &Digest, right: &Digest) -> Digest {
    let mut buf = [0u8; 64];
    buf[..32].copy_from_slice(left.as_ref());
    buf[32..].copy_from_slice(right.as_ref());
    sha256d(&buf)
}

/// A full Merkle tree retaining every level, supporting inclusion proofs.
///
/// The experiment harness uses proofs to sanity-check partial decodings; a
/// production relay only needs [`merkle_root`].
pub struct MerkleTree {
    /// `levels[0]` is the leaf level; the last level has exactly one node.
    levels: Vec<Vec<Digest>>,
}

/// An inclusion proof: sibling hashes from leaf to root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub index: usize,
    /// Sibling hash at each level, leaf-side first.
    pub siblings: Vec<Digest>,
}

impl MerkleTree {
    /// Build the tree from leaf txids. Empty input yields a zero-root tree.
    pub fn new(txids: &[Digest]) -> Self {
        if txids.is_empty() {
            return MerkleTree { levels: vec![vec![Digest::ZERO]] };
        }
        let mut levels = vec![txids.to_vec()];
        while levels.last().expect("non-empty").len() > 1 {
            let next = next_level(levels.last().expect("non-empty"));
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root hash.
    pub fn root(&self) -> Digest {
        self.levels.last().expect("at least one level")[0]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// True if the tree was built from an empty list.
    pub fn is_empty(&self) -> bool {
        self.levels.len() == 1 && self.levels[0][0] == Digest::ZERO
    }

    /// Produce an inclusion proof for leaf `index`, or `None` if out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.len() {
            return None;
        }
        let mut siblings = Vec::with_capacity(self.levels.len() - 1);
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = idx ^ 1;
            // Odd level: the last node is its own sibling.
            let sibling = *level.get(sibling_idx).unwrap_or(&level[idx]);
            siblings.push(sibling);
            idx /= 2;
        }
        Some(MerkleProof { index, siblings })
    }
}

impl MerkleProof {
    /// Verify that `leaf` is included under `root`.
    pub fn verify(&self, leaf: &Digest, root: &Digest) -> bool {
        let mut hash = *leaf;
        let mut idx = self.index;
        for sibling in &self.siblings {
            hash = if idx.is_multiple_of(2) {
                hash_pair(&hash, sibling)
            } else {
                hash_pair(sibling, &hash)
            };
            idx /= 2;
        }
        hash == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    fn leaves(n: usize) -> Vec<Digest> {
        (0..n).map(|i| sha256(&(i as u64).to_le_bytes())).collect()
    }

    #[test]
    fn single_leaf_root_is_leaf() {
        let l = leaves(1);
        assert_eq!(merkle_root(&l), l[0]);
    }

    #[test]
    fn empty_root_is_zero() {
        assert_eq!(merkle_root(&[]), Digest::ZERO);
        assert!(MerkleTree::new(&[]).is_empty());
    }

    #[test]
    fn two_leaves_hash_pair() {
        let l = leaves(2);
        assert_eq!(merkle_root(&l), hash_pair(&l[0], &l[1]));
    }

    #[test]
    fn odd_level_duplicates_last() {
        let l = leaves(3);
        let left = hash_pair(&l[0], &l[1]);
        let right = hash_pair(&l[2], &l[2]);
        assert_eq!(merkle_root(&l), hash_pair(&left, &right));
    }

    #[test]
    fn tree_matches_root_function() {
        for n in 1..35 {
            let l = leaves(n);
            assert_eq!(MerkleTree::new(&l).root(), merkle_root(&l), "n = {n}");
        }
    }

    #[test]
    fn proofs_verify_for_all_leaves() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 13, 16, 33] {
            let l = leaves(n);
            let tree = MerkleTree::new(&l);
            let root = tree.root();
            for (i, leaf) in l.iter().enumerate() {
                let proof = tree.prove(i).expect("in range");
                assert!(proof.verify(leaf, &root), "n = {n}, leaf {i}");
            }
        }
    }

    #[test]
    fn proof_fails_for_wrong_leaf_or_root() {
        let l = leaves(8);
        let tree = MerkleTree::new(&l);
        let proof = tree.prove(3).expect("in range");
        assert!(!proof.verify(&l[4], &tree.root()));
        assert!(!proof.verify(&l[3], &sha256(b"not the root")));
    }

    #[test]
    fn prove_out_of_range_is_none() {
        let tree = MerkleTree::new(&leaves(4));
        assert!(tree.prove(4).is_none());
    }

    #[test]
    fn order_sensitivity() {
        // The root commits to order: swapping two txids changes it.
        let mut l = leaves(6);
        let before = merkle_root(&l);
        l.swap(0, 5);
        assert_ne!(merkle_root(&l), before);
    }
}
