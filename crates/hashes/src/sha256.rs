//! SHA-256 (FIPS 180-4), implemented from the specification.
//!
//! The implementation is a straightforward, allocation-free compression
//! function with a streaming wrapper. It is validated against the NIST test
//! vectors in the unit tests below, including the one-million-`a` vector.

use core::fmt;

/// A 32-byte hash output.
///
/// `Digest` is used throughout the suite as the canonical transaction /
/// block identifier type (the result of [`sha256d`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, useful as a sentinel in tests.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Interpret the first 8 bytes as a little-endian u64 (short ID).
    #[inline]
    pub fn low_u64(&self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().expect("32 >= 8"))
    }

    /// Render as lowercase hex (natural byte order).
    pub fn to_hex(&self) -> String {
        crate::hex::encode(&self.0)
    }

    /// Parse from 64 hex characters (natural byte order).
    pub fn from_hex(s: &str) -> Option<Digest> {
        let bytes = crate::hex::decode(s)?;
        let arr: [u8; 32] = bytes.try_into().ok()?;
        Some(Digest(arr))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// SHA-256 round constants: first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Streaming SHA-256 hasher.
///
/// ```
/// use graphene_hashes::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Sha256 { state: H0, len: 0, buf: [0u8; 64], buf_len: 0 }
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        // Fill a partially full buffer first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        // Whole blocks straight from the input.
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().expect("64-byte block"));
            data = rest;
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Complete the hash and return the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0x00]);
            // `update` wraps around after a compress; loop until the buffer
            // sits exactly at the length-field offset.
        }
        // Write the length directly; `update` would double-count it.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Double SHA-256 (`SHA256(SHA256(data))`), the Bitcoin txid/block-id hash.
pub fn sha256d(data: &[u8]) -> Digest {
    sha256(sha256(data).as_ref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nist_empty() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_two_block() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0u8..=255).cycle().take(300).collect();
        let expect = sha256(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn length_padding_boundaries() {
        // Exercise message lengths around the 55/56/64-byte padding edges.
        for len in 50..70 {
            let data = vec![0xabu8; len];
            let d1 = sha256(&data);
            let mut h = Sha256::new();
            for b in &data {
                h.update(core::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn sha256d_is_composition() {
        let d = sha256d(b"hello");
        assert_eq!(d, sha256(sha256(b"hello").as_ref()));
        // Known value: double-SHA256 of "hello".
        assert_eq!(d.to_hex(), "9595c9df90075148eb06860365df33584b75bff782a510c6cd4883a419833d50");
    }

    #[test]
    fn digest_hex_roundtrip() {
        let d = sha256(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex("ab"), None); // wrong length
    }
}
