//! SipHash-2-4 (Aumasson–Bernstein), implemented from the specification.
//!
//! SipHash is the keyed short-input PRF that Compact Blocks (BIP152) uses to
//! derive 6-byte short transaction IDs. Keying the short-ID hash per
//! connection/block confines any manufactured ID collision to a single peer
//! (paper §6.1, "Manufactured transaction collisions").

use core::fmt;

/// A 128-bit SipHash key, as two little-endian 64-bit halves.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SipKey {
    /// First key word (`k0`).
    pub k0: u64,
    /// Second key word (`k1`).
    pub k1: u64,
}

impl SipKey {
    /// Build a key from two words.
    #[inline]
    pub const fn new(k0: u64, k1: u64) -> Self {
        SipKey { k0, k1 }
    }

    /// Build a key from 16 little-endian bytes (the reference layout).
    #[inline]
    pub fn from_bytes(bytes: &[u8; 16]) -> Self {
        SipKey {
            k0: u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")),
            k1: u64::from_le_bytes(bytes[8..].try_into().expect("8 bytes")),
        }
    }
}

impl fmt::Debug for SipKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SipKey({:#018x}, {:#018x})", self.k0, self.k1)
    }
}

/// Streaming SipHash-2-4 state.
///
/// The suite mostly uses the one-shot [`siphash24`], but the streaming form
/// lets callers hash composite messages without concatenating buffers.
#[derive(Clone)]
pub struct SipHasher24 {
    v0: u64,
    v1: u64,
    v2: u64,
    v3: u64,
    /// Pending tail bytes (< 8) in the low-order positions.
    tail: u64,
    ntail: usize,
    /// Total bytes absorbed.
    len: u64,
}

#[inline(always)]
fn sipround(v0: &mut u64, v1: &mut u64, v2: &mut u64, v3: &mut u64) {
    *v0 = v0.wrapping_add(*v1);
    *v1 = v1.rotate_left(13);
    *v1 ^= *v0;
    *v0 = v0.rotate_left(32);
    *v2 = v2.wrapping_add(*v3);
    *v3 = v3.rotate_left(16);
    *v3 ^= *v2;
    *v0 = v0.wrapping_add(*v3);
    *v3 = v3.rotate_left(21);
    *v3 ^= *v0;
    *v2 = v2.wrapping_add(*v1);
    *v1 = v1.rotate_left(17);
    *v1 ^= *v2;
    *v2 = v2.rotate_left(32);
}

impl SipHasher24 {
    /// Initialize the state with `key`.
    pub fn new(key: SipKey) -> Self {
        SipHasher24 {
            v0: key.k0 ^ 0x736f6d6570736575,
            v1: key.k1 ^ 0x646f72616e646f6d,
            v2: key.k0 ^ 0x6c7967656e657261,
            v3: key.k1 ^ 0x7465646279746573,
            tail: 0,
            ntail: 0,
            len: 0,
        }
    }

    #[inline]
    fn process_word(&mut self, m: u64) {
        self.v3 ^= m;
        sipround(&mut self.v0, &mut self.v1, &mut self.v2, &mut self.v3);
        sipround(&mut self.v0, &mut self.v1, &mut self.v2, &mut self.v3);
        self.v0 ^= m;
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.ntail > 0 {
            let need = 8 - self.ntail;
            let take = need.min(data.len());
            for (i, &b) in data[..take].iter().enumerate() {
                self.tail |= (b as u64) << (8 * (self.ntail + i));
            }
            self.ntail += take;
            data = &data[take..];
            if self.ntail == 8 {
                let m = self.tail;
                self.process_word(m);
                self.tail = 0;
                self.ntail = 0;
            }
        }
        while data.len() >= 8 {
            let (word, rest) = data.split_at(8);
            self.process_word(u64::from_le_bytes(word.try_into().expect("8 bytes")));
            data = rest;
        }
        for (i, &b) in data.iter().enumerate() {
            self.tail |= (b as u64) << (8 * i);
        }
        self.ntail = data.len();
    }

    /// Complete the hash and return the 64-bit tag.
    pub fn finalize(mut self) -> u64 {
        let b: u64 = ((self.len & 0xff) << 56) | self.tail;
        self.process_word(b);
        self.v2 ^= 0xff;
        for _ in 0..4 {
            sipround(&mut self.v0, &mut self.v1, &mut self.v2, &mut self.v3);
        }
        self.v0 ^ self.v1 ^ self.v2 ^ self.v3
    }
}

/// One-shot SipHash-2-4 of `data` under `key`.
pub fn siphash24(key: SipKey, data: &[u8]) -> u64 {
    let mut h = SipHasher24::new(key);
    h.update(data);
    h.finalize()
}

/// Lane count of the interleaved batch kernel ([`siphash24_x4`]).
///
/// Eight states in flight: enough independent dependency chains to cover
/// one SipHash round's latency, and — because the kernel is written as
/// plain elementwise array arithmetic — a shape the compiler can lower to
/// one 512-bit (or two 256-bit) vector per state variable on hardware
/// with 64-bit lane rotates. The batch drivers in
/// `graphene-bloom`/`graphene-iblt` chunk their inputs by this constant
/// and pad ragged tails by repeating lane 0.
pub const SIP_LANES: usize = 8;

/// One statement of the SipHash round applied across all lanes. Each lane
/// is an independent dependency chain, so the compiler is free to
/// interleave the four chains per instruction — that instruction-level
/// parallelism, not SIMD, is where the batch speedup comes from (no
/// `unsafe`, no intrinsics).
#[inline(always)]
fn sipround_x4(
    v0: &mut [u64; SIP_LANES],
    v1: &mut [u64; SIP_LANES],
    v2: &mut [u64; SIP_LANES],
    v3: &mut [u64; SIP_LANES],
) {
    for l in 0..SIP_LANES {
        v0[l] = v0[l].wrapping_add(v1[l]);
        v1[l] = v1[l].rotate_left(13) ^ v0[l];
        v0[l] = v0[l].rotate_left(32);
        v2[l] = v2[l].wrapping_add(v3[l]);
        v3[l] = v3[l].rotate_left(16) ^ v2[l];
        v0[l] = v0[l].wrapping_add(v3[l]);
        v3[l] = v3[l].rotate_left(21) ^ v0[l];
        v2[l] = v2[l].wrapping_add(v1[l]);
        v1[l] = v1[l].rotate_left(17) ^ v2[l];
        v2[l] = v2[l].rotate_left(32);
    }
}

/// Four one-shot SipHash-2-4 computations with the hash states interleaved.
///
/// Lane `l` hashes message `msgs[l]` under key `keys[l]`; the messages are
/// given as little-endian 64-bit words (`WORDS` of them, so the byte length
/// is `8·WORDS`). Bit-identical to four calls of
/// [`siphash24`]`(keys[l], &bytes)` over the corresponding byte strings —
/// the arithmetic is the same, only the instruction schedule differs.
///
/// Per-lane keys matter: the IBLT peel hashes *one* value under `k`
/// distinct partition keys plus the checksum key, while the Bloom filter
/// hashes distinct digests under one shared key — both shapes reduce to
/// this kernel. Callers with fewer than four live inputs pad the spare
/// lanes (e.g. by repeating lane 0) and discard those outputs.
pub fn siphash24_x4<const WORDS: usize>(
    keys: &[SipKey; SIP_LANES],
    msgs: &[[u64; WORDS]; SIP_LANES],
) -> [u64; SIP_LANES] {
    let mut v0 = [0u64; SIP_LANES];
    let mut v1 = [0u64; SIP_LANES];
    let mut v2 = [0u64; SIP_LANES];
    let mut v3 = [0u64; SIP_LANES];
    for l in 0..SIP_LANES {
        v0[l] = keys[l].k0 ^ 0x736f6d6570736575;
        v1[l] = keys[l].k1 ^ 0x646f72616e646f6d;
        v2[l] = keys[l].k0 ^ 0x6c7967656e657261;
        v3[l] = keys[l].k1 ^ 0x7465646279746573;
    }
    for w in 0..WORDS {
        for (v, msg) in v3.iter_mut().zip(msgs) {
            *v ^= msg[w];
        }
        sipround_x4(&mut v0, &mut v1, &mut v2, &mut v3);
        sipround_x4(&mut v0, &mut v1, &mut v2, &mut v3);
        for (v, msg) in v0.iter_mut().zip(msgs) {
            *v ^= msg[w];
        }
    }
    // Finalization word: whole-word messages leave no tail, so `b` is just
    // the length byte — identical across lanes.
    let b = ((WORDS as u64 * 8) & 0xff) << 56;
    for v in &mut v3 {
        *v ^= b;
    }
    sipround_x4(&mut v0, &mut v1, &mut v2, &mut v3);
    sipround_x4(&mut v0, &mut v1, &mut v2, &mut v3);
    for l in 0..SIP_LANES {
        v0[l] ^= b;
        v2[l] ^= 0xff;
    }
    for _ in 0..4 {
        sipround_x4(&mut v0, &mut v1, &mut v2, &mut v3);
    }
    let mut out = [0u64; SIP_LANES];
    for l in 0..SIP_LANES {
        out[l] = v0[l] ^ v1[l] ^ v2[l] ^ v3[l];
    }
    out
}

/// [`siphash24_x4`] over four 8-byte messages (one little-endian `u64`
/// each) — the IBLT shape, where cell values are `u64` short IDs.
#[inline]
pub fn siphash24_x4_u64(keys: &[SipKey; SIP_LANES], values: &[u64; SIP_LANES]) -> [u64; SIP_LANES] {
    siphash24_x4::<1>(keys, &core::array::from_fn(|l| [values[l]]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference key from the SipHash paper: bytes 00 01 ... 0f.
    fn ref_key() -> SipKey {
        let bytes: [u8; 16] = core::array::from_fn(|i| i as u8);
        SipKey::from_bytes(&bytes)
    }

    #[test]
    fn paper_appendix_vector() {
        // SipHash-2-4 paper, Appendix A: k = 000102..0f, m = 000102..0e,
        // output 0xa129ca6149be45e5.
        let msg: Vec<u8> = (0u8..15).collect();
        assert_eq!(siphash24(ref_key(), &msg), 0xa129ca6149be45e5);
    }

    /// First 16 entries of `vectors_sip64` from the reference implementation
    /// (outputs for messages 00, 0001, 000102, ... under the reference key),
    /// stored as little-endian byte arrays there; we compare as u64.
    #[test]
    fn reference_vectors() {
        const EXPECT: [[u8; 8]; 16] = [
            [0x31, 0x0e, 0x0e, 0xdd, 0x47, 0xdb, 0x6f, 0x72],
            [0xfd, 0x67, 0xdc, 0x93, 0xc5, 0x39, 0xf8, 0x74],
            [0x5a, 0x4f, 0xa9, 0xd9, 0x09, 0x80, 0x6c, 0x0d],
            [0x2d, 0x7e, 0xfb, 0xd7, 0x96, 0x66, 0x67, 0x85],
            [0xb7, 0x87, 0x71, 0x27, 0xe0, 0x94, 0x27, 0xcf],
            [0x8d, 0xa6, 0x99, 0xcd, 0x64, 0x55, 0x76, 0x18],
            [0xce, 0xe3, 0xfe, 0x58, 0x6e, 0x46, 0xc9, 0xcb],
            [0x37, 0xd1, 0x01, 0x8b, 0xf5, 0x00, 0x02, 0xab],
            [0x62, 0x24, 0x93, 0x9a, 0x79, 0xf5, 0xf5, 0x93],
            [0xb0, 0xe4, 0xa9, 0x0b, 0xdf, 0x82, 0x00, 0x9e],
            [0xf3, 0xb9, 0xdd, 0x94, 0xc5, 0xbb, 0x5d, 0x7a],
            [0xa7, 0xad, 0x6b, 0x22, 0x46, 0x2f, 0xb3, 0xf4],
            [0xfb, 0xe5, 0x0e, 0x86, 0xbc, 0x8f, 0x1e, 0x75],
            [0x90, 0x3d, 0x84, 0xc0, 0x27, 0x56, 0xea, 0x14],
            [0xee, 0xf2, 0x7a, 0x8e, 0x90, 0xca, 0x23, 0xf7],
            [0xe5, 0x45, 0xbe, 0x49, 0x61, 0xca, 0x29, 0xa1],
        ];
        let msg: Vec<u8> = (0u8..16).collect();
        for (len, expect) in EXPECT.iter().enumerate() {
            let got = siphash24(ref_key(), &msg[..len]);
            assert_eq!(got, u64::from_le_bytes(*expect), "vector for message length {len}");
        }
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0u8..=255).collect();
        let key = SipKey::new(0xdead_beef, 0xcafe_babe);
        let expect = siphash24(key, &data);
        for split in [0, 1, 7, 8, 9, 100, 255, 256] {
            let mut h = SipHasher24::new(key);
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    /// The interleaved kernel is bit-identical to four scalar hashes over
    /// the little-endian byte serialization, for every message width the
    /// suite uses (1 word = IBLT values, 4 words = 32-byte digests) and
    /// for both shared and per-lane keys.
    #[test]
    fn x4_matches_scalar() {
        fn words_to_bytes<const W: usize>(msg: &[u64; W]) -> Vec<u8> {
            msg.iter().flat_map(|w| w.to_le_bytes()).collect()
        }
        fn check<const W: usize>(keys: [SipKey; SIP_LANES], msgs: [[u64; W]; SIP_LANES]) {
            let got = siphash24_x4::<W>(&keys, &msgs);
            for l in 0..SIP_LANES {
                let expect = siphash24(keys[l], &words_to_bytes(&msgs[l]));
                assert_eq!(got[l], expect, "lane {l} of {W}-word batch");
            }
        }
        // Shared key, distinct messages (the Bloom shape).
        let k = ref_key();
        check::<4>(
            [k; SIP_LANES],
            core::array::from_fn(|l| {
                core::array::from_fn(|w| (l * 31 + w * 7 + 1) as u64 * 0x9e37)
            }),
        );
        // Distinct keys, one shared message (the IBLT peel shape).
        let keys: [SipKey; SIP_LANES] =
            core::array::from_fn(|l| SipKey::new(l as u64, !(l as u64)));
        check::<1>(keys, [[0xdead_beef_u64]; SIP_LANES]);
        let vals: [u64; SIP_LANES] = core::array::from_fn(|l| l as u64 + 1);
        assert_eq!(
            siphash24_x4_u64(&keys, &vals),
            siphash24_x4::<1>(&keys, &core::array::from_fn(|l| [vals[l]]))
        );
        // Zero-length messages still finalize correctly.
        check::<0>(keys, [[]; SIP_LANES]);
    }

    #[test]
    fn key_sensitivity() {
        let msg = b"graphene block 1234";
        let a = siphash24(SipKey::new(0, 0), msg);
        let b = siphash24(SipKey::new(0, 1), msg);
        let c = siphash24(SipKey::new(1, 0), msg);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
