//! Property-based tests for the hash substrate.

use graphene_hashes::{
    merkle_root, sha256, siphash24, Digest, MerkleTree, Sha256, SipHasher24, SipKey,
};
use proptest::prelude::*;

proptest! {
    /// Streaming SHA-256 equals one-shot for any chunking.
    #[test]
    fn sha256_chunking_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..600),
        splits in proptest::collection::vec(any::<u16>(), 0..6),
    ) {
        let expect = sha256(&data);
        let mut h = Sha256::new();
        let mut rest = &data[..];
        for s in splits {
            if rest.is_empty() { break; }
            let cut = (s as usize) % rest.len().max(1);
            let (head, tail) = rest.split_at(cut);
            h.update(head);
            rest = tail;
        }
        h.update(rest);
        prop_assert_eq!(h.finalize(), expect);
    }

    /// Streaming SipHash equals one-shot for any chunking.
    #[test]
    fn siphash_chunking_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        cut in any::<u16>(),
        k0: u64, k1: u64,
    ) {
        let key = SipKey::new(k0, k1);
        let expect = siphash24(key, &data);
        let cut = (cut as usize) % data.len().max(1);
        let mut h = SipHasher24::new(key);
        h.update(&data[..cut.min(data.len())]);
        h.update(&data[cut.min(data.len())..]);
        prop_assert_eq!(h.finalize(), expect);
    }

    /// Every Merkle proof verifies; any tamper breaks it.
    #[test]
    fn merkle_soundness(seeds in proptest::collection::vec(any::<u64>(), 1..40), probe: u8) {
        let leaves: Vec<Digest> = seeds.iter().map(|s| sha256(&s.to_le_bytes())).collect();
        let tree = MerkleTree::new(&leaves);
        prop_assert_eq!(tree.root(), merkle_root(&leaves));
        let idx = (probe as usize) % leaves.len();
        let proof = tree.prove(idx).unwrap();
        prop_assert!(proof.verify(&leaves[idx], &tree.root()));
        let mut tampered = leaves[idx];
        tampered.0[0] ^= 1;
        prop_assert!(!proof.verify(&tampered, &tree.root()));
    }

    /// Digest hex round-trips.
    #[test]
    fn digest_hex_roundtrip(bytes: [u8; 32]) {
        let d = Digest(bytes);
        prop_assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
    }
}
