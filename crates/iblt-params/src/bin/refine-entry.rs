//! Re-run the Algorithm 1 search for specific `(rate, j)` table entries
//! with a larger trial budget, and patch `data/params.csv` in place.
//! Useful when a spot-check (e.g. the fig07 harness) shows a borderline
//! entry whose original search accepted a slightly undersized `c` (the
//! 95%-CI acceptance has an inherent ~2.5% type-I rate).
//!
//! Usage: `refine-entry <rate_denom> <j> [more pairs...]`

use graphene_iblt_params::{optimize, FailureRate, SearchConfig};

fn main() {
    let args: Vec<u64> = std::env::args().skip(1).filter_map(|s| s.parse().ok()).collect();
    assert!(
        !args.is_empty() && args.len().is_multiple_of(2),
        "usage: refine-entry <rate_denom> <j> [...]"
    );
    let path = "crates/iblt-params/data/params.csv";
    let mut csv = std::fs::read_to_string(path).expect("read table");
    let cfg = SearchConfig { max_trials: 80_000, seed: 0x2b2b, ..SearchConfig::default() };
    for pair in args.chunks(2) {
        let (rate_denom, j) = (pair[0] as u32, pair[1] as usize);
        let rate = FailureRate(1.0 / rate_denom as f64);
        let Some((k, c)) = optimize(j, rate, 3..=7, &cfg) else {
            eprintln!("rate 1/{rate_denom} j {j}: search failed");
            continue;
        };
        let prefix = format!("{rate_denom},{j},");
        let newline = format!("{rate_denom},{j},{k},{c}");
        let mut replaced = false;
        csv = csv
            .lines()
            .map(|l| {
                if l.starts_with(&prefix) {
                    replaced = true;
                    newline.clone()
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        if !replaced {
            csv.push_str(&newline);
        }
        csv.push('\n');
        // Deduplicate trailing newlines introduced by the join/push cycle.
        while csv.ends_with("\n\n") {
            csv.pop();
        }
        eprintln!("rate 1/{rate_denom} j {j}: refined to k={k} c={c}");
    }
    std::fs::write(path, csv).expect("write table");
}
