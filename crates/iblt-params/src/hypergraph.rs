//! Hypergraph model of IBLT decoding (paper §4.1, Fig. 8).
//!
//! An IBLT with `c` cells, `k` hash functions and `j` inserted items is a
//! k-partite, k-uniform hypergraph: vertices are cells (partitioned into `k`
//! groups of `c/k`), edges are items (one vertex per partition, chosen
//! uniformly). Peeling removes edges incident to a degree-1 vertex; the IBLT
//! decodes iff peeling leaves no edges (empty 2-core).
//!
//! Simulating this graph is much faster than driving a real IBLT — no key
//! sums or checksums, just degree counters and an XOR-folded edge id per
//! vertex (the same trick IBLT cells use, applied to the simulation itself).

use rand::{rngs::StdRng, RngExt};

/// Scratch buffers reused across trials to avoid per-trial allocation.
#[derive(Default)]
pub struct Scratch {
    degree: Vec<u32>,
    edge_xor: Vec<u32>,
    edge_vertices: Vec<u32>,
    stack: Vec<u32>,
    removed: Vec<bool>,
}

/// Run one decode trial: sample a random j-edge hypergraph on `c` vertices
/// (`c` must be a positive multiple of `k`) and report whether it peels
/// completely.
pub fn decode_trial(j: usize, k: u32, c: usize, rng: &mut StdRng) -> bool {
    let mut scratch = Scratch::default();
    decode_trial_with(j, k, c, rng, &mut scratch)
}

/// As [`decode_trial`], reusing caller-provided scratch space. This is the
/// hot path of Algorithm 1.
pub fn decode_trial_with(j: usize, k: u32, c: usize, rng: &mut StdRng, s: &mut Scratch) -> bool {
    let k = k as usize;
    debug_assert!(c.is_multiple_of(k) && c > 0, "c must be a positive multiple of k");
    let part = c / k;
    if j == 0 {
        return true;
    }
    if part == 0 {
        return false;
    }

    s.degree.clear();
    s.degree.resize(c, 0);
    s.edge_xor.clear();
    s.edge_xor.resize(c, 0);
    s.edge_vertices.clear();
    s.edge_vertices.resize(j * k, 0);
    s.removed.clear();
    s.removed.resize(j, false);
    s.stack.clear();

    // Sample edges: one uniformly chosen vertex in each partition.
    for e in 0..j {
        for i in 0..k {
            let v = (i * part + rng.random_range(0..part)) as u32;
            s.edge_vertices[e * k + i] = v;
            s.degree[v as usize] += 1;
            // XOR-fold (edge index + 1) so a degree-1 vertex reveals its edge.
            s.edge_xor[v as usize] ^= (e + 1) as u32;
        }
    }

    for v in 0..c as u32 {
        if s.degree[v as usize] == 1 {
            s.stack.push(v);
        }
    }

    let mut peeled = 0usize;
    while let Some(v) = s.stack.pop() {
        if s.degree[v as usize] != 1 {
            continue; // stale entry
        }
        let e = (s.edge_xor[v as usize] as usize) - 1;
        if s.removed[e] {
            continue;
        }
        s.removed[e] = true;
        peeled += 1;
        for i in 0..k {
            let u = s.edge_vertices[e * k + i] as usize;
            s.degree[u] -= 1;
            s.edge_xor[u] ^= (e + 1) as u32;
            if s.degree[u] == 1 {
                s.stack.push(u as u32);
            }
        }
    }
    peeled == j
}

/// Estimate the decode failure rate at (`j`, `k`, `c`) over `trials` samples.
pub fn failure_rate(j: usize, k: u32, c: usize, trials: usize, rng: &mut StdRng) -> f64 {
    let mut s = Scratch::default();
    let mut failures = 0usize;
    for _ in 0..trials {
        if !decode_trial_with(j, k, c, rng, &mut s) {
            failures += 1;
        }
    }
    failures as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn zero_items_always_decodes() {
        assert!(decode_trial(0, 3, 12, &mut rng(1)));
    }

    #[test]
    fn huge_table_always_decodes_small_j() {
        let mut r = rng(2);
        for _ in 0..100 {
            assert!(decode_trial(2, 3, 300, &mut r));
        }
    }

    #[test]
    fn tiny_table_fails_large_j() {
        let mut r = rng(3);
        let mut failures = 0;
        for _ in 0..50 {
            if !decode_trial(100, 3, 30, &mut r) {
                failures += 1;
            }
        }
        assert_eq!(failures, 50, "c << j can never fully peel");
    }

    #[test]
    fn failure_rate_monotone_in_c() {
        // More cells (same j, k) must not make decoding worse — the
        // monotonicity that justifies binary search (§4.1).
        let mut r = rng(4);
        let j = 50;
        let lo = failure_rate(j, 3, 60, 2000, &mut r);
        let hi = failure_rate(j, 3, 120, 2000, &mut r);
        assert!(hi <= lo + 0.02, "failure rate rose with more cells: {lo} -> {hi}");
    }

    #[test]
    fn matches_real_iblt_behaviour() {
        // The hypergraph is a faithful model: at identical (j, k, c) the
        // failure rates of the simulation and a real IBLT should agree
        // within Monte Carlo noise.
        use graphene_iblt::Iblt;
        let (j, k, c) = (20usize, 3u32, 27usize);
        let trials = 1500;
        let mut r = rng(5);
        let sim_rate = failure_rate(j, k, c, trials, &mut r);
        let mut real_failures = 0;
        for t in 0..trials {
            let mut iblt = Iblt::new(c, k, t as u64);
            for v in 0..j as u64 {
                iblt.insert(v + 1_000_000 * t as u64);
            }
            if !iblt.peel().unwrap().complete {
                real_failures += 1;
            }
        }
        let real_rate = real_failures as f64 / trials as f64;
        assert!(
            (sim_rate - real_rate).abs() < 0.05,
            "hypergraph {sim_rate} vs real IBLT {real_rate}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a: Vec<bool> = {
            let mut r = rng(7);
            (0..20).map(|_| decode_trial(30, 4, 40, &mut r)).collect()
        };
        let b: Vec<bool> = {
            let mut r = rng(7);
            (0..20).map(|_| decode_trial(30, 4, 40, &mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
