//! Optimal IBLT parameterization (paper §4.1, Algorithm 1).
//!
//! Choosing IBLT geometry is deceptively hard: only two knobs exist — the
//! hedge factor `τ` (giving `c = j·τ` cells) and the hash-function count `k`
//! — and static choices decode poorly for small `j` (Fig. 7). This crate
//! reproduces the paper's contribution:
//!
//! * [`hypergraph`] — models an IBLT with `j` items as a k-partite,
//!   k-uniform random hypergraph; decoding succeeds iff the graph has an
//!   empty 2-core. Working on the hypergraph instead of real IBLTs is what
//!   makes the search an order of magnitude faster (§4.1).
//! * [`search`] — Algorithm 1: binary search over the cell count `c` with a
//!   confidence-interval acceptance test, plus the outer loop over `k`.
//! * [`table`] — a precomputed parameter table (shipped with the crate, like
//!   the paper's released parameter files) mapping `(j, target rate)` to the
//!   optimal `(k, c)`, with a conservative analytic fallback above the
//!   tabulated range.
//!
//! The statistical acceptance rule follows the paper's pseudocode (Fig. 9)
//! with one deviation noted in `DESIGN.md`: success/trial counters reset
//! whenever the binary-search midpoint moves, so the confidence interval
//! always describes a single candidate `c`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hypergraph;
pub mod search;
pub mod table;

pub use hypergraph::decode_trial;
pub use search::{optimize, optimize_parallel, search_c, search_c_with, SearchConfig};
pub use table::{params_for, IbltParams, ParamTable, TARGET_RATES};

/// A desired decode-failure rate, e.g. `1/240`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FailureRate(pub f64);

impl FailureRate {
    /// `1 - failure`: the decode success probability `p` in Algorithm 1.
    pub fn success(self) -> f64 {
        1.0 - self.0
    }
}
