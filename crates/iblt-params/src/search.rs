//! Algorithm 1 (paper Fig. 9): find the optimally small cell count for a
//! target decode rate, plus the outer loop over `k`.

use crate::hypergraph::{decode_trial_with, Scratch};
use crate::FailureRate;
use rand::{rngs::StdRng, SeedableRng};

/// Tuning for the statistical search.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Maximum hedge factor searched: `c_max = ceil(j · max_tau)` (the
    /// paper's implementation sets this to 20).
    pub max_tau: f64,
    /// Two-sided z-score for the confidence interval (1.96 ≈ 95%).
    pub z: f64,
    /// Per-candidate trial cap; if the interval is still inconclusive after
    /// this many trials the candidate is treated as insufficient
    /// (conservative — never undershoots the target rate).
    pub max_trials: usize,
    /// RNG seed for reproducible searches.
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig { max_tau: 20.0, z: 1.96, max_trials: 12_000, seed: 0x1b17 }
    }
}

/// Wilson score interval half-widths are awkward to invert, so we use the
/// plain Wald interval the paper's `conf_int` suggests, with a +1/+2 Agresti
/// smoothing to behave at extreme proportions.
fn conf_halfwidth(successes: usize, trials: usize, z: f64) -> f64 {
    let n = trials as f64 + 4.0;
    let p = (successes as f64 + 2.0) / n;
    z * (p * (1.0 - p) / n).sqrt()
}

/// Decision of the acceptance test for one candidate `c`.
enum Verdict {
    Sufficient,
    Insufficient,
}

/// Run trials at a fixed candidate `c` until the confidence interval clears
/// the target success rate `p` on one side, the interval shrinks inside the
/// paper's `±L` dead-band (treated as insufficient, see module docs), or the
/// trial cap is hit.
fn test_candidate(
    j: usize,
    k: u32,
    c: usize,
    p: f64,
    cfg: &SearchConfig,
    rng: &mut StdRng,
    scratch: &mut Scratch,
) -> Verdict {
    let dead_band = (1.0 - p) / 5.0; // the paper's L
    let mut successes = 0usize;
    let mut trials = 0usize;
    loop {
        trials += 1;
        if decode_trial_with(j, k, c, rng, scratch) {
            successes += 1;
        }
        // Only test every few trials; the interval moves slowly.
        if !trials.is_multiple_of(32) && trials < cfg.max_trials {
            continue;
        }
        let r = successes as f64 / trials as f64;
        let conf = conf_halfwidth(successes, trials, cfg.z);
        if r - conf >= p {
            return Verdict::Sufficient;
        }
        if r + conf <= p {
            return Verdict::Insufficient;
        }
        if (r - conf > p - dead_band) && (r + conf < p + dead_band) {
            // Statistically indistinguishable from the target: the paper
            // bumps the lower bound (cl = c), i.e. treats c as insufficient.
            return Verdict::Insufficient;
        }
        if trials >= cfg.max_trials {
            return Verdict::Insufficient;
        }
    }
}

/// Algorithm 1: binary-search the smallest `c` (multiple of `k`) such that a
/// j-item IBLT with `k` hash functions decodes with probability ≥
/// `1 - rate.0`, with high statistical confidence.
///
/// Returns `None` if even `c_max` is insufficient (never happens for sane
/// targets with `max_tau = 20`).
pub fn search_c(j: usize, k: u32, rate: FailureRate, cfg: &SearchConfig) -> Option<usize> {
    search_c_with(j, k, rate, cfg, &mut Scratch::default())
}

/// As [`search_c`], with caller-provided hypergraph scratch so the outer
/// `k`-loop ([`optimize`]) reuses one trial buffer across the whole search
/// instead of reallocating per `k`. The RNG stream depends only on
/// `(j, k, seed)`, so results are identical to [`search_c`].
pub fn search_c_with(
    j: usize,
    k: u32,
    rate: FailureRate,
    cfg: &SearchConfig,
    scratch: &mut Scratch,
) -> Option<usize> {
    let p = rate.success();
    let k_us = k as usize;
    if j == 0 {
        return Some(k_us);
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (j as u64) << 20 ^ (k as u64));

    // Search in units of k cells: candidate c = u·k. Fewer cells than items
    // can never decode, so the lower bound is j rounded up.
    let mut lo = j.max(1).div_ceil(k_us); // first candidate that could work
    let mut hi = (((j as f64) * cfg.max_tau).ceil() as usize).div_ceil(k_us).max(lo);

    // Confirm the upper bound actually suffices.
    match test_candidate(j, k, hi * k_us, p, cfg, &mut rng, scratch) {
        Verdict::Sufficient => {}
        Verdict::Insufficient => return None,
    }

    // Invariant: hi is sufficient; all candidates below lo are untested or
    // insufficient. Standard lower-bound binary search.
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match test_candidate(j, k, mid * k_us, p, cfg, &mut rng, scratch) {
            Verdict::Sufficient => hi = mid,
            Verdict::Insufficient => lo = mid + 1,
        }
    }
    Some(hi * k_us)
}

/// The outer loop of §4.1: try each `k` in `ks` and keep the smallest `c`.
///
/// Returns `(k, c)` of the best geometry found.
pub fn optimize(
    j: usize,
    rate: FailureRate,
    ks: impl IntoIterator<Item = u32>,
    cfg: &SearchConfig,
) -> Option<(u32, usize)> {
    let mut best: Option<(u32, usize)> = None;
    // One trial scratch for the whole k-loop.
    let mut scratch = Scratch::default();
    for k in ks {
        if k < 2 {
            continue;
        }
        // Prune: cap the search at the best geometry found so far — a `k`
        // that cannot beat it fails its upper-bound check quickly.
        let mut cfg_k = *cfg;
        if let Some((_, bc)) = best {
            cfg_k.max_tau = cfg_k.max_tau.min(bc as f64 / j.max(1) as f64);
        }
        if let Some(c) = search_c_with(j, k, rate, &cfg_k, &mut scratch) {
            if best.is_none_or(|(_, bc)| c < bc) {
                best = Some((k, c));
            }
        }
    }
    best
}

/// As [`optimize`], but searches each `k` on its own thread (crossbeam
/// scoped threads). Used by the table generator on multi-core machines;
/// results are identical to the sequential search (each `k`'s RNG stream is
/// derived from `(j, k, seed)` only).
///
/// Note: without the sequential version's best-so-far pruning each `k` pays
/// its full search, so this only wins when cores outnumber the pruning
/// savings (roughly: 4+ cores).
pub fn optimize_parallel(
    j: usize,
    rate: FailureRate,
    ks: impl IntoIterator<Item = u32>,
    cfg: &SearchConfig,
) -> Option<(u32, usize)> {
    let ks: Vec<u32> = ks.into_iter().filter(|&k| k >= 2).collect();
    let mut results: Vec<Option<(u32, usize)>> = vec![None; ks.len()];
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ks.len());
        for &k in &ks {
            let cfg = *cfg;
            // One scratch per thread, reused across that k's whole search.
            handles.push(scope.spawn(move |_| {
                search_c_with(j, k, rate, &cfg, &mut Scratch::default()).map(|c| (k, c))
            }));
        }
        for (slot, handle) in results.iter_mut().zip(handles) {
            *slot = handle.join().expect("search thread panicked");
        }
    })
    .expect("crossbeam scope");
    results.into_iter().flatten().min_by_key(|&(_, c)| c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::failure_rate;

    fn cfg() -> SearchConfig {
        // Cheap settings for unit tests; the table generator uses defaults.
        SearchConfig { max_trials: 6_000, ..SearchConfig::default() }
    }

    #[test]
    fn found_c_meets_rate() {
        let rate = FailureRate(1.0 / 24.0);
        let c = search_c(20, 4, rate, &cfg()).expect("search converges");
        // Validate empirically with an independent seed.
        let mut rng = StdRng::seed_from_u64(9999);
        let measured = failure_rate(20, 4, c, 4_000, &mut rng);
        assert!(
            measured <= rate.0 * 1.6,
            "c = {c}: measured failure {measured} vs target {}",
            rate.0
        );
    }

    #[test]
    fn found_c_is_tight() {
        // A substantially smaller table must miss the target — otherwise the
        // search result is not minimal.
        let rate = FailureRate(1.0 / 24.0);
        let c = search_c(20, 4, rate, &cfg()).expect("search converges");
        let smaller = (c * 7 / 10).div_ceil(4) * 4;
        let mut rng = StdRng::seed_from_u64(777);
        let measured = failure_rate(20, 4, smaller.max(4), 4_000, &mut rng);
        assert!(
            measured > rate.0,
            "70% of the found c still meets the rate: c={c}, measured {measured}"
        );
    }

    #[test]
    fn c_multiple_of_k() {
        for k in [3u32, 4, 5] {
            let c = search_c(15, k, FailureRate(1.0 / 24.0), &cfg()).unwrap();
            assert_eq!(c % k as usize, 0, "k = {k}, c = {c}");
        }
    }

    #[test]
    fn zero_items_trivial() {
        assert_eq!(search_c(0, 3, FailureRate(0.01), &cfg()), Some(3));
    }

    #[test]
    fn stricter_rate_needs_more_cells() {
        let loose = search_c(30, 4, FailureRate(1.0 / 24.0), &cfg()).unwrap();
        let strict = search_c(30, 4, FailureRate(1.0 / 240.0), &cfg()).unwrap();
        assert!(strict >= loose, "stricter target produced a smaller table: {strict} < {loose}");
    }

    #[test]
    fn parallel_matches_sequential_candidates() {
        // The parallel search lacks cross-k pruning, so it may find a
        // *smaller* c for some k than the pruned sequential pass skipped —
        // but its winner can never be worse.
        let rate = FailureRate(1.0 / 24.0);
        let seq = optimize(25, rate, 3..=5, &cfg()).unwrap();
        let par = optimize_parallel(25, rate, 3..=5, &cfg()).unwrap();
        // The sequential pass prunes `max_tau` from the best-so-far, which
        // changes the pruned k's binary-search path and hence its RNG
        // stream; the two runs are different statistical estimates and may
        // legitimately disagree by one step of the search granularity `k`.
        assert!(
            par.1 <= seq.1 + par.0 as usize,
            "parallel {par:?} worse than sequential {seq:?} by more than one k-step"
        );
    }

    #[test]
    fn optimize_picks_min_over_k() {
        let rate = FailureRate(1.0 / 24.0);
        let (k, c) = optimize(50, rate, 3..=6, &cfg()).unwrap();
        for other_k in 3..=6u32 {
            if other_k == k {
                continue;
            }
            let oc = search_c(50, other_k, rate, &cfg()).unwrap();
            assert!(c <= oc, "k={k} gave {c} but k={other_k} gives {oc}");
        }
    }
}
