//! A single IBLT cell.

use graphene_hashes::{siphash24, SipKey};

/// One IBLT cell: a count, the XOR of inserted values, and the XOR of their
/// checksums.
///
/// The checksum field catches the "phantom pure cell" case the paper
/// describes: after subtraction a cell may have `count == ±1` while its
/// `keySum` is the XOR of several values from both operands; the checksum
/// will not match and the cell is not treated as pure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cell {
    /// Net number of insertions (negative after subtraction if the second
    /// operand inserted more).
    pub count: i32,
    /// XOR of all inserted 8-byte values.
    pub key_sum: u64,
    /// XOR of `check_hash` of all inserted values.
    pub check_sum: u32,
}

impl Cell {
    /// Fold a value into the cell with the given sign (`+1` insert,
    /// `-1` erase).
    #[inline]
    pub fn apply(&mut self, value: u64, check: u32, sign: i32) {
        self.count += sign;
        self.key_sum ^= value;
        self.check_sum ^= check;
    }

    /// True when the cell provably holds exactly one value: `count == ±1`
    /// and the checksum matches the key sum.
    #[inline]
    pub fn is_pure(&self, salt: u64) -> bool {
        (self.count == 1 || self.count == -1) && self.check_sum == check_hash(salt, self.key_sum)
    }

    /// True when the cell holds nothing at all.
    #[inline]
    pub fn is_empty_cell(&self) -> bool {
        self.count == 0 && self.key_sum == 0 && self.check_sum == 0
    }

    /// Cell-wise subtraction (`self - other`).
    #[inline]
    pub fn subtract(&self, other: &Cell) -> Cell {
        Cell {
            count: self.count - other.count,
            key_sum: self.key_sum ^ other.key_sum,
            check_sum: self.check_sum ^ other.check_sum,
        }
    }
}

/// Key-derivation tag of the checksum hash (paired with the IBLT salt). The
/// batched peel builds [`SipKey`]s from it directly so its interleaved
/// hashes agree with [`check_hash`] bit for bit.
pub(crate) const CHECK_TAG: u64 = 0x4942_4c54_4348;

/// The per-value checksum mixed into [`Cell::check_sum`].
///
/// Keyed by the IBLT salt so that checksum collisions cannot be manufactured
/// offline for all peers at once.
#[inline]
pub fn check_hash(salt: u64, value: u64) -> u32 {
    siphash24(SipKey::new(salt, CHECK_TAG), &value.to_le_bytes()) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_roundtrip() {
        let mut c = Cell::default();
        let check = check_hash(7, 0xdead);
        c.apply(0xdead, check, 1);
        assert_eq!(c.count, 1);
        assert!(c.is_pure(7));
        c.apply(0xdead, check, -1);
        assert!(c.is_empty_cell());
    }

    #[test]
    fn two_values_not_pure() {
        let mut c = Cell::default();
        c.apply(1, check_hash(7, 1), 1);
        c.apply(2, check_hash(7, 2), 1);
        assert_eq!(c.count, 2);
        assert!(!c.is_pure(7));
    }

    #[test]
    fn negative_pure_after_subtraction() {
        let mut a = Cell::default();
        let mut b = Cell::default();
        b.apply(42, check_hash(7, 42), 1);
        let d = a.subtract(&b);
        assert_eq!(d.count, -1);
        assert!(d.is_pure(7));
        // And the shared value cancels entirely.
        a.apply(42, check_hash(7, 42), 1);
        assert!(a.subtract(&b).is_empty_cell());
    }

    #[test]
    fn phantom_pure_cell_rejected() {
        // count == 1 but keySum is the XOR of three values: the checksum
        // cannot match (except with 2^-32 probability).
        let mut c = Cell::default();
        for v in [10u64, 20, 30] {
            c.apply(v, check_hash(7, v), 1);
        }
        c.apply(10, check_hash(7, 10), -1);
        c.apply(20, check_hash(7, 20), -1);
        assert_eq!(c.count, 1);
        assert!(c.is_pure(7)); // this one is genuinely pure (holds 30)
                               // Now fabricate: count forced to 1 with mismatched sums.
        let fake = Cell { count: 1, key_sum: 10 ^ 20 ^ 30, check_sum: 0 };
        assert!(!fake.is_pure(7));
    }

    #[test]
    fn check_hash_depends_on_salt() {
        assert_ne!(check_hash(1, 99), check_hash(2, 99));
    }
}
