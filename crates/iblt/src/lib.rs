//! Invertible Bloom Lookup Tables (Goodrich & Mitzenmacher 2011).
//!
//! An IBLT stores a multiset of 8-byte values in `c` cells, each holding a
//! `count`, the XOR of inserted values (`keySum`) and the XOR of a per-value
//! checksum (`checkSum`). Subtracting two IBLTs built over similar sets
//! cancels the intersection, and iterative *peeling* of pure cells recovers
//! the symmetric difference (paper §2.1).
//!
//! This crate provides:
//!
//! * [`Iblt`] — construction, insertion/erasure, subtraction, and peeling
//!   with partial-decode results;
//! * the §6.1 *malformed IBLT* defense: peeling halts with
//!   [`DecodeError::Malformed`] if any value decodes twice, which defeats the
//!   endless-decode-loop attack;
//! * [`pingpong`] — §4.2 ping-pong decoding across two IBLTs covering the
//!   same difference, which squares the failure rate;
//! * a compact wire serialization used for byte accounting.
//!
//! Cell geometry follows the paper: the cell array is split into `k`
//! partitions of `c/k` cells and each value is inserted once per partition,
//! which matches the k-partite hypergraph model used by the parameter search
//! in `graphene-iblt-params`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod pingpong;
pub mod rateless;
pub mod table;

pub use cell::Cell;
pub use pingpong::{joint_decode, ping_pong_decode};
pub use rateless::{CellStream, DecodeProgress, RatelessDecoder, RatelessDiff, RatelessError};
pub use table::{DecodeError, DecodeResult, Iblt, PeelScratch};

/// Bytes per cell on the wire: `count: i32` + `keySum: u64` + `checkSum: u32`.
///
/// This is the `r` in the paper's Eq. 1 (`T_I = r·τ·(1+δ)·a`).
pub const CELL_BYTES: usize = 16;

/// Bytes of fixed header in the wire encoding (cell count, k, salt).
pub const HEADER_BYTES: usize = 13;
