//! Ping-pong decoding across two IBLTs (paper §4.2).
//!
//! When two IBLTs of different geometry are built over (roughly) the same
//! set — in Graphene, `I ⊖ I′` from Protocol 1 and `J ⊖ J′` from Protocol 2 —
//! values decoded from one can be cancelled out of the other, potentially
//! unblocking its 2-core, and vice versa. Iterating this "ping-pong" until
//! neither side makes progress squares the failure rate (Fig. 11) at
//! negligible computational cost.
//!
//! The IBLTs must use *different salts* so their hypergraphs are independent
//! (the paper: "the IBLTs should use different seeds in their hash functions
//! for independence").

use crate::table::{DecodeError, DecodeResult, Iblt, PeelScratch};

/// Jointly decode two IBLT differences covering the same symmetric
/// difference.
///
/// Returns the union of recovered values (deduplicated) with `complete` set
/// if *either* IBLT fully drained — at that point the whole difference is
/// known.
pub fn ping_pong_decode(a: &mut Iblt, b: &mut Iblt) -> Result<DecodeResult, DecodeError> {
    let mut merged = DecodeResult::default();
    let mut seen_left: Vec<u64> = Vec::new();
    let mut seen_right: Vec<u64> = Vec::new();
    // One scratch across every peel of the ping-pong loop.
    let mut scratch = PeelScratch::new();

    loop {
        let ra = a.peel_in_place(&mut scratch)?;
        transfer(&ra, b, &mut seen_left, &mut seen_right);
        let rb = b.peel_in_place(&mut scratch)?;
        transfer(&rb, a, &mut seen_left, &mut seen_right);

        let progressed = !ra.is_empty() || !rb.is_empty();
        if a.is_drained() || b.is_drained() || !progressed {
            merged.only_left = seen_left;
            merged.only_right = seen_right;
            merged.complete = a.is_drained() || b.is_drained();
            merged.only_left.sort_unstable();
            merged.only_left.dedup();
            merged.only_right.sort_unstable();
            merged.only_right.dedup();
            return Ok(merged);
        }
    }
}

/// Cancel freshly decoded values out of the sibling IBLT, tracking the union.
fn transfer(from: &DecodeResult, into: &mut Iblt, left: &mut Vec<u64>, right: &mut Vec<u64>) {
    for &v in &from.only_left {
        if !left.contains(&v) {
            left.push(v);
            into.cancel(v, 1);
        }
    }
    for &v in &from.only_right {
        if !right.contains(&v) {
            right.push(v);
            into.cancel(v, -1);
        }
    }
}

/// Jointly decode *any number* of IBLT differences covering the same
/// symmetric difference — the paper's §4.2 extension: "a receiver could ask
/// many neighbors for the same block and the IBLTs can be jointly decoded."
///
/// Each table must have an independent salt. Every value decoded anywhere
/// is cancelled out of all other tables, re-enabling their peels, until no
/// table makes progress. `complete` is set once any table drains.
pub fn joint_decode(tables: &mut [Iblt]) -> Result<DecodeResult, DecodeError> {
    let mut seen_left: Vec<u64> = Vec::new();
    let mut seen_right: Vec<u64> = Vec::new();
    let mut scratch = PeelScratch::new();
    loop {
        let mut progressed = false;
        for i in 0..tables.len() {
            let r = tables[i].peel_in_place(&mut scratch)?;
            if r.is_empty() {
                continue;
            }
            progressed = true;
            for &v in &r.only_left {
                if !seen_left.contains(&v) {
                    seen_left.push(v);
                    for (j, other) in tables.iter_mut().enumerate() {
                        if j != i {
                            other.cancel(v, 1);
                        }
                    }
                }
            }
            for &v in &r.only_right {
                if !seen_right.contains(&v) {
                    seen_right.push(v);
                    for (j, other) in tables.iter_mut().enumerate() {
                        if j != i {
                            other.cancel(v, -1);
                        }
                    }
                }
            }
        }
        let complete = tables.iter().any(Iblt::is_drained);
        if complete || !progressed {
            seen_left.sort_unstable();
            seen_left.dedup();
            seen_right.sort_unstable();
            seen_right.dedup();
            return Ok(DecodeResult { only_left: seen_left, only_right: seen_right, complete });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_pair(values: &[u64], ca: usize, cb: usize, ka: u32, kb: u32) -> (Iblt, Iblt) {
        let mut a = Iblt::new(ca, ka, 0xaaaa);
        let mut b = Iblt::new(cb, kb, 0xbbbb);
        for &v in values {
            a.insert(v);
            b.insert(v);
        }
        (a, b)
    }

    #[test]
    fn both_decodable_agree() {
        let values: Vec<u64> = (0..10).collect();
        let (mut a, mut b) = build_pair(&values, 40, 30, 4, 3);
        let r = ping_pong_decode(&mut a, &mut b).unwrap();
        assert!(r.complete);
        assert_eq!(r.only_left, values);
    }

    #[test]
    fn sibling_rescues_undersized_iblt() {
        // `a` is far too small to decode 60 items alone; a sibling of
        // adequate size rescues the joint decode.
        let values: Vec<u64> = (100..160).collect();
        let (mut a, mut b) = build_pair(&values, 12, 120, 3, 4);
        assert!(!a.peel_clone().unwrap().complete, "a should fail alone");
        let r = ping_pong_decode(&mut a, &mut b).unwrap();
        assert!(r.complete);
        assert_eq!(r.only_left, values);
    }

    #[test]
    fn mutual_rescue_beats_either_alone() {
        // Find a case where each IBLT fails alone but ping-pong succeeds.
        // Sized right at the failure edge (τ ≈ 1.0) this happens regularly.
        let mut rescued = 0;
        let mut trials = 0;
        for seed in 0..300u64 {
            let values: Vec<u64> = (0..24).map(|i| seed * 10_000 + i).collect();
            let mut a = Iblt::new(26, 3, seed.wrapping_mul(2) + 1);
            let mut b = Iblt::new(26, 4, seed.wrapping_mul(3) + 2);
            for &v in &values {
                a.insert(v);
                b.insert(v);
            }
            let fa = !a.peel_clone().unwrap().complete;
            let fb = !b.peel_clone().unwrap().complete;
            if fa && fb {
                trials += 1;
                let r = ping_pong_decode(&mut a, &mut b).unwrap();
                if r.complete {
                    rescued += 1;
                }
            }
        }
        // At least one joint rescue should occur across 300 trials; if the
        // edge cases never appear the test setup is wrong.
        assert!(trials > 0, "no both-fail trials generated");
        assert!(rescued > 0, "ping-pong never rescued ({trials} both-fail trials)");
    }

    #[test]
    fn failure_rate_squared_empirically() {
        // Single-IBLT failure rate at this geometry is noticeable; joint
        // failure should be dramatically rarer (Fig. 11).
        let mut single_failures = 0;
        let mut joint_failures = 0;
        let trials = 400u64;
        for seed in 0..trials {
            let values: Vec<u64> = (0..20).map(|i| seed * 7919 + i).collect();
            let mut a = Iblt::new(24, 3, seed * 2 + 1);
            let mut b = Iblt::new(24, 3, seed * 2 + 2);
            for &v in &values {
                a.insert(v);
                b.insert(v);
            }
            if !a.peel_clone().unwrap().complete {
                single_failures += 1;
            }
            if !ping_pong_decode(&mut a, &mut b).unwrap().complete {
                joint_failures += 1;
            }
        }
        assert!(
            joint_failures * 4 <= single_failures.max(1),
            "joint {joint_failures} vs single {single_failures}"
        );
    }

    #[test]
    fn joint_decode_matches_pairwise_for_two() {
        let values: Vec<u64> = (0..30).collect();
        let (a1, b1) = build_pair(&values, 50, 40, 4, 3);
        let (mut a2, mut b2) = (a1.clone(), b1.clone());
        let pair = ping_pong_decode(&mut a2, &mut b2).unwrap();
        let mut tables = [a1, b1];
        let joint = crate::pingpong::joint_decode(&mut tables).unwrap();
        assert_eq!(pair.complete, joint.complete);
        assert_eq!(pair.only_left, joint.only_left);
    }

    #[test]
    fn many_neighbors_rescue_threshold_tables() {
        // §4.2 multi-neighbor scenario: tables sized *below* the peeling
        // threshold (τ ≈ 1.05 for 40 items at k = 3) almost always fail
        // alone; five of them jointly decode far more often, because every
        // value peeled anywhere unlocks cells everywhere. (Grossly
        // overloaded tables cannot be rescued — peeling needs at least one
        // pure cell somewhere to bootstrap.)
        let mut alone_failures = 0usize;
        let mut joint_failures = 0usize;
        let trials = 60u64;
        for seed in 0..trials {
            let values: Vec<u64> = (0..40).map(|i| seed * 10_000 + i).collect();
            let mut tables: Vec<Iblt> = (0..5u64)
                .map(|i| {
                    let mut t = Iblt::new(42, 3, seed * 7 + i);
                    for &v in &values {
                        t.insert(v);
                    }
                    t
                })
                .collect();
            if !tables[0].peel_clone().unwrap().complete {
                alone_failures += 1;
            }
            if !crate::pingpong::joint_decode(&mut tables).unwrap().complete {
                joint_failures += 1;
            }
        }
        assert!(
            alone_failures > trials as usize / 2,
            "τ=1.05 should usually fail alone: {alone_failures}/{trials}"
        );
        assert!(
            joint_failures * 3 < alone_failures,
            "joint {joint_failures} vs alone {alone_failures}"
        );
    }

    #[test]
    fn joint_decode_rate_improves_with_neighbor_count() {
        // Failure rate should fall (roughly geometrically) as neighbors are
        // added at fixed per-table geometry.
        let trials = 150u64;
        let mut failures = [0usize; 3]; // 1, 2, 4 tables
        for seed in 0..trials {
            let values: Vec<u64> = (0..24).map(|i| seed * 1000 + i).collect();
            let build = |salt: u64| {
                let mut t = Iblt::new(27, 3, salt);
                for &v in &values {
                    t.insert(v);
                }
                t
            };
            for (slot, count) in [(0usize, 1usize), (1, 2), (2, 4)] {
                let mut tables: Vec<Iblt> =
                    (0..count as u64).map(|i| build(seed * 31 + i)).collect();
                if !crate::pingpong::joint_decode(&mut tables).unwrap().complete {
                    failures[slot] += 1;
                }
            }
        }
        assert!(
            failures[2] <= failures[1] && failures[1] <= failures[0],
            "failures must be monotone in neighbor count: {failures:?}"
        );
    }

    #[test]
    fn subtraction_pair_pingpong() {
        // The Graphene use: differences (not raw sets) ping-pong decoded.
        let shared: Vec<u64> = (0..50).collect();
        let only_a = [1000u64, 1001];
        let mut a1 = Iblt::new(8, 3, 1);
        let mut a2 = Iblt::new(8, 3, 1);
        let mut b1 = Iblt::new(12, 4, 2);
        let mut b2 = Iblt::new(12, 4, 2);
        for &v in shared.iter().chain(&only_a) {
            a1.insert(v);
            b1.insert(v);
        }
        for &v in &shared {
            a2.insert(v);
            b2.insert(v);
        }
        let mut da = a1.subtract(&a2).unwrap();
        let mut db = b1.subtract(&b2).unwrap();
        let r = ping_pong_decode(&mut da, &mut db).unwrap();
        assert!(r.complete);
        assert_eq!(r.only_left, only_a.to_vec());
    }
}
