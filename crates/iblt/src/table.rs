//! The IBLT proper: construction, subtraction and peel decoding.

use crate::cell::{check_hash, Cell, CHECK_TAG};
use crate::{CELL_BYTES, HEADER_BYTES};
use core::fmt;
use graphene_hashes::{siphash24, siphash24_x4_u64, SipKey, SIP_LANES};

/// Errors surfaced by decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// A value decoded twice. A correctly built IBLT can never do this; it is
    /// the signature of the §6.1 endless-decode-loop attack (an item inserted
    /// into only `k-1` cells), so the peer should be banned.
    Malformed {
        /// The value that was recovered more than once.
        value: u64,
    },
    /// The two IBLTs in a subtraction have incompatible geometry.
    GeometryMismatch {
        /// `(cells, k, salt)` of the left operand.
        left: (usize, u32, u64),
        /// `(cells, k, salt)` of the right operand.
        right: (usize, u32, u64),
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Malformed { value } => {
                write!(f, "malformed IBLT: value {value:#x} decoded twice")
            }
            DecodeError::GeometryMismatch { left, right } => {
                write!(f, "IBLT geometry mismatch: {left:?} vs {right:?} (cells, k, salt)")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Reusable working memory for [`Iblt::peel_in_place`].
///
/// Peeling needs a worklist of candidate pure cells and a set of
/// already-decoded values (the §6.1 double-decode defense). Allocating both
/// per peel dominates the decode cost for the small IBLTs Graphene actually
/// ships, so callers that peel in a loop (ping-pong decoding, the parameter
/// search, netsim) hold one `PeelScratch` and reuse it. The seen-set is
/// generation-stamped: clearing it between peels is a counter bump, not a
/// rehash of the table.
#[derive(Debug, Default)]
pub struct PeelScratch {
    /// Worklist of candidate pure cell indexes.
    queue: Vec<usize>,
    /// Decoded values, stamped with the generation that decoded them.
    seen: std::collections::HashMap<u64, u32>,
    /// Current generation; entries with older stamps are logically absent.
    gen: u32,
    /// Cells awaiting batched checksum verification (`count == ±1`).
    cand: Vec<usize>,
    /// Per-peel key schedule: checksum key, then the `k` partition keys.
    keys: Vec<SipKey>,
    /// Hash outputs for one value under [`PeelScratch::keys`].
    hashes: Vec<u64>,
}

impl PeelScratch {
    /// Fresh scratch; equivalent to `PeelScratch::default()`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Logically empty the scratch without releasing its allocations.
    fn reset(&mut self) {
        self.queue.clear();
        self.gen = match self.gen.checked_add(1) {
            Some(g) => g,
            None => {
                // Generation counter wrapped: stale stamps could collide with
                // the new generation, so physically clear once per 2^32 peels.
                self.seen.clear();
                0
            }
        };
    }
}

/// Outcome of peeling an IBLT (typically a subtraction `A ⊖ B`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecodeResult {
    /// Values present in `A` but not `B` (cells that peeled at `count = 1`).
    pub only_left: Vec<u64>,
    /// Values present in `B` but not `A` (cells that peeled at `count = -1`).
    pub only_right: Vec<u64>,
    /// True if every cell emptied — the full symmetric difference was
    /// recovered. When false the lists hold a *partial* decoding (the
    /// hypergraph's 2-core blocked the rest), which ping-pong decoding can
    /// still build on (§4.2).
    pub complete: bool,
}

impl DecodeResult {
    /// Total number of recovered values.
    pub fn len(&self) -> usize {
        self.only_left.len() + self.only_right.len()
    }

    /// True if nothing was recovered.
    pub fn is_empty(&self) -> bool {
        self.only_left.is_empty() && self.only_right.is_empty()
    }
}

/// An Invertible Bloom Lookup Table over 8-byte values.
///
/// ```
/// use graphene_iblt::Iblt;
///
/// // Alice has {1,2,3,4}, Bob has {3,4,5}. Both build IBLTs with identical
/// // geometry and exchange them; the subtraction decodes the difference.
/// let mut a = Iblt::new(12, 3, 99);
/// let mut b = Iblt::new(12, 3, 99);
/// for v in [1u64, 2, 3, 4] { a.insert(v); }
/// for v in [3u64, 4, 5] { b.insert(v); }
/// let mut diff = a.subtract(&b).unwrap();
/// let mut result = diff.peel().unwrap();
/// result.only_left.sort();
/// assert_eq!(result.only_left, vec![1, 2]);
/// assert_eq!(result.only_right, vec![5]);
/// assert!(result.complete);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Iblt {
    cells: Vec<Cell>,
    k: u32,
    salt: u64,
}

impl Iblt {
    /// Create an IBLT with exactly `cells` cells (rounded **up** to a
    /// multiple of `k`, as the paper requires partitions of equal size),
    /// `k` hash functions, and a hash salt.
    ///
    /// Use `graphene-iblt-params` to choose `cells` and `k` for a target
    /// decode rate; this constructor is deliberately mechanism-only.
    pub fn new(cells: usize, k: u32, salt: u64) -> Self {
        let k = k.max(1);
        let cells = cells.max(k as usize);
        let cells = cells.div_ceil(k as usize) * k as usize;
        Iblt { cells: vec![Cell::default(); cells], k, salt }
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of hash functions (= partitions).
    pub fn hash_count(&self) -> u32 {
        self.k
    }

    /// The hash salt.
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// Borrow the raw cells (used by serialization and tests).
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Wire size in bytes.
    pub fn serialized_size(&self) -> usize {
        HEADER_BYTES + self.cells.len() * CELL_BYTES
    }

    fn apply(&mut self, value: u64, sign: i32) {
        let check = check_hash(self.salt, value);
        let part = self.cells.len() / self.k as usize;
        for i in 0..self.k {
            self.cells[cell_index(self.salt, part, i, value)].apply(value, check, sign);
        }
    }

    /// Insert a value (multiset semantics).
    pub fn insert(&mut self, value: u64) {
        self.apply(value, 1);
    }

    /// Erase a value (the inverse of [`Iblt::insert`]; erasing an absent
    /// value leaves a `-1` entry that decodes on the "right" side).
    pub fn erase(&mut self, value: u64) {
        self.apply(value, -1);
    }

    /// Fault injection: insert `value` into only the first `copies` of its
    /// `k` cells — the §6.1 malformed-IBLT attack, where a peer crafts a
    /// table whose peel would recover the same value twice and (absent the
    /// double-decode check) loop forever. Honest code never calls this; it
    /// exists so adversarial tests and netsim's attacker model can
    /// manufacture provably malformed tables.
    pub fn insert_partial(&mut self, value: u64, copies: u32) {
        let check = check_hash(self.salt, value);
        let part = self.cells.len() / self.k as usize;
        for i in 0..self.k.min(copies) {
            self.cells[cell_index(self.salt, part, i, value)].apply(value, check, 1);
        }
    }

    /// Cell-wise subtraction `self ⊖ other`. Both IBLTs must share geometry
    /// (cell count, `k`, salt); the result decodes to the symmetric
    /// difference of the two inserted multisets.
    pub fn subtract(&self, other: &Iblt) -> Result<Iblt, DecodeError> {
        if self.cells.len() != other.cells.len() || self.k != other.k || self.salt != other.salt {
            return Err(DecodeError::GeometryMismatch {
                left: (self.cells.len(), self.k, self.salt),
                right: (other.cells.len(), other.k, other.salt),
            });
        }
        let cells = self.cells.iter().zip(&other.cells).map(|(a, b)| a.subtract(b)).collect();
        Ok(Iblt { cells, k: self.k, salt: self.salt })
    }

    /// Cell-wise subtraction `self ⊖ other` written into `out`, reusing
    /// `out`'s cell buffer instead of allocating a fresh table. `out`'s prior
    /// contents are irrelevant; on success it has `self`'s geometry.
    pub fn subtract_into(&self, other: &Iblt, out: &mut Iblt) -> Result<(), DecodeError> {
        if self.cells.len() != other.cells.len() || self.k != other.k || self.salt != other.salt {
            return Err(DecodeError::GeometryMismatch {
                left: (self.cells.len(), self.k, self.salt),
                right: (other.cells.len(), other.k, other.salt),
            });
        }
        out.k = self.k;
        out.salt = self.salt;
        out.cells.clear();
        out.cells.extend(self.cells.iter().zip(&other.cells).map(|(a, b)| a.subtract(b)));
        Ok(())
    }

    /// In-place subtraction from the *left*: `self ← left ⊖ self`.
    ///
    /// This is the decode-side hot path — the receiver rebuilds its local
    /// IBLT (`self`), subtracts it from the sender's (`left`) and peels, so
    /// the local table can be consumed as the difference buffer instead of
    /// allocating a third table per decode attempt.
    pub fn subtract_from(&mut self, left: &Iblt) -> Result<(), DecodeError> {
        if self.cells.len() != left.cells.len() || self.k != left.k || self.salt != left.salt {
            return Err(DecodeError::GeometryMismatch {
                left: (left.cells.len(), left.k, left.salt),
                right: (self.cells.len(), self.k, self.salt),
            });
        }
        for (mine, l) in self.cells.iter_mut().zip(&left.cells) {
            *mine = l.subtract(mine);
        }
        Ok(())
    }

    /// Peel the IBLT, consuming pure cells until none remain.
    ///
    /// Returns the recovered values split by sign and whether decoding
    /// completed. Returns `Err(Malformed)` if any value decodes twice (§6.1
    /// defense). `self` is left in the partially peeled state, which is
    /// exactly what ping-pong decoding needs.
    pub fn peel(&mut self) -> Result<DecodeResult, DecodeError> {
        self.peel_in_place(&mut PeelScratch::new())
    }

    /// [`Iblt::peel`] with caller-provided working memory, so loops that
    /// decode many tables (ping-pong, the parameter search, netsim) pay for
    /// the worklist and seen-set allocations once instead of per attempt.
    /// Forwards to [`Iblt::peel_partitioned`]; the element-at-a-time
    /// reference survives as `ref_peel_cells` in `graphene-bench`.
    pub fn peel_in_place(
        &mut self,
        scratch: &mut PeelScratch,
    ) -> Result<DecodeResult, DecodeError> {
        self.peel_partitioned(scratch)
    }

    /// The batched peel: partition-sequential seeding plus interleaved
    /// hashing, bit-identical to the scalar peel.
    ///
    /// The paper's IBLT is already partitioned — hash `i` only ever lands in
    /// the disjoint index range `[i·(c/k), (i+1)·(c/k))` — so the seed scan
    /// walks the partitions in sequence, collecting `count == ±1` candidates
    /// and verifying their checksums [`SIP_LANES`] at a time. Concatenating
    /// the partitions' verified candidates in partition order *is* the
    /// scalar reference's ascending-index seed order, which is what makes
    /// the merge deterministic and the output order unchanged.
    ///
    /// In the peel loop proper, each popped value needs `k + 1` independent
    /// hashes (its checksum plus one index hash per partition) and the
    /// post-removal purity re-checks need up to `k` more; both sets are
    /// computed with interleaved lanes. The k touched cells lie in distinct
    /// partitions, so deferring their purity checks until after all `k`
    /// removals cannot change any outcome — the re-queue order (ascending
    /// `i`) matches the scalar loop exactly, as the equivalence proptests
    /// assert element for element.
    pub fn peel_partitioned(
        &mut self,
        scratch: &mut PeelScratch,
    ) -> Result<DecodeResult, DecodeError> {
        let mut result = DecodeResult::default();
        scratch.reset();
        let gen = scratch.gen;
        let part = self.cells.len() / self.k as usize;
        // Key schedule, fixed for the whole peel: checksum key first, then
        // the partition keys in partition order (so `hashes[1 + i]` below is
        // partition i's raw index hash).
        scratch.keys.clear();
        scratch.keys.push(SipKey::new(self.salt, CHECK_TAG));
        scratch.keys.extend((0..self.k).map(|i| SipKey::new(self.salt, INDEX_TAG + i as u64)));
        // Seed worklist: partition-sequential candidate scan, checksums
        // verified in batches.
        scratch.cand.clear();
        scratch
            .cand
            .extend((0..self.cells.len()).filter(|&i| matches!(self.cells[i].count, 1 | -1)));
        push_pure_batch(&self.cells, self.salt, &scratch.cand, &mut scratch.queue);
        while let Some(idx) = scratch.queue.pop() {
            let cell = self.cells[idx];
            if !matches!(cell.count, 1 | -1) {
                continue; // stale queue entry
            }
            let value = cell.key_sum;
            // One interleaved batch yields the checksum and every partition
            // hash this value needs; the scalar loop recomputes them one
            // dependency chain at a time.
            hash_value_batch(&scratch.keys, value, &mut scratch.hashes);
            let check = scratch.hashes[0] as u32;
            if cell.check_sum != check {
                continue; // stale queue entry (no longer pure)
            }
            let sign = cell.count; // ±1
                                   // Track decoded values to detect the malformed-IBLT attack
                                   // (§6.1); stamps older than `gen` are leftovers from earlier
                                   // peels with this scratch and count as absent.
            if scratch.seen.insert(value, gen) == Some(gen) {
                return Err(DecodeError::Malformed { value });
            }
            if sign == 1 {
                result.only_left.push(value);
            } else {
                result.only_right.push(value);
            }
            // Remove the value from all k cells (including this one); the
            // cells are in distinct partitions, so their purity re-checks
            // can run as one batch after the removals.
            scratch.cand.clear();
            for i in 0..self.k as usize {
                let idx = i * part + (scratch.hashes[1 + i] % part as u64) as usize;
                self.cells[idx].apply(value, check, -sign);
                if matches!(self.cells[idx].count, 1 | -1) {
                    scratch.cand.push(idx);
                }
            }
            push_pure_batch(&self.cells, self.salt, &scratch.cand, &mut scratch.queue);
        }
        result.complete = self.cells.iter().all(Cell::is_empty_cell);
        Ok(result)
    }

    /// Convenience: peel a clone, leaving `self` untouched.
    pub fn peel_clone(&self) -> Result<DecodeResult, DecodeError> {
        self.clone().peel()
    }

    /// Remove an externally recovered value from this IBLT, with the sign it
    /// decoded at elsewhere (`+1`: subtract; `-1`: add back). This is the
    /// transfer step of ping-pong decoding (§4.2).
    pub fn cancel(&mut self, value: u64, sign: i32) {
        self.apply(value, -sign);
    }

    /// True if every cell is empty (nothing left to decode).
    pub fn is_drained(&self) -> bool {
        self.cells.iter().all(Cell::is_empty_cell)
    }

    /// Serialize: header (`cells: u32`, `k: u8`, `salt: u64`) then cells as
    /// (`count: i32`, `key_sum: u64`, `check_sum: u32`), all little-endian.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_size());
        self.write_bytes(&mut out);
        out
    }

    /// Append the serialized form to `out` without allocating a temporary —
    /// byte-identical to [`Iblt::to_bytes`]. This is the wire encoder's
    /// reusable-buffer path (it also lets `graphene-wire` drop its
    /// clone-per-encode of the whole cell array).
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        out.reserve(self.serialized_size());
        out.extend_from_slice(&(self.cells.len() as u32).to_le_bytes());
        out.push(self.k as u8);
        out.extend_from_slice(&self.salt.to_le_bytes());
        for cell in &self.cells {
            out.extend_from_slice(&cell.count.to_le_bytes());
            out.extend_from_slice(&cell.key_sum.to_le_bytes());
            out.extend_from_slice(&cell.check_sum.to_le_bytes());
        }
    }

    /// Deserialize from [`Iblt::to_bytes`] output. Returns `None` on
    /// truncation or if the header is inconsistent.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < HEADER_BYTES {
            return None;
        }
        let ncells = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
        let k = bytes[4] as u32;
        let salt = u64::from_le_bytes(bytes[5..13].try_into().ok()?);
        if k == 0 || ncells == 0 || !ncells.is_multiple_of(k as usize) {
            return None;
        }
        let body = &bytes[HEADER_BYTES..];
        if body.len() != ncells * CELL_BYTES {
            return None;
        }
        let mut cells = Vec::with_capacity(ncells);
        for chunk in body.chunks_exact(CELL_BYTES) {
            cells.push(Cell {
                count: i32::from_le_bytes(chunk[0..4].try_into().ok()?),
                key_sum: u64::from_le_bytes(chunk[4..12].try_into().ok()?),
                check_sum: u32::from_le_bytes(chunk[12..16].try_into().ok()?),
            });
        }
        Some(Iblt { cells, k, salt })
    }
}

/// Key-derivation tag of partition hash `i` (tag + `i`, paired with the
/// salt). The batched peel builds its key schedule from it so interleaved
/// index hashes agree with [`cell_index`] bit for bit.
const INDEX_TAG: u64 = 0x4942_4c54_0000;

/// The i-th cell index for `value` under the paper's partition scheme: cell
/// `i·(c/k) + h_i(value) mod (c/k)`. Free function (not a method) so callers
/// holding `&mut self.cells` can compute indexes without a borrow conflict —
/// this is what lets insert/peel run without collecting indexes into a `Vec`.
#[inline]
fn cell_index(salt: u64, part: usize, i: u32, value: u64) -> usize {
    let h = siphash24(SipKey::new(salt, INDEX_TAG + i as u64), &value.to_le_bytes());
    i as usize * part + (h % part as u64) as usize
}

/// Batched purity verification: append to `queue` — in candidate order —
/// every cell of `cand` whose checksum confirms it pure, computing
/// [`SIP_LANES`] checksums in interleaved flight per iteration. Candidates
/// must already satisfy `count == ±1`; spare lanes of a ragged final chunk
/// repeat lane 0 and are discarded.
fn push_pure_batch(cells: &[Cell], salt: u64, cand: &[usize], queue: &mut Vec<usize>) {
    let keys = [SipKey::new(salt, CHECK_TAG); SIP_LANES];
    for chunk in cand.chunks(SIP_LANES) {
        let mut vals = [0u64; SIP_LANES];
        for (l, &ci) in chunk.iter().enumerate() {
            vals[l] = cells[ci].key_sum;
        }
        for l in chunk.len()..SIP_LANES {
            vals[l] = vals[0];
        }
        let h = siphash24_x4_u64(&keys, &vals);
        for (l, &ci) in chunk.iter().enumerate() {
            if cells[ci].check_sum == h[l] as u32 {
                queue.push(ci);
            }
        }
    }
}

/// All `keys.len()` hashes of one value in interleaved batches: `out[j]` is
/// SipHash-2-4 of `value`'s little-endian bytes under `keys[j]`. With the
/// peel's key schedule that means `out[0]` is the checksum and `out[1 + i]`
/// partition `i`'s raw index hash. Spare lanes repeat lane 0.
fn hash_value_batch(keys: &[SipKey], value: u64, out: &mut Vec<u64>) {
    out.clear();
    let vals = [value; SIP_LANES];
    for chunk in keys.chunks(SIP_LANES) {
        let mut ks = [chunk[0]; SIP_LANES];
        ks[..chunk.len()].copy_from_slice(chunk);
        let h = siphash24_x4_u64(&ks, &vals);
        out.extend_from_slice(&h[..chunk.len()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(values: &[u64], cells: usize, k: u32, salt: u64) -> Iblt {
        let mut t = Iblt::new(cells, k, salt);
        for &v in values {
            t.insert(v);
        }
        t
    }

    #[test]
    fn cell_count_rounds_up_to_multiple_of_k() {
        let t = Iblt::new(10, 3, 0);
        assert_eq!(t.cell_count(), 12);
        assert_eq!(Iblt::new(12, 3, 0).cell_count(), 12);
        assert_eq!(Iblt::new(1, 4, 0).cell_count(), 4);
    }

    #[test]
    fn simple_symmetric_difference() {
        let a = filled(&[1, 2, 3, 4, 5], 30, 3, 7);
        let b = filled(&[4, 5, 6, 7], 30, 3, 7);
        let mut d = a.subtract(&b).unwrap();
        let mut r = d.peel().unwrap();
        assert!(r.complete);
        r.only_left.sort();
        r.only_right.sort();
        assert_eq!(r.only_left, vec![1, 2, 3]);
        assert_eq!(r.only_right, vec![6, 7]);
    }

    #[test]
    fn identical_sets_drain_to_nothing() {
        let a = filled(&[10, 20, 30], 12, 3, 1);
        let b = filled(&[30, 10, 20], 12, 3, 1);
        let mut d = a.subtract(&b).unwrap();
        let r = d.peel().unwrap();
        assert!(r.complete);
        assert!(r.is_empty());
    }

    #[test]
    fn direct_decode_without_subtraction() {
        let mut t = filled(&[100, 200, 300], 24, 4, 2);
        let mut r = t.peel().unwrap();
        assert!(r.complete);
        r.only_left.sort();
        assert_eq!(r.only_left, vec![100, 200, 300]);
        assert!(t.is_drained());
    }

    #[test]
    fn erase_creates_negative_entries() {
        let mut t = Iblt::new(12, 3, 3);
        t.erase(55);
        let r = t.peel().unwrap();
        assert!(r.complete);
        assert_eq!(r.only_right, vec![55]);
    }

    #[test]
    fn geometry_mismatch_detected() {
        let a = Iblt::new(12, 3, 0);
        for b in [Iblt::new(24, 3, 0), Iblt::new(12, 4, 0), Iblt::new(12, 3, 9)] {
            assert!(matches!(a.subtract(&b), Err(DecodeError::GeometryMismatch { .. })));
        }
    }

    #[test]
    fn overload_fails_gracefully() {
        // 6 cells cannot hold a 50-item difference: decode must report
        // incomplete, not loop or panic.
        let t = filled(&(0u64..50).collect::<Vec<_>>(), 6, 3, 4);
        let mut d = t.clone();
        let r = d.peel().unwrap();
        assert!(!r.complete);
        assert!(r.len() < 50);
    }

    #[test]
    fn partial_decode_is_consistent() {
        // Whatever *is* recovered from an overloaded IBLT must be a subset of
        // the true difference.
        let values: Vec<u64> = (1000..1060).collect();
        let t = filled(&values, 24, 3, 5);
        let mut d = t.clone();
        let r = d.peel().unwrap();
        for v in r.only_left.iter().chain(&r.only_right) {
            assert!(values.contains(v), "phantom value {v}");
        }
    }

    #[test]
    fn malformed_iblt_detected() {
        // §6.1 attack: insert a value into only k-1 cells by manipulating raw
        // cells. Peeling the honest construction of the same value then
        // yields a -1 phantom that re-decodes the value; the defense fires.
        let mut attacker = Iblt::new(12, 3, 6);
        let value = 0xbad;
        let check = check_hash(6, value);
        let part = attacker.cells.len() / attacker.k as usize;
        let idxs: Vec<usize> = (0..attacker.k).map(|i| cell_index(6, part, i, value)).collect();
        // Insert into only the first k-1 cells.
        for &i in &idxs[..2] {
            attacker.cells[i].apply(value, check, 1);
        }
        // The receiver subtracts an IBLT containing the honest insertion.
        let honest = filled(&[value], 12, 3, 6);
        let mut d = attacker.subtract(&honest).unwrap();
        match d.peel() {
            // Either the defense fires...
            Err(DecodeError::Malformed { value: v }) => assert_eq!(v, value),
            // ...or the peel terminates without looping (also acceptable:
            // the attack's goal was an endless loop).
            Ok(r) => assert!(!r.complete || r.len() <= 2),
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn decode_rate_reasonable_when_sized_generously() {
        // τ = 3, k = 4 for 20 items: decodes nearly always. (Small IBLTs
        // need a large hedge — exactly the paper's Fig. 7 observation; the
        // precise τ for a target rate comes from graphene-iblt-params.)
        let mut failures = 0;
        for trial in 0..200u64 {
            let values: Vec<u64> = (0..20).map(|i| trial * 1000 + i).collect();
            let t = filled(&values, 60, 4, trial);
            let r = t.clone().peel().unwrap();
            if !r.complete {
                failures += 1;
            }
        }
        assert!(failures <= 4, "{failures}/200 failures at τ=3");
    }

    #[test]
    fn serialization_roundtrip() {
        let t = filled(&[9, 8, 7, 6], 24, 3, 42);
        let bytes = t.to_bytes();
        assert_eq!(bytes.len(), t.serialized_size());
        let back = Iblt::from_bytes(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn deserialization_rejects_corruption() {
        let t = filled(&[1, 2, 3], 12, 3, 1);
        let bytes = t.to_bytes();
        assert!(Iblt::from_bytes(&bytes[..5]).is_none()); // truncated header
        assert!(Iblt::from_bytes(&bytes[..bytes.len() - 1]).is_none()); // truncated body
        let mut bad_k = bytes.clone();
        bad_k[4] = 0;
        assert!(Iblt::from_bytes(&bad_k).is_none());
        let mut bad_cells = bytes.clone();
        bad_cells[0..4].copy_from_slice(&7u32.to_le_bytes()); // 7 % 3 != 0
        assert!(Iblt::from_bytes(&bad_cells).is_none());
    }

    #[test]
    fn partial_insert_triggers_malformed_detection() {
        // The §6.1 attack: one value present in only k−1 of its cells. When
        // the rest of the table peels cleanly, the value decodes from one of
        // its k−1 cells, removal at all k indexes leaves a phantom −1 copy
        // in the untouched cell, and that phantom decodes the same value
        // again — which peel() must report as Malformed, not loop on.
        let mut detected = 0;
        for salt in 0..20u64 {
            let mut evil = Iblt::new(30, 3, salt);
            for v in 1..=4u64 {
                evil.insert(v);
            }
            evil.insert_partial(0xbad, 2);
            let honest = filled(&[1, 2, 3, 4], 30, 3, salt);
            let mut d = evil.subtract(&honest).unwrap();
            match d.peel() {
                Err(DecodeError::Malformed { value }) => {
                    assert_eq!(value, 0xbad);
                    detected += 1;
                }
                Ok(r) => assert!(!r.complete, "a partial insert cannot decode cleanly"),
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        // Detection depends on the phantom cell staying pure; with a small
        // clean difference it should be the overwhelmingly common case.
        assert!(detected >= 15, "only {detected}/20 malformed tables detected");
    }

    #[test]
    fn subtract_into_and_from_match_subtract() {
        let a = filled(&[1, 2, 3, 4, 5], 30, 3, 7);
        let b = filled(&[4, 5, 6, 7], 30, 3, 7);
        let reference = a.subtract(&b).unwrap();

        let mut out = Iblt::new(3, 1, 0); // wrong geometry; must be overwritten
        a.subtract_into(&b, &mut out).unwrap();
        assert_eq!(out, reference);

        let mut in_place = b.clone();
        in_place.subtract_from(&a).unwrap();
        assert_eq!(in_place, reference);

        // Geometry mismatches are still caught.
        let odd = Iblt::new(12, 4, 7);
        assert!(matches!(
            a.subtract_into(&odd, &mut out),
            Err(DecodeError::GeometryMismatch { .. })
        ));
        let mut odd2 = odd.clone();
        assert!(matches!(odd2.subtract_from(&a), Err(DecodeError::GeometryMismatch { .. })));
    }

    #[test]
    fn peel_in_place_scratch_reuse_is_equivalent() {
        // The same scratch across many peels (including a Malformed abort in
        // the middle) must give the same answers as fresh-scratch peels.
        let mut scratch = PeelScratch::new();
        for salt in 0..30u64 {
            let values: Vec<u64> = (0..15).map(|i| salt * 1000 + i).collect();
            let t = filled(&values, 24, 3, salt);
            let reference = t.clone().peel().unwrap();
            let reused = t.clone().peel_in_place(&mut scratch).unwrap();
            assert_eq!(reference, reused, "salt {salt}");

            // A malformed table mid-stream must not poison later peels.
            let mut evil = filled(&values, 24, 3, salt);
            evil.insert_partial(0xbad, 2);
            let mut honest = filled(&values, 24, 3, salt);
            honest.insert(0xbad);
            let mut d = evil.subtract(&honest).unwrap();
            let want = d.clone().peel();
            assert_eq!(want, d.peel_in_place(&mut scratch), "malformed salt {salt}");
        }
    }

    #[test]
    fn write_bytes_matches_to_bytes() {
        let t = filled(&[9, 8, 7, 6], 24, 3, 42);
        let mut appended = vec![0xaa]; // pre-existing prefix survives
        t.write_bytes(&mut appended);
        assert_eq!(&appended[..1], &[0xaa]);
        assert_eq!(&appended[1..], t.to_bytes().as_slice());
    }

    #[test]
    fn multiset_semantics() {
        // Inserting a value twice: count 2 in its cells; subtracting one copy
        // leaves one decodable copy.
        let mut a = Iblt::new(12, 3, 8);
        a.insert(77);
        a.insert(77);
        let b = filled(&[77], 12, 3, 8);
        let mut d = a.subtract(&b).unwrap();
        let r = d.peel().unwrap();
        assert!(r.complete);
        assert_eq!(r.only_left, vec![77]);
    }
}
