//! Property-based tests for IBLT invariants.

use graphene_iblt::rateless::MAX_CELLS_PER_BATCH;
use graphene_iblt::{
    CellStream, DecodeProgress, Iblt, RatelessDecoder, RatelessDiff, CELL_BYTES, HEADER_BYTES,
};
use proptest::prelude::*;
use std::collections::HashSet;

/// Distinct synthetic values (odd, so never zero).
fn val(i: u64) -> u64 {
    i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1
}

/// Drive an honest sender/receiver pair to completion, batch-by-batch.
/// Returns `(cells_consumed, diff)`.
fn reconcile(salt: u64, remote: &[u64], local: &[u64]) -> (u64, RatelessDiff) {
    let mut s = CellStream::new(salt, remote.iter().copied());
    let mut d = RatelessDecoder::new(salt, local.iter().copied());
    let mut batch = 8usize;
    loop {
        let start = s.emitted();
        let cells = s.cells(batch);
        match d.push_cells(start, &cells).expect("honest stream must not be malformed") {
            DecodeProgress::Decoded(diff) => return (s.emitted(), diff),
            DecodeProgress::NeedMore(n) => batch = n.min(MAX_CELLS_PER_BATCH),
        }
        assert!(s.emitted() < 4_000_000, "decoder failed to converge");
    }
}

proptest! {
    /// Serialization round-trips for arbitrary contents and geometry.
    #[test]
    fn serialization_roundtrip(
        values in proptest::collection::vec(any::<u64>(), 0..60),
        cells in 3usize..120,
        k in 2u32..8,
        salt: u64,
    ) {
        let mut t = Iblt::new(cells, k, salt);
        for v in &values {
            t.insert(*v);
        }
        let bytes = t.to_bytes();
        prop_assert_eq!(bytes.len(), t.serialized_size());
        prop_assert_eq!(bytes.len(), HEADER_BYTES + t.cell_count() * CELL_BYTES);
        let back = Iblt::from_bytes(&bytes).expect("roundtrip");
        prop_assert_eq!(back, t);
    }

    /// Insert-then-erase of any multiset leaves an empty table.
    #[test]
    fn insert_erase_cancels(
        values in proptest::collection::vec(any::<u64>(), 0..50),
        salt: u64,
    ) {
        let mut t = Iblt::new(30, 3, salt);
        for v in &values {
            t.insert(*v);
        }
        for v in &values {
            t.erase(*v);
        }
        prop_assert!(t.is_drained());
    }

    /// Subtraction is anticommutative: sides of A⊖B are swapped in B⊖A.
    #[test]
    fn subtraction_anticommutative(
        a_vals in proptest::collection::hash_set(any::<u64>(), 0..15),
        b_vals in proptest::collection::hash_set(any::<u64>(), 0..15),
        salt: u64,
    ) {
        let mut a = Iblt::new(90, 3, salt);
        let mut b = Iblt::new(90, 3, salt);
        for v in &a_vals { a.insert(*v); }
        for v in &b_vals { b.insert(*v); }
        let mut ab = a.subtract(&b).unwrap();
        let mut ba = b.subtract(&a).unwrap();
        let rab = ab.peel().unwrap();
        let rba = ba.peel().unwrap();
        if rab.complete && rba.complete {
            let l1: HashSet<u64> = rab.only_left.iter().copied().collect();
            let r2: HashSet<u64> = rba.only_right.iter().copied().collect();
            prop_assert_eq!(l1, r2);
            let r1: HashSet<u64> = rab.only_right.iter().copied().collect();
            let l2: HashSet<u64> = rba.only_left.iter().copied().collect();
            prop_assert_eq!(r1, l2);
        }
    }

    /// Peeling never recovers values that were not inserted, complete or not.
    #[test]
    fn no_phantom_values(
        values in proptest::collection::hash_set(any::<u64>(), 1..80),
        cells in 6usize..60,
        salt: u64,
    ) {
        let mut t = Iblt::new(cells, 3, salt);
        for v in &values {
            t.insert(*v);
        }
        if let Ok(r) = t.peel() {
            for v in r.only_left.iter().chain(&r.only_right) {
                prop_assert!(values.contains(v), "phantom value {v}");
            }
            // Only-right can never appear from pure insertions.
            prop_assert!(r.only_right.is_empty());
        }
    }

    /// from_bytes on arbitrary byte soup never panics.
    #[test]
    fn from_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = Iblt::from_bytes(&bytes);
    }
}

proptest! {
    /// The rateless decoder converges for any difference size 1–10 000,
    /// two-sided in any ratio, and consumes cells within a constant factor
    /// of the difference — the "no retry cliff" guarantee: cost scales with
    /// the actual `d`, never with how wrong an up-front estimate was.
    #[test]
    fn rateless_converges_for_any_difference_size(
        d in 1usize..=10_000,
        shared_n in 0usize..1500,
        split_pct in 0usize..=100,
        salt: u64,
    ) {
        let remote_only = (d * split_pct) / 100;
        let local_only = d - remote_only;
        let shared: Vec<u64> = (0..shared_n as u64).map(val).collect();
        let mut remote = shared.clone();
        remote.extend((0..remote_only as u64).map(|i| val(1_000_000 + i)));
        let mut local = shared;
        local.extend((0..local_only as u64).map(|i| val(2_000_000 + i)));

        let (cells, diff) = reconcile(salt, &remote, &local);
        prop_assert_eq!(diff.only_remote.len(), remote_only);
        prop_assert_eq!(diff.only_local.len(), local_only);
        // ~1.35·d–2·d cells suffice; geometric batch growth overshoots by
        // at most 2×, so 8·d + one minimal batch is a safe constant factor.
        prop_assert!(
            cells <= 8 * d as u64 + 8,
            "difference {} took {} cells", d, cells
        );
    }

    /// The rateless decode recovers exactly the set a generously-sized
    /// fixed IBLT peels for the same difference — same answer, no estimate.
    #[test]
    fn rateless_matches_fixed_iblt_peel(
        remote_only in proptest::collection::hash_set(any::<u64>(), 0..40),
        local_only in proptest::collection::hash_set(any::<u64>(), 0..40),
        shared_n in 0usize..200,
        salt in any::<u64>(),
    ) {
        let remote_only: Vec<u64> =
            remote_only.difference(&local_only).copied().collect();
        let shared: Vec<u64> = (0..shared_n as u64).map(val).collect();
        prop_assume!(remote_only.iter().all(|v| !shared.contains(v)));
        prop_assume!(local_only.iter().all(|v| !shared.contains(v)));
        let mut remote = shared.clone();
        remote.extend(remote_only.iter().copied());
        let mut local = shared;
        local.extend(local_only.iter().copied());

        let (_, diff) = reconcile(salt, &remote, &local);

        let iblt_salt = salt & 0xffff; // fixed-table salt domain is narrower
        let cells = 4 * (remote_only.len() + local_only.len()) + 24;
        let mut a = Iblt::new(cells, 3, iblt_salt);
        let mut b = Iblt::new(cells, 3, iblt_salt);
        for v in &remote { a.insert(*v); }
        for v in &local { b.insert(*v); }
        let mut delta = a.subtract(&b).expect("same geometry");
        let r = delta.peel().expect("clean peel");
        prop_assume!(r.complete); // a generous table virtually always peels
        let mut left = r.only_left;
        let mut right = r.only_right;
        left.sort_unstable();
        right.sort_unstable();
        prop_assert_eq!(diff.only_remote, left);
        prop_assert_eq!(diff.only_local, right);
    }
}
