//! Property-based tests for IBLT invariants.

use graphene_iblt::{Iblt, CELL_BYTES, HEADER_BYTES};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Serialization round-trips for arbitrary contents and geometry.
    #[test]
    fn serialization_roundtrip(
        values in proptest::collection::vec(any::<u64>(), 0..60),
        cells in 3usize..120,
        k in 2u32..8,
        salt: u64,
    ) {
        let mut t = Iblt::new(cells, k, salt);
        for v in &values {
            t.insert(*v);
        }
        let bytes = t.to_bytes();
        prop_assert_eq!(bytes.len(), t.serialized_size());
        prop_assert_eq!(bytes.len(), HEADER_BYTES + t.cell_count() * CELL_BYTES);
        let back = Iblt::from_bytes(&bytes).expect("roundtrip");
        prop_assert_eq!(back, t);
    }

    /// Insert-then-erase of any multiset leaves an empty table.
    #[test]
    fn insert_erase_cancels(
        values in proptest::collection::vec(any::<u64>(), 0..50),
        salt: u64,
    ) {
        let mut t = Iblt::new(30, 3, salt);
        for v in &values {
            t.insert(*v);
        }
        for v in &values {
            t.erase(*v);
        }
        prop_assert!(t.is_drained());
    }

    /// Subtraction is anticommutative: sides of A⊖B are swapped in B⊖A.
    #[test]
    fn subtraction_anticommutative(
        a_vals in proptest::collection::hash_set(any::<u64>(), 0..15),
        b_vals in proptest::collection::hash_set(any::<u64>(), 0..15),
        salt: u64,
    ) {
        let mut a = Iblt::new(90, 3, salt);
        let mut b = Iblt::new(90, 3, salt);
        for v in &a_vals { a.insert(*v); }
        for v in &b_vals { b.insert(*v); }
        let mut ab = a.subtract(&b).unwrap();
        let mut ba = b.subtract(&a).unwrap();
        let rab = ab.peel().unwrap();
        let rba = ba.peel().unwrap();
        if rab.complete && rba.complete {
            let l1: HashSet<u64> = rab.only_left.iter().copied().collect();
            let r2: HashSet<u64> = rba.only_right.iter().copied().collect();
            prop_assert_eq!(l1, r2);
            let r1: HashSet<u64> = rab.only_right.iter().copied().collect();
            let l2: HashSet<u64> = rba.only_left.iter().copied().collect();
            prop_assert_eq!(r1, l2);
        }
    }

    /// Peeling never recovers values that were not inserted, complete or not.
    #[test]
    fn no_phantom_values(
        values in proptest::collection::hash_set(any::<u64>(), 1..80),
        cells in 6usize..60,
        salt: u64,
    ) {
        let mut t = Iblt::new(cells, 3, salt);
        for v in &values {
            t.insert(*v);
        }
        if let Ok(r) = t.peel() {
            for v in r.only_left.iter().chain(&r.only_right) {
                prop_assert!(values.contains(v), "phantom value {v}");
            }
            // Only-right can never appear from pure insertions.
            prop_assert!(r.only_right.is_empty());
        }
    }

    /// from_bytes on arbitrary byte soup never panics.
    #[test]
    fn from_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = Iblt::from_bytes(&bytes);
    }
}
