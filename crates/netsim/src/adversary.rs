//! Adversarial peer model: fault injection at the protocol layer.
//!
//! Link-level faults (drop / corrupt) model an unreliable network; this
//! module models a *hostile peer* — one that speaks the protocol well
//! enough to pass wire decoding but lies in the payload. The attacks are
//! the ones the paper analyses: the §6.1 malformed-IBLT attack (insert a
//! value into only `k−1` of its cells so the victim's peeling loop
//! recovers it twice), §6.2 resource-exhaustion via oversized filters,
//! inconsistent declared counts, stalling (accept the request, never
//! answer), and garbage repair responses.
//!
//! An adversarial peer is honest on its *receiving* side — it decodes and
//! stores blocks normally — but mangles what it serves. All mangling
//! decisions are drawn from a counter-based deterministic stream so
//! simulations stay bit-identical for any thread count.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use graphene_blockchain::Transaction;
use graphene_bloom::BloomFilter;
use graphene_wire::Message;

/// How a peer behaves as a block server.
#[derive(Clone, Debug, Default)]
pub enum Behavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Mangles served messages per the attached configuration.
    Adversarial(AdversaryConfig),
}

/// Per-attack firing probabilities (each checked independently per
/// served message) plus the adversary's private decision seed.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdversaryConfig {
    /// Insert a phantom value into k−1 IBLT cells (§6.1 double-decode).
    pub malformed_iblt: f64,
    /// Replace an outgoing Bloom filter with one far beyond the §6.2 cap.
    pub oversized_filter: f64,
    /// Declare a block transaction count inconsistent with the payload.
    pub count_skew: f64,
    /// Accept the request but never answer (response silently dropped).
    pub stall: f64,
    /// Answer repair requests with well-formed but useless transactions.
    pub garbage: f64,
    /// Answer correctly but late: hold each response back by
    /// [`tarpit_hold`](Self::tarpit_hold). The payload is honest, so the
    /// attack is never provable — it only works by soaking up sessions,
    /// which is exactly what the adaptive failure detector punishes.
    pub tarpit: f64,
    /// Extra delay a tarpitted response is held for. Tuned (in sweeps) to
    /// sit *under* the fixed 2 s timer's jitter floor but *over* the
    /// adaptive arm's 1 s initial RTO, so only the adaptive arm reacts.
    pub tarpit_hold: crate::time::SimTime,
    /// Decision-stream seed.
    pub seed: u64,
}

/// SplitMix64 finalizer.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One uniform draw in [0,1) from `(seed, nonce, channel)`.
fn roll(seed: u64, nonce: u64, channel: u64) -> f64 {
    let h = mix64(seed ^ nonce.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ channel);
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A well-formed transaction that belongs to no block.
fn garbage_txn(seed: u64, nonce: u64, i: u64) -> Transaction {
    let h = mix64(seed ^ nonce ^ i.wrapping_mul(0xa076_1d64_78bd_642f));
    let mut payload = Vec::with_capacity(24);
    payload.extend_from_slice(b"garbage:");
    payload.extend_from_slice(&h.to_le_bytes());
    payload.extend_from_slice(&i.to_le_bytes());
    Transaction::new(payload)
}

/// A Bloom filter comfortably beyond [`crate::caps::MessageCaps`]'
/// default `max_filter_bytes` (but small enough to encode quickly).
fn oversized_filter(salt: u64) -> BloomFilter {
    BloomFilter::new(75_000, 0.001, salt)
}

impl AdversaryConfig {
    /// Mangle one outgoing message. `nonce` is the peer's private decision
    /// counter, advanced once per served message by the caller. Returns
    /// `None` when the adversary stalls (the message is never sent).
    pub fn mangle(&self, nonce: u64, msg: Message) -> Option<Message> {
        if self.stall > 0.0 && roll(self.seed, nonce, 0x57a1) < self.stall && stallable(&msg) {
            return None;
        }
        Some(match msg {
            Message::GrapheneBlock(mut m) => {
                if self.malformed_iblt > 0.0 && roll(self.seed, nonce, 0x1b17) < self.malformed_iblt
                {
                    let copies = m.iblt_i.hash_count().saturating_sub(1).max(1);
                    let phantom = mix64(self.seed ^ nonce) | 1;
                    m.iblt_i.insert_partial(phantom, copies);
                }
                if self.oversized_filter > 0.0
                    && roll(self.seed, nonce, 0xb100) < self.oversized_filter
                {
                    m.bloom_s = oversized_filter(self.seed ^ nonce);
                }
                if self.count_skew > 0.0 && roll(self.seed, nonce, 0xc057) < self.count_skew {
                    // Declare fewer transactions than we prefill: provably
                    // inconsistent, caught by the §6.2 cap check.
                    if m.prefilled.is_empty() {
                        m.prefilled.push(garbage_txn(self.seed, nonce, 0));
                    }
                    m.block_tx_count = (m.prefilled.len() - 1) as u64;
                }
                Message::GrapheneBlock(m)
            }
            Message::GrapheneRecovery(mut m) => {
                if self.malformed_iblt > 0.0 && roll(self.seed, nonce, 0x1b17) < self.malformed_iblt
                {
                    let copies = m.iblt_j.hash_count().saturating_sub(1).max(1);
                    let phantom = mix64(self.seed ^ nonce ^ 0x2) | 1;
                    m.iblt_j.insert_partial(phantom, copies);
                }
                if self.garbage > 0.0 && roll(self.seed, nonce, 0x6a1b) < self.garbage {
                    m.missing = (0..m.missing.len().max(1) as u64)
                        .map(|i| garbage_txn(self.seed, nonce, i))
                        .collect();
                }
                Message::GrapheneRecovery(m)
            }
            Message::BlockTxn(mut m) => {
                if self.garbage > 0.0 && roll(self.seed, nonce, 0x6a1b) < self.garbage {
                    m.txns = (0..m.txns.len() as u64)
                        .map(|i| garbage_txn(self.seed, nonce, i))
                        .collect();
                }
                Message::BlockTxn(m)
            }
            Message::XthinBlock(mut m) => {
                if self.garbage > 0.0 && roll(self.seed, nonce, 0x6a1b) < self.garbage {
                    m.missing = (0..m.missing.len() as u64)
                        .map(|i| garbage_txn(self.seed, nonce, i))
                        .collect();
                }
                Message::XthinBlock(m)
            }
            Message::FullBlock(mut m) => {
                if self.garbage > 0.0 && roll(self.seed, nonce, 0x6a1b) < self.garbage {
                    // Swap one body out: header no longer matches the txns,
                    // so `Block::from_parts` rejects it at the victim.
                    if !m.txns.is_empty() {
                        m.txns[0] = garbage_txn(self.seed, nonce, 0);
                    }
                }
                Message::FullBlock(m)
            }
            Message::XthinGetData(mut m) => {
                if self.oversized_filter > 0.0
                    && roll(self.seed, nonce, 0xb100) < self.oversized_filter
                {
                    m.mempool_filter = oversized_filter(self.seed ^ nonce);
                }
                Message::XthinGetData(m)
            }
            Message::GrapheneRequest(mut m) => {
                if self.oversized_filter > 0.0
                    && roll(self.seed, nonce, 0xb100) < self.oversized_filter
                {
                    m.bloom_r = oversized_filter(self.seed ^ nonce);
                }
                Message::GrapheneRequest(m)
            }
            Message::RatelessCells(mut m) => {
                if self.garbage > 0.0 && roll(self.seed, nonce, 0x6a1b) < self.garbage {
                    // Fold one phantom value into every cell of the window,
                    // with live checksums keyed by the honest salt. Once the
                    // genuine difference peels away, each remaining cell is
                    // the pure phantom — recovered once, cancelled only on
                    // its true mapping, then recovered again from the cells
                    // off that mapping: a provable double-decode (the §6.1
                    // attack in rateless form).
                    let phantom = mix64(self.seed ^ nonce ^ 0x15c3) | 1;
                    let check = graphene_iblt::cell::check_hash(m.salt, phantom);
                    for cell in &mut m.cells {
                        cell.apply(phantom, check, 1);
                    }
                }
                Message::RatelessCells(m)
            }
            other => other,
        })
    }

    /// How long the tarpit holds `msg` back, if it does. Only responses
    /// are tarpitted (same scope as stalling — delaying our own requests
    /// would punish nobody but ourselves), and the decision draws its own
    /// channel of the per-nonce stream so it composes with every other
    /// attack without disturbing their rolls.
    pub fn tarpit_delay(&self, nonce: u64, msg: &Message) -> Option<crate::time::SimTime> {
        if self.tarpit > 0.0 && roll(self.seed, nonce, 0x7a12) < self.tarpit && stallable(msg) {
            return Some(self.tarpit_hold);
        }
        None
    }
}

/// Only *responses* stall — suppressing our own requests or inv relays
/// would merely make the adversary a quieter node, not an attack.
fn stallable(msg: &Message) -> bool {
    matches!(
        msg,
        Message::GrapheneBlock(_)
            | Message::GrapheneRecovery(_)
            | Message::CmpctBlock(_)
            | Message::XthinBlock(_)
            | Message::BlockTxn(_)
            | Message::FullBlock(_)
            | Message::Txns(_)
            | Message::RatelessCells(_)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_wire::messages::{FullBlockMsg, InvMsg};

    fn full_block_msg() -> Message {
        let tx = Transaction::new(vec![9; 40]);
        let block = graphene_blockchain::Block::assemble(
            graphene_hashes::Digest::ZERO,
            1,
            vec![tx],
            graphene_blockchain::OrderingScheme::Ctor,
        );
        Message::FullBlock(FullBlockMsg { header: *block.header(), txns: block.txns().to_vec() })
    }

    #[test]
    fn honest_default_is_identity() {
        let cfg = AdversaryConfig::default();
        let msg = full_block_msg();
        let before = graphene_wire::Encode::to_vec(&msg);
        let after = cfg.mangle(0, msg).map(|m| graphene_wire::Encode::to_vec(&m));
        assert_eq!(after.as_deref(), Some(&before[..]));
    }

    #[test]
    fn stall_drops_responses_but_not_invs() {
        let cfg = AdversaryConfig { stall: 1.0, ..Default::default() };
        assert!(cfg.mangle(1, full_block_msg()).is_none());
        let inv = Message::Inv(InvMsg { block_id: graphene_hashes::Digest::ZERO });
        assert!(cfg.mangle(1, inv).is_some());
    }

    #[test]
    fn mangling_is_deterministic() {
        let cfg = AdversaryConfig { garbage: 0.5, stall: 0.5, seed: 42, ..Default::default() };
        for nonce in 0..32 {
            let a = cfg.mangle(nonce, full_block_msg()).map(|m| graphene_wire::Encode::to_vec(&m));
            let b = cfg.mangle(nonce, full_block_msg()).map(|m| graphene_wire::Encode::to_vec(&m));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn stall_covers_the_cell_stream() {
        use graphene_wire::messages::RatelessCellsMsg;
        let cfg = AdversaryConfig { stall: 1.0, ..Default::default() };
        let cells = Message::RatelessCells(RatelessCellsMsg {
            block_id: graphene_hashes::Digest::ZERO,
            salt: 7,
            start_index: 0,
            cells: vec![graphene_iblt::Cell::default(); 8],
        });
        assert!(cfg.mangle(1, cells).is_none(), "mid-stream stall must drop the window");
    }

    #[test]
    fn garbage_cells_force_a_provable_double_decode() {
        use graphene_iblt::rateless::{CellStream, RatelessDecoder, RatelessError};
        use graphene_wire::messages::RatelessCellsMsg;
        let cfg = AdversaryConfig { garbage: 1.0, seed: 8, ..Default::default() };
        let salt = 0x524c_u64;
        let remote: Vec<u64> = (0..60u64).map(|i| i.wrapping_mul(0x9e37) | 1).collect();
        let local: Vec<u64> = remote[2..].to_vec(); // honest difference of 2
        let msg = Message::RatelessCells(RatelessCellsMsg {
            block_id: graphene_hashes::Digest::ZERO,
            salt,
            start_index: 0,
            cells: CellStream::new(salt, remote.iter().copied()).cells(24),
        });
        let Some(Message::RatelessCells(mangled)) = cfg.mangle(3, msg) else {
            panic!("expected a RatelessCells back");
        };
        let mut d = RatelessDecoder::new(salt, local.iter().copied());
        let mut start = 0u64;
        let mut outcome = d.push_cells(start, &mangled.cells);
        start += mangled.cells.len() as u64;
        // The poisoned stream must never decode cleanly; within a couple of
        // honest follow-up windows it pins the double-decode on the sender.
        let mut honest = CellStream::new(salt, remote.iter().copied());
        honest.skip(start);
        for _ in 0..4 {
            if matches!(outcome, Err(RatelessError::Malformed(_))) {
                return;
            }
            let cells = honest.cells(d.suggested_batch());
            outcome = d.push_cells(start, &cells);
            start += cells.len() as u64;
        }
        panic!("garbage cells never provoked the double-decode: {outcome:?}");
    }

    #[test]
    fn tarpit_holds_responses_but_not_invs() {
        use crate::time::SimTime;
        let cfg = AdversaryConfig {
            tarpit: 1.0,
            tarpit_hold: SimTime::from_millis(1_300),
            ..Default::default()
        };
        let msg = full_block_msg();
        assert_eq!(cfg.tarpit_delay(1, &msg), Some(SimTime::from_millis(1_300)));
        let inv = Message::Inv(InvMsg { block_id: graphene_hashes::Digest::ZERO });
        assert_eq!(cfg.tarpit_delay(1, &inv), None, "announcements are never tarpitted");
    }

    #[test]
    fn tarpit_rolls_its_own_channel() {
        // A half-probability tarpit must not perturb the stall channel:
        // the same nonces stall with and without tarpit configured.
        let plain = AdversaryConfig { stall: 0.5, seed: 11, ..Default::default() };
        let mixed = AdversaryConfig {
            stall: 0.5,
            tarpit: 0.5,
            tarpit_hold: crate::time::SimTime::from_millis(500),
            seed: 11,
            ..Default::default()
        };
        for nonce in 0..64 {
            assert_eq!(
                plain.mangle(nonce, full_block_msg()).is_none(),
                mixed.mangle(nonce, full_block_msg()).is_none(),
                "tarpit channel leaked into the stall stream at nonce {nonce}"
            );
        }
    }

    #[test]
    fn garbage_full_block_breaks_the_merkle_root() {
        let cfg = AdversaryConfig { garbage: 1.0, seed: 3, ..Default::default() };
        let Some(Message::FullBlock(m)) = cfg.mangle(5, full_block_msg()) else {
            panic!("expected a FullBlock back");
        };
        let parsed = graphene_blockchain::Block::from_parts(
            m.header,
            m.txns,
            graphene_blockchain::OrderingScheme::Ctor,
        );
        assert!(parsed.is_err(), "mangled block must not validate");
    }
}
