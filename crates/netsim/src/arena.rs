//! SoA arena for per-peer simulation state.
//!
//! The dispatch loop touches a handful of per-peer fields on *every*
//! event — is the peer online, which restart generation is current, when
//! is it free to drain its inbox, does the inbox hold anything at all —
//! while the rest of a [`Peer`] (sessions, mempool, misbehavior tables)
//! is only needed when a frame is actually processed. At 100k peers the
//! old layout interleaved those hot fields with several hundred bytes of
//! cold state per peer, so the event loop's checks walked pointer-distant
//! allocations. [`PeerArena`] splits them structure-of-arrays style:
//!
//! * **hot** — [`online`](PeerArena::online),
//!   [`gen`](PeerArena::gen), [`busy_until`](PeerArena::busy_until) and
//!   [`inbox_depth`](PeerArena::inbox_depth) are parallel `Vec`s the
//!   loop indexes contiguously. A spurious `Drain` (its frame was shed
//!   after the event was armed) is rejected by a contiguous `u32` read
//!   without ever loading the `Peer`.
//! * **cold** — the full [`Peer`] state machines and the crash
//!   [`NodeSnapshot`]s sit behind the same index, touched only when a
//!   message or timer actually dispatches to them.
//!
//! The arena is pure layout: it adds no behavior, and every invariant
//! (generation staleness, backpressure, snapshot/restore) is exactly the
//! seed's.

use crate::peer::{Peer, PeerId};
use crate::time::SimTime;
use graphene::NodeSnapshot;

/// Structure-of-arrays peer storage (see module docs).
pub struct PeerArena {
    /// Cold per-peer state machines.
    peers: Vec<Peer>,
    /// Is each peer currently reachable?
    online: Vec<bool>,
    /// Restart generation per peer; timers armed before a crash carry
    /// the old generation and are dropped as stale on pop.
    gen: Vec<u32>,
    /// When each peer finishes processing its current frame
    /// (backpressure).
    busy_until: Vec<SimTime>,
    /// Frames queued in each peer's bounded inbox, mirrored on
    /// enqueue/dequeue so the dispatch loop can skip spurious drains.
    inbox_depth: Vec<u32>,
    /// Durable snapshot taken when a peer went down.
    snapshots: Vec<Option<NodeSnapshot>>,
}

impl PeerArena {
    /// Build an arena from constructed peers, everything online at
    /// generation zero.
    pub fn new(peers: Vec<Peer>) -> PeerArena {
        let n = peers.len();
        PeerArena {
            peers,
            online: vec![true; n],
            gen: vec![0; n],
            busy_until: vec![SimTime::ZERO; n],
            inbox_depth: vec![0; n],
            snapshots: (0..n).map(|_| None).collect(),
        }
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True when the arena holds no peers.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Shared access to a peer's cold state.
    pub fn peer(&self, id: PeerId) -> &Peer {
        &self.peers[id.0]
    }

    /// Mutable access to a peer's cold state.
    pub fn peer_mut(&mut self, id: PeerId) -> &mut Peer {
        &mut self.peers[id.0]
    }

    /// Iterate the cold peer states.
    pub fn iter(&self) -> impl Iterator<Item = &Peer> {
        self.peers.iter()
    }

    /// Iterate the cold peer states mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Peer> {
        self.peers.iter_mut()
    }

    /// Is `id` currently online?
    pub fn online(&self, id: PeerId) -> bool {
        self.online[id.0]
    }

    /// Mark `id` online/offline.
    pub fn set_online(&mut self, id: PeerId, up: bool) {
        self.online[id.0] = up;
    }

    /// Current restart generation of `id`.
    pub fn gen(&self, id: PeerId) -> u32 {
        self.gen[id.0]
    }

    /// Advance `id`'s restart generation (wrapping), staling every timer
    /// armed before the crash.
    pub fn bump_gen(&mut self, id: PeerId) {
        self.gen[id.0] = self.gen[id.0].wrapping_add(1);
    }

    /// When `id` finishes its current frame.
    pub fn busy_until(&self, id: PeerId) -> SimTime {
        self.busy_until[id.0]
    }

    /// Set `id`'s backpressure horizon.
    pub fn set_busy_until(&mut self, id: PeerId, at: SimTime) {
        self.busy_until[id.0] = at;
    }

    /// Mirrored inbox depth of `id` (hot-path drain check).
    pub fn inbox_depth(&self, id: PeerId) -> u32 {
        self.inbox_depth[id.0]
    }

    /// Refresh `id`'s mirrored inbox depth from its cold state; call
    /// after any enqueue/dequeue/restore that changes the real queue.
    pub fn sync_inbox_depth(&mut self, id: PeerId) {
        self.inbox_depth[id.0] = self.peers[id.0].inbox_len() as u32;
    }

    /// Stash the durable snapshot taken as `id` goes down.
    pub fn store_snapshot(&mut self, id: PeerId, snapshot: NodeSnapshot) {
        self.snapshots[id.0] = Some(snapshot);
    }

    /// Take `id`'s stored snapshot, if one exists.
    pub fn take_snapshot(&mut self, id: PeerId) -> Option<NodeSnapshot> {
        self.snapshots[id.0].take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::RelayProtocol;
    use graphene_blockchain::Mempool;

    fn arena(n: usize) -> PeerArena {
        PeerArena::new(
            (0..n)
                .map(|i| Peer::new(PeerId(i), RelayProtocol::FullBlocks, Mempool::new()))
                .collect(),
        )
    }

    #[test]
    fn hot_fields_start_cold() {
        let a = arena(3);
        assert_eq!(a.len(), 3);
        for i in 0..3 {
            let id = PeerId(i);
            assert!(a.online(id));
            assert_eq!(a.gen(id), 0);
            assert_eq!(a.busy_until(id), SimTime::ZERO);
            assert_eq!(a.inbox_depth(id), 0);
        }
    }

    #[test]
    fn gen_bumps_and_wraps() {
        let mut a = arena(1);
        a.bump_gen(PeerId(0));
        assert_eq!(a.gen(PeerId(0)), 1);
    }

    #[test]
    fn inbox_depth_mirrors_cold_state() {
        use graphene_wire::messages::{InvMsg, Message};
        let mut a = arena(2);
        let msg = Message::Inv(InvMsg { block_id: graphene_hashes::Digest::ZERO });
        a.peer_mut(PeerId(1)).enqueue(PeerId(0), msg, 10);
        assert_eq!(a.inbox_depth(PeerId(1)), 0, "mirror lags until synced");
        a.sync_inbox_depth(PeerId(1));
        assert_eq!(a.inbox_depth(PeerId(1)), 1);
        a.peer_mut(PeerId(1)).dequeue();
        a.sync_inbox_depth(PeerId(1));
        assert_eq!(a.inbox_depth(PeerId(1)), 0);
    }
}
