//! Deterministic capped exponential backoff for retry timers.
//!
//! The seed network used a fixed 2 s retry timer, which synchronises
//! retries across peers (every victim of a dropped frame re-requests in
//! lock-step) and hammers a recovering peer at a constant rate. Deployed
//! nodes instead back off exponentially with jitter. Because the simulator
//! must stay bit-identical for any `--threads` value, the jitter cannot
//! come from a shared RNG: it is a pure function of `(peer, block,
//! attempt)`, so the schedule is reproducible no matter which worker
//! thread runs the trial.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::peer::PeerId;
use crate::time::SimTime;
use graphene_hashes::Digest;

/// First-attempt timeout (2 s, matching the seed's fixed timer).
pub const BASE: SimTime = SimTime(2_000_000);

/// Ceiling on any single backoff delay (30 s).
pub const CAP: SimTime = SimTime(30_000_000);

/// SplitMix64 finalizer: a bijective avalanche mix.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Delay before the timer guarding `attempt` fires: `BASE · 2^attempt`
/// capped at [`CAP`], plus a ±25% jitter derived deterministically from
/// `(peer, block, attempt)`.
pub fn delay(peer: PeerId, block_id: Digest, attempt: u32) -> SimTime {
    let nominal = BASE.0.saturating_mul(1u64 << attempt.min(6)).min(CAP.0);
    let h = mix64(
        (peer.0 as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(block_id.low_u64())
            .wrapping_add((attempt as u64) << 48),
    );
    // Jitter in [-nominal/4, +nominal/4].
    let span = nominal / 2 + 1;
    let jitter = (h % span) as i64 - (nominal / 4) as i64;
    SimTime((nominal as i64 + jitter).max(1) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_and_caps() {
        let id = Digest::ZERO;
        let p = PeerId(3);
        let d0 = delay(p, id, 0);
        let d3 = delay(p, id, 3);
        let d9 = delay(p, id, 9);
        // Jitter is bounded by ±25%, so the doubling dominates.
        assert!(d3 > d0, "{d3:?} vs {d0:?}");
        assert!(d9.0 <= CAP.0 + CAP.0 / 4);
        assert!(d9.0 >= CAP.0 - CAP.0 / 4);
    }

    #[test]
    fn jitter_varies_by_peer_and_block() {
        let id = Digest::ZERO;
        let a = delay(PeerId(0), id, 1);
        let b = delay(PeerId(1), id, 1);
        assert_ne!(a, b, "two peers must not retry in lock-step");
    }

    #[test]
    fn pure_function_of_inputs() {
        let id = graphene_hashes::sha256(b"block");
        assert_eq!(delay(PeerId(7), id, 2), delay(PeerId(7), id, 2));
    }

    #[test]
    fn never_zero() {
        for attempt in 0..12 {
            assert!(delay(PeerId(0), Digest::ZERO, attempt).0 >= 1);
        }
    }
}
