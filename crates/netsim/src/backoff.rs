//! Deterministic capped exponential backoff for retry timers.
//!
//! The seed network used a fixed 2 s retry timer, which synchronises
//! retries across peers (every victim of a dropped frame re-requests in
//! lock-step) and hammers a recovering peer at a constant rate. Deployed
//! nodes instead back off exponentially with jitter. Because the simulator
//! must stay bit-identical for any `--threads` value, the jitter cannot
//! come from a shared RNG: it is a pure function of `(peer, block,
//! attempt)`, so the schedule is reproducible no matter which worker
//! thread runs the trial.
//!
//! Adaptive peers (see `rtt.rs`) replace the fixed [`BASE`] with a
//! per-server RTO via [`delay_from_base`]; the exponential ladder, the
//! cap and the jitter formula are identical, so the fixed-timer arm
//! (`delay`) remains byte-for-byte the seed behavior.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::peer::PeerId;
use crate::time::SimTime;
use graphene_hashes::Digest;

/// First-attempt timeout (2 s, matching the seed's fixed timer).
pub const BASE: SimTime = SimTime(2_000_000);

/// Ceiling on any single backoff delay (30 s).
pub const CAP: SimTime = SimTime(30_000_000);

/// SplitMix64 finalizer: a bijective avalanche mix.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Delay before the timer guarding `attempt` fires: `BASE · 2^attempt`
/// capped at [`CAP`], plus a ±25% jitter derived deterministically from
/// `(peer, block, attempt)`.
pub fn delay(peer: PeerId, block_id: Digest, attempt: u32) -> SimTime {
    delay_from_base(peer, block_id, attempt, BASE)
}

/// [`delay`] with a caller-supplied first-attempt timeout, used by
/// adaptive peers to arm RTO-derived timers. `base` is clamped to
/// `[1, CAP]`; the nominal delay is `base · 2^attempt` capped at [`CAP`],
/// and the jitter is the same pure function of `(peer, block, attempt)`
/// as the fixed path — `delay_from_base(p, b, a, BASE) == delay(p, b, a)`
/// bit for bit.
pub fn delay_from_base(peer: PeerId, block_id: Digest, attempt: u32, base: SimTime) -> SimTime {
    let base = base.0.clamp(1, CAP.0);
    let nominal = base.saturating_mul(1u64 << attempt.min(6)).min(CAP.0);
    let h = mix64(
        (peer.0 as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(block_id.low_u64())
            .wrapping_add((attempt as u64) << 48),
    );
    // Jitter in [-nominal/4, +nominal/4].
    let span = nominal / 2 + 1;
    let jitter = (h % span) as i64 - (nominal / 4) as i64;
    SimTime((nominal as i64 + jitter).max(1) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn grows_and_caps() {
        let id = Digest::ZERO;
        let p = PeerId(3);
        let d0 = delay(p, id, 0);
        let d3 = delay(p, id, 3);
        let d9 = delay(p, id, 9);
        // Jitter is bounded by ±25%, so the doubling dominates.
        assert!(d3 > d0, "{d3:?} vs {d0:?}");
        assert!(d9.0 <= CAP.0 + CAP.0 / 4);
        assert!(d9.0 >= CAP.0 - CAP.0 / 4);
    }

    #[test]
    fn jitter_varies_by_peer_and_block() {
        let id = Digest::ZERO;
        let a = delay(PeerId(0), id, 1);
        let b = delay(PeerId(1), id, 1);
        assert_ne!(a, b, "two peers must not retry in lock-step");
    }

    #[test]
    fn pure_function_of_inputs() {
        let id = graphene_hashes::sha256(b"block");
        assert_eq!(delay(PeerId(7), id, 2), delay(PeerId(7), id, 2));
    }

    #[test]
    fn never_zero() {
        for attempt in 0..12 {
            assert!(delay(PeerId(0), Digest::ZERO, attempt).0 >= 1);
        }
    }

    #[test]
    fn base_variant_with_default_base_is_identical() {
        for attempt in 0..10 {
            for p in 0..8 {
                let id = graphene_hashes::sha256(&[p as u8, attempt as u8]);
                assert_eq!(
                    delay(PeerId(p), id, attempt),
                    delay_from_base(PeerId(p), id, attempt, BASE),
                    "adaptive path with BASE must reproduce the fixed path"
                );
            }
        }
    }

    #[test]
    fn smaller_base_fires_sooner() {
        let id = graphene_hashes::sha256(b"rto");
        let fast = delay_from_base(PeerId(2), id, 0, SimTime::from_millis(300));
        // An RTO-derived 300 ms base fires well inside the fixed 2 s
        // timer's −25% jitter floor.
        assert!(fast.0 < BASE.0 * 3 / 4, "{fast:?}");
    }

    /// The nominal (jitter-free) delay for an attempt.
    fn nominal(base: u64, attempt: u32) -> u64 {
        base.clamp(1, CAP.0).saturating_mul(1u64 << attempt.min(6)).min(CAP.0)
    }

    proptest! {
        /// Delay stays within ±25% of the nominal for ALL attempts and
        /// bases (the +1 absorbs integer truncation of odd nominals).
        #[test]
        fn prop_within_quarter_of_nominal(
            peer in 0usize..256,
            blk in any::<[u8; 8]>(),
            attempt in 0u32..40,
            base_us in 1u64..60_000_000,
        ) {
            let id = graphene_hashes::sha256(&blk);
            let d = delay_from_base(PeerId(peer), id, attempt, SimTime(base_us)).0;
            let nom = nominal(base_us, attempt);
            prop_assert!(d >= nom - nom / 4, "delay {d} below -25% of nominal {nom}");
            prop_assert!(d <= nom + nom / 4 + 1, "delay {d} above +25% of nominal {nom}");
        }

        /// Averaged over many blocks, delay is monotone in attempt up to
        /// the cap: strictly increasing while the nominal still doubles,
        /// statistically flat once the nominal has hit CAP.
        #[test]
        fn prop_monotone_on_average_up_to_cap(peer in 0usize..256, salt in any::<u8>()) {
            let blocks: Vec<_> = (0u16..128)
                .map(|i| graphene_hashes::sha256(&[salt, i as u8, (i >> 8) as u8]))
                .collect();
            let avg = |attempt: u32| -> f64 {
                blocks.iter().map(|&b| delay(PeerId(peer), b, attempt).0 as f64).sum::<f64>()
                    / blocks.len() as f64
            };
            for attempt in 0..8 {
                let (lo, hi) = (avg(attempt), avg(attempt + 1));
                if nominal(BASE.0, attempt + 1) > nominal(BASE.0, attempt) {
                    prop_assert!(hi > lo, "attempt {attempt}: avg {hi} !> {lo}");
                } else {
                    // Past the cap only the jitter differs: both averages
                    // must sit inside the capped nominal's ±25% envelope
                    // (a deterministic bound — per-sample, so also on the
                    // mean — immune to small-sample noise).
                    let nom = nominal(BASE.0, attempt) as f64;
                    for avg in [lo, hi] {
                        prop_assert!(avg >= nom * 0.75 && avg <= nom * 1.25 + 1.0);
                    }
                }
            }
        }

        /// Delay is never zero, for any inputs.
        #[test]
        fn prop_never_zero(
            peer in 0usize..1024,
            blk in any::<[u8; 8]>(),
            attempt in 0u32..64,
            base_us in 0u64..100_000_000,
        ) {
            let id = graphene_hashes::sha256(&blk);
            prop_assert!(delay_from_base(PeerId(peer), id, attempt, SimTime(base_us)).0 >= 1);
        }
    }
}
