//! §6.2-style resource caps on inbound messages.
//!
//! Graphene's sender chooses the Bloom filter and IBLT sizes, so a hostile
//! sender can pick pathological parameters and make the receiver allocate
//! and hash far beyond what any honest block needs (the DoS vector of
//! §6.2). Deployed implementations clamp every attacker-controlled length
//! before acting on the message; this module is that clamp for the
//! simulator. A message that violates a cap is *provably* hostile — honest
//! encodes never approach the limits, and link corruption cannot forge one
//! (the wire layer's length checks reject frames whose declared lengths
//! disagree with the payload) — so a violation is grounds for banning.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use graphene_wire::Message;

/// Upper bounds on attacker-chosen message dimensions.
#[derive(Clone, Copy, Debug)]
pub struct MessageCaps {
    /// Largest acceptable Bloom filter, in bytes (any role: `S`, `R`, the
    /// xthin mempool filter, or the ping-pong `F`).
    pub max_filter_bytes: usize,
    /// Largest acceptable IBLT, in cells.
    pub max_iblt_cells: usize,
    /// Most prefilled transactions in one `GrapheneBlock`.
    pub max_prefilled: usize,
    /// Most transaction bodies in one recovery / repair response.
    pub max_txns: usize,
}

impl Default for MessageCaps {
    fn default() -> Self {
        // An honest filter for a 1M-entry mempool at fpr 1e-3 is ~1.8 MB/8
        // ≈ 225 KB of bits; cap well above any simulated scenario but far
        // below the wire layer's 1M-element ceilings.
        MessageCaps {
            max_filter_bytes: 64 * 1024,
            max_iblt_cells: 1 << 16,
            max_prefilled: 4096,
            max_txns: 1 << 16,
        }
    }
}

impl MessageCaps {
    fn filter_ok(&self, f: &graphene_bloom::BloomFilter) -> bool {
        f.bit_len().div_ceil(8) <= self.max_filter_bytes
    }

    /// Check one inbound message against the caps. `Err` names the violated
    /// bound; the caller should treat it as a provable protocol offence.
    pub fn validate(&self, msg: &Message) -> Result<(), &'static str> {
        match msg {
            Message::GrapheneBlock(m) => {
                if !self.filter_ok(&m.bloom_s) {
                    return Err("oversized bloom filter S");
                }
                if m.iblt_i.cell_count() > self.max_iblt_cells {
                    return Err("oversized IBLT I");
                }
                if m.prefilled.len() > self.max_prefilled {
                    return Err("too many prefilled transactions");
                }
                if m.prefilled.len() as u64 > m.block_tx_count {
                    return Err("prefilled count exceeds declared block size");
                }
                Ok(())
            }
            Message::GrapheneRequest(m) => {
                if !self.filter_ok(&m.bloom_r) {
                    return Err("oversized bloom filter R");
                }
                Ok(())
            }
            Message::GrapheneRecovery(m) => {
                if m.iblt_j.cell_count() > self.max_iblt_cells {
                    return Err("oversized IBLT J");
                }
                if m.missing.len() > self.max_txns {
                    return Err("too many missing transactions");
                }
                if let Some(f) = &m.bloom_f {
                    if !self.filter_ok(f) {
                        return Err("oversized ping-pong filter F");
                    }
                }
                Ok(())
            }
            Message::XthinGetData(m) => {
                if !self.filter_ok(&m.mempool_filter) {
                    return Err("oversized mempool filter");
                }
                Ok(())
            }
            Message::BlockTxn(m) if m.txns.len() > self.max_txns => {
                Err("too many repair transactions")
            }
            Message::RatelessCells(m)
                if m.cells.len() > graphene_iblt::rateless::MAX_CELLS_PER_BATCH =>
            {
                Err("oversized rateless cell batch")
            }
            Message::GetMoreCells(m)
                if m.count as usize > graphene_iblt::rateless::MAX_CELLS_PER_BATCH =>
            {
                Err("oversized rateless cell request")
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_bloom::BloomFilter;
    use graphene_hashes::Digest;
    use graphene_iblt::Iblt;
    use graphene_wire::messages::{GrapheneRequestMsg, XthinGetDataMsg};

    fn big_filter() -> BloomFilter {
        // ~135 KB of bits: decodes fine at the wire layer, violates the cap.
        BloomFilter::new(75_000, 0.001, 7)
    }

    #[test]
    fn honest_sizes_pass() {
        let caps = MessageCaps::default();
        let m = Message::GrapheneRequest(GrapheneRequestMsg {
            block_id: Digest::ZERO,
            bloom_r: BloomFilter::new(2000, 0.01, 1),
            y_star: 10,
            b: 8,
            special_mn: false,
        });
        assert!(caps.validate(&m).is_ok());
    }

    #[test]
    fn oversized_filter_rejected() {
        let caps = MessageCaps::default();
        let m = Message::XthinGetData(XthinGetDataMsg {
            block_id: Digest::ZERO,
            mempool_filter: big_filter(),
        });
        assert!(caps.validate(&m).is_err());
    }

    #[test]
    fn oversized_iblt_rejected() {
        let caps = MessageCaps::default();
        let m = Message::GrapheneRecovery(graphene_wire::messages::GrapheneRecoveryMsg {
            block_id: Digest::ZERO,
            missing: Vec::new(),
            iblt_j: Iblt::new(caps.max_iblt_cells + 1, 3, 1),
            bloom_f: None,
        });
        assert_eq!(caps.validate(&m), Err("oversized IBLT J"));
    }

    /// A cache-served canonical frame is byte-identical to an honest
    /// encode, so it decodes at the wire layer and clears every §6.2 cap —
    /// load shedding can then classify it like any other session body.
    #[test]
    fn cache_served_frame_decodes_and_passes_caps() {
        use graphene::encode_cache::EncodeCache;
        use graphene::protocol1::{self, RetryTweak};
        use graphene_wire::Decode;
        let cfg = graphene::GrapheneConfig::default();
        let txns: Vec<graphene_blockchain::Transaction> =
            (0..40u8).map(|i| graphene_blockchain::Transaction::new(vec![i, 1, 2])).collect();
        let block = graphene_blockchain::Block::assemble(
            Digest::ZERO,
            1,
            txns,
            graphene_blockchain::OrderingScheme::Ctor,
        );
        let cache = EncodeCache::new(64 << 10);
        let tweak = RetryTweak::initial(&cfg);
        // Populate, then serve the same key from the cache.
        let first = protocol1::sender_encode_cached(&block, 80, None, &cfg, &tweak, Some(&cache));
        assert!(!first.from_cache);
        let served = protocol1::sender_encode_cached(&block, 80, None, &cfg, &tweak, Some(&cache));
        assert!(served.from_cache, "second encode must be a cache hit");
        let msg = Message::decode_exact(&served.frame).expect("served frame decodes");
        assert!(MessageCaps::default().validate(&msg).is_ok());
    }

    #[test]
    fn oversized_rateless_batch_rejected() {
        use graphene_iblt::rateless::MAX_CELLS_PER_BATCH;
        use graphene_wire::messages::{GetMoreCellsMsg, RatelessCellsMsg};
        let caps = MessageCaps::default();
        let cell = graphene_iblt::Cell { count: 1, key_sum: 7, check_sum: 9 };
        let over = Message::RatelessCells(RatelessCellsMsg {
            block_id: Digest::ZERO,
            salt: 1,
            start_index: 0,
            cells: vec![cell; MAX_CELLS_PER_BATCH + 1],
        });
        assert_eq!(caps.validate(&over), Err("oversized rateless cell batch"));
        let at_cap = Message::RatelessCells(RatelessCellsMsg {
            block_id: Digest::ZERO,
            salt: 1,
            start_index: 0,
            cells: vec![cell; MAX_CELLS_PER_BATCH],
        });
        assert!(caps.validate(&at_cap).is_ok());
        let greedy = Message::GetMoreCells(GetMoreCellsMsg {
            block_id: Digest::ZERO,
            from_index: 0,
            count: MAX_CELLS_PER_BATCH as u32 + 1,
        });
        assert_eq!(caps.validate(&greedy), Err("oversized rateless cell request"));
    }

    #[test]
    fn prefilled_count_must_fit_declared_size() {
        let caps = MessageCaps::default();
        let tx = graphene_blockchain::Transaction::new(vec![1, 2, 3]);
        let block = graphene_blockchain::Block::assemble(
            Digest::ZERO,
            1,
            vec![tx.clone()],
            graphene_blockchain::OrderingScheme::Ctor,
        );
        let m = Message::GrapheneBlock(graphene_wire::messages::GrapheneBlockMsg {
            header: *block.header(),
            block_tx_count: 0,
            bloom_s: BloomFilter::new(10, 0.1, 1),
            iblt_i: Iblt::new(12, 3, 1),
            prefilled: vec![tx],
            order_bytes: Vec::new(),
        });
        assert!(caps.validate(&m).is_err());
    }
}
