//! Deterministic chaos engine: churn, partitions, and crash/restart.
//!
//! The paper evaluates Graphene on a healthy network; deployment means
//! surviving the environment failing around the protocol. This module
//! injects the three classic P2P failure modes —
//!
//! * **churn**: a peer goes offline for a while and rejoins with its
//!   mempool trimmed to a survival fraction (the pool aged out while the
//!   node was gone);
//! * **partition**: the topology splits into two components for a scheduled
//!   interval, then heals;
//! * **crash/restart**: a peer loses every in-flight session and pending
//!   timer, keeping only what a real node persists to disk (mempool +
//!   accepted blocks, see [`graphene::NodeSnapshot`]).
//!
//! Like [`crate::backoff`], every decision is a **pure function of the
//! configuration seed, the peer, and the time slot** — no shared RNG — so
//! a chaotic simulation stays bit-identical for any `--threads` value. The
//! schedule is materialised once by [`ChaosConfig::schedule`] and replayed
//! through the ordinary event queue.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::peer::PeerId;
use crate::time::SimTime;
use graphene_blockchain::TxId;

/// Why a peer is offline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutageKind {
    /// Orderly departure and rejoin; the mempool is trimmed to the
    /// configured survival fraction on the way back.
    Churn,
    /// Abrupt crash; the node restores from its durable snapshot
    /// (mempool intact, all session state lost).
    Crash,
}

/// One scheduled chaos action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosEvent {
    /// `peer` drops off the network (frames to it are lost, its timers are
    /// cancelled). A durable snapshot is taken at this instant.
    Down {
        /// The affected peer.
        peer: PeerId,
        /// Whether this is churn or a crash.
        kind: OutageKind,
    },
    /// `peer` rejoins: volatile state is rebuilt from the snapshot and the
    /// reconnect handshake re-announces held blocks in both directions.
    Up {
        /// The affected peer.
        peer: PeerId,
        /// Whether this is churn or a crash.
        kind: OutageKind,
    },
    /// The topology splits into the two sides of [`ChaosConfig::side`].
    PartitionStart,
    /// The partition heals; severed links re-handshake.
    PartitionHeal,
}

/// Chaos injection knobs. All probabilities are per-peer, per-[`slot`]
/// chances checked independently; `Default` is fully quiet.
///
/// [`slot`]: ChaosConfig::slot
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Decision-stream seed (domain-separated from every other RNG).
    pub seed: u64,
    /// Per-slot probability that a peer churns offline.
    pub churn_rate: f64,
    /// How long a churned peer stays away.
    pub churn_downtime: SimTime,
    /// Fraction of the mempool that survives a churn rejoin.
    pub survival_fraction: f64,
    /// Per-slot probability that a peer crashes.
    pub crash_rate: f64,
    /// Downtime of a crash/restart cycle.
    pub restart_delay: SimTime,
    /// When the network splits (None = no partition).
    pub partition_at: Option<SimTime>,
    /// How long the partition lasts.
    pub partition_duration: SimTime,
    /// Width of one decision slot.
    pub slot: SimTime,
    /// First instant chaos may fire.
    pub active_from: SimTime,
    /// Last instant chaos may fire (every outage still gets its matching
    /// `Up`, so the network always converges to fully-online).
    pub active_until: SimTime,
    /// Peers exempt from churn/crash (e.g. the block origin, so a trial
    /// measures propagation robustness rather than origin loss).
    pub exempt: Vec<PeerId>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            churn_rate: 0.0,
            churn_downtime: SimTime::from_millis(15_000),
            survival_fraction: 0.7,
            crash_rate: 0.0,
            restart_delay: SimTime::from_millis(500),
            partition_at: None,
            partition_duration: SimTime::from_millis(30_000),
            slot: SimTime::from_millis(1_000),
            active_from: SimTime::from_millis(2_000),
            active_until: SimTime::from_millis(120_000),
            exempt: Vec::new(),
        }
    }
}

/// SplitMix64 finalizer: a bijective avalanche mix.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One uniform draw in [0,1) from `(seed, peer, slot, channel)`.
fn roll(seed: u64, peer: PeerId, slot: u64, channel: u64) -> f64 {
    let h = mix64(
        seed ^ (peer.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ slot.wrapping_mul(0xa076_1d64_78bd_642f)
            ^ channel,
    );
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl ChaosConfig {
    /// Which side of the partition `peer` lands on (0 or 1); a pure
    /// function of the seed so the split is identical across threads.
    pub fn side(&self, peer: PeerId) -> u8 {
        (mix64(self.seed ^ 0x9a57 ^ peer.0 as u64) & 1) as u8
    }

    /// Does transaction `id` survive a churn rejoin at `peer`?
    pub fn survives(&self, peer: PeerId, id: &TxId) -> bool {
        let h = mix64(self.seed ^ 0x5u64 ^ (peer.0 as u64) << 32 ^ id.low_u64());
        ((h >> 11) as f64 / (1u64 << 53) as f64) < self.survival_fraction
    }

    /// Materialise the full schedule for `n_peers` peers, sorted by time
    /// (ties broken peer-then-kind so the order is deterministic).
    ///
    /// Outage intervals for one peer never overlap: while a peer is down,
    /// its slots stop rolling until the matching `Up`. Every `Down` emitted
    /// has its `Up` scheduled, even past `active_until`.
    pub fn schedule(&self, n_peers: usize) -> Vec<(SimTime, ChaosEvent)> {
        let mut events: Vec<(SimTime, ChaosEvent)> = Vec::new();
        if self.slot.0 == 0 {
            return events;
        }
        for p in 0..n_peers {
            let peer = PeerId(p);
            if self.exempt.contains(&peer) {
                continue;
            }
            let mut down_until = SimTime::ZERO;
            let mut slot_idx = self.active_from.0 / self.slot.0;
            loop {
                let at = SimTime(slot_idx.saturating_mul(self.slot.0));
                if at > self.active_until {
                    break;
                }
                slot_idx += 1;
                if at < self.active_from || at < down_until {
                    continue;
                }
                if self.churn_rate > 0.0 && roll(self.seed, peer, slot_idx, 0xc4) < self.churn_rate
                {
                    let up = at + self.churn_downtime;
                    events.push((at, ChaosEvent::Down { peer, kind: OutageKind::Churn }));
                    events.push((up, ChaosEvent::Up { peer, kind: OutageKind::Churn }));
                    down_until = up;
                    continue;
                }
                if self.crash_rate > 0.0 && roll(self.seed, peer, slot_idx, 0xcc) < self.crash_rate
                {
                    let up = at + self.restart_delay;
                    events.push((at, ChaosEvent::Down { peer, kind: OutageKind::Crash }));
                    events.push((up, ChaosEvent::Up { peer, kind: OutageKind::Crash }));
                    down_until = up;
                }
            }
        }
        if let Some(at) = self.partition_at {
            if self.partition_duration.0 > 0 {
                events.push((at, ChaosEvent::PartitionStart));
                events.push((at + self.partition_duration, ChaosEvent::PartitionHeal));
            }
        }
        // Stable order: time, then peer, then a kind discriminant.
        events.sort_by_key(|(t, e)| (*t, event_rank(e)));
        events
    }
}

/// Total order on simultaneous chaos events (partition changes first, then
/// by peer; `Up` before `Down` so a zero-length outage is a no-op rather
/// than a stranding).
fn event_rank(e: &ChaosEvent) -> (u8, usize, u8) {
    match e {
        ChaosEvent::PartitionStart => (0, 0, 0),
        ChaosEvent::PartitionHeal => (0, 0, 1),
        ChaosEvent::Up { peer, .. } => (1, peer.0, 0),
        ChaosEvent::Down { peer, .. } => (1, peer.0, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active_cfg() -> ChaosConfig {
        ChaosConfig {
            seed: 7,
            churn_rate: 0.05,
            crash_rate: 0.03,
            partition_at: Some(SimTime::from_millis(10_000)),
            partition_duration: SimTime::from_millis(20_000),
            exempt: vec![PeerId(0)],
            ..Default::default()
        }
    }

    #[test]
    fn schedule_is_a_pure_function() {
        let cfg = active_cfg();
        assert_eq!(cfg.schedule(16), cfg.schedule(16));
        let other = ChaosConfig { seed: 8, ..active_cfg() };
        assert_ne!(cfg.schedule(16), other.schedule(16), "seed must matter");
    }

    #[test]
    fn every_down_has_a_matching_up_and_no_overlap() {
        let cfg = active_cfg();
        let events = cfg.schedule(16);
        let mut down: std::collections::HashMap<PeerId, SimTime> = Default::default();
        let mut pairs = 0;
        for (t, e) in &events {
            match e {
                ChaosEvent::Down { peer, .. } => {
                    assert!(!down.contains_key(peer), "{peer:?} went down while down");
                    down.insert(*peer, *t);
                }
                ChaosEvent::Up { peer, .. } => {
                    let was = down.remove(peer).expect("Up without Down");
                    assert!(*t > was);
                    pairs += 1;
                }
                _ => {}
            }
        }
        assert!(down.is_empty(), "unmatched Down events: {down:?}");
        assert!(pairs > 0, "chaos schedule was empty at these rates");
    }

    #[test]
    fn exempt_peers_never_fail() {
        let cfg = active_cfg();
        for (_, e) in cfg.schedule(16) {
            if let ChaosEvent::Down { peer, .. } | ChaosEvent::Up { peer, .. } = e {
                assert_ne!(peer, PeerId(0), "exempt peer scheduled for outage");
            }
        }
    }

    #[test]
    fn schedule_sorted_and_bounded() {
        let cfg = active_cfg();
        let events = cfg.schedule(12);
        for w in events.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        for (t, e) in &events {
            if matches!(e, ChaosEvent::Down { .. }) {
                assert!(*t >= cfg.active_from && *t <= cfg.active_until);
            }
        }
    }

    #[test]
    fn partition_sides_are_deterministic_and_split() {
        let cfg = active_cfg();
        let sides: Vec<u8> = (0..16).map(|p| cfg.side(PeerId(p))).collect();
        assert_eq!(sides, (0..16).map(|p| cfg.side(PeerId(p))).collect::<Vec<_>>());
        assert!(sides.contains(&0) && sides.contains(&1));
    }

    #[test]
    fn survival_fraction_roughly_respected() {
        let cfg = ChaosConfig { survival_fraction: 0.7, seed: 3, ..Default::default() };
        let survived = (0..1000u64)
            .filter(|i| {
                let tx = graphene_blockchain::Transaction::new(i.to_le_bytes().to_vec());
                cfg.survives(PeerId(2), tx.id())
            })
            .count();
        assert!((550..850).contains(&survived), "{survived}/1000 survived");
    }

    #[test]
    fn quiet_config_schedules_nothing() {
        assert!(ChaosConfig::default().schedule(32).is_empty());
    }
}
