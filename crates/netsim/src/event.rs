//! The event queue: a min-heap of timestamped events.

use crate::chaos::ChaosEvent;
use crate::peer::PeerId;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled simulation event.
#[derive(Debug)]
pub enum Event {
    /// A message frame arrives at `to`.
    Deliver {
        /// Destination peer.
        to: PeerId,
        /// Source peer.
        from: PeerId,
        /// The encoded frame, reference-counted so fan-out to many peers
        /// shares one allocation (corruption copies on write).
        frame: bytes::Bytes,
    },
    /// A session timeout fires at a peer (retry/fallback logic).
    Timeout {
        /// The peer whose timer fires.
        peer: PeerId,
        /// Which block the timer guards.
        block_id: graphene_hashes::Digest,
        /// Retry attempt number.
        attempt: u32,
        /// Restart generation of `peer` when the timer was armed; a
        /// mismatch on pop means the peer crashed since and the timer
        /// is stale (dropped without dispatch).
        gen: u32,
    },
    /// A peer processes the next frame of its bounded inbound queue.
    Drain {
        /// The peer whose queue drains one frame.
        peer: PeerId,
    },
    /// A scheduled chaos action (churn, crash, partition) fires.
    Chaos(ChaosEvent),
}

struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap; tie-break on insertion order for determinism.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// Deterministic future-event list.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
    now: SimTime,
}

impl EventQueue {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at` (clamped to now). Returns
    /// `true` when `at` lay strictly in the past and was clamped — a
    /// clock anomaly callers should count rather than ignore.
    pub fn schedule(&mut self, at: SimTime, event: Event) -> bool {
        let clamped = at < self.now;
        let at = at.max(self.now);
        self.seq += 1;
        self.heap.push(Scheduled { at, seq: self.seq, event });
        clamped
    }

    /// Pop the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_hashes::Digest;

    fn timeout(at_ms: u64) -> Event {
        Event::Timeout { peer: PeerId(0), block_id: Digest::ZERO, attempt: at_ms as u32, gen: 0 }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), timeout(5));
        q.schedule(SimTime::from_millis(1), timeout(1));
        q.schedule(SimTime::from_millis(3), timeout(3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.as_millis()).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_by_insertion() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), timeout(10));
        q.schedule(SimTime::from_millis(1), timeout(20));
        let (_, first) = q.pop().unwrap();
        match first {
            Event::Timeout { attempt, .. } => assert_eq!(attempt, 10),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn clock_is_monotone() {
        let mut q = EventQueue::new();
        assert!(!q.schedule(SimTime::from_millis(10), timeout(1)));
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(10));
        // Scheduling in the past clamps to now — and reports it.
        assert!(q.schedule(SimTime::from_millis(1), timeout(2)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(10));
        // Scheduling exactly at now is not an anomaly.
        assert!(!q.schedule(SimTime::from_millis(10), timeout(3)));
    }
}
