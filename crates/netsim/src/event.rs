//! The event queue: a hierarchical timing wheel of timestamped events.
//!
//! The simulator's hot loop is `schedule`/`pop`. The original
//! implementation was a single global `BinaryHeap<Scheduled>` whose
//! `O(log n)` operations walk pointer-distant heap levels; at the
//! 100k-peer scale of the propagation sweep the heap holds hundreds of
//! thousands of pending events and every push touches cold cache lines.
//! [`EventQueue`] is now a two-level timing wheel:
//!
//! * **near wheel** — [`WHEEL_SLOTS`] slots of [`SLOT_US`] µs
//!   (millisecond granularity), covering the next ~256 ms. Insertion is
//!   an `O(1)` push onto the slot's `Vec`.
//! * **overflow wheel** — [`WHEEL_SLOTS`] buckets of 256 ms each
//!   (~65.5 s horizon). When the clock crosses into a new 256 ms epoch
//!   the matching bucket cascades into the near wheel.
//! * **far list** — anything beyond the overflow horizon (long chaos
//!   schedules, end-of-run timers). Scanned once per ~65.5 s of
//!   simulated time when the overflow wheel wraps.
//!
//! Events that land in the slot the cursor currently occupies go into a
//! small per-slot [`BinaryHeap`] so sub-slot ordering is exact. Both
//! wheels keep occupancy bitmaps so advancing over empty slots is a
//! couple of word scans, not a walk.
//!
//! **Determinism contract** (unchanged from the heap): events pop in
//! ascending `(at, seq)` order where `seq` is the insertion counter —
//! ties at the same timestamp break by insertion order. Scheduling in
//! the past clamps to `now` and reports the anomaly. The retained
//! [`ReferenceQueue`] is the original heap, kept verbatim so the
//! equivalence proptest and the bench gate can prove the wheel pops
//! every schedule in exactly the heap's order.

use crate::chaos::ChaosEvent;
use crate::peer::PeerId;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled simulation event.
#[derive(Clone, Debug)]
pub enum Event {
    /// A message frame arrives at `to`.
    Deliver {
        /// Destination peer.
        to: PeerId,
        /// Source peer.
        from: PeerId,
        /// The encoded frame, reference-counted so fan-out to many peers
        /// shares one allocation (corruption copies on write).
        frame: bytes::Bytes,
    },
    /// A session timeout fires at a peer (retry/fallback logic).
    Timeout {
        /// The peer whose timer fires.
        peer: PeerId,
        /// Which block the timer guards.
        block_id: graphene_hashes::Digest,
        /// Retry attempt number.
        attempt: u32,
        /// Restart generation of `peer` when the timer was armed; a
        /// mismatch on pop means the peer crashed since and the timer
        /// is stale (dropped without dispatch).
        gen: u32,
    },
    /// A peer processes the next frame of its bounded inbound queue.
    Drain {
        /// The peer whose queue drains one frame.
        peer: PeerId,
    },
    /// A scheduled chaos action (churn, crash, partition) fires.
    Chaos(ChaosEvent),
}

struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap; tie-break on insertion order for determinism.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// Microseconds per near-wheel slot: millisecond granularity.
pub const SLOT_US: u64 = 1_000;
/// Slots per wheel level (a power of two so the bitmaps are whole words).
pub const WHEEL_SLOTS: usize = 256;
/// Bitmap words per wheel level.
const BITMAP_WORDS: usize = WHEEL_SLOTS / 64;
/// Slots covered by one overflow bucket.
const BUCKET_SLOTS: u64 = WHEEL_SLOTS as u64;
/// Slots covered by one full overflow wheel (the far-list threshold).
const OVERFLOW_SLOTS: u64 = BUCKET_SLOTS * WHEEL_SLOTS as u64;

/// A fixed-size occupancy bitmap over [`WHEEL_SLOTS`] slots.
#[derive(Default)]
struct SlotBitmap([u64; BITMAP_WORDS]);

impl SlotBitmap {
    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }

    fn clear(&mut self, i: usize) {
        self.0[i / 64] &= !(1 << (i % 64));
    }

    /// Lowest set index `>= from`, if any.
    fn next_from(&self, from: usize) -> Option<usize> {
        if from >= WHEEL_SLOTS {
            return None;
        }
        let (mut w, bit) = (from / 64, from % 64);
        let masked = self.0[w] & (u64::MAX << bit);
        if masked != 0 {
            return Some(w * 64 + masked.trailing_zeros() as usize);
        }
        w += 1;
        while w < BITMAP_WORDS {
            if self.0[w] != 0 {
                return Some(w * 64 + self.0[w].trailing_zeros() as usize);
            }
            w += 1;
        }
        None
    }
}

/// Deterministic future-event list: hierarchical timing wheel.
///
/// Same API and pop order as the original heap (see [`ReferenceQueue`]);
/// `O(1)` amortized schedule and near-`O(1)` pop at any pending-event
/// count the propagation sweep reaches.
pub struct EventQueue {
    /// Events in the slot the cursor occupies, exactly ordered.
    current: BinaryHeap<Scheduled>,
    /// Near wheel: one `Vec` per millisecond slot.
    near: Vec<Vec<Scheduled>>,
    near_bits: SlotBitmap,
    /// Overflow wheel: one bucket per 256 ms epoch.
    over: Vec<Vec<Scheduled>>,
    over_bits: SlotBitmap,
    /// Beyond the overflow horizon.
    far: Vec<Scheduled>,
    /// Absolute index of the slot `current` holds (== slot of `now`).
    cursor: u64,
    len: usize,
    seq: u64,
    now: SimTime,
    high_water: usize,
    slot_high_water: usize,
    clamped: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue {
            current: BinaryHeap::new(),
            near: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            near_bits: SlotBitmap::default(),
            over: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            over_bits: SlotBitmap::default(),
            far: Vec::new(),
            cursor: 0,
            len: 0,
            seq: 0,
            now: SimTime::ZERO,
            high_water: 0,
            slot_high_water: 0,
            clamped: 0,
        }
    }
}

impl EventQueue {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at` (clamped to now). Returns
    /// `true` when `at` lay strictly in the past and was clamped — a
    /// clock anomaly callers should count rather than ignore. The queue
    /// also counts it itself (see [`EventQueue::clamped`]) so a call
    /// site that drops the `bool` cannot silently lose the anomaly.
    pub fn schedule(&mut self, at: SimTime, event: Event) -> bool {
        let clamped = at < self.now;
        if clamped {
            self.clamped += 1;
        }
        let at = at.max(self.now);
        self.seq += 1;
        self.len += 1;
        self.high_water = self.high_water.max(self.len);
        self.place(Scheduled { at, seq: self.seq, event });
        clamped
    }

    /// Route one scheduled event to the level its slot falls in.
    fn place(&mut self, s: Scheduled) {
        let slot = s.at.0 / SLOT_US;
        let occupancy = if slot <= self.cursor {
            // The cursor's own slot: keep exactly ordered.
            self.current.push(s);
            self.current.len()
        } else if slot / BUCKET_SLOTS == self.cursor / BUCKET_SLOTS {
            let i = (slot % BUCKET_SLOTS) as usize;
            self.near[i].push(s);
            self.near_bits.set(i);
            self.near[i].len()
        } else if slot / OVERFLOW_SLOTS == self.cursor / OVERFLOW_SLOTS {
            let i = ((slot / BUCKET_SLOTS) % WHEEL_SLOTS as u64) as usize;
            self.over[i].push(s);
            self.over_bits.set(i);
            self.over[i].len()
        } else {
            self.far.push(s);
            self.far.len()
        };
        self.slot_high_water = self.slot_high_water.max(occupancy);
    }

    /// Pop the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        if self.current.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
        let s = self.current.pop()?;
        self.len -= 1;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Move the cursor to the next occupied slot, cascading the
    /// overflow wheel and the far list across epoch boundaries.
    /// Precondition: `current` is empty and `len > 0`.
    fn advance(&mut self) {
        loop {
            // Next occupied near slot within the cursor's epoch.
            let in_slot = (self.cursor % BUCKET_SLOTS) as usize;
            let epoch_base = self.cursor - in_slot as u64;
            if let Some(i) = self.near_bits.next_from(in_slot + 1) {
                self.cursor = epoch_base + i as u64;
                self.near_bits.clear(i);
                let mut pending = std::mem::take(&mut self.near[i]);
                self.current.extend(pending.drain(..));
                self.near[i] = pending;
                return;
            }
            // Near wheel empty ahead: step into the next 256 ms epoch.
            let next_epoch = epoch_base + BUCKET_SLOTS;
            self.cursor = next_epoch;
            if next_epoch.is_multiple_of(OVERFLOW_SLOTS) {
                // Overflow wheel wrapped: pull the new 65.5 s window
                // out of the far list.
                let horizon = next_epoch + OVERFLOW_SLOTS;
                let mut i = 0;
                while i < self.far.len() {
                    if self.far[i].at.0 / SLOT_US < horizon {
                        let s = self.far.swap_remove(i);
                        self.place(s);
                    } else {
                        i += 1;
                    }
                }
            }
            // Cascade the epoch's overflow bucket into the near wheel.
            let b = ((next_epoch / BUCKET_SLOTS) % WHEEL_SLOTS as u64) as usize;
            self.over_bits.clear(b);
            let mut bucket = std::mem::take(&mut self.over[b]);
            for s in bucket.drain(..) {
                self.place(s);
            }
            self.over[b] = bucket;
            // The new epoch's base slot may itself hold events (placed
            // into `current` by `place` since slot == cursor).
            if !self.current.is_empty() {
                return;
            }
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Peak number of simultaneously pending events over the queue's
    /// lifetime.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Peak occupancy of any single wheel slot (including the cursor's
    /// in-slot heap) — how hot the hottest millisecond got.
    pub fn slot_high_water(&self) -> usize {
        self.slot_high_water
    }

    /// Total past-time schedules clamped to `now` — counted here as well
    /// as reported per call, so no call site can drop an anomaly.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }
}

/// The original `BinaryHeap` event queue, retained verbatim as the
/// reference implementation.
///
/// `tests/wheel_equivalence.rs` proves [`EventQueue`] pops every
/// randomly generated schedule (past-time clamps, same-slot ties, far
/// timers) in exactly this queue's order, and the bench gate
/// (`event_queue_push_pop_100k`) measures the wheel against it at 100k
/// pending events. Nothing in production code uses it.
#[derive(Default)]
pub struct ReferenceQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
    now: SimTime,
    clamped: u64,
}

impl ReferenceQueue {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        ReferenceQueue::default()
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at` (clamped to now); `true`
    /// when clamped.
    pub fn schedule(&mut self, at: SimTime, event: Event) -> bool {
        let clamped = at < self.now;
        if clamped {
            self.clamped += 1;
        }
        let at = at.max(self.now);
        self.seq += 1;
        self.heap.push(Scheduled { at, seq: self.seq, event });
        clamped
    }

    /// Pop the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Cumulative count of past-time schedules clamped to `now`.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_hashes::Digest;

    fn timeout(tag: u64) -> Event {
        Event::Timeout { peer: PeerId(0), block_id: Digest::ZERO, attempt: tag as u32, gen: 0 }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), timeout(5));
        q.schedule(SimTime::from_millis(1), timeout(1));
        q.schedule(SimTime::from_millis(3), timeout(3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.as_millis()).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_by_insertion() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), timeout(10));
        q.schedule(SimTime::from_millis(1), timeout(20));
        let (_, first) = q.pop().unwrap();
        match first {
            Event::Timeout { attempt, .. } => assert_eq!(attempt, 10),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn clock_is_monotone() {
        let mut q = EventQueue::new();
        assert!(!q.schedule(SimTime::from_millis(10), timeout(1)));
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(10));
        // Scheduling in the past clamps to now — and reports it.
        assert!(q.schedule(SimTime::from_millis(1), timeout(2)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(10));
        // Scheduling exactly at now is not an anomaly.
        assert!(!q.schedule(SimTime::from_millis(10), timeout(3)));
        // The queue counted the one clamp itself.
        assert_eq!(q.clamped(), 1);
    }

    /// Events beyond the near wheel (overflow bucket) and beyond the
    /// overflow wheel (far list) still pop in global time order.
    #[test]
    fn overflow_and_far_cascade_in_order() {
        let mut q = EventQueue::new();
        // Far list: minutes out. Overflow: ~1 s out. Near: ~5 ms out.
        q.schedule(SimTime::from_millis(120_000), timeout(3));
        q.schedule(SimTime::from_millis(1_000), timeout(2));
        q.schedule(SimTime::from_millis(5), timeout(1));
        q.schedule(SimTime::from_millis(70_000), timeout(4)); // second overflow epoch
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.as_millis()).collect();
        assert_eq!(order, vec![5, 1_000, 70_000, 120_000]);
        assert!(q.is_empty());
    }

    /// Sub-slot timestamps (distinct µs inside one ms slot) order by
    /// time first, then seq.
    #[test]
    fn sub_slot_microseconds_order_exactly() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(1_900), timeout(2));
        q.schedule(SimTime::from_micros(1_100), timeout(1));
        q.schedule(SimTime::from_micros(1_100), timeout(3)); // tie: after seq-1
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timeout { attempt, .. } => attempt,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    /// Scheduling into the cursor's own slot while draining it keeps
    /// exact order — the Deliver→Drain-at-now pattern of the dispatch
    /// loop.
    #[test]
    fn same_slot_insert_while_draining() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(1_100), timeout(1));
        q.schedule(SimTime::from_micros(1_500), timeout(3));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(1_100));
        // Now mid-slot: schedule earlier-in-slot (clamps to now) and
        // later-in-slot events.
        q.schedule(SimTime::from_micros(1_000), timeout(2)); // clamped to 1_100
        q.schedule(SimTime::from_micros(1_300), timeout(4));
        let order: Vec<(u64, u32)> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| match e {
                Event::Timeout { attempt, .. } => (t.as_micros(), attempt),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(order, vec![(1_100, 2), (1_300, 4), (1_500, 3)]);
    }

    /// High-water marks track peak pending events and peak slot
    /// occupancy.
    #[test]
    fn high_water_marks_track_peaks() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::from_millis(1 + (i % 2)), timeout(i));
        }
        assert_eq!(q.high_water(), 10);
        assert_eq!(q.slot_high_water(), 5);
        while q.pop().is_some() {}
        assert_eq!(q.high_water(), 10, "draining must not lower the mark");
    }
}
