//! Per-peer circuit breaker over *non-attributable* failures.
//!
//! The misbehavior scorer in `peer.rs` bans only on **provable** offences
//! (malformed sketches, cap violations, double-decode) because a timeout
//! or an undecodable response can be the network's fault: a dropped
//! frame, a corrupted payload, a slow link. Those non-attributable
//! failures must never ban — but ignoring them entirely lets a tarpit or
//! a flaky peer soak up session after session.
//!
//! This tracker sits between the two: it scores consecutive
//! non-attributable failures per server and, past a threshold, *opens a
//! circuit* — the peer stops being preferred for failover targets and
//! hedged fetches. After a deterministic cool-down the circuit goes
//! **half-open**: the next time server selection would consider the peer
//! it is allowed through once as a *probe*; a success closes the circuit,
//! another failure re-opens it with a doubled cool-down. The breaker
//! never blocks a peer outright (an open-circuit peer is still used when
//! it is the only candidate), so delivery cannot regress — it only
//! reorders preference.
//!
//! State is capped and charged to the accounted-memory ceiling, evicted
//! deterministically, and cleared on crash/restart (volatile, like the
//! misbehavior table). All transitions happen in deterministic event
//! order: sweeps stay byte-identical for any `--threads` value.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::HashMap;

use crate::peer::PeerId;
use crate::time::SimTime;

/// Consecutive non-attributable failures that trip the breaker open.
pub const TRIP_THRESHOLD: u32 = 3;

/// Cool-down after the first trip (10 s); doubles per re-trip.
pub const OPEN_BASE: SimTime = SimTime(10_000_000);

/// Cap on the cool-down doubling exponent (10s · 2^5 = 320 s).
pub const MAX_REOPEN_EXP: u32 = 5;

/// Default cap on tracked peers.
pub const MAX_HEALTH_ENTRIES: usize = 64;

/// Breaker state for one peer, as seen at a given instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy (or unknown): preferred for selection.
    Closed,
    /// Tripped and cooling down: avoided while any alternative exists.
    Open,
    /// Cool-down expired: one probe may go through.
    HalfOpen,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    /// Consecutive non-attributable failures since the last success.
    failures: u32,
    /// When `Some`, the circuit is open until this instant (half-open after).
    open_until: Option<SimTime>,
    /// How many times the circuit has (re-)opened — drives the cool-down.
    reopens: u32,
    /// LRU stamp for deterministic eviction.
    used: u64,
}

/// Capped per-peer breaker table plus lifetime trip/probe counters.
#[derive(Clone, Debug, Default)]
pub struct HealthTracker {
    entries: HashMap<PeerId, Entry>,
    tick: u64,
    cap: usize,
    trips: u64,
    probes: u64,
}

impl HealthTracker {
    /// An empty tracker holding at most `cap` peers.
    pub fn new(cap: usize) -> HealthTracker {
        HealthTracker { cap: cap.max(1), ..HealthTracker::default() }
    }

    /// Record a non-attributable failure (timeout, undecodable response)
    /// against `peer` at `now`. Returns `true` when this failure tripped
    /// the circuit open (closed→open or a failed half-open probe).
    pub fn note_failure(&mut self, peer: PeerId, now: SimTime) -> bool {
        self.tick += 1;
        let tick = self.tick;
        if self.entries.len() >= self.cap && !self.entries.contains_key(&peer) {
            self.evict_one();
        }
        let e = self.entries.entry(peer).or_insert(Entry {
            failures: 0,
            open_until: None,
            reopens: 0,
            used: 0,
        });
        e.used = tick;
        e.failures += 1;
        let was_open = match e.open_until {
            Some(until) => now < until, // still open (not yet half-open)
            None => false,
        };
        let half_open_probe_failed = e.open_until.is_some() && !was_open;
        if half_open_probe_failed || (e.open_until.is_none() && e.failures >= TRIP_THRESHOLD) {
            let exp = e.reopens.min(MAX_REOPEN_EXP);
            e.open_until = Some(now + SimTime(OPEN_BASE.0 << exp));
            e.reopens += 1;
            self.trips += 1;
            true
        } else {
            false
        }
    }

    /// Record a successful exchange with `peer`: the circuit closes and
    /// the failure streak resets (the entry is dropped to keep the table
    /// small — absent means healthy).
    pub fn note_success(&mut self, peer: PeerId) {
        self.entries.remove(&peer);
    }

    /// The breaker state of `peer` at `now`.
    pub fn state(&self, peer: PeerId, now: SimTime) -> BreakerState {
        match self.entries.get(&peer).and_then(|e| e.open_until) {
            Some(until) if now < until => BreakerState::Open,
            Some(_) => BreakerState::HalfOpen,
            None => BreakerState::Closed,
        }
    }

    /// Count a half-open probe: server selection let `peer` through once
    /// to test the circuit.
    pub fn note_probe(&mut self, _peer: PeerId) {
        self.probes += 1;
    }

    /// Lifetime number of circuit trips (closed→open + failed probes).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Lifetime number of half-open probes issued.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Tracked peers (for accounted-memory charging).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tracker holds no state.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop all breaker state (crash/restart: health knowledge is
    /// volatile). Lifetime trip/probe counters survive — they are
    /// metrics, not state.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.tick = 0;
    }

    /// Deterministic eviction: least-recently-touched entry, ties broken
    /// by smallest peer id.
    fn evict_one(&mut self) {
        if let Some(victim) =
            self.entries.iter().map(|(&p, e)| (e.used, p.0, p)).min().map(|(_, _, p)| p)
        {
            self.entries.remove(&victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime(0);

    #[test]
    fn unknown_peer_is_closed() {
        let h = HealthTracker::new(8);
        assert_eq!(h.state(PeerId(1), T0), BreakerState::Closed);
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut h = HealthTracker::new(8);
        for i in 0..TRIP_THRESHOLD - 1 {
            assert!(!h.note_failure(PeerId(1), T0), "tripped early at {i}");
            assert_eq!(h.state(PeerId(1), T0), BreakerState::Closed);
        }
        assert!(h.note_failure(PeerId(1), T0), "threshold failure must trip");
        assert_eq!(h.state(PeerId(1), T0), BreakerState::Open);
        assert_eq!(h.trips(), 1);
    }

    #[test]
    fn success_resets_the_streak() {
        let mut h = HealthTracker::new(8);
        h.note_failure(PeerId(1), T0);
        h.note_failure(PeerId(1), T0);
        h.note_success(PeerId(1));
        for _ in 0..TRIP_THRESHOLD - 1 {
            assert!(!h.note_failure(PeerId(1), T0));
        }
        assert_eq!(h.state(PeerId(1), T0), BreakerState::Closed);
    }

    #[test]
    fn open_becomes_half_open_after_cooldown() {
        let mut h = HealthTracker::new(8);
        for _ in 0..TRIP_THRESHOLD {
            h.note_failure(PeerId(1), T0);
        }
        assert_eq!(h.state(PeerId(1), T0), BreakerState::Open);
        let later = T0 + OPEN_BASE;
        assert_eq!(h.state(PeerId(1), later), BreakerState::HalfOpen);
    }

    #[test]
    fn probe_success_closes_probe_failure_doubles_cooldown() {
        let mut h = HealthTracker::new(8);
        for _ in 0..TRIP_THRESHOLD {
            h.note_failure(PeerId(1), T0);
        }
        let probe_at = T0 + OPEN_BASE;
        assert_eq!(h.state(PeerId(1), probe_at), BreakerState::HalfOpen);
        // Failed probe: re-opens with a doubled cool-down.
        assert!(h.note_failure(PeerId(1), probe_at));
        assert_eq!(h.state(PeerId(1), probe_at), BreakerState::Open);
        assert_eq!(h.state(PeerId(1), probe_at + OPEN_BASE), BreakerState::Open);
        assert_eq!(h.state(PeerId(1), probe_at + SimTime(OPEN_BASE.0 * 2)), BreakerState::HalfOpen);
        // Successful probe closes outright.
        h.note_success(PeerId(1));
        assert_eq!(h.state(PeerId(1), probe_at), BreakerState::Closed);
        assert_eq!(h.trips(), 2);
    }

    #[test]
    fn eviction_is_capped_and_deterministic() {
        let mut h = HealthTracker::new(2);
        h.note_failure(PeerId(1), T0);
        h.note_failure(PeerId(2), T0);
        h.note_failure(PeerId(2), T0); // refresh 2
        h.note_failure(PeerId(3), T0); // evicts 1 (LRU)
        assert_eq!(h.len(), 2);
        assert_eq!(h.state(PeerId(1), T0), BreakerState::Closed); // forgotten
    }

    #[test]
    fn clear_keeps_lifetime_counters() {
        let mut h = HealthTracker::new(8);
        for _ in 0..TRIP_THRESHOLD {
            h.note_failure(PeerId(1), T0);
        }
        h.note_probe(PeerId(1));
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.trips(), 1);
        assert_eq!(h.probes(), 1);
    }
}
