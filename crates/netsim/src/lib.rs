//! Discrete-event network simulator for block propagation.
//!
//! The paper's deployment results (Fig. 12) come from a live Bitcoin Cash
//! node with six peers; this crate is the in-repo substitute. Peers exchange
//! *real encoded messages* (`graphene-wire` frames) over links with latency,
//! bandwidth, and fault injection (random drop / byte corruption — the
//! smoltcp guide's `--drop-chance` / `--corrupt-chance` idiom), so a relay
//! here exercises exactly the bytes and state transitions a socket would.
//!
//! * [`time`] / [`event`] — simulated clock and event queue;
//! * [`link`] — link parameters and the fault injector;
//! * [`peer`] — per-peer state machines for Graphene (Protocols 1+2 with
//!   recovery), Compact Blocks, XThin and full blocks;
//! * [`network`] — topology, message routing, and the block-propagation
//!   experiment driver;
//! * [`metrics`] — byte/latency accounting shared across the run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod link;
pub mod metrics;
pub mod network;
pub mod peer;
pub mod time;

pub use link::LinkParams;
pub use metrics::Metrics;
pub use network::{Network, PropagationResult};
pub use peer::{PeerId, RelayProtocol};
pub use time::SimTime;
