//! Discrete-event network simulator for block propagation.
//!
//! The paper's deployment results (Fig. 12) come from a live Bitcoin Cash
//! node with six peers; this crate is the in-repo substitute. Peers exchange
//! *real encoded messages* (`graphene-wire` frames) over links with latency,
//! bandwidth, and fault injection (random drop / byte corruption — the
//! smoltcp guide's `--drop-chance` / `--corrupt-chance` idiom), so a relay
//! here exercises exactly the bytes and state transitions a socket would.
//!
//! * [`time`] / [`event`] — simulated clock and the hierarchical
//!   timing-wheel event queue (with a retained heap reference
//!   implementation for equivalence testing);
//! * [`link`] — link parameters and the fault injector;
//! * [`arena`] — structure-of-arrays peer storage splitting the event
//!   loop's hot per-peer fields from cold protocol state;
//! * [`topology`] — Barabási–Albert scale-free graph generation for
//!   internet-scale sweeps;
//! * [`peer`] — per-peer state machines for Graphene (Protocols 1+2 with
//!   the failure-recovery ladder), Compact Blocks, XThin and full blocks,
//!   plus misbehavior scoring / banning and server failover;
//! * [`backoff`] — deterministic jittered exponential retry backoff;
//! * [`rtt`] — RFC 6298-style per-server RTT estimation feeding
//!   RTO-derived adaptive timers;
//! * [`health`] — per-peer circuit breaker over non-attributable
//!   failures (timeouts, undecodables), with closed/open/half-open
//!   states and deterministic half-open probes;
//! * [`caps`] — §6.2 resource caps on inbound messages;
//! * [`adversary`] — hostile-peer fault injection (§6.1 malformed IBLTs,
//!   oversized filters, stalls, garbage responses);
//! * [`chaos`] — deterministic environment-failure injection: churn,
//!   partitions, crash/restart (see also the link-level duplication and
//!   reordering faults in [`link`]);
//! * [`network`] — topology, message routing, and the block-propagation
//!   experiment driver;
//! * [`metrics`] — byte/latency/ban accounting shared across the run.
//!
//! Peers run a **bounded-resource runtime**: every inbound frame passes
//! through a capped queue with announcement-first load shedding, sessions
//! and buffered bodies are capped, and a [`peer::ResourceAccounting`]
//! high-water mark proves memory stays bounded even under combined chaos
//! and adversarial load.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod arena;
pub mod backoff;
pub mod caps;
pub mod chaos;
pub mod event;
pub mod health;
pub mod link;
pub mod metrics;
pub mod network;
pub mod peer;
pub mod rtt;
pub mod time;
pub mod topology;

pub use adversary::{AdversaryConfig, Behavior};
pub use arena::PeerArena;
pub use caps::MessageCaps;
pub use chaos::{ChaosConfig, ChaosEvent, OutageKind};
pub use graphene::encode_cache::{CacheStats, EncodeCache};
pub use health::{BreakerState, HealthTracker};
pub use link::{LatencyClass, LinkParams};
pub use metrics::Metrics;
pub use network::{Network, PropagationResult};
pub use peer::{FanoutPolicy, PeerId, RelayProtocol, ResourceAccounting, ResourceLimits, Rung};
pub use rtt::{RttEstimate, RttTable};
pub use time::SimTime;
pub use topology::barabasi_albert;
