//! Link model: latency, bandwidth, and fault injection.

use crate::time::SimTime;
use rand::{rngs::StdRng, RngExt};

/// Parameters of a point-to-point link.
#[derive(Clone, Copy, Debug)]
pub struct LinkParams {
    /// One-way propagation delay.
    pub latency: SimTime,
    /// Throughput in bytes per second (0 = infinite).
    pub bandwidth_bps: u64,
    /// Probability a frame is silently dropped (fault injection).
    pub drop_chance: f64,
    /// Probability one byte of a frame is flipped (fault injection).
    pub corrupt_chance: f64,
}

impl Default for LinkParams {
    fn default() -> Self {
        // A comfortable WAN link: 50 ms, 50 Mbit/s, no faults.
        LinkParams {
            latency: SimTime::from_millis(50),
            bandwidth_bps: 50_000_000 / 8,
            drop_chance: 0.0,
            corrupt_chance: 0.0,
        }
    }
}

impl LinkParams {
    /// Transit time for a frame of `bytes` bytes.
    pub fn transit_time(&self, bytes: usize) -> SimTime {
        let serialization = match (bytes as u64 * 1_000_000).checked_div(self.bandwidth_bps) {
            Some(us) => SimTime::from_micros(us),
            None => SimTime::ZERO, // bandwidth 0 = infinite capacity
        };
        self.latency + serialization
    }

    /// Apply fault injection to a frame. Returns `None` when dropped, or the
    /// (possibly corrupted) frame.
    pub fn inject_faults(&self, mut frame: Vec<u8>, rng: &mut StdRng) -> Option<Vec<u8>> {
        if self.drop_chance > 0.0 && rng.random_bool(self.drop_chance.clamp(0.0, 1.0)) {
            return None;
        }
        if self.corrupt_chance > 0.0
            && !frame.is_empty()
            && rng.random_bool(self.corrupt_chance.clamp(0.0, 1.0))
        {
            let idx = rng.random_range(0..frame.len());
            frame[idx] ^= 1 << rng.random_range(0..8);
        }
        Some(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn transit_accounts_for_bandwidth() {
        let link = LinkParams {
            latency: SimTime::from_millis(10),
            bandwidth_bps: 1_000_000,
            ..Default::default()
        };
        // 1 MB at 1 MB/s = 1 s + 10 ms.
        assert_eq!(link.transit_time(1_000_000).as_micros(), 1_010_000);
        let infinite = LinkParams { bandwidth_bps: 0, ..link };
        assert_eq!(infinite.transit_time(1_000_000), SimTime::from_millis(10));
    }

    #[test]
    fn faults_disabled_by_default() {
        let link = LinkParams::default();
        let mut rng = StdRng::seed_from_u64(1);
        let frame = vec![1, 2, 3];
        assert_eq!(link.inject_faults(frame.clone(), &mut rng), Some(frame));
    }

    #[test]
    fn drop_chance_drops() {
        let link = LinkParams { drop_chance: 1.0, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(link.inject_faults(vec![1], &mut rng), None);
    }

    #[test]
    fn corruption_flips_one_bit() {
        let link = LinkParams { corrupt_chance: 1.0, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(3);
        let frame = vec![0u8; 64];
        let out = link.inject_faults(frame.clone(), &mut rng).expect("not dropped");
        let diff: u32 = frame.iter().zip(&out).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(diff, 1);
    }
}
