//! Link model: latency, bandwidth, and fault injection.

use crate::time::SimTime;
use bytes::Bytes;
use rand::{rngs::StdRng, RngExt};

/// Parameters of a point-to-point link.
#[derive(Clone, Copy, Debug)]
pub struct LinkParams {
    /// One-way propagation delay.
    pub latency: SimTime,
    /// Throughput in bytes per second (0 = infinite).
    pub bandwidth_bps: u64,
    /// Probability a frame is silently dropped (fault injection).
    pub drop_chance: f64,
    /// Probability one byte of a frame is flipped (fault injection).
    pub corrupt_chance: f64,
    /// Probability a frame is delivered twice (fault injection); the extra
    /// copy arrives `reorder_delay` later and is never corrupted.
    pub duplicate_chance: f64,
    /// Probability a frame is held back by `reorder_delay`, letting later
    /// traffic overtake it (fault injection).
    pub reorder_chance: f64,
    /// Extra delay applied to duplicated copies and reordered frames.
    pub reorder_delay: SimTime,
}

impl Default for LinkParams {
    fn default() -> Self {
        // A comfortable WAN link: 50 ms, 50 Mbit/s, no faults.
        LinkParams {
            latency: SimTime::from_millis(50),
            bandwidth_bps: 50_000_000 / 8,
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            duplicate_chance: 0.0,
            reorder_chance: 0.0,
            reorder_delay: SimTime::from_millis(75),
        }
    }
}

/// Coarse latency classes for heterogeneous topologies. The default
/// topology gives every pair the same 50 ms WAN link; real deployments
/// mix data-center neighbors with intercontinental ones, which is
/// exactly the regime where one fixed retry timer cannot be right for
/// everybody. Classes only pick the `latency` field — bandwidth and
/// fault knobs stay at the [`LinkParams`] defaults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LatencyClass {
    /// Same rack / metro area (2 ms).
    Metro,
    /// Same region (15 ms).
    Regional,
    /// Cross-continent (60 ms).
    Continental,
    /// Intercontinental (150 ms).
    Intercontinental,
}

impl LatencyClass {
    /// One-way propagation delay of this class.
    pub fn latency(self) -> SimTime {
        match self {
            LatencyClass::Metro => SimTime::from_millis(2),
            LatencyClass::Regional => SimTime::from_millis(15),
            LatencyClass::Continental => SimTime::from_millis(60),
            LatencyClass::Intercontinental => SimTime::from_millis(150),
        }
    }

    /// Default link parameters at this class's latency.
    pub fn link(self) -> LinkParams {
        LinkParams { latency: self.latency(), ..LinkParams::default() }
    }

    /// Deterministically assign a class to the unordered pair `(a, b)`.
    /// A pure function of `(seed, min, max)` — symmetric, independent of
    /// call order, and free of any shared RNG, so heterogeneous
    /// topologies stay byte-identical for any `--threads` value. The
    /// distribution is a rough pyramid: metro links are rare, regional
    /// and continental dominate, intercontinental tails off.
    pub fn assign(seed: u64, a: usize, b: usize) -> LatencyClass {
        let (lo, hi) = (a.min(b) as u64, a.max(b) as u64);
        let mut x =
            seed ^ lo.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ hi.wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        match x % 100 {
            0..=9 => LatencyClass::Metro,
            10..=44 => LatencyClass::Regional,
            45..=79 => LatencyClass::Continental,
            _ => LatencyClass::Intercontinental,
        }
    }
}

impl LinkParams {
    /// Transit time for a frame of `bytes` bytes.
    pub fn transit_time(&self, bytes: usize) -> SimTime {
        let serialization = match (bytes as u64 * 1_000_000).checked_div(self.bandwidth_bps) {
            Some(us) => SimTime::from_micros(us),
            None => SimTime::ZERO, // bandwidth 0 = infinite capacity
        };
        self.latency + serialization
    }

    /// Apply fault injection to a frame. Returns `None` when dropped, or the
    /// (possibly corrupted) frame.
    pub fn inject_faults(&self, mut frame: Vec<u8>, rng: &mut StdRng) -> Option<Vec<u8>> {
        if self.drop_chance > 0.0 && rng.random_bool(self.drop_chance.clamp(0.0, 1.0)) {
            return None;
        }
        if self.corrupt_chance > 0.0
            && !frame.is_empty()
            && rng.random_bool(self.corrupt_chance.clamp(0.0, 1.0))
        {
            let idx = rng.random_range(0..frame.len());
            frame[idx] ^= 1 << rng.random_range(0..8);
        }
        Some(frame)
    }

    /// Full fault pipeline: drop, corrupt, duplicate, reorder. Returns the
    /// copies to deliver, each with an *extra* delay on top of
    /// [`transit_time`](Self::transit_time). Draw order is fixed
    /// (drop → corrupt → duplicate → reorder) and every roll is guarded by
    /// its chance being nonzero, so configurations that leave the new
    /// faults at 0.0 consume exactly the RNG stream of [`inject_faults`]
    /// (Self::inject_faults) — existing seeded results are unchanged.
    ///
    /// The frame is reference-counted: the usual no-fault delivery is a
    /// refcount bump, and the payload bytes are only copied when corruption
    /// actually fires (copy-on-write).
    pub fn deliveries(&self, frame: &Bytes, rng: &mut StdRng) -> Vec<(SimTime, Bytes)> {
        if self.drop_chance > 0.0 && rng.random_bool(self.drop_chance.clamp(0.0, 1.0)) {
            return Vec::new();
        }
        let delivered = if self.corrupt_chance > 0.0
            && !frame.is_empty()
            && rng.random_bool(self.corrupt_chance.clamp(0.0, 1.0))
        {
            // Same RNG draws as `inject_faults`: byte index, then bit.
            let idx = rng.random_range(0..frame.len());
            let bit = rng.random_range(0..8);
            let mut copy = frame.to_vec();
            copy[idx] ^= 1 << bit;
            Bytes::from(copy)
        } else {
            frame.clone()
        };
        let mut out = Vec::with_capacity(2);
        let duplicated =
            self.duplicate_chance > 0.0 && rng.random_bool(self.duplicate_chance.clamp(0.0, 1.0));
        let reordered =
            self.reorder_chance > 0.0 && rng.random_bool(self.reorder_chance.clamp(0.0, 1.0));
        let primary_delay = if reordered { self.reorder_delay } else { SimTime::ZERO };
        out.push((primary_delay, delivered));
        if duplicated {
            // The stray copy took another path: clean bytes, extra delay.
            out.push((self.reorder_delay, frame.clone()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn transit_accounts_for_bandwidth() {
        let link = LinkParams {
            latency: SimTime::from_millis(10),
            bandwidth_bps: 1_000_000,
            ..Default::default()
        };
        // 1 MB at 1 MB/s = 1 s + 10 ms.
        assert_eq!(link.transit_time(1_000_000).as_micros(), 1_010_000);
        let infinite = LinkParams { bandwidth_bps: 0, ..link };
        assert_eq!(infinite.transit_time(1_000_000), SimTime::from_millis(10));
    }

    #[test]
    fn faults_disabled_by_default() {
        let link = LinkParams::default();
        let mut rng = StdRng::seed_from_u64(1);
        let frame = vec![1, 2, 3];
        assert_eq!(link.inject_faults(frame.clone(), &mut rng), Some(frame));
    }

    #[test]
    fn drop_chance_drops() {
        let link = LinkParams { drop_chance: 1.0, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(link.inject_faults(vec![1], &mut rng), None);
    }

    #[test]
    fn deliveries_matches_inject_faults_when_new_faults_off() {
        let link = LinkParams { drop_chance: 0.3, corrupt_chance: 0.3, ..Default::default() };
        for seed in 0..32 {
            let frame = vec![seed as u8; 40];
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            let legacy = link.inject_faults(frame.clone(), &mut a);
            let multi = link.deliveries(&Bytes::from(frame), &mut b);
            match legacy {
                None => assert!(multi.is_empty()),
                Some(f) => assert_eq!(multi, vec![(SimTime::ZERO, Bytes::from(f))]),
            }
        }
    }

    #[test]
    fn duplication_yields_two_copies() {
        let link = LinkParams { duplicate_chance: 1.0, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(4);
        let frame = Bytes::from(vec![9u8, 9, 9]);
        let out = link.deliveries(&frame, &mut rng);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], (SimTime::ZERO, frame.clone()));
        assert_eq!(out[1], (link.reorder_delay, frame));
    }

    #[test]
    fn reordering_delays_the_primary_copy() {
        let link = LinkParams { reorder_chance: 1.0, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(5);
        let frame = Bytes::from(vec![7u8]);
        let out = link.deliveries(&frame, &mut rng);
        assert_eq!(out, vec![(link.reorder_delay, frame)]);
    }

    #[test]
    fn duplicated_copy_is_never_corrupted() {
        let link = LinkParams { corrupt_chance: 1.0, duplicate_chance: 1.0, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(6);
        let frame = Bytes::from(vec![0u8; 32]);
        let out = link.deliveries(&frame, &mut rng);
        assert_eq!(out.len(), 2);
        assert_ne!(out[0].1, frame, "primary should be corrupted");
        assert_eq!(out[1].1, frame, "duplicate must be pristine");
    }

    #[test]
    fn clean_delivery_shares_the_frame_allocation() {
        // No faults: the delivered copy must be a refcount bump, not a
        // payload copy.
        let link = LinkParams::default();
        let mut rng = StdRng::seed_from_u64(7);
        let frame = Bytes::from(vec![5u8; 64]);
        let out = link.deliveries(&frame, &mut rng);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.as_ptr(), frame.as_ptr(), "expected shared allocation");
    }

    #[test]
    fn latency_class_assignment_is_symmetric_and_deterministic() {
        for seed in [0u64, 7, 0xdead] {
            for a in 0..12usize {
                for b in 0..12usize {
                    assert_eq!(LatencyClass::assign(seed, a, b), LatencyClass::assign(seed, b, a));
                    assert_eq!(LatencyClass::assign(seed, a, b), LatencyClass::assign(seed, a, b));
                }
            }
        }
    }

    #[test]
    fn latency_classes_are_actually_heterogeneous() {
        use std::collections::HashSet;
        let classes: HashSet<_> = (0..16usize)
            .flat_map(|a| (a + 1..16usize).map(move |b| LatencyClass::assign(3, a, b)))
            .map(|c| c.latency())
            .collect();
        assert!(classes.len() >= 3, "a 16-peer topology should mix at least 3 classes");
    }

    #[test]
    fn latency_class_links_keep_default_faults() {
        let link = LatencyClass::Intercontinental.link();
        assert_eq!(link.latency, SimTime::from_millis(150));
        assert_eq!(link.drop_chance, 0.0);
        assert_eq!(link.bandwidth_bps, LinkParams::default().bandwidth_bps);
    }

    #[test]
    fn corruption_flips_one_bit() {
        let link = LinkParams { corrupt_chance: 1.0, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(3);
        let frame = vec![0u8; 64];
        let out = link.inject_faults(frame.clone(), &mut rng).expect("not dropped");
        let diff: u32 = frame.iter().zip(&out).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(diff, 1);
    }
}
