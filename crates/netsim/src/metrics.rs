//! Shared metrics collection.

use crate::peer::PeerId;
use crate::time::SimTime;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Byte and latency accounting for one simulation run.
///
/// Wrapped in a [`Mutex`] so peers (borrow-wise independent actors inside
/// the event loop) can record without threading references through every
/// call.
#[derive(Default)]
pub struct Metrics {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    bytes_by_type: HashMap<u8, u64>,
    frames: u64,
    dropped: u64,
    corrupted_decodes: u64,
    block_arrival: HashMap<PeerId, SimTime>,
    bans: u64,
    failovers: u64,
    escalations: u64,
}

impl Metrics {
    /// Fresh collector.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Record a frame of `bytes` with message type byte `ty`.
    pub fn record_frame(&self, ty: u8, bytes: usize) {
        let mut g = self.inner.lock();
        *g.bytes_by_type.entry(ty).or_default() += bytes as u64;
        g.frames += 1;
    }

    /// Record a fault-injected drop.
    pub fn record_drop(&self) {
        self.inner.lock().dropped += 1;
    }

    /// Record a frame that failed to decode (corruption or hostile).
    pub fn record_bad_decode(&self) {
        self.inner.lock().corrupted_decodes += 1;
    }

    /// Record a peer banning a misbehaving neighbor.
    pub fn record_ban(&self) {
        self.inner.lock().bans += 1;
    }

    /// Record `n` session failovers to an alternate server.
    pub fn record_failovers(&self, n: u32) {
        self.inner.lock().failovers += n as u64;
    }

    /// Record `n` recovery-ladder rung escalations.
    pub fn record_escalations(&self, n: u32) {
        self.inner.lock().escalations += n as u64;
    }

    /// Record the first time `peer` fully reconstructed the block.
    pub fn record_block_arrival(&self, peer: PeerId, at: SimTime) {
        self.inner.lock().block_arrival.entry(peer).or_insert(at);
    }

    /// Total bytes across all message types.
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().bytes_by_type.values().sum()
    }

    /// Bytes for one frame type.
    pub fn bytes_for(&self, ty: u8) -> u64 {
        self.inner.lock().bytes_by_type.get(&ty).copied().unwrap_or(0)
    }

    /// Number of frames sent.
    pub fn frames(&self) -> u64 {
        self.inner.lock().frames
    }

    /// Number of dropped frames.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Number of undecodable frames received.
    pub fn bad_decodes(&self) -> u64 {
        self.inner.lock().corrupted_decodes
    }

    /// Number of bans issued across all peers.
    pub fn bans(&self) -> u64 {
        self.inner.lock().bans
    }

    /// Number of session failovers across all peers.
    pub fn failovers(&self) -> u64 {
        self.inner.lock().failovers
    }

    /// Number of ladder escalations across all peers.
    pub fn escalations(&self) -> u64 {
        self.inner.lock().escalations
    }

    /// When `peer` first held the block, if ever.
    pub fn arrival(&self, peer: PeerId) -> Option<SimTime> {
        self.inner.lock().block_arrival.get(&peer).copied()
    }

    /// Number of peers that received the block.
    pub fn peers_with_block(&self) -> usize {
        self.inner.lock().block_arrival.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let m = Metrics::new();
        m.record_frame(0x10, 100);
        m.record_frame(0x10, 50);
        m.record_frame(0x01, 37);
        assert_eq!(m.total_bytes(), 187);
        assert_eq!(m.bytes_for(0x10), 150);
        assert_eq!(m.frames(), 3);
    }

    #[test]
    fn first_arrival_wins() {
        let m = Metrics::new();
        m.record_block_arrival(PeerId(1), SimTime::from_millis(5));
        m.record_block_arrival(PeerId(1), SimTime::from_millis(9));
        assert_eq!(m.arrival(PeerId(1)), Some(SimTime::from_millis(5)));
        assert_eq!(m.peers_with_block(), 1);
    }
}
