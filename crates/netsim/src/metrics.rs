//! Shared metrics collection.

use crate::peer::PeerId;
use crate::time::SimTime;
use graphene::encode_cache::CacheStats;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Byte and latency accounting for one simulation run.
///
/// Wrapped in a [`Mutex`] so peers (borrow-wise independent actors inside
/// the event loop) can record without threading references through every
/// call.
#[derive(Default)]
pub struct Metrics {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    bytes_by_type: HashMap<u8, u64>,
    frames: u64,
    dropped: u64,
    corrupted_decodes: u64,
    block_arrival: HashMap<PeerId, SimTime>,
    bans: u64,
    failovers: u64,
    escalations: u64,
    stale_timers: u64,
    clamped_events: u64,
    offline_drops: u64,
    partition_drops: u64,
    duplicated_frames: u64,
    churn_outages: u64,
    crashes: u64,
    shed_frames: u64,
    resource_hwm_bytes: u64,
    event_queue_hwm: u64,
    wheel_slot_hwm: u64,
    /// Network-wide relay-cache counters, *set* (not accumulated) from the
    /// peers' own cumulative stats at the end of each `run_until`.
    cache: CacheStats,
    /// Hedged-fetch counters (issued, won, wasted), set like `cache`.
    hedges: (u64, u64, u64),
    /// Circuit-breaker counters (trips, half-open probes), set like `cache`.
    breaker: (u64, u64),
}

impl Metrics {
    /// Fresh collector.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Record a frame of `bytes` with message type byte `ty`.
    pub fn record_frame(&self, ty: u8, bytes: usize) {
        let mut g = self.inner.lock();
        *g.bytes_by_type.entry(ty).or_default() += bytes as u64;
        g.frames += 1;
    }

    /// Record a fault-injected drop.
    pub fn record_drop(&self) {
        self.inner.lock().dropped += 1;
    }

    /// Record a frame that failed to decode (corruption or hostile).
    pub fn record_bad_decode(&self) {
        self.inner.lock().corrupted_decodes += 1;
    }

    /// Record a peer banning a misbehaving neighbor.
    pub fn record_ban(&self) {
        self.inner.lock().bans += 1;
    }

    /// Record `n` session failovers to an alternate server.
    pub fn record_failovers(&self, n: u32) {
        self.inner.lock().failovers += n as u64;
    }

    /// Record `n` recovery-ladder rung escalations.
    pub fn record_escalations(&self, n: u32) {
        self.inner.lock().escalations += n as u64;
    }

    /// Record a timer dropped on pop because its session or restart
    /// generation went stale.
    pub fn record_stale_timer(&self) {
        self.inner.lock().stale_timers += 1;
    }

    /// Record an event scheduled in the past and clamped to `now` — a
    /// clock anomaly that should never be silent.
    pub fn record_clamped_event(&self) {
        self.inner.lock().clamped_events += 1;
    }

    /// Overwrite the clamp total with the event queue's own cumulative
    /// count. The queue counts every past-time clamp internally, so no
    /// scheduling call site can drop one; this *sets* rather than adds
    /// because the queue's counter is cumulative across `run_until`
    /// calls.
    pub fn set_clamped_events(&self, total: u64) {
        self.inner.lock().clamped_events = total;
    }

    /// Record a frame lost because its endpoint was offline.
    pub fn record_offline_drop(&self) {
        self.inner.lock().offline_drops += 1;
    }

    /// Record a frame lost to an active network partition.
    pub fn record_partition_drop(&self) {
        self.inner.lock().partition_drops += 1;
    }

    /// Record a link-level duplicated delivery.
    pub fn record_duplicate(&self) {
        self.inner.lock().duplicated_frames += 1;
    }

    /// Record a churn outage starting.
    pub fn record_churn(&self) {
        self.inner.lock().churn_outages += 1;
    }

    /// Record a crash/restart cycle starting.
    pub fn record_crash(&self) {
        self.inner.lock().crashes += 1;
    }

    /// Record `n` inbound frames shed by the load-shedding policy.
    pub fn record_shed(&self, n: u64) {
        self.inner.lock().shed_frames += n;
    }

    /// Fold one peer's accounted-memory high-water mark into the
    /// simulation-wide maximum.
    pub fn record_resource_hwm(&self, bytes: u64) {
        let mut g = self.inner.lock();
        g.resource_hwm_bytes = g.resource_hwm_bytes.max(bytes);
    }

    /// Fold the event queue's high-water marks (peak pending events,
    /// peak single-slot occupancy) into the simulation-wide maxima —
    /// the scheduler-side mirror of [`record_resource_hwm`](Self::record_resource_hwm).
    pub fn record_event_queue_hwm(&self, pending: u64, slot: u64) {
        let mut g = self.inner.lock();
        g.event_queue_hwm = g.event_queue_hwm.max(pending);
        g.wheel_slot_hwm = g.wheel_slot_hwm.max(slot);
    }

    /// Overwrite the network-wide relay-cache totals. Peers keep their own
    /// cumulative [`CacheStats`]; the network folds them after each
    /// `run_until`, and *setting* (rather than adding) keeps repeated
    /// folds from double-counting.
    pub fn set_cache_totals(&self, totals: CacheStats) {
        self.inner.lock().cache = totals;
    }

    /// Network-wide relay-cache counters (hits, misses, evictions,
    /// bytes saved, bypasses) as of the last `run_until`.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.lock().cache
    }

    /// Overwrite the network-wide hedged-fetch totals (issued, won,
    /// wasted) — same set-don't-add contract as [`set_cache_totals`](Self::set_cache_totals).
    pub fn set_hedge_totals(&self, issued: u64, won: u64, wasted: u64) {
        self.inner.lock().hedges = (issued, won, wasted);
    }

    /// Overwrite the network-wide circuit-breaker totals (trips, probes).
    pub fn set_breaker_totals(&self, trips: u64, probes: u64) {
        self.inner.lock().breaker = (trips, probes);
    }

    /// Hedged fetches (issued, won, wasted) as of the last `run_until`.
    pub fn hedge_totals(&self) -> (u64, u64, u64) {
        self.inner.lock().hedges
    }

    /// Circuit-breaker (trips, half-open probes) as of the last `run_until`.
    pub fn breaker_totals(&self) -> (u64, u64) {
        self.inner.lock().breaker
    }

    /// Record the first time `peer` fully reconstructed the block.
    pub fn record_block_arrival(&self, peer: PeerId, at: SimTime) {
        self.inner.lock().block_arrival.entry(peer).or_insert(at);
    }

    /// Total bytes across all message types.
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().bytes_by_type.values().sum()
    }

    /// Bytes for one frame type.
    pub fn bytes_for(&self, ty: u8) -> u64 {
        self.inner.lock().bytes_by_type.get(&ty).copied().unwrap_or(0)
    }

    /// Number of frames sent.
    pub fn frames(&self) -> u64 {
        self.inner.lock().frames
    }

    /// Number of dropped frames.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Number of undecodable frames received.
    pub fn bad_decodes(&self) -> u64 {
        self.inner.lock().corrupted_decodes
    }

    /// Number of bans issued across all peers.
    pub fn bans(&self) -> u64 {
        self.inner.lock().bans
    }

    /// Number of session failovers across all peers.
    pub fn failovers(&self) -> u64 {
        self.inner.lock().failovers
    }

    /// Number of ladder escalations across all peers.
    pub fn escalations(&self) -> u64 {
        self.inner.lock().escalations
    }

    /// Stale timers dropped on pop.
    pub fn stale_timers(&self) -> u64 {
        self.inner.lock().stale_timers
    }

    /// Past-time events clamped to `now` by the queue.
    pub fn clamped_events(&self) -> u64 {
        self.inner.lock().clamped_events
    }

    /// Frames lost to offline endpoints.
    pub fn offline_drops(&self) -> u64 {
        self.inner.lock().offline_drops
    }

    /// Frames lost to an active partition.
    pub fn partition_drops(&self) -> u64 {
        self.inner.lock().partition_drops
    }

    /// Link-level duplicated deliveries.
    pub fn duplicated_frames(&self) -> u64 {
        self.inner.lock().duplicated_frames
    }

    /// Churn outages injected.
    pub fn churn_outages(&self) -> u64 {
        self.inner.lock().churn_outages
    }

    /// Crash/restart cycles injected.
    pub fn crashes(&self) -> u64 {
        self.inner.lock().crashes
    }

    /// Inbound frames shed under queue pressure.
    pub fn shed_frames(&self) -> u64 {
        self.inner.lock().shed_frames
    }

    /// Maximum accounted per-peer memory observed anywhere in the run.
    pub fn resource_hwm_bytes(&self) -> u64 {
        self.inner.lock().resource_hwm_bytes
    }

    /// Peak number of simultaneously pending events in the scheduler.
    pub fn event_queue_hwm(&self) -> u64 {
        self.inner.lock().event_queue_hwm
    }

    /// Peak occupancy of any single timing-wheel slot.
    pub fn wheel_slot_hwm(&self) -> u64 {
        self.inner.lock().wheel_slot_hwm
    }

    /// When `peer` first held the block, if ever.
    pub fn arrival(&self, peer: PeerId) -> Option<SimTime> {
        self.inner.lock().block_arrival.get(&peer).copied()
    }

    /// Number of peers that received the block.
    pub fn peers_with_block(&self) -> usize {
        self.inner.lock().block_arrival.len()
    }

    /// The `p`-th percentile (nearest-rank, `p` in [0, 100]) of per-peer
    /// block-arrival times, or `None` before any arrival. With every peer
    /// reached this is the session-completion latency distribution — the
    /// quantity the adaptive failure detector exists to improve.
    pub fn arrival_percentile(&self, p: f64) -> Option<SimTime> {
        let g = self.inner.lock();
        if g.block_arrival.is_empty() {
            return None;
        }
        let mut times: Vec<SimTime> = g.block_arrival.values().copied().collect();
        times.sort();
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * times.len() as f64).ceil() as usize;
        Some(times[rank.saturating_sub(1).min(times.len() - 1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let m = Metrics::new();
        m.record_frame(0x10, 100);
        m.record_frame(0x10, 50);
        m.record_frame(0x01, 37);
        assert_eq!(m.total_bytes(), 187);
        assert_eq!(m.bytes_for(0x10), 150);
        assert_eq!(m.frames(), 3);
    }

    #[test]
    fn chaos_counters_accumulate() {
        let m = Metrics::new();
        m.record_stale_timer();
        m.record_clamped_event();
        m.record_offline_drop();
        m.record_partition_drop();
        m.record_duplicate();
        m.record_churn();
        m.record_crash();
        m.record_shed(3);
        m.record_resource_hwm(500);
        m.record_resource_hwm(200); // max, not sum
        assert_eq!(m.stale_timers(), 1);
        assert_eq!(m.clamped_events(), 1);
        assert_eq!(m.offline_drops(), 1);
        assert_eq!(m.partition_drops(), 1);
        assert_eq!(m.duplicated_frames(), 1);
        assert_eq!(m.churn_outages(), 1);
        assert_eq!(m.crashes(), 1);
        assert_eq!(m.shed_frames(), 3);
        assert_eq!(m.resource_hwm_bytes(), 500);
    }

    #[test]
    fn event_queue_hwm_folds_as_max() {
        let m = Metrics::new();
        m.record_event_queue_hwm(100, 7);
        m.record_event_queue_hwm(40, 12); // later, smaller queue / hotter slot
        assert_eq!(m.event_queue_hwm(), 100);
        assert_eq!(m.wheel_slot_hwm(), 12);
    }

    #[test]
    fn first_arrival_wins() {
        let m = Metrics::new();
        m.record_block_arrival(PeerId(1), SimTime::from_millis(5));
        m.record_block_arrival(PeerId(1), SimTime::from_millis(9));
        assert_eq!(m.arrival(PeerId(1)), Some(SimTime::from_millis(5)));
        assert_eq!(m.peers_with_block(), 1);
    }

    #[test]
    fn detector_totals_set_not_add() {
        let m = Metrics::new();
        m.set_hedge_totals(5, 2, 1);
        m.set_hedge_totals(5, 2, 1); // repeated fold must not double
        m.set_breaker_totals(3, 4);
        m.set_breaker_totals(3, 4);
        assert_eq!(m.hedge_totals(), (5, 2, 1));
        assert_eq!(m.breaker_totals(), (3, 4));
    }

    #[test]
    fn arrival_percentiles_nearest_rank() {
        let m = Metrics::new();
        assert_eq!(m.arrival_percentile(99.0), None);
        for i in 0..10usize {
            m.record_block_arrival(PeerId(i), SimTime::from_millis((i as u64 + 1) * 10));
        }
        assert_eq!(m.arrival_percentile(50.0), Some(SimTime::from_millis(50)));
        assert_eq!(m.arrival_percentile(99.0), Some(SimTime::from_millis(100)));
        assert_eq!(m.arrival_percentile(0.0), Some(SimTime::from_millis(10)));
        assert_eq!(m.arrival_percentile(100.0), Some(SimTime::from_millis(100)));
    }
}
