//! Topology, routing and the propagation experiment driver.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::arena::PeerArena;
use crate::backoff;
use crate::chaos::{ChaosConfig, ChaosEvent, OutageKind};
use crate::event::{Event, EventQueue};
use crate::link::{LatencyClass, LinkParams};
use crate::metrics::Metrics;
use crate::peer::{FanoutPolicy, Output, Peer, PeerId, RelayProtocol};
use crate::time::SimTime;
use crate::topology;
use bytes::Bytes;
use graphene_blockchain::{Block, Mempool};
use graphene_wire::{Decode, Encode, Message};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::collections::HashMap;

/// A simulated peer-to-peer network.
pub struct Network {
    /// SoA peer storage: hot dispatch fields (online, generation,
    /// backpressure, inbox depth) in contiguous arrays, cold state
    /// machines behind the same index.
    arena: PeerArena,
    adjacency: Vec<Vec<PeerId>>,
    links: HashMap<(PeerId, PeerId), LinkParams>,
    default_link: LinkParams,
    /// When set, links without an explicit entry resolve through the
    /// geographic [`LatencyClass`] pyramid — a pure `(seed, a, b)` hash,
    /// so a 100k-peer mesh costs no per-pair storage.
    geo_seed: Option<u64>,
    queue: EventQueue,
    /// Shared byte/latency accounting.
    pub metrics: Metrics,
    rng: StdRng,
    /// Chaos schedule, if enabled.
    chaos: Option<ChaosConfig>,
    /// Is a partition currently splitting the topology?
    partition_active: bool,
    /// Reusable frame-encoding buffer for the dispatcher.
    encode_buf: Vec<u8>,
}

/// Outcome of a propagation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropagationResult {
    /// Number of peers that reconstructed the block (including the origin).
    pub peers_reached: usize,
    /// Time the last peer completed, if all were reached.
    pub completion_time: Option<SimTime>,
    /// Total bytes that crossed the wire.
    pub total_bytes: u64,
    /// Frames sent / dropped.
    pub frames: (u64, u64),
}

impl Network {
    /// Build a network of `n` peers all speaking `protocol`, with no links.
    pub fn new(n: usize, protocol: RelayProtocol, seed: u64) -> Network {
        let peers =
            (0..n).map(|i| Peer::new(PeerId(i), protocol.clone(), Mempool::new())).collect();
        Network {
            arena: PeerArena::new(peers),
            adjacency: vec![Vec::new(); n],
            links: HashMap::new(),
            default_link: LinkParams::default(),
            geo_seed: None,
            queue: EventQueue::new(),
            metrics: Metrics::new(),
            rng: StdRng::seed_from_u64(seed),
            chaos: None,
            partition_active: false,
            encode_buf: Vec::new(),
        }
    }

    /// Arm a chaos schedule: every churn/crash/partition event in `cfg`'s
    /// horizon is materialised now and replayed through the event queue.
    pub fn enable_chaos(&mut self, cfg: ChaosConfig) {
        for (at, ev) in cfg.schedule(self.arena.len()) {
            self.schedule(at, Event::Chaos(ev));
        }
        self.chaos = Some(cfg);
    }

    /// Is `peer` currently online?
    pub fn is_online(&self, peer: PeerId) -> bool {
        self.arena.online(peer)
    }

    /// Switch every peer's recovery ladder to the rateless rung (coded-cell
    /// streaming instead of inflated sketch retries).
    pub fn enable_rateless(&mut self) {
        for p in self.arena.iter_mut() {
            p.enable_rateless();
        }
    }

    /// Switch every peer to adaptive failure detection: RTO-derived retry
    /// timers, hedged fetches and circuit-breaker server selection. Off by
    /// default (the seed's fixed 2 s timer); latency sweeps opt in.
    pub fn enable_adaptive(&mut self) {
        for p in self.arena.iter_mut() {
            p.enable_adaptive();
        }
    }

    /// Set every peer's block-announcement fan-out policy. The default
    /// ([`FanoutPolicy::Flood`]) is the seed behavior; internet-scale
    /// sweeps opt into escalating adaptive fan-out.
    pub fn set_fanout(&mut self, policy: FanoutPolicy) {
        for p in self.arena.iter_mut() {
            p.set_fanout(policy);
        }
    }

    /// Resolve link parameters without explicit per-pair entries: any
    /// pair not in the explicit map draws its latency from the
    /// geographic [`LatencyClass`] pyramid keyed by `seed` — symmetric,
    /// deterministic, and storage-free, which is what lets a 100k-peer
    /// topology exist at all (an explicit map would hold ~2·n·degree
    /// entries).
    pub fn enable_geographic_links(&mut self, seed: u64) {
        self.geo_seed = Some(seed);
    }

    /// Schedule a single chaos action at an explicit time — for
    /// deterministic failure-scenario tests that need a crash at a precise
    /// instant rather than a seeded schedule.
    pub fn inject_chaos(&mut self, at: SimTime, ev: ChaosEvent) {
        self.schedule(at, Event::Chaos(ev));
    }

    /// Events still pending in the queue (heap-growth assertions).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Schedule an event. Clamp anomalies need no handling here: the
    /// queue counts every past-time clamp itself and `run_until` folds
    /// [`EventQueue::clamped`] into the metrics, so a call site that
    /// drops the returned `bool` can no longer silently lose one.
    fn schedule(&mut self, at: SimTime, event: Event) {
        let _ = self.queue.schedule(at, event);
    }

    /// Can a frame currently flow from `a` to `b`? False while a partition
    /// separates their sides.
    fn reachable(&self, a: PeerId, b: PeerId) -> bool {
        if !self.partition_active {
            return true;
        }
        match &self.chaos {
            Some(cfg) => cfg.side(a) == cfg.side(b),
            None => true,
        }
    }

    /// Set the link parameters used for all connections made afterwards.
    pub fn set_default_link(&mut self, link: LinkParams) {
        self.default_link = link;
    }

    /// Connect two peers bidirectionally with the default link.
    pub fn connect(&mut self, a: PeerId, b: PeerId) {
        self.connect_with(a, b, self.default_link);
    }

    /// Connect two peers bidirectionally with explicit parameters.
    pub fn connect_with(&mut self, a: PeerId, b: PeerId, link: LinkParams) {
        if a == b {
            return;
        }
        if !self.adjacency[a.0].contains(&b) {
            self.adjacency[a.0].push(b);
            self.adjacency[b.0].push(a);
        }
        self.links.insert((a, b), link);
        self.links.insert((b, a), link);
    }

    /// Record the edge in the adjacency lists only; the link parameters
    /// resolve at send time (explicit map → geographic model → default).
    /// This is the storage-free path internet-scale topologies use —
    /// `connect_with` would insert two `HashMap` entries per edge.
    pub fn connect_sparse(&mut self, a: PeerId, b: PeerId) {
        if a == b {
            return;
        }
        if !self.adjacency[a.0].contains(&b) {
            self.adjacency[a.0].push(b);
            self.adjacency[b.0].push(a);
        }
    }

    /// Wire a pre-generated edge list (endpoints must be `< n`, edges
    /// unique — what [`topology::barabasi_albert`] produces). Edges are
    /// pushed without the duplicate scan `connect_sparse` does, so hubs
    /// with thousands of neighbors wire in linear time.
    pub fn connect_edges(&mut self, edges: &[(u32, u32)]) {
        for &(a, b) in edges {
            self.adjacency[a as usize].push(PeerId(b as usize));
            self.adjacency[b as usize].push(PeerId(a as usize));
        }
    }

    /// Wire the peers into a Barabási–Albert scale-free topology with
    /// attachment degree `m` (mean degree ≈ 2m, heavy-tailed hubs), from
    /// the network's own seed stream.
    pub fn connect_scale_free(&mut self, m: usize) {
        let seed: u64 = self.rng.random();
        let edges = topology::barabasi_albert(self.arena.len(), m, seed);
        self.connect_edges(&edges);
    }

    /// Wire the peers into a random `degree`-regular-ish topology
    /// (each peer connects to `degree` uniformly chosen others).
    pub fn connect_random(&mut self, degree: usize) {
        let n = self.arena.len();
        for i in 0..n {
            while self.adjacency[i].len() < degree {
                let j = self.rng.random_range(0..n);
                if j != i {
                    self.connect(PeerId(i), PeerId(j));
                }
            }
        }
    }

    /// Access a peer.
    pub fn peer(&self, id: PeerId) -> &Peer {
        self.arena.peer(id)
    }

    /// Mutable access (e.g., to seed mempools).
    pub fn peer_mut(&mut self, id: PeerId) -> &mut Peer {
        self.arena.peer_mut(id)
    }

    fn link(&self, from: PeerId, to: PeerId) -> LinkParams {
        if !self.links.is_empty() {
            if let Some(l) = self.links.get(&(from, to)) {
                return *l;
            }
        }
        match self.geo_seed {
            Some(seed) => LatencyClass::assign(seed, from.0, to.0).link(),
            None => self.default_link,
        }
    }

    fn dispatch(&mut self, from: PeerId, sends: Vec<(PeerId, Message)>) {
        for (to, msg) in sends {
            // Encode into the persistent scratch buffer, then freeze into a
            // reference-counted frame: every queued copy (duplicates, the
            // clean sibling of a corrupted frame) is a refcount bump.
            msg.encode_into(&mut self.encode_buf);
            let frame = Bytes::from(&self.encode_buf[..]);
            self.deliver_frame(from, to, msg.type_byte(), frame);
        }
    }

    /// Dispatch pre-encoded frames — the encode-once relay cache's
    /// zero-copy path. No per-receiver encode happens here: the refcounted
    /// frame (shared with the sender's cache) is scheduled directly.
    fn dispatch_frames(&mut self, from: PeerId, sends: Vec<(PeerId, Bytes)>) {
        for (to, frame) in sends {
            // A frame's first byte is its wire type (frame = type ‖ len ‖
            // body), so metrics stay per-type without a decode.
            let type_byte = frame.first().copied().unwrap_or(0);
            self.deliver_frame(from, to, type_byte, frame);
        }
    }

    fn deliver_frame(&mut self, from: PeerId, to: PeerId, type_byte: u8, frame: Bytes) {
        self.deliver_frame_held(from, to, type_byte, frame, SimTime::ZERO);
    }

    /// [`deliver_frame`](Self::deliver_frame) with an extra sender-side
    /// hold (the tarpit adversary's delayed responses).
    fn deliver_frame_held(
        &mut self,
        from: PeerId,
        to: PeerId,
        type_byte: u8,
        frame: Bytes,
        hold: SimTime,
    ) {
        self.metrics.record_frame(type_byte, frame.len());
        let link = self.link(from, to);
        let transit = link.transit_time(frame.len());
        let copies = link.deliveries(&frame, &mut self.rng);
        if copies.is_empty() {
            self.metrics.record_drop();
            return;
        }
        if copies.len() > 1 {
            self.metrics.record_duplicate();
        }
        for (extra, frame) in copies {
            let at = self.queue.now() + hold + transit + extra;
            self.schedule(at, Event::Deliver { to, from, frame });
        }
    }

    fn apply_output(&mut self, peer: PeerId, out: Output) {
        if let Some(block_id) = out.completed_block {
            let now = self.queue.now();
            self.metrics.record_block_arrival(peer, now);
            let _ = block_id;
        }
        for (block_id, attempt) in out.timers {
            // Deterministic jittered exponential backoff: retries spread
            // out instead of firing in lock-step every 2 s. Announcement
            // timers carry a flag bit that must not inflate the delay.
            // Adaptive peers replace the fixed 2 s base with the current
            // server's RTO for session timers (announcement re-inv timers
            // keep the fixed pace — they guard gossip, not a server).
            let is_session = attempt & crate::peer::ANN_FLAG == 0;
            let delay = match self.arena.peer(peer).rto_hint(&block_id).filter(|_| is_session) {
                Some(rto) => backoff::delay_from_base(peer, block_id, attempt, rto),
                None => backoff::delay(peer, block_id, attempt & !crate::peer::ANN_FLAG),
            };
            let at = self.queue.now() + delay;
            let gen = self.arena.gen(peer);
            self.schedule(at, Event::Timeout { peer, block_id, attempt, gen });
        }
        for _ in &out.banned {
            self.metrics.record_ban();
        }
        self.metrics.record_failovers(out.failovers);
        self.metrics.record_escalations(out.escalations);
        self.dispatch(peer, out.send);
        self.dispatch_frames(peer, out.send_frames);
        // Tarpitted responses: honest bytes, hostile schedule. The hold is
        // the sender's doing, so it rides on top of the link transit time.
        for (to, msg, hold) in out.send_delayed {
            msg.encode_into(&mut self.encode_buf);
            let frame = Bytes::from(&self.encode_buf[..]);
            self.deliver_frame_held(peer, to, msg.type_byte(), frame, hold);
        }
    }

    /// Inject freshly authored transactions at `origin` and let them gossip
    /// (inv/getdata/tx relay, §2.2). Call [`Network::run_until`] afterwards
    /// (or rely on a subsequent [`Network::propagate`]) to drain the queue.
    pub fn inject_txns(&mut self, origin: PeerId, txns: Vec<graphene_blockchain::Transaction>) {
        let out = self.arena.peer_mut(origin).originate_txns(txns, &self.adjacency[origin.0]);
        self.apply_output(origin, out);
    }

    /// Seed `block` at `origin` and run the simulation until quiescence or
    /// `max_time`. Returns propagation statistics.
    pub fn propagate(
        &mut self,
        origin: PeerId,
        block: Block,
        max_time: SimTime,
    ) -> PropagationResult {
        let out = self.arena.peer_mut(origin).originate(block, &self.adjacency[origin.0]);
        self.metrics.record_block_arrival(origin, SimTime::ZERO);
        self.apply_output(origin, out);
        self.run_until(max_time);

        let peers_reached = self.metrics.peers_with_block();
        let completion_time = if peers_reached == self.arena.len() {
            (0..self.arena.len()).filter_map(|i| self.metrics.arrival(PeerId(i))).max()
        } else {
            None
        };
        PropagationResult {
            peers_reached,
            completion_time,
            total_bytes: self.metrics.total_bytes(),
            frames: (self.metrics.frames(), self.metrics.dropped()),
        }
    }

    /// Drain the event queue until empty or `max_time`.
    pub fn run_until(&mut self, max_time: SimTime) {
        while let Some((at, event)) = self.queue.pop() {
            if at > max_time {
                break;
            }
            match event {
                Event::Deliver { to, from, frame } => {
                    if !self.arena.online(to) {
                        self.metrics.record_offline_drop();
                        continue;
                    }
                    if !self.reachable(from, to) {
                        self.metrics.record_partition_drop();
                        continue;
                    }
                    let msg = match Message::decode_exact(&frame) {
                        Ok(m) => m,
                        Err(_) => {
                            // Corrupted frame: drop; timers handle recovery.
                            self.metrics.record_bad_decode();
                            continue;
                        }
                    };
                    // Backpressure: the frame joins the peer's bounded
                    // inbound queue (possibly shedding under load) and is
                    // processed by a Drain event once the peer is free.
                    let bytes = frame.len();
                    let shed = self.arena.peer_mut(to).enqueue(from, msg, bytes);
                    self.arena.sync_inbox_depth(to);
                    if shed > 0 {
                        self.metrics.record_shed(shed);
                    }
                    let ready = at.max(self.arena.busy_until(to));
                    self.schedule(ready, Event::Drain { peer: to });
                }
                Event::Drain { peer } => {
                    if !self.arena.online(peer) {
                        continue; // queue was wiped with the crash
                    }
                    if self.arena.inbox_depth(peer) == 0 {
                        continue; // frame was shed after this drain was armed
                    }
                    if at < self.arena.busy_until(peer) {
                        // Still chewing on an earlier frame; come back when
                        // free. (Happens when processing delays are nonzero
                        // and arrivals cluster.)
                        let ready = self.arena.busy_until(peer);
                        self.schedule(ready, Event::Drain { peer });
                        continue;
                    }
                    let Some((from, msg, bytes)) = self.arena.peer_mut(peer).dequeue() else {
                        continue; // mirror said non-empty, trust the source
                    };
                    self.arena.sync_inbox_depth(peer);
                    let busy = at + self.arena.peer(peer).limits.proc_time(bytes);
                    self.arena.set_busy_until(peer, busy);
                    // The peer reads the clock for RTT samples and breaker
                    // cool-downs; set it to this frame's processing instant.
                    self.arena.peer_mut(peer).set_clock(at);
                    // Disjoint-field borrow: no per-frame adjacency clone.
                    let out = self.arena.peer_mut(peer).handle(from, msg, &self.adjacency[peer.0]);
                    self.apply_output(peer, out);
                }
                Event::Timeout { peer, block_id, attempt, gen } => {
                    if !self.arena.online(peer) || gen != self.arena.gen(peer) {
                        // Armed before a crash/outage: the state it guarded
                        // no longer exists.
                        self.metrics.record_stale_timer();
                        continue;
                    }
                    if !self.arena.peer(peer).timer_current(&block_id, attempt) {
                        // Session completed or advanced past this epoch;
                        // drop on pop instead of dispatching a no-op.
                        self.metrics.record_stale_timer();
                        continue;
                    }
                    self.arena.peer_mut(peer).set_clock(at);
                    let out = self.arena.peer_mut(peer).handle_timeout(block_id, attempt);
                    self.apply_output(peer, out);
                }
                Event::Chaos(ev) => self.apply_chaos(at, ev),
            }
        }
        for p in self.arena.iter() {
            self.metrics.record_resource_hwm(p.accounting().hwm_bytes);
        }
        // Scheduler accounting: fold the queue's own counters — the
        // pending-event and wheel-slot high-water marks, and every
        // past-time clamp (counted inside the queue, so no call site can
        // drop one). Set-not-add via max/overwrite semantics keeps
        // repeated `run_until` calls from double-counting.
        self.metrics.record_event_queue_hwm(
            self.queue.high_water() as u64,
            self.queue.slot_high_water() as u64,
        );
        self.metrics.set_clamped_events(self.queue.clamped());
        // Fold per-peer relay-cache counters into the shared metrics. The
        // peers' stats are cumulative, so this *sets* the totals rather
        // than adding — repeated `run_until` calls must not double-count.
        let mut totals = graphene::encode_cache::CacheStats::default();
        for p in self.arena.iter() {
            if let Some(s) = p.cache_stats() {
                totals.hits += s.hits;
                totals.misses += s.misses;
                totals.evictions += s.evictions;
                totals.bytes_saved += s.bytes_saved;
                totals.bypasses += s.bypasses;
            }
        }
        self.metrics.set_cache_totals(totals);
        // Same set-the-totals pattern for the failure-detector counters:
        // per-peer stats are cumulative across `run_until` calls.
        let (mut issued, mut won, mut wasted) = (0u64, 0u64, 0u64);
        let (mut trips, mut probes) = (0u64, 0u64);
        for p in self.arena.iter() {
            let (i, w, x) = p.hedge_stats();
            issued += i;
            won += w;
            wasted += x;
            let (t, pr) = p.breaker_stats();
            trips += t;
            probes += pr;
        }
        self.metrics.set_hedge_totals(issued, won, wasted);
        self.metrics.set_breaker_totals(trips, probes);
    }

    /// Execute one chaos action.
    fn apply_chaos(&mut self, _at: SimTime, ev: ChaosEvent) {
        match ev {
            ChaosEvent::Down { peer, kind } => {
                if !self.arena.online(peer) {
                    return;
                }
                match kind {
                    OutageKind::Churn => self.metrics.record_churn(),
                    OutageKind::Crash => self.metrics.record_crash(),
                }
                // The accounted high-water mark survives the crash even
                // though the peer's state does not.
                self.metrics.record_resource_hwm(self.arena.peer(peer).accounting().hwm_bytes);
                let snapshot = self.arena.peer(peer).snapshot();
                self.arena.store_snapshot(peer, snapshot);
                self.arena.set_online(peer, false);
            }
            ChaosEvent::Up { peer, kind } => {
                if self.arena.online(peer) {
                    return;
                }
                let Some(mut snapshot) = self.arena.take_snapshot(peer) else {
                    return;
                };
                if kind == OutageKind::Churn {
                    // The pool aged out while the node was away: keep only
                    // the deterministic survival sample.
                    if let Some(cfg) = &self.chaos {
                        snapshot.retain_mempool(|id| cfg.survives(peer, id));
                    }
                }
                self.arena.peer_mut(peer).restore(snapshot);
                self.arena.sync_inbox_depth(peer);
                self.arena.set_online(peer, true);
                self.arena.bump_gen(peer);
                self.arena.set_busy_until(peer, self.queue.now());
                // Reconnect handshake with every reachable online neighbor,
                // in both directions: the rejoined peer re-announces what it
                // holds and re-learns what it missed.
                let neighbors = self.adjacency[peer.0].clone();
                for n in neighbors {
                    if !self.arena.online(n) || !self.reachable(peer, n) {
                        continue;
                    }
                    let out = self.arena.peer_mut(peer).handshake(n);
                    self.apply_output(peer, out);
                    let out = self.arena.peer_mut(n).handshake(peer);
                    self.apply_output(n, out);
                }
            }
            ChaosEvent::PartitionStart => {
                self.partition_active = true;
            }
            ChaosEvent::PartitionHeal => {
                self.partition_active = false;
                // Re-handshake across every previously-severed link so the
                // two sides reconcile the blocks mined apart.
                let Some(cfg) = self.chaos.clone() else {
                    return;
                };
                for a in 0..self.arena.len() {
                    let neighbors = self.adjacency[a].clone();
                    for b in neighbors {
                        if a >= b.0 || cfg.side(PeerId(a)) == cfg.side(b) {
                            continue;
                        }
                        if !self.arena.online(PeerId(a)) || !self.arena.online(b) {
                            continue;
                        }
                        let out = self.arena.peer_mut(PeerId(a)).handshake(b);
                        self.apply_output(PeerId(a), out);
                        let out = self.arena.peer_mut(b).handshake(PeerId(a));
                        self.apply_output(b, out);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene::GrapheneConfig;
    use graphene_blockchain::{Scenario, ScenarioParams};

    /// Build a network where every peer's mempool holds the whole block
    /// plus extras.
    fn build(n_peers: usize, protocol: RelayProtocol, scenario_seed: u64) -> (Network, Block) {
        let params = ScenarioParams {
            block_size: 150,
            extra_mempool_multiple: 1.0,
            block_fraction_in_mempool: 1.0,
            ..Default::default()
        };
        let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(scenario_seed));
        let mut net = Network::new(n_peers, protocol, 99);
        for i in 0..n_peers {
            net.peer_mut(PeerId(i)).mempool = s.receiver_mempool.clone();
        }
        (net, s.block)
    }

    fn line_topology(net: &mut Network, n: usize) {
        for i in 0..n - 1 {
            net.connect(PeerId(i), PeerId(i + 1));
        }
    }

    #[test]
    fn graphene_floods_a_line() {
        let (mut net, block) = build(5, RelayProtocol::Graphene(GrapheneConfig::default()), 1);
        line_topology(&mut net, 5);
        let r = net.propagate(PeerId(0), block, SimTime::from_millis(60_000));
        assert_eq!(r.peers_reached, 5, "{r:?}");
        assert!(r.completion_time.is_some());
        // 4 hops × ≥50 ms latency each (multiple round trips per hop).
        assert!(r.completion_time.unwrap() >= SimTime::from_millis(200));
    }

    #[test]
    fn compact_blocks_flood() {
        let (mut net, block) = build(4, RelayProtocol::CompactBlocks, 2);
        line_topology(&mut net, 4);
        let r = net.propagate(PeerId(0), block, SimTime::from_millis(60_000));
        assert_eq!(r.peers_reached, 4, "{r:?}");
    }

    #[test]
    fn xthin_flood() {
        let (mut net, block) = build(4, RelayProtocol::Xthin { filter_fpr: 0.001 }, 3);
        line_topology(&mut net, 4);
        let r = net.propagate(PeerId(0), block, SimTime::from_millis(60_000));
        assert_eq!(r.peers_reached, 4, "{r:?}");
    }

    #[test]
    fn full_blocks_flood_and_cost_most() {
        let (mut net, block) = build(3, RelayProtocol::FullBlocks, 4);
        line_topology(&mut net, 3);
        let full_r = net.propagate(PeerId(0), block, SimTime::from_millis(60_000));
        assert_eq!(full_r.peers_reached, 3);

        let (mut gnet, gblock) = build(3, RelayProtocol::Graphene(GrapheneConfig::default()), 4);
        line_topology(&mut gnet, 3);
        let g_r = gnet.propagate(PeerId(0), gblock, SimTime::from_millis(60_000));
        assert_eq!(g_r.peers_reached, 3);
        assert!(
            g_r.total_bytes * 3 < full_r.total_bytes,
            "graphene {} vs full {}",
            g_r.total_bytes,
            full_r.total_bytes
        );
    }

    #[test]
    fn graphene_star_topology_six_peers() {
        // The paper's deployment node had 6 peers (Fig. 12's setup).
        let (mut net, block) = build(7, RelayProtocol::Graphene(GrapheneConfig::default()), 5);
        for i in 1..7 {
            net.connect(PeerId(0), PeerId(i));
        }
        let r = net.propagate(PeerId(0), block, SimTime::from_millis(60_000));
        assert_eq!(r.peers_reached, 7, "{r:?}");
    }

    #[test]
    fn lossy_links_recover_via_retry() {
        let (mut net, block) = build(3, RelayProtocol::Graphene(GrapheneConfig::default()), 6);
        net.set_default_link(LinkParams { drop_chance: 0.15, ..LinkParams::default() });
        line_topology(&mut net, 3);
        let r = net.propagate(PeerId(0), block, SimTime::from_millis(600_000));
        assert_eq!(r.peers_reached, 3, "{r:?}");
    }

    #[test]
    fn corrupting_links_recover() {
        let (mut net, block) = build(3, RelayProtocol::Graphene(GrapheneConfig::default()), 7);
        net.set_default_link(LinkParams { corrupt_chance: 0.15, ..LinkParams::default() });
        line_topology(&mut net, 3);
        let r = net.propagate(PeerId(0), block, SimTime::from_millis(600_000));
        assert_eq!(r.peers_reached, 3, "{r:?}");
        // Corruption must have cost at least one attempt somewhere: either a
        // frame failed to decode outright, or a poisoned payload forced the
        // recovery ladder to escalate past plain Graphene.
        assert!(
            net.metrics.bad_decodes() > 0 || net.metrics.escalations() > 0,
            "corruption never exercised recovery"
        );
        // Single-bit corruption is never attributable, so it must never ban.
        assert_eq!(net.metrics.bans(), 0);
    }

    #[test]
    fn partial_mempools_use_protocol2() {
        let params = ScenarioParams {
            block_size: 150,
            extra_mempool_multiple: 1.0,
            block_fraction_in_mempool: 0.6,
            ..Default::default()
        };
        let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(8));
        let mut net = Network::new(2, RelayProtocol::Graphene(GrapheneConfig::default()), 99);
        net.peer_mut(PeerId(1)).mempool = s.receiver_mempool.clone();
        net.connect(PeerId(0), PeerId(1));
        let r = net.propagate(PeerId(0), s.block, SimTime::from_millis(120_000));
        assert_eq!(r.peers_reached, 2, "{r:?}");
        // The recovery message type must have been used.
        assert!(net.metrics.bytes_for(0x12) > 0, "protocol 2 never ran");
    }

    #[test]
    fn organic_tx_gossip_then_graphene_block() {
        // Transactions gossip organically over a lossy network; a block of
        // them is then mined and relayed with Graphene. Mempools diverge
        // naturally (loss, propagation delay), so this is the deployment
        // shape, not a synthetic fraction.
        use graphene_blockchain::{OrderingScheme, Transaction};
        use graphene_hashes::Digest;
        use rand::RngExt;

        let mut net = Network::new(8, RelayProtocol::Graphene(GrapheneConfig::default()), 5);
        net.set_default_link(LinkParams { drop_chance: 0.05, ..LinkParams::default() });
        net.connect_random(3);

        let mut rng = StdRng::seed_from_u64(21);
        let mut all_txns = Vec::new();
        for origin in 0..8usize {
            let batch: Vec<Transaction> = (0..50)
                .map(|_| {
                    let mut payload = vec![0u8; 100];
                    rng.fill(&mut payload[..]);
                    Transaction::new(payload)
                })
                .collect();
            all_txns.extend(batch.clone());
            net.inject_txns(PeerId(origin), batch);
        }
        net.run_until(SimTime::from_millis(30_000));

        // Mempools should be mostly (not exactly) converged.
        let m0 = net.peer(PeerId(0)).mempool.len();
        assert!(m0 > 300, "gossip failed: peer 0 has only {m0} of 400 txns");

        // Mine a block from peer 0's pool and relay it.
        let txns: Vec<Transaction> = net.peer(PeerId(0)).mempool.iter().cloned().collect();
        let block =
            graphene_blockchain::Block::assemble(Digest::ZERO, 1, txns, OrderingScheme::Ctor);
        let r = net.propagate(PeerId(0), block, SimTime::from_millis(300_000));
        assert_eq!(r.peers_reached, 8, "{r:?}");
        // Mempools are purged of confirmed transactions.
        assert!(net.peer(PeerId(0)).mempool.len() < m0);
    }

    #[test]
    fn random_topology_reaches_everyone() {
        let (mut net, block) = build(12, RelayProtocol::Graphene(GrapheneConfig::default()), 9);
        net.connect_random(3);
        let r = net.propagate(PeerId(0), block, SimTime::from_millis(120_000));
        assert_eq!(r.peers_reached, 12, "{r:?}");
    }

    // --- Adversarial hardening ---------------------------------------------

    use crate::adversary::{AdversaryConfig, Behavior};

    /// Triangle where the victim (peer 1) hears about the block from the
    /// adversary (peer 0) long before the honest origin (peer 2): the
    /// 2→1 link carries a 5 s latency, so peer 1's session starts against
    /// the adversary and the honest origin is only a failover alternate.
    fn adversary_triangle(adv: AdversaryConfig, scenario_seed: u64) -> (Network, Block) {
        let (mut net, block) =
            build(3, RelayProtocol::Graphene(GrapheneConfig::default()), scenario_seed);
        net.peer_mut(PeerId(0)).behavior = Behavior::Adversarial(adv);
        net.connect(PeerId(2), PeerId(0));
        net.connect(PeerId(0), PeerId(1));
        net.connect_with(
            PeerId(2),
            PeerId(1),
            LinkParams { latency: SimTime::from_millis(5_000), ..LinkParams::default() },
        );
        (net, block)
    }

    #[test]
    fn stalling_server_exhausts_ladder_then_fails_over() {
        let adv = AdversaryConfig { stall: 1.0, seed: 11, ..Default::default() };
        let (mut net, block) = adversary_triangle(adv, 31);
        let r = net.propagate(PeerId(2), block, SimTime::from_millis(300_000));
        assert_eq!(r.peers_reached, 3, "{r:?}");
        // The victim climbed rungs against the stalling server, gave up,
        // and switched to the honest announcer.
        assert!(net.metrics.escalations() >= 3, "{}", net.metrics.escalations());
        assert!(net.metrics.failovers() >= 1);
        // Silence is not provable misbehavior: nobody gets banned for it.
        assert_eq!(net.metrics.bans(), 0);
    }

    #[test]
    fn malformed_iblt_bans_on_first_offence_and_recovers() {
        let adv = AdversaryConfig { malformed_iblt: 1.0, seed: 5, ..Default::default() };
        let (mut net, block) = adversary_triangle(adv, 32);
        let r = net.propagate(PeerId(2), block, SimTime::from_millis(300_000));
        assert_eq!(r.peers_reached, 3, "{r:?}");
        assert!(net.peer(PeerId(1)).is_banned(PeerId(0)), "victim must ban the §6.1 attacker");
        assert!(net.metrics.bans() >= 1);
    }

    #[test]
    fn oversized_filter_violates_caps_and_bans() {
        let adv = AdversaryConfig { oversized_filter: 1.0, seed: 6, ..Default::default() };
        let (mut net, block) = adversary_triangle(adv, 33);
        let r = net.propagate(PeerId(2), block, SimTime::from_millis(300_000));
        assert_eq!(r.peers_reached, 3, "{r:?}");
        assert!(net.peer(PeerId(1)).is_banned(PeerId(0)), "§6.2 cap violation must ban");
    }

    #[test]
    fn ladder_reaches_the_graphene_retry_rung() {
        // Two peers, the only server stalls forever: the victim must walk
        // Graphene → GetGrapheneRetry → short-ID fetch → full block. With
        // no alternate announcer the block never arrives, but every rung's
        // bytes must be on the wire.
        let (mut net, block) = build(2, RelayProtocol::Graphene(GrapheneConfig::default()), 34);
        net.peer_mut(PeerId(0)).behavior =
            Behavior::Adversarial(AdversaryConfig { stall: 1.0, seed: 9, ..Default::default() });
        net.connect(PeerId(0), PeerId(1));
        let r = net.propagate(PeerId(0), block, SimTime::from_millis(200_000));
        assert_eq!(r.peers_reached, 1, "only the origin holds the block: {r:?}");
        assert!(net.metrics.bytes_for(0x14) > 0, "GetGrapheneRetry rung never requested");
        assert!(net.metrics.bytes_for(0x30) > 0, "short-ID fetch rung never requested");
        assert!(net.metrics.escalations() >= 3);
    }

    /// Satellite: a hostile server that stalls mid-cell-stream. Silence is
    /// not provable, so nobody is banned — the window timer re-requests,
    /// batches exhaust, and the ladder fails over to the honest announcer.
    #[test]
    fn stalled_cell_stream_times_out_and_fails_over() {
        // Partial mempool at the victim so the ladder reaches Protocol 2
        // (the rateless rung grows out of its candidate set); stall odds
        // below 1.0 so the initial GrapheneBlock can arrive.
        let params = ScenarioParams {
            block_size: 150,
            extra_mempool_multiple: 1.0,
            block_fraction_in_mempool: 0.6,
            ..Default::default()
        };
        let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(36));
        // Whether a given session reaches the rateless rung depends on which
        // responses the stall dice eat (the initial block must arrive, the
        // P2 recovery must not), so sweep a few adversary seeds: delivery
        // and no-ban must hold in every run, engagement in at least one.
        let mut engaged = false;
        for seed in 0..8u64 {
            let mut net = Network::new(3, RelayProtocol::Graphene(GrapheneConfig::default()), 99);
            for i in 0..3 {
                net.peer_mut(PeerId(i)).mempool = s.receiver_mempool.clone();
            }
            net.enable_rateless();
            net.peer_mut(PeerId(0)).behavior =
                Behavior::Adversarial(AdversaryConfig { stall: 0.7, seed, ..Default::default() });
            net.connect(PeerId(2), PeerId(0));
            net.connect(PeerId(0), PeerId(1));
            net.connect_with(
                PeerId(2),
                PeerId(1),
                LinkParams { latency: SimTime::from_millis(5_000), ..LinkParams::default() },
            );
            let r = net.propagate(PeerId(2), s.block.clone(), SimTime::from_millis(600_000));
            assert_eq!(r.peers_reached, 3, "seed {seed}: {r:?}");
            assert_eq!(net.metrics.bans(), 0, "stalling is never attributable");
            engaged |= net.metrics.bytes_for(0x16) > 0;
        }
        assert!(engaged, "no run ever reached the rateless rung");
    }

    /// Satellite: garbage/duplicate coded cells are provable misbehavior —
    /// the double-decode defense bans the sender and the session fails
    /// over, so every honest peer still gets the block.
    #[test]
    fn garbage_cell_stream_bans_and_recovers() {
        let params = ScenarioParams {
            block_size: 150,
            extra_mempool_multiple: 1.0,
            block_fraction_in_mempool: 0.6,
            ..Default::default()
        };
        let s = Scenario::generate(&params, &mut StdRng::seed_from_u64(37));
        let mut net = Network::new(3, RelayProtocol::Graphene(GrapheneConfig::default()), 99);
        for i in 0..3 {
            net.peer_mut(PeerId(i)).mempool = s.receiver_mempool.clone();
        }
        net.enable_rateless();
        // Garbage poisons both the P2 recovery (forcing the escalation into
        // the rateless rung) and the cell stream itself (the §6.1-style
        // double-decode that pins the offence on the sender).
        net.peer_mut(PeerId(0)).behavior =
            Behavior::Adversarial(AdversaryConfig { garbage: 1.0, seed: 5, ..Default::default() });
        net.connect(PeerId(2), PeerId(0));
        net.connect(PeerId(0), PeerId(1));
        net.connect_with(
            PeerId(2),
            PeerId(1),
            LinkParams { latency: SimTime::from_millis(5_000), ..LinkParams::default() },
        );
        let r = net.propagate(PeerId(2), s.block, SimTime::from_millis(600_000));
        assert_eq!(r.peers_reached, 3, "{r:?}");
        assert!(net.metrics.bytes_for(0x15) > 0, "cell stream never served");
        assert!(net.peer(PeerId(1)).is_banned(PeerId(0)), "garbage cells must ban");
        assert!(net.metrics.bans() >= 1);
    }

    // --- Adaptive failure detection ----------------------------------------

    /// Diamond where the victim (peer 1) hears of the block from a tarpit
    /// (peer 0) before the honest helper (peer 3): the origin (peer 2)
    /// announces to 0 and 3 over 50 ms links, 0 relays to the victim over
    /// a 40 ms link and 3 over a 60 ms link, so the tarpit's inv wins the
    /// announcement race (~190 ms vs ~210 ms) and the helper stays a
    /// failover alternate. The tarpit answers *correctly* but holds every
    /// response 1.4 s: the victim's reply lands ~1 480 ms after its
    /// request — under the fixed 2 s timer's −25% jitter floor (1 500 ms),
    /// over the adaptive arm's 1 s initial RTO ceiling (1 250 ms). The
    /// hedge round trip to peer 3 (~120 ms) beats the held reply for any
    /// jitter draw: 1 250 + 120 < 1 480.
    fn tarpit_triangle(scenario_seed: u64) -> (Network, Block) {
        let (mut net, block) =
            build(4, RelayProtocol::Graphene(GrapheneConfig::default()), scenario_seed);
        net.peer_mut(PeerId(0)).behavior = Behavior::Adversarial(AdversaryConfig {
            tarpit: 1.0,
            tarpit_hold: SimTime::from_millis(1_400),
            seed: 7,
            ..Default::default()
        });
        net.connect(PeerId(2), PeerId(0));
        net.connect(PeerId(2), PeerId(3));
        net.connect_with(
            PeerId(0),
            PeerId(1),
            LinkParams { latency: SimTime::from_millis(40), ..LinkParams::default() },
        );
        net.connect_with(
            PeerId(3),
            PeerId(1),
            LinkParams { latency: SimTime::from_millis(60), ..LinkParams::default() },
        );
        (net, block)
    }

    #[test]
    fn adaptive_arm_outruns_a_tarpit_the_fixed_timer_tolerates() {
        // Fixed arm: every tarpitted response beats the 2 s timer, so the
        // victim patiently completes against the tarpit — slowly.
        let (mut fixed, block) = tarpit_triangle(50);
        let rf = fixed.propagate(PeerId(2), block.clone(), SimTime::from_millis(600_000));
        assert_eq!(rf.peers_reached, 4, "fixed arm must still deliver: {rf:?}");
        assert_eq!(fixed.metrics.bans(), 0);
        assert_eq!(fixed.metrics.hedge_totals().0, 0, "fixed arm must never hedge");

        // Adaptive arm: the 1 s initial RTO fires first and the hedge
        // races the honest helper, which answers well inside the hold.
        let (mut adaptive, block) = tarpit_triangle(50);
        adaptive.enable_adaptive();
        let ra = adaptive.propagate(PeerId(2), block, SimTime::from_millis(600_000));
        assert_eq!(ra.peers_reached, 4, "adaptive arm must deliver: {ra:?}");
        assert_eq!(adaptive.metrics.bans(), 0, "tarpitting is never provable");
        let (issued, won, _) = adaptive.metrics.hedge_totals();
        assert!(issued > 0, "adaptive timer never fired against the tarpit");
        assert!(won > 0, "no hedge ever won the race");
        let slow = rf.completion_time.expect("fixed completes");
        let fast = ra.completion_time.expect("adaptive completes");
        assert!(fast < slow, "adaptive arm must finish sooner: {fast:?} vs fixed {slow:?}");
    }

    #[test]
    fn breaker_trips_across_repeated_blocks_and_never_bans() {
        // A stalling server soaks up session after session across three
        // consecutive blocks. The per-block ladder already fails over; the
        // breaker's job is the cross-session memory — by the third block
        // the stalling peer's circuit is open and failover prefers the
        // honest origin without re-paying the full ladder each time.
        let params = ScenarioParams {
            block_size: 60,
            extra_mempool_multiple: 1.0,
            block_fraction_in_mempool: 1.0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(51);
        let mut net = Network::new(3, RelayProtocol::Graphene(GrapheneConfig::default()), 99);
        net.enable_adaptive();
        net.peer_mut(PeerId(0)).behavior =
            Behavior::Adversarial(AdversaryConfig { stall: 1.0, seed: 13, ..Default::default() });
        net.connect(PeerId(2), PeerId(0));
        net.connect(PeerId(0), PeerId(1));
        net.connect_with(
            PeerId(2),
            PeerId(1),
            LinkParams { latency: SimTime::from_millis(2_000), ..LinkParams::default() },
        );
        for round in 0..3 {
            let s = Scenario::generate(&params, &mut rng);
            for i in 0..3 {
                for tx in s.block.txns() {
                    net.peer_mut(PeerId(i)).mempool.insert(tx.clone());
                }
            }
            let id = s.block.id();
            let r = net.propagate(PeerId(2), s.block, SimTime::from_millis(1_200_000));
            assert_eq!(r.peers_reached, 3, "round {round}: {r:?}");
            assert!(net.peer(PeerId(1)).has_block(&id), "round {round}: victim missing block");
        }
        let (trips, _probes) = net.metrics.breaker_totals();
        assert!(trips > 0, "three stalled sessions never tripped the breaker");
        assert_eq!(net.metrics.bans(), 0, "stalling is never provable misbehavior");
        // The run drains to quiescence, so sim time ends past the open
        // window and the circuit reads half-open; either way the breaker
        // must still *remember* the stalling peer — only a success closes
        // the circuit, and the tarpit never produced one.
        assert_ne!(
            net.peer(PeerId(1)).breaker_state(PeerId(0)),
            crate::health::BreakerState::Closed,
            "the stalling server's circuit must not have healed"
        );
    }

    #[test]
    fn adaptive_and_heterogeneous_links_survive_combined_chaos() {
        // The PR 3/4 acceptance scenario re-run with the adaptive detector
        // on and latency-class links: delivery must stay total and memory
        // bounded — the breaker only reorders preference, never blocks.
        use crate::link::LatencyClass;
        let (mut net, block) = build(12, RelayProtocol::Graphene(GrapheneConfig::default()), 52);
        ring_with_chords(&mut net, 12);
        // Re-link every connected pair with its latency class.
        for i in 0..12usize {
            for j in (i + 1)..12usize {
                let (a, b) = (PeerId(i), PeerId(j));
                net.connect_with(a, b, LatencyClass::assign(9, i, j).link());
            }
        }
        net.enable_adaptive();
        net.enable_chaos(ChaosConfig {
            seed: 29,
            churn_rate: 0.02,
            crash_rate: 0.01,
            churn_downtime: SimTime::from_millis(10_000),
            partition_at: Some(SimTime::from_millis(8_000)),
            partition_duration: SimTime::from_millis(20_000),
            active_until: SimTime::from_millis(90_000),
            exempt: vec![PeerId(0)],
            ..Default::default()
        });
        let r = net.propagate(PeerId(0), block, SimTime::from_millis(3_600_000));
        assert_eq!(r.peers_reached, 12, "{r:?}");
        assert_eq!(net.metrics.bans(), 0, "chaos must never look provable");
        let ceiling = net.peer(PeerId(0)).limits.accounted_ceiling();
        assert!(net.metrics.resource_hwm_bytes() <= ceiling);
    }

    // --- Chaos substrate -----------------------------------------------------

    use crate::chaos::{ChaosConfig, ChaosEvent, OutageKind};

    /// Ring + chords: stays connected when any single peer churns out.
    fn ring_with_chords(net: &mut Network, n: usize) {
        for i in 0..n {
            net.connect(PeerId(i), PeerId((i + 1) % n));
        }
        for i in 0..n / 2 {
            net.connect(PeerId(i), PeerId((i + n / 2) % n));
        }
    }

    #[test]
    fn crash_restart_mid_session_recovers_and_drains_timers() {
        // Peer 1 crashes while its Graphene session with the origin is in
        // flight, restarts from its durable snapshot, and must re-learn the
        // block through the reconnect handshake — with every pre-crash
        // timer recognised as stale rather than firing into dead state.
        let (mut net, block) = build(3, RelayProtocol::Graphene(GrapheneConfig::default()), 40);
        line_topology(&mut net, 3);
        // 50 ms links: at t=60 ms the inv has arrived and the session is
        // open, but the block payload has not landed yet.
        net.inject_chaos(
            SimTime::from_millis(60),
            ChaosEvent::Down { peer: PeerId(1), kind: OutageKind::Crash },
        );
        net.inject_chaos(
            SimTime::from_millis(1_500),
            ChaosEvent::Up { peer: PeerId(1), kind: OutageKind::Crash },
        );
        let r = net.propagate(PeerId(0), block, SimTime::from_millis(600_000));
        assert_eq!(r.peers_reached, 3, "{r:?}");
        assert_eq!(net.metrics.crashes(), 1);
        assert!(net.metrics.stale_timers() > 0, "pre-crash timers never recognised as stale");
        assert_eq!(net.pending_events(), 0, "orphaned events left in the heap");
    }

    #[test]
    fn heap_drains_to_empty_after_long_chaotic_run() {
        // Satellite: stale timers must be dropped on pop, so after the
        // network quiesces nothing lingers in the event heap.
        let (mut net, block) = build(10, RelayProtocol::Graphene(GrapheneConfig::default()), 41);
        ring_with_chords(&mut net, 10);
        net.set_default_link(LinkParams {
            drop_chance: 0.05,
            corrupt_chance: 0.03,
            duplicate_chance: 0.05,
            reorder_chance: 0.05,
            ..LinkParams::default()
        });
        net.enable_chaos(ChaosConfig {
            seed: 13,
            churn_rate: 0.02,
            crash_rate: 0.01,
            churn_downtime: SimTime::from_millis(8_000),
            partition_at: Some(SimTime::from_millis(5_000)),
            partition_duration: SimTime::from_millis(15_000),
            active_until: SimTime::from_millis(60_000),
            exempt: vec![PeerId(0)],
            ..Default::default()
        });
        let r = net.propagate(PeerId(0), block, SimTime::from_millis(3_600_000));
        assert_eq!(r.peers_reached, 10, "{r:?}");
        assert_eq!(net.pending_events(), 0, "heap did not drain");
        assert!(net.metrics.stale_timers() > 0);
    }

    #[test]
    fn partition_heals_and_both_sides_converge() {
        let (mut net, block) = build(8, RelayProtocol::Graphene(GrapheneConfig::default()), 42);
        ring_with_chords(&mut net, 8);
        let cfg = ChaosConfig {
            seed: 17,
            partition_at: Some(SimTime::from_millis(10)),
            partition_duration: SimTime::from_millis(30_000),
            ..Default::default()
        };
        // The origin's whole side converges during the split; the far side
        // only after the heal-time handshake.
        net.enable_chaos(cfg);
        let r = net.propagate(PeerId(0), block, SimTime::from_millis(600_000));
        assert_eq!(r.peers_reached, 8, "{r:?}");
        assert!(net.metrics.partition_drops() > 0, "partition never blocked a frame");
        assert!(
            r.completion_time.expect("complete") >= SimTime::from_millis(30_000),
            "someone across the cut finished before the heal: {r:?}"
        );
    }

    #[test]
    fn churn_trims_mempool_to_survival_fraction() {
        let (mut net, block) = build(3, RelayProtocol::Graphene(GrapheneConfig::default()), 43);
        line_topology(&mut net, 3);
        let before = net.peer(PeerId(2)).mempool.len();
        assert!(before > 100);
        net.enable_chaos(ChaosConfig { seed: 3, survival_fraction: 0.5, ..Default::default() });
        net.inject_chaos(
            SimTime::from_millis(5),
            ChaosEvent::Down { peer: PeerId(2), kind: OutageKind::Churn },
        );
        net.inject_chaos(
            SimTime::from_millis(10),
            ChaosEvent::Up { peer: PeerId(2), kind: OutageKind::Churn },
        );
        net.run_until(SimTime::from_millis(20));
        let after = net.peer(PeerId(2)).mempool.len();
        assert!(
            after < before * 7 / 10 && after > before * 3 / 10,
            "survival fraction not applied: {before} -> {after}"
        );
        assert_eq!(net.metrics.churn_outages(), 1);
        // The churned peer still gets the block (Protocol 2 covers the gap).
        let r = net.propagate(PeerId(0), block, SimTime::from_millis(600_000));
        assert_eq!(r.peers_reached, 3, "{r:?}");
    }

    #[test]
    fn combined_chaos_still_delivers_to_everyone() {
        // The acceptance scenario in miniature: churn + partition + crash
        // + link duplication/reordering on top of drop/corrupt, and every
        // honest peer still reconstructs the block.
        let (mut net, block) = build(12, RelayProtocol::Graphene(GrapheneConfig::default()), 44);
        ring_with_chords(&mut net, 12);
        net.set_default_link(LinkParams {
            drop_chance: 0.03,
            corrupt_chance: 0.02,
            duplicate_chance: 0.05,
            reorder_chance: 0.05,
            ..LinkParams::default()
        });
        net.enable_chaos(ChaosConfig {
            seed: 23,
            churn_rate: 0.02,
            crash_rate: 0.01,
            churn_downtime: SimTime::from_millis(10_000),
            partition_at: Some(SimTime::from_millis(8_000)),
            partition_duration: SimTime::from_millis(20_000),
            active_until: SimTime::from_millis(90_000),
            exempt: vec![PeerId(0)],
            ..Default::default()
        });
        let r = net.propagate(PeerId(0), block, SimTime::from_millis(3_600_000));
        assert_eq!(r.peers_reached, 12, "{r:?}");
        assert!(
            net.metrics.churn_outages() + net.metrics.crashes() > 0,
            "chaos schedule never fired"
        );
        // Bounded memory held throughout.
        let ceiling = net.peer(PeerId(0)).limits.accounted_ceiling();
        assert!(net.metrics.resource_hwm_bytes() <= ceiling);
    }

    #[test]
    fn backpressure_sheds_announcements_but_session_completes() {
        // Tiny queue + slow processing at peer 1: announcement floods from
        // tx gossip get shed, but the Graphene session's recovery frames
        // survive and the block still lands.
        use graphene_blockchain::Transaction;
        let (mut net, block) = build(3, RelayProtocol::Graphene(GrapheneConfig::default()), 45);
        line_topology(&mut net, 3);
        {
            let p = net.peer_mut(PeerId(1));
            p.limits.max_queue_frames = 4;
            p.limits.proc_delay_per_frame = SimTime::from_millis(25);
        }
        // Flood loose-tx announcements at the bottleneck peer.
        for i in 0..30u64 {
            let tx = Transaction::new(i.to_le_bytes().to_vec());
            net.inject_txns(PeerId(0), vec![tx]);
        }
        let r = net.propagate(PeerId(0), block, SimTime::from_millis(600_000));
        assert_eq!(r.peers_reached, 3, "{r:?}");
        assert!(net.metrics.shed_frames() > 0, "queue pressure never shed");
    }

    #[test]
    fn adversarial_minority_cannot_stop_delivery() {
        // The acceptance scenario: ≥10% hostile peers layering stalls,
        // §6.1 malformed IBLTs, garbage repairs and inconsistent counts on
        // top of 5% link drop + 5% corruption. Every honest peer must
        // still reconstruct the block.
        let n = 10;
        let (mut net, block) = build(n, RelayProtocol::Graphene(GrapheneConfig::default()), 35);
        net.set_default_link(LinkParams {
            drop_chance: 0.05,
            corrupt_chance: 0.05,
            ..LinkParams::default()
        });
        // Honest ring 0..8 guarantees an honest path to everyone.
        for i in 0..8 {
            net.connect(PeerId(i), PeerId((i + 1) % 8));
        }
        // Two adversaries (20% of the network) wired into the ring.
        for (adv, seed) in [(8, 41u64), (9, 42u64)] {
            net.peer_mut(PeerId(adv)).behavior = Behavior::Adversarial(AdversaryConfig {
                malformed_iblt: 0.4,
                stall: 0.3,
                garbage: 0.4,
                count_skew: 0.2,
                oversized_filter: 0.2,
                seed,
                ..Default::default()
            });
            for j in 0..4 {
                net.connect(PeerId(adv), PeerId(j * 2));
            }
        }
        let r = net.propagate(PeerId(0), block, SimTime::from_millis(900_000));
        for i in 0..8 {
            assert!(
                net.metrics.arrival(PeerId(i)).is_some(),
                "honest peer {i} never got the block: {r:?}"
            );
        }
    }

    #[test]
    fn past_time_schedules_are_counted_not_lost() {
        // Regression: `Network::schedule` discards the queue's clamp
        // bool. The queue self-counts, and `run_until` must fold that
        // total into the metrics — an event injected behind the clock
        // may never vanish silently.
        let (mut net, block) = build(3, RelayProtocol::Graphene(GrapheneConfig::default()), 51);
        line_topology(&mut net, 3);
        let r = net.propagate(PeerId(0), block, SimTime::from_millis(60_000));
        assert_eq!(r.peers_reached, 3, "{r:?}");
        assert_eq!(net.metrics.clamped_events(), 0, "clean run clamped nothing");
        // The clock now sits at the horizon; injecting behind it clamps.
        net.inject_chaos(SimTime::from_millis(1), ChaosEvent::PartitionStart);
        net.run_until(SimTime::from_millis(120_000));
        assert!(
            net.metrics.clamped_events() >= 1,
            "past-time schedule was dropped from the clamp count"
        );
    }

    #[test]
    fn event_queue_high_water_reaches_metrics() {
        let (mut net, block) = build(5, RelayProtocol::Graphene(GrapheneConfig::default()), 52);
        line_topology(&mut net, 5);
        net.propagate(PeerId(0), block, SimTime::from_millis(60_000));
        assert!(net.metrics.event_queue_hwm() > 0, "no pending-event peak recorded");
        assert!(net.metrics.wheel_slot_hwm() > 0, "no wheel-slot peak recorded");
    }

    #[test]
    fn adaptive_fanout_delivers_on_scale_free_geo_topology() {
        // The internet-scale configuration in miniature: a BA scale-free
        // overlay, geographically assigned link latencies, and the
        // escalating gossip fan-out instead of full flooding.
        let n = 60;
        let (mut net, block) = build(n, RelayProtocol::Graphene(GrapheneConfig::default()), 53);
        net.enable_geographic_links(7);
        net.set_fanout(FanoutPolicy::Adaptive { initial: 3 });
        let edges = crate::topology::barabasi_albert(n, 3, 77);
        net.connect_edges(&edges);
        let r = net.propagate(PeerId(0), block, SimTime::from_millis(600_000));
        assert_eq!(r.peers_reached, n, "{r:?}");
        // Fan-out must actually have throttled the first wave: the origin
        // has ≥3 neighbors in a BA graph but announced to only 3 at once.
        assert!(r.completion_time.is_some());
    }

    #[test]
    fn flood_fanout_matches_seed_byte_for_byte() {
        // FanoutPolicy::Flood is the default and must reproduce the exact
        // bytes/latency of the pre-arena seed path.
        let run = |fanout: Option<FanoutPolicy>| {
            let (mut net, block) = build(6, RelayProtocol::Graphene(GrapheneConfig::default()), 54);
            if let Some(f) = fanout {
                net.set_fanout(f);
            }
            line_topology(&mut net, 6);
            let r = net.propagate(PeerId(0), block, SimTime::from_millis(60_000));
            (r.peers_reached, r.total_bytes, r.completion_time)
        };
        assert_eq!(run(None), run(Some(FanoutPolicy::Flood)));
    }
}
