//! Per-peer protocol state machines.
//!
//! Each peer runs one relay protocol (Graphene, Compact Blocks, XThin, or
//! full blocks) as a message-driven state machine: the simulator delivers a
//! decoded frame, the peer mutates its session state and emits response
//! frames. After reconstructing a block a peer announces it onward, so a
//! topology-wide run models real gossip propagation.
//!
//! Timeout/retry: every request arms a timer; if the session has not
//! advanced when it fires, the request is retried, and after
//! [`MAX_ATTEMPTS`] the peer falls back to requesting the full block —
//! mirroring deployed behaviour when compact relay fails.

use graphene::config::GrapheneConfig;
use graphene::protocol1::{self, CandidateSet};
use graphene::protocol2::{self};
use graphene_blockchain::{Block, Header, Mempool, OrderingScheme, Transaction, TxId};
use graphene_bloom::{BloomFilter, Membership};
use graphene_hashes::{sha256, short_id_6, short_id_8, Digest, SipKey};
use graphene_wire::messages::{
    BlockTxnMsg, CmpctBlockMsg, FullBlockMsg, GetBlockTxnMsg, GetDataMsg, GetFullBlockMsg,
    GetGrapheneTxnMsg, GetTxnsMsg, InvMsg, Message, TxInvMsg, TxnsMsg, XthinBlockMsg,
    XthinGetDataMsg,
};
use std::collections::{HashMap, HashSet};

/// Attempts before falling back to a full block.
pub const MAX_ATTEMPTS: u32 = 3;

/// Peer identifier (index into the network's peer table).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId(pub usize);

/// Which relay protocol a peer speaks.
#[derive(Clone, Debug)]
pub enum RelayProtocol {
    /// Graphene Protocols 1 + 2.
    Graphene(GrapheneConfig),
    /// BIP152 Compact Blocks.
    CompactBlocks,
    /// BUIP010 XThin.
    Xthin {
        /// FPR of the receiver's mempool filter.
        filter_fpr: f64,
    },
    /// Uncompressed blocks.
    FullBlocks,
}

/// Receiver-side session state for one block.
struct RxSession {
    server: PeerId,
    attempt: u32,
    phase: RxPhase,
    /// Bodies collected during the session (prefilled, missing, fetched).
    bodies: HashMap<TxId, Transaction>,
}

enum RxPhase {
    /// getdata sent, awaiting the block payload.
    Requested,
    /// Graphene Protocol 2 request sent.
    GrapheneP2 { state: Box<CandidateSet>, header: Header, order_bytes: Vec<u8> },
    /// Graphene extra-fetch of R false positives sent.
    GrapheneFetch { resolved: HashMap<u64, TxId>, header: Header, order_bytes: Vec<u8> },
    /// Compact Blocks repair round pending; slots hold resolved IDs.
    CompactWait { header: Header, slots: Vec<Option<TxId>>, missing: Vec<u64> },
    /// XThin repair round pending.
    XthinWait { header: Header, ids: Vec<TxId>, unresolved: Vec<u64> },
    /// Fallback full-block request sent.
    Fallback,
}

/// A simulated peer.
pub struct Peer {
    /// This peer's ID.
    pub id: PeerId,
    /// Relay protocol spoken.
    pub protocol: RelayProtocol,
    /// Local transaction pool.
    pub mempool: Mempool,
    blocks: HashMap<Digest, Block>,
    sessions: HashMap<Digest, RxSession>,
    seen_inv: HashSet<Digest>,
    /// Transaction IDs already announced/seen (loose-tx relay, §2.2).
    seen_tx_inv: HashSet<TxId>,
}

/// A frame to transmit plus an optional timer to arm.
pub struct Output {
    /// (destination, message) pairs to send.
    pub send: Vec<(PeerId, Message)>,
    /// Arm a retry timer for this block if set: (block, attempt).
    pub arm_timer: Option<(Digest, u32)>,
    /// Set when this peer just completed a block (for metrics).
    pub completed_block: Option<Digest>,
}

impl Output {
    fn none() -> Output {
        Output { send: Vec::new(), arm_timer: None, completed_block: None }
    }
}

impl Peer {
    /// Create a peer.
    pub fn new(id: PeerId, protocol: RelayProtocol, mempool: Mempool) -> Peer {
        Peer {
            id,
            protocol,
            mempool,
            blocks: HashMap::new(),
            sessions: HashMap::new(),
            seen_inv: HashSet::new(),
            seen_tx_inv: HashSet::new(),
        }
    }

    /// Does this peer hold `block_id`?
    pub fn has_block(&self, block_id: &Digest) -> bool {
        self.blocks.contains_key(block_id)
    }

    /// Fetch a held block.
    pub fn block(&self, block_id: &Digest) -> Option<&Block> {
        self.blocks.get(block_id)
    }

    /// Give this peer a block directly (the origin of a propagation run)
    /// and announce it to `neighbors`.
    pub fn originate(&mut self, block: Block, neighbors: &[PeerId]) -> Output {
        let id = block.id();
        self.seen_inv.insert(id);
        self.mempool.confirm(&block.ids());
        self.blocks.insert(id, block);
        let mut out = Output::none();
        for &n in neighbors {
            out.send.push((n, Message::Inv(InvMsg { block_id: id })));
        }
        out
    }

    /// Handle one delivered message.
    pub fn handle(&mut self, from: PeerId, msg: Message, neighbors: &[PeerId]) -> Output {
        match msg {
            Message::Inv(m) => self.on_inv(from, m),
            Message::GetData(m) => self.on_getdata(from, m),
            Message::GrapheneBlock(m) => self.on_graphene_block(from, m, neighbors),
            Message::GrapheneRequest(m) => self.on_graphene_request(from, m),
            Message::GrapheneRecovery(m) => self.on_graphene_recovery(from, m, neighbors),
            Message::GetGrapheneTxn(m) => self.on_get_graphene_txn(from, m),
            Message::CmpctBlock(m) => self.on_cmpct_block(from, m, neighbors),
            Message::GetBlockTxn(m) => self.on_get_block_txn(from, m),
            Message::BlockTxn(m) => self.on_block_txn(from, m, neighbors),
            Message::XthinGetData(m) => self.on_xthin_getdata(from, m),
            Message::XthinBlock(m) => self.on_xthin_block(from, m, neighbors),
            Message::GetFullBlock(m) => self.on_get_full_block(from, m),
            Message::FullBlock(m) => self.on_full_block(from, m, neighbors),
            Message::TxInv(m) => self.on_tx_inv(from, m),
            Message::GetTxns(m) => self.on_get_txns(from, m),
            Message::Txns(m) => self.on_txns(m, neighbors),
        }
    }

    /// Inject freshly authored transactions at this peer (the origin of
    /// loose-transaction gossip) and announce them to `neighbors`.
    pub fn originate_txns(&mut self, txns: Vec<Transaction>, neighbors: &[PeerId]) -> Output {
        let mut fresh = Vec::new();
        for tx in txns {
            if self.seen_tx_inv.insert(*tx.id()) {
                fresh.push(*tx.id());
            }
            self.mempool.insert(tx);
        }
        let mut out = Output::none();
        if !fresh.is_empty() {
            for &n in neighbors {
                out.send.push((n, Message::TxInv(TxInvMsg { txids: fresh.clone() })));
            }
        }
        out
    }

    fn on_tx_inv(&mut self, from: PeerId, m: TxInvMsg) -> Output {
        // Request every announced transaction we do not hold yet, even if a
        // previous announcement was already seen: on lossy links the earlier
        // getdata/tx exchange may have been dropped, and a later inv from
        // another neighbor is the only recovery path. `seen_tx_inv` still
        // suppresses re-relaying, so this cannot loop.
        let wanted: Vec<TxId> = m
            .txids
            .into_iter()
            .filter(|id| {
                self.seen_tx_inv.insert(*id);
                !self.mempool.contains(id)
            })
            .collect();
        let mut out = Output::none();
        if !wanted.is_empty() {
            out.send.push((from, Message::GetTxns(GetTxnsMsg { txids: wanted })));
        }
        out
    }

    fn on_get_txns(&mut self, from: PeerId, m: GetTxnsMsg) -> Output {
        let txns: Vec<Transaction> =
            m.txids.iter().filter_map(|id| self.mempool.get(id).cloned()).collect();
        let mut out = Output::none();
        if !txns.is_empty() {
            out.send.push((from, Message::Txns(TxnsMsg { txns })));
        }
        out
    }

    fn on_txns(&mut self, m: TxnsMsg, neighbors: &[PeerId]) -> Output {
        let mut fresh = Vec::new();
        for tx in m.txns {
            if !self.mempool.contains(tx.id()) {
                fresh.push(*tx.id());
                self.seen_tx_inv.insert(*tx.id());
                self.mempool.insert(tx);
            }
        }
        let mut out = Output::none();
        if !fresh.is_empty() {
            // Relay onward (the announce-to-all, request-if-new gossip of §2.2).
            for &n in neighbors {
                out.send.push((n, Message::TxInv(TxInvMsg { txids: fresh.clone() })));
            }
        }
        out
    }

    /// Handle a retry timer. `attempt` is the attempt the timer guarded.
    pub fn handle_timeout(&mut self, block_id: Digest, attempt: u32) -> Output {
        let Some(session) = self.sessions.get_mut(&block_id) else {
            return Output::none(); // completed meanwhile
        };
        if session.attempt != attempt {
            return Output::none(); // session advanced; stale timer
        }
        session.attempt += 1;
        let server = session.server;
        let mut out = Output::none();
        if session.attempt >= MAX_ATTEMPTS {
            session.phase = RxPhase::Fallback;
            session.bodies.clear();
            out.send.push((server, Message::GetFullBlock(GetFullBlockMsg { block_id })));
        } else {
            // Restart the session from the top.
            session.phase = RxPhase::Requested;
            session.bodies.clear();
            out.send.push((server, self.request_for(block_id)));
        }
        out.arm_timer = Some((block_id, self.sessions[&block_id].attempt));
        out
    }

    /// The protocol-appropriate initial block request.
    fn request_for(&self, block_id: Digest) -> Message {
        match &self.protocol {
            RelayProtocol::Xthin { filter_fpr } => {
                let mut filter = BloomFilter::new(
                    self.mempool.len().max(1),
                    *filter_fpr,
                    block_id.low_u64() ^ 0x7874,
                );
                for tx in self.mempool.iter() {
                    filter.insert(tx.id());
                }
                Message::XthinGetData(XthinGetDataMsg { block_id, mempool_filter: filter })
            }
            _ => {
                Message::GetData(GetDataMsg { block_id, mempool_count: self.mempool.len() as u64 })
            }
        }
    }

    fn on_inv(&mut self, from: PeerId, m: InvMsg) -> Output {
        if !self.seen_inv.insert(m.block_id) || self.blocks.contains_key(&m.block_id) {
            return Output::none();
        }
        self.sessions.insert(
            m.block_id,
            RxSession {
                server: from,
                attempt: 0,
                phase: RxPhase::Requested,
                bodies: HashMap::new(),
            },
        );
        let mut out = Output::none();
        out.send.push((from, self.request_for(m.block_id)));
        out.arm_timer = Some((m.block_id, 0));
        out
    }

    fn on_getdata(&mut self, from: PeerId, m: GetDataMsg) -> Output {
        let Some(block) = self.blocks.get(&m.block_id) else {
            return Output::none();
        };
        let mut out = Output::none();
        match &self.protocol {
            RelayProtocol::Graphene(cfg) => {
                let (msg, _) = protocol1::sender_encode(block, m.mempool_count, None, cfg);
                out.send.push((from, Message::GrapheneBlock(msg)));
            }
            RelayProtocol::CompactBlocks => {
                out.send.push((from, Message::CmpctBlock(build_cmpctblock(block))));
            }
            RelayProtocol::FullBlocks => {
                out.send.push((
                    from,
                    Message::FullBlock(FullBlockMsg {
                        header: *block.header(),
                        txns: block.txns().to_vec(),
                    }),
                ));
            }
            RelayProtocol::Xthin { .. } => {
                // XThin requests arrive as XthinGetData instead; a plain
                // getdata gets the full block.
                out.send.push((
                    from,
                    Message::FullBlock(FullBlockMsg {
                        header: *block.header(),
                        txns: block.txns().to_vec(),
                    }),
                ));
            }
        }
        out
    }

    // --- Graphene ---------------------------------------------------------

    fn on_graphene_block(
        &mut self,
        from: PeerId,
        m: graphene_wire::messages::GrapheneBlockMsg,
        neighbors: &[PeerId],
    ) -> Output {
        let block_id = graphene_hashes::sha256d(&m.header.to_bytes());
        let Some(session) = self.sessions.get_mut(&block_id) else {
            return Output::none();
        };
        let RelayProtocol::Graphene(cfg) = self.protocol.clone() else {
            return Output::none();
        };
        for tx in &m.prefilled {
            session.bodies.insert(*tx.id(), tx.clone());
        }
        match protocol1::receiver_decode(&m, &self.mempool, &cfg) {
            Ok(ok) => self.complete_block(block_id, m.header, ok.ordered_ids, neighbors),
            Err((_why, state)) => {
                let (req, _) = protocol2::receiver_request(
                    &state,
                    block_id,
                    m.block_tx_count as usize,
                    self.mempool.len(),
                    &cfg,
                );
                let session = self.sessions.get_mut(&block_id).expect("session exists");
                session.attempt += 1;
                session.phase = RxPhase::GrapheneP2 {
                    state: Box::new(state),
                    header: m.header,
                    order_bytes: m.order_bytes.clone(),
                };
                let attempt = session.attempt;
                let mut out = Output::none();
                out.send.push((from, Message::GrapheneRequest(req)));
                out.arm_timer = Some((block_id, attempt));
                out
            }
        }
    }

    fn on_graphene_request(
        &mut self,
        from: PeerId,
        m: graphene_wire::messages::GrapheneRequestMsg,
    ) -> Output {
        let Some(block) = self.blocks.get(&m.block_id) else {
            return Output::none();
        };
        let RelayProtocol::Graphene(cfg) = &self.protocol else {
            return Output::none();
        };
        // The sender does not re-learn m here; deployed graphene caches it.
        let rec = protocol2::sender_respond(block, &m, self.mempool.len().max(block.len()), cfg);
        let mut out = Output::none();
        out.send.push((from, Message::GrapheneRecovery(rec)));
        out
    }

    fn on_graphene_recovery(
        &mut self,
        from: PeerId,
        m: graphene_wire::messages::GrapheneRecoveryMsg,
        neighbors: &[PeerId],
    ) -> Output {
        let block_id = m.block_id;
        let Some(session) = self.sessions.get_mut(&block_id) else {
            return Output::none();
        };
        let RelayProtocol::Graphene(cfg) = self.protocol.clone() else {
            return Output::none();
        };
        let RxPhase::GrapheneP2 { state, header, order_bytes } = &mut session.phase else {
            return Output::none();
        };
        let header = *header;
        let order_bytes = order_bytes.clone();
        for tx in &m.missing {
            session.bodies.insert(*tx.id(), tx.clone());
        }
        match protocol2::receiver_complete(state, &m, header.merkle_root, &order_bytes, &cfg) {
            Ok(ok) => {
                if ok.needs_fetch.is_empty() {
                    let ids = ok.ordered_ids.expect("complete without fetch");
                    self.complete_block(block_id, header, ids, neighbors)
                } else {
                    session.attempt += 1;
                    let attempt = session.attempt;
                    let needs = ok.needs_fetch.clone();
                    session.phase =
                        RxPhase::GrapheneFetch { resolved: ok.resolved, header, order_bytes };
                    let mut out = Output::none();
                    out.send.push((
                        from,
                        Message::GetGrapheneTxn(GetGrapheneTxnMsg { block_id, short_ids: needs }),
                    ));
                    out.arm_timer = Some((block_id, attempt));
                    out
                }
            }
            Err(_) => {
                // Decode failed: fall back to the full block.
                session.attempt = MAX_ATTEMPTS;
                session.phase = RxPhase::Fallback;
                let mut out = Output::none();
                out.send.push((from, Message::GetFullBlock(GetFullBlockMsg { block_id })));
                out.arm_timer = Some((block_id, MAX_ATTEMPTS));
                out
            }
        }
    }

    fn on_get_graphene_txn(&mut self, from: PeerId, m: GetGrapheneTxnMsg) -> Output {
        let Some(block) = self.blocks.get(&m.block_id) else {
            return Output::none();
        };
        let lookup: HashMap<u64, &Transaction> =
            block.txns().iter().map(|tx| (short_id_8(tx.id()), tx)).collect();
        let txns: Vec<Transaction> =
            m.short_ids.iter().filter_map(|s| lookup.get(s).map(|tx| (*tx).clone())).collect();
        let mut out = Output::none();
        out.send.push((from, Message::BlockTxn(BlockTxnMsg { block_id: m.block_id, txns })));
        out
    }

    // --- Compact Blocks ----------------------------------------------------

    fn on_cmpct_block(&mut self, from: PeerId, m: CmpctBlockMsg, neighbors: &[PeerId]) -> Output {
        let block_id = graphene_hashes::sha256d(&m.header.to_bytes());
        let Some(session) = self.sessions.get_mut(&block_id) else {
            return Output::none();
        };
        let key = cmpct_key(&m.header, m.nonce);
        let mut by_short: HashMap<u64, Option<TxId>> = HashMap::new();
        for tx in self.mempool.iter() {
            by_short
                .entry(short_id_6(key, tx.id()))
                .and_modify(|slot| *slot = None)
                .or_insert(Some(*tx.id()));
        }
        let total = m.short_ids.len() + m.prefilled.len();
        let mut slots: Vec<Option<TxId>> = vec![None; total];
        for (i, tx) in &m.prefilled {
            if (*i as usize) < total {
                slots[*i as usize] = Some(*tx.id());
                session.bodies.insert(*tx.id(), tx.clone());
            }
        }
        // Short IDs fill the remaining positions in order.
        let mut short_iter = m.short_ids.iter();
        let mut missing: Vec<u64> = Vec::new();
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.is_some() {
                continue;
            }
            let Some(short) = short_iter.next() else { break };
            match by_short.get(short) {
                Some(Some(id)) => *slot = Some(*id),
                _ => missing.push(i as u64),
            }
        }
        if missing.is_empty() {
            let ids: Vec<TxId> = slots.into_iter().flatten().collect();
            if ids.len() == total {
                return self.complete_block(block_id, m.header, ids, neighbors);
            }
            return Output::none();
        }
        session.attempt += 1;
        let attempt = session.attempt;
        session.phase = RxPhase::CompactWait { header: m.header, slots, missing: missing.clone() };
        let mut out = Output::none();
        out.send.push((from, Message::GetBlockTxn(GetBlockTxnMsg { block_id, indexes: missing })));
        out.arm_timer = Some((block_id, attempt));
        out
    }

    fn on_get_block_txn(&mut self, from: PeerId, m: GetBlockTxnMsg) -> Output {
        let Some(block) = self.blocks.get(&m.block_id) else {
            return Output::none();
        };
        let txns: Vec<Transaction> =
            m.indexes.iter().filter_map(|&i| block.txns().get(i as usize).cloned()).collect();
        let mut out = Output::none();
        out.send.push((from, Message::BlockTxn(BlockTxnMsg { block_id: m.block_id, txns })));
        out
    }

    fn on_block_txn(&mut self, _from: PeerId, m: BlockTxnMsg, neighbors: &[PeerId]) -> Output {
        let block_id = m.block_id;
        let Some(session) = self.sessions.get_mut(&block_id) else {
            return Output::none();
        };
        for tx in &m.txns {
            session.bodies.insert(*tx.id(), tx.clone());
        }
        match &mut session.phase {
            RxPhase::CompactWait { header, slots, missing } => {
                let header = *header;
                if m.txns.len() != missing.len() {
                    return Output::none(); // wait for timeout
                }
                for (&i, tx) in missing.iter().zip(&m.txns) {
                    slots[i as usize] = Some(*tx.id());
                }
                let ids: Vec<TxId> = slots.iter().copied().flatten().collect();
                if ids.len() == slots.len() {
                    self.complete_block(block_id, header, ids, neighbors)
                } else {
                    Output::none()
                }
            }
            RxPhase::XthinWait { header, ids, unresolved } => {
                let header = *header;
                if m.txns.len() != unresolved.len() {
                    return Output::none();
                }
                for (&i, tx) in unresolved.iter().zip(&m.txns) {
                    ids[i as usize] = *tx.id();
                }
                let ids = ids.clone();
                self.complete_block(block_id, header, ids, neighbors)
            }
            RxPhase::GrapheneFetch { resolved, header, order_bytes } => {
                let header = *header;
                let order_bytes = order_bytes.clone();
                for tx in &m.txns {
                    resolved.insert(short_id_8(tx.id()), *tx.id());
                }
                let RelayProtocol::Graphene(cfg) = self.protocol.clone() else {
                    return Output::none();
                };
                let resolved = resolved.clone();
                match protocol2::finalize_p2(&resolved, header.merkle_root, &order_bytes, &cfg) {
                    Ok(ok) => {
                        let ids = ok.ordered_ids.expect("finalized");
                        self.complete_block(block_id, header, ids, neighbors)
                    }
                    Err(_) => {
                        let server = session.server;
                        session.attempt = MAX_ATTEMPTS;
                        session.phase = RxPhase::Fallback;
                        let mut out = Output::none();
                        out.send
                            .push((server, Message::GetFullBlock(GetFullBlockMsg { block_id })));
                        out.arm_timer = Some((block_id, MAX_ATTEMPTS));
                        out
                    }
                }
            }
            _ => Output::none(),
        }
    }

    // --- XThin --------------------------------------------------------------

    fn on_xthin_getdata(&mut self, from: PeerId, m: XthinGetDataMsg) -> Output {
        let Some(block) = self.blocks.get(&m.block_id) else {
            return Output::none();
        };
        let missing: Vec<Transaction> =
            block.txns().iter().filter(|tx| !m.mempool_filter.contains(tx.id())).cloned().collect();
        let short_ids: Vec<u64> = block.txns().iter().map(|tx| short_id_8(tx.id())).collect();
        let mut out = Output::none();
        out.send.push((
            from,
            Message::XthinBlock(XthinBlockMsg { header: *block.header(), short_ids, missing }),
        ));
        out
    }

    fn on_xthin_block(&mut self, from: PeerId, m: XthinBlockMsg, neighbors: &[PeerId]) -> Output {
        let block_id = graphene_hashes::sha256d(&m.header.to_bytes());
        let Some(session) = self.sessions.get_mut(&block_id) else {
            return Output::none();
        };
        for tx in &m.missing {
            session.bodies.insert(*tx.id(), tx.clone());
        }
        // Mempool-first resolution, as deployed clients do (see
        // `graphene-baselines::xthin` for the §6.1 implications).
        let mut by_short: HashMap<u64, TxId> = HashMap::new();
        for tx in m.missing.iter() {
            by_short.insert(short_id_8(tx.id()), *tx.id());
        }
        for tx in self.mempool.iter() {
            by_short.insert(short_id_8(tx.id()), *tx.id());
        }
        let mut ids: Vec<TxId> = Vec::with_capacity(m.short_ids.len());
        let mut unresolved: Vec<u64> = Vec::new();
        for (i, short) in m.short_ids.iter().enumerate() {
            match by_short.get(short) {
                Some(id) => ids.push(*id),
                None => {
                    unresolved.push(i as u64);
                    ids.push(TxId::ZERO);
                }
            }
        }
        if unresolved.is_empty() {
            return self.complete_block(block_id, m.header, ids, neighbors);
        }
        session.attempt += 1;
        let attempt = session.attempt;
        session.phase =
            RxPhase::XthinWait { header: m.header, ids, unresolved: unresolved.clone() };
        let mut out = Output::none();
        out.send
            .push((from, Message::GetBlockTxn(GetBlockTxnMsg { block_id, indexes: unresolved })));
        out.arm_timer = Some((block_id, attempt));
        out
    }

    // --- Full blocks ---------------------------------------------------------

    fn on_get_full_block(&mut self, from: PeerId, m: GetFullBlockMsg) -> Output {
        let Some(block) = self.blocks.get(&m.block_id) else {
            return Output::none();
        };
        let mut out = Output::none();
        out.send.push((
            from,
            Message::FullBlock(FullBlockMsg {
                header: *block.header(),
                txns: block.txns().to_vec(),
            }),
        ));
        out
    }

    fn on_full_block(&mut self, _from: PeerId, m: FullBlockMsg, neighbors: &[PeerId]) -> Output {
        let block_id = graphene_hashes::sha256d(&m.header.to_bytes());
        if self.blocks.contains_key(&block_id) {
            return Output::none();
        }
        if !self.sessions.contains_key(&block_id) {
            return Output::none(); // unsolicited
        }
        let Ok(block) = Block::from_parts(m.header, m.txns, OrderingScheme::Ctor) else {
            return Output::none(); // corrupt; timeout will retry
        };
        self.store_and_announce(block_id, block, neighbors)
    }

    // --- Completion -----------------------------------------------------------

    /// Assemble a reconstructed block from ordered IDs, bodies coming from
    /// the mempool and the session's collected transactions.
    fn complete_block(
        &mut self,
        block_id: Digest,
        header: Header,
        ordered_ids: Vec<TxId>,
        neighbors: &[PeerId],
    ) -> Output {
        let Some(session) = self.sessions.get(&block_id) else {
            return Output::none();
        };
        let mut txns = Vec::with_capacity(ordered_ids.len());
        for id in &ordered_ids {
            if let Some(tx) = self.mempool.get(id) {
                txns.push(tx.clone());
            } else if let Some(tx) = session.bodies.get(id) {
                txns.push(tx.clone());
            } else {
                return Output::none(); // body unavailable; let the timer fire
            }
        }
        match Block::from_parts(header, txns, OrderingScheme::Ctor) {
            Ok(block) => self.store_and_announce(block_id, block, neighbors),
            Err(_) => Output::none(),
        }
    }

    fn store_and_announce(
        &mut self,
        block_id: Digest,
        block: Block,
        neighbors: &[PeerId],
    ) -> Output {
        self.sessions.remove(&block_id);
        self.mempool.confirm(&block.ids());
        self.blocks.insert(block_id, block);
        let mut out = Output::none();
        out.completed_block = Some(block_id);
        for &n in neighbors {
            out.send.push((n, Message::Inv(InvMsg { block_id })));
        }
        out
    }
}

/// Build a BIP152 compact block (shared with `graphene-baselines`' logic).
pub fn build_cmpctblock(block: &Block) -> CmpctBlockMsg {
    let nonce = block.id().low_u64();
    let key = cmpct_key(block.header(), nonce);
    let prefilled: Vec<(u64, Transaction)> =
        block.txns().first().map(|tx| vec![(0u64, tx.clone())]).unwrap_or_default();
    let short_ids: Vec<u64> =
        block.txns().iter().skip(1).map(|tx| short_id_6(key, tx.id())).collect();
    CmpctBlockMsg { header: *block.header(), nonce, short_ids, prefilled }
}

/// BIP152 short-ID key derivation: SHA-256 of header ‖ nonce.
pub fn cmpct_key(header: &Header, nonce: u64) -> SipKey {
    let mut data = Vec::with_capacity(88);
    data.extend_from_slice(&header.to_bytes());
    data.extend_from_slice(&nonce.to_le_bytes());
    let h = sha256(&data);
    SipKey::new(
        u64::from_le_bytes(h.0[0..8].try_into().expect("8 bytes")),
        u64::from_le_bytes(h.0[8..16].try_into().expect("8 bytes")),
    )
}
